//! End-to-end tests of the `haten2-cli` binary: generate → stats →
//! decompose → verify the written artifacts.

// Test code: `unwrap` is the assertion (allowed by the workspace clippy
// policy only here).
#![allow(clippy::unwrap_used)]

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_haten2-cli"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("haten2_cli_tests").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn generate_stats_decompose_roundtrip() {
    let dir = tmp_dir("roundtrip");
    let tns = dir.join("x.tns");

    // generate random
    let out = cli()
        .args([
            "generate", "random", "--dims", "30,30,30", "--nnz", "300", "--seed", "7", "--out",
        ])
        .arg(&tns)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("300 nonzeros"));

    // stats
    let out = cli().args(["stats", "--input"]).arg(&tns).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("nnz:       300"));
    assert!(text.contains("density"));

    // decompose parafac
    let prefix = dir.join("cp");
    let out = cli()
        .args(["decompose", "parafac", "--input"])
        .arg(&tns)
        .args([
            "--rank",
            "3",
            "--iters",
            "3",
            "--machines",
            "4",
            "--out-prefix",
        ])
        .arg(&prefix)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("PARAFAC rank 3"));
    assert!(text.contains("mapreduce:"));

    // written artifacts load back with the right shapes
    for name in ["A", "B", "C"] {
        let m = haten2::linalg::load_mat(format!("{}.{name}.mat", prefix.display())).unwrap();
        assert_eq!(m.shape(), (30, 3), "{name}");
    }
    let lambda = std::fs::read_to_string(format!("{}.lambda.txt", prefix.display())).unwrap();
    assert_eq!(lambda.trim().lines().count(), 3);
}

#[test]
fn decompose_tucker_writes_core() {
    let dir = tmp_dir("tucker");
    let tns = dir.join("x.tns");
    cli()
        .args([
            "generate", "random", "--dims", "20,20,20", "--nnz", "200", "--out",
        ])
        .arg(&tns)
        .status()
        .unwrap();
    let prefix = dir.join("tk");
    let out = cli()
        .args(["decompose", "tucker", "--input"])
        .arg(&tns)
        .args([
            "--core",
            "2,3,2",
            "--iters",
            "2",
            "--machines",
            "2",
            "--out-prefix",
        ])
        .arg(&prefix)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let a = haten2::linalg::load_mat(format!("{}.A.mat", prefix.display())).unwrap();
    assert_eq!(a.shape(), (20, 2));
    let b = haten2::linalg::load_mat(format!("{}.B.mat", prefix.display())).unwrap();
    assert_eq!(b.shape(), (20, 3));
    let core = haten2::tensor::io::load_coo3(format!("{}.core.tns", prefix.display())).unwrap();
    assert!(core.nnz() > 0);
    assert!(core.dims()[0] <= 2 && core.dims()[1] <= 3);
}

#[test]
fn generate_kb_and_nonneg_and_complete() {
    let dir = tmp_dir("kb");
    let tns = dir.join("kb.tns");
    let out = cli()
        .args([
            "generate",
            "kb",
            "--preset",
            "freebase-music",
            "--scale",
            "1",
            "--out",
        ])
        .arg(&tns)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("preprocessed"));

    let prefix = dir.join("nn");
    let out = cli()
        .args(["decompose", "parafac", "--input"])
        .arg(&tns)
        .args([
            "--rank",
            "2",
            "--iters",
            "2",
            "--machines",
            "2",
            "--nonneg",
            "--out-prefix",
        ])
        .arg(&prefix)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("nonnegative PARAFAC"));
    // Nonnegativity of written factors.
    let a = haten2::linalg::load_mat(format!("{}.A.mat", prefix.display())).unwrap();
    assert!(a.data().iter().all(|&v| v >= 0.0));

    let prefix = dir.join("em");
    let out = cli()
        .args(["complete", "--input"])
        .arg(&tns)
        .args([
            "--rank",
            "2",
            "--iters",
            "2",
            "--machines",
            "2",
            "--out-prefix",
        ])
        .arg(&prefix)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("EM-ALS completion"));
}

#[test]
fn convert_triples_to_tensor() {
    let dir = tmp_dir("convert");
    let tsv = dir.join("kb.tsv");
    std::fs::write(
        &tsv,
        "alice\tknows\tbob\nbob\tknows\tcarol\n\
         alice\tlikes\tmusic\ncarol\tlikes\topera\n\
         alice\tns:type.object.name\t\"Alice\"\n",
    )
    .unwrap();
    let tns = dir.join("kb.tns");
    let out = cli()
        .args(["convert", "--triples"])
        .arg(&tsv)
        .args(["--order", "spo", "--out"])
        .arg(&tns)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("parsed 5 triples"), "{text}");
    assert!(text.contains("1 literal"), "{text}");
    // The literal triple is filtered by preprocessing; knows/likes survive.
    let t = haten2::tensor::io::load_coo3(&tns).unwrap();
    assert_eq!(t.nnz(), 4);

    // Unknown order rejected.
    let out = cli()
        .args(["convert", "--triples"])
        .arg(&tsv)
        .args(["--order", "xyz", "--out", "/tmp/never.tns"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn bad_usage_reports_errors() {
    let out = cli().args(["decompose", "parafac"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing --input"));

    let out = cli().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = cli()
        .args([
            "generate",
            "random",
            "--dims",
            "1,2",
            "--nnz",
            "5",
            "--out",
            "/dev/null",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("three comma-separated"));

    let out = cli()
        .args(["stats", "--input", "/nonexistent/x.tns"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn variant_selection_works() {
    let dir = tmp_dir("variant");
    let tns = dir.join("x.tns");
    cli()
        .args([
            "generate", "random", "--dims", "15,15,15", "--nnz", "100", "--out",
        ])
        .arg(&tns)
        .status()
        .unwrap();
    for variant in ["naive", "dnn", "drn", "dri"] {
        let prefix = dir.join(variant);
        let out = cli()
            .args(["decompose", "parafac", "--input"])
            .arg(&tns)
            .args([
                "--rank",
                "2",
                "--iters",
                "1",
                "--machines",
                "2",
                "--variant",
                variant,
            ])
            .args(["--out-prefix"])
            .arg(&prefix)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{variant}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let out = cli()
        .args(["decompose", "parafac", "--input"])
        .arg(&tns)
        .args([
            "--rank",
            "2",
            "--variant",
            "bogus",
            "--out-prefix",
            "/tmp/x",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown variant"));
}
