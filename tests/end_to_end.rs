//! End-to-end integration tests spanning all crates: generate → preprocess
//! → decompose (distributed) → validate against the baseline and the dense
//! reference.

// Test code: `unwrap` is the assertion (allowed by the workspace clippy
// policy only here).
#![allow(clippy::unwrap_used)]

use haten2::data::discovery::{parafac_concepts, recovery_precision};
use haten2::prelude::*;

fn cluster(machines: usize) -> Cluster {
    Cluster::new(ClusterConfig::with_machines(machines))
}

#[test]
fn kb_pipeline_recovers_planted_concepts() {
    // The paper's discovery pipeline end to end, checkable because the KB
    // stand-in plants ground-truth concepts.
    let kb = KnowledgeBase::freebase_music(1, 2024);
    let (x, report) = preprocess(&kb, &PreprocessConfig::default());
    assert!(
        report.literals_removed > 0,
        "preprocessing must strip literals"
    );

    let opts = AlsOptions {
        max_iters: 15,
        tol: 1e-5,
        ..AlsOptions::with_variant(Variant::Dri)
    };
    let res = parafac_als(&cluster(8), &x, 6, &opts).unwrap();
    let concepts = parafac_concepts(
        &res.factors,
        &res.lambda,
        5,
        &kb.subjects,
        &kb.objects,
        &kb.predicates,
    );

    // At least one discovered concept matches a planted block well.
    let mut best = 0.0f64;
    for c in &concepts {
        for planted in &kb.concepts {
            let names: Vec<String> = planted
                .subjects
                .iter()
                .map(|&s| kb.subjects[s as usize].clone())
                .collect();
            best = best.max(recovery_precision(&c.subjects, &names));
        }
    }
    assert!(best >= 0.6, "best planted recovery {best}");
}

#[test]
fn all_variants_agree_on_full_parafac_decomposition() {
    let x = random_tensor(&RandomTensorConfig::cubic(12, 120, 3));
    let mut fits: Vec<(Variant, Vec<f64>)> = Vec::new();
    for variant in Variant::ALL {
        let opts = AlsOptions {
            max_iters: 3,
            tol: 0.0,
            seed: 5,
            ..AlsOptions::with_variant(variant)
        };
        let res = parafac_als(&cluster(4), &x, 3, &opts).unwrap();
        fits.push((variant, res.fits));
    }
    let reference = fits[0].1.clone();
    for (v, f) in &fits[1..] {
        for (a, b) in reference.iter().zip(f) {
            assert!((a - b).abs() < 1e-8, "{v}: {a} vs {b}");
        }
    }
}

#[test]
fn distributed_tucker_matches_baseline_bit_for_bit() {
    let x = random_tensor(&RandomTensorConfig::cubic(10, 80, 4));
    let opts = AlsOptions {
        max_iters: 3,
        tol: 0.0,
        seed: 11,
        ..AlsOptions::with_variant(Variant::Dri)
    };
    let dist = tucker_als(&cluster(4), &x, [3, 3, 3], &opts).unwrap();
    let base = haten2::baseline::tucker_als_baseline(&x, [3, 3, 3], 3, 0.0, 11, None).unwrap();
    for (a, b) in dist.core_norms.iter().zip(&base.core_norms) {
        assert!((a - b).abs() < 1e-8, "distributed {a} vs baseline {b}");
    }
}

#[test]
fn tensor_io_roundtrip_through_decomposition() {
    // Write a tensor to disk, read it back, decompose both; identical runs.
    let x = random_tensor(&RandomTensorConfig::cubic(8, 60, 6));
    let dir = std::env::temp_dir().join("haten2_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("x.tns");
    haten2::tensor::io::save_coo3(&x, &path).unwrap();
    let y = haten2::tensor::io::load_coo3(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // Dims may shrink on load (inferred); decompose the loaded tensor and
    // the original restricted to the same dims.
    let opts = AlsOptions {
        max_iters: 2,
        tol: 0.0,
        seed: 8,
        ..AlsOptions::with_variant(Variant::Dri)
    };
    let rx = parafac_als(&cluster(2), &x, 2, &opts).unwrap();
    // Values and support survive the roundtrip exactly.
    assert_eq!(x.nnz(), y.nnz());
    for e in x.entries() {
        assert!((y.get(e.i, e.j, e.k) - e.v).abs() < 1e-12);
    }
    assert!(rx.fit() <= 1.0);
}

#[test]
fn oom_failures_are_clean_and_reported() {
    // A cluster with a tiny capacity: Naive fails with an o.o.m.-classified
    // error, DRI completes on the same cluster settings.
    let x = random_tensor(&RandomTensorConfig::cubic(40, 400, 9));
    let tiny = || {
        Cluster::new(ClusterConfig {
            cluster_capacity_bytes: Some(200_000),
            ..ClusterConfig::with_machines(4)
        })
    };
    let naive_opts = AlsOptions {
        max_iters: 1,
        tol: 0.0,
        ..AlsOptions::with_variant(Variant::Naive)
    };
    let err = parafac_als(&tiny(), &x, 3, &naive_opts).unwrap_err();
    assert!(err.is_oom(), "naive should o.o.m.: {err}");

    let dri_opts = AlsOptions {
        max_iters: 1,
        tol: 0.0,
        ..AlsOptions::with_variant(Variant::Dri)
    };
    parafac_als(&tiny(), &x, 3, &dri_opts).unwrap();
}

#[test]
fn nway_parafac_on_four_way_logs() {
    // The intro's (src-ip, dst-ip, port, timestamp) shape: 4-way tensor.
    let mut t = DynTensor::new(vec![12, 12, 8, 6]);
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(10);
    for _ in 0..150 {
        let idx = [
            rng.gen_range(0..12),
            rng.gen_range(0..12),
            rng.gen_range(0..8),
            rng.gen_range(0..6),
        ];
        t.push(&idx, rng.gen_range(0.5..2.0)).unwrap();
    }
    let t = t.coalesce();
    let res = nway_parafac_als(&cluster(4), &t, 3, 5, 1e-6, 12).unwrap();
    assert_eq!(res.factors.len(), 4);
    for w in res.fits.windows(2) {
        assert!(w[1] >= w[0] - 1e-6);
    }
}

#[test]
fn dri_reads_input_fewer_times_than_drn() {
    // The disk-access claim of §III-B4: DRI reads X once per operation
    // (one fused job), DRN reads it per Hadamard job. Proxy: total map
    // input bytes across the decomposition.
    let x = random_tensor(&RandomTensorConfig::cubic(15, 150, 13));
    let opts = |v| AlsOptions {
        max_iters: 2,
        tol: 0.0,
        ..AlsOptions::with_variant(v)
    };
    let c_drn = cluster(4);
    parafac_als(&c_drn, &x, 4, &opts(Variant::Drn)).unwrap();
    let c_dri = cluster(4);
    parafac_als(&c_dri, &x, 4, &opts(Variant::Dri)).unwrap();
    let drn_reads = c_drn.metrics().total_map_input_bytes();
    let dri_reads = c_dri.metrics().total_map_input_bytes();
    assert!(
        dri_reads < drn_reads,
        "DRI read {dri_reads} B, DRN read {drn_reads} B"
    );
}

#[test]
fn metrics_expose_paper_cost_structure() {
    // Sanity on the public metrics API used by all experiments.
    let x = random_tensor(&RandomTensorConfig::cubic(10, 100, 14));
    let c = cluster(4);
    let opts = AlsOptions {
        max_iters: 1,
        tol: 0.0,
        ..AlsOptions::with_variant(Variant::Dri)
    };
    let res = parafac_als(&c, &x, 3, &opts).unwrap();
    let m = &res.metrics;
    assert_eq!(m.total_jobs(), 6); // 2 jobs x 3 modes x 1 sweep
    assert!(m.max_intermediate_records() > 0);
    assert!(m.total_sim_time_s() > 0.0);
    assert!(m.total_wall_time_s() > 0.0);
    for job in &m.jobs {
        assert!(!job.name.is_empty());
        assert!(job.map_output_bytes >= job.map_output_records); // >1 B/record
    }
}
