//! Integration tests for the beyond-the-paper extensions, exercised
//! through the facade exactly as a downstream user would.

// Test code: `unwrap` is the assertion (allowed by the workspace clippy
// policy only here).
#![allow(clippy::unwrap_used)]

use haten2::core::{nonneg_parafac, parafac_missing, parafac_via_compression};
use haten2::data::temporal::TemporalKb;
use haten2::prelude::*;

fn cluster() -> Cluster {
    Cluster::new(ClusterConfig::with_machines(4))
}

/// One shared low-rank ground truth for the extension tests.
fn ground_truth(dims: [u64; 3], rank: usize, seed: u64) -> (Mat, Mat, Mat, CooTensor3) {
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let a = Mat::random(dims[0] as usize, rank, &mut rng);
    let b = Mat::random(dims[1] as usize, rank, &mut rng);
    let c = Mat::random(dims[2] as usize, rank, &mut rng);
    let mut entries = Vec::new();
    for i in 0..dims[0] {
        for j in 0..dims[1] {
            for k in 0..dims[2] {
                let v: f64 = (0..rank)
                    .map(|r| a.get(i as usize, r) * b.get(j as usize, r) * c.get(k as usize, r))
                    .sum();
                entries.push(Entry3::new(i, j, k, v));
            }
        }
    }
    let x = CooTensor3::from_entries(dims, entries).unwrap();
    (a, b, c, x)
}

#[test]
fn all_three_parafac_flavors_agree_on_clean_data() {
    // On a fully observed nonnegative low-rank tensor, plain ALS, nonneg
    // multiplicative updates, and compression must all reach high fit.
    let (_, _, _, x) = ground_truth([7, 6, 5], 2, 301);
    let opts = AlsOptions {
        max_iters: 60,
        tol: 1e-10,
        ..AlsOptions::with_variant(Variant::Dri)
    };

    let plain = parafac_als(&cluster(), &x, 2, &opts).unwrap();
    assert!(plain.fit() > 0.999, "plain fit {}", plain.fit());

    let nn = nonneg_parafac(&cluster(), &x, 2, &opts).unwrap();
    assert!(nn.fit() > 0.95, "nonneg fit {}", nn.fit());

    let comp = parafac_via_compression(&cluster(), &x, 2, [3, 3, 3], &opts).unwrap();
    assert!(comp.fit() > 0.95, "compressed fit {}", comp.fit());

    // Cross-flavor predictions agree on sample cells.
    for e in x.entries().iter().step_by(40) {
        let p1 = plain.predict(e.i, e.j, e.k);
        let p2 = comp.predict(e.i, e.j, e.k);
        assert!((p1 - p2).abs() < 0.25 * e.v.abs().max(0.25), "{p1} vs {p2}");
    }
}

#[test]
fn completion_pipeline_through_cli_formats() {
    // Missing-value decomposition whose factors roundtrip through the
    // on-disk matrix format (what the CLI writes).
    let (_, _, _, full) = ground_truth([6, 6, 4], 2, 302);
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(303);
    let observed: Vec<Entry3> = full
        .entries()
        .iter()
        .filter(|_| rng.gen::<f64>() < 0.6)
        .copied()
        .collect();
    let x = CooTensor3::from_entries(full.dims(), observed).unwrap();

    let opts = AlsOptions {
        max_iters: 80,
        tol: 1e-12,
        ..AlsOptions::with_variant(Variant::Dri)
    };
    let em = parafac_missing(&cluster(), &x, 2, &opts).unwrap();
    // EM-ALS on 40%-missing data: high observed fit (exact recovery needs
    // more sweeps than worth spending in a test).
    assert!(em.fit() > 0.95, "fit = {}", em.fit());

    let dir = std::env::temp_dir().join("haten2_ext_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("A.mat");
    haten2::linalg::save_mat(&em.factors[0], &path).unwrap();
    let back = haten2::linalg::load_mat(&path).unwrap();
    assert!(back.approx_eq(&em.factors[0], 1e-12));
    std::fs::remove_file(path).ok();
}

#[test]
fn temporal_kb_four_way_pipeline() {
    let cfg = haten2::data::kb::KbConfig {
        n_subjects: 50,
        n_objects: 50,
        n_predicates: 8,
        n_concepts: 2,
        concept_entities: 7,
        concept_predicates: 2,
        triples_per_concept: 150,
        noise_triples: 50,
        literal_triples: 0,
        seed: 31,
        theme: haten2::data::kb::Theme::Music,
    };
    let tkb = TemporalKb::generate(&cfg, 10, 32);
    let x = tkb.to_tensor();
    assert_eq!(x.order(), 4);

    let res = nway_parafac_als(&cluster(), &x, 2, 8, 1e-6, 33).unwrap();
    assert_eq!(res.factors.len(), 4);
    assert!(res.fits.last().unwrap().is_finite());
    // 2 jobs per mode per sweep.
    assert_eq!(res.metrics.total_jobs() % 8, 0);
}

#[test]
fn nway_tucker_through_facade() {
    let mut t = DynTensor::new(vec![8, 7, 6, 5]);
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(34);
    for _ in 0..120 {
        let idx = [
            rng.gen_range(0..8),
            rng.gen_range(0..7),
            rng.gen_range(0..6),
            rng.gen_range(0..5),
        ];
        t.push(&idx, rng.gen_range(0.5..1.5)).unwrap();
    }
    let t = t.coalesce();
    let res = nway_tucker_als(&cluster(), &t, &[2, 2, 2, 2], 4, 0.0, 35).unwrap();
    assert_eq!(res.core.dims(), &[2, 2, 2, 2]);
    for f in &res.factors {
        assert!(f.gram().approx_eq(&Mat::identity(f.cols()), 1e-7));
    }
}
