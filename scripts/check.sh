#!/usr/bin/env bash
# Full pre-merge check: build, tests, lints, formatting.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> haten2-chaos smoke (fault-transparency + static/dynamic cross-validation)"
cargo run -p haten2-chaos --release --bin haten2-chaos -- --seeds 2 --seed-base 7

echo "==> dag_speedup smoke (scheduler equivalence + 2x simulated speedup on the Naive-Tucker sweep)"
cargo run -p haten2-bench --release --bin haten2-engine-bench -- --dag-smoke

echo "==> perf smoke (dag must beat sequential on this host; fault-free overhead <= 5%)"
cargo run -p haten2-bench --release --bin haten2-engine-bench -- --perf-smoke

echo "==> cargo xtask analyze (lint, paper table + ANALYSIS.md staleness gate, reject demo, determinism, JSON smoke)"
cargo xtask analyze

echo "==> cargo xtask lint --list-allows (every lint:allow must carry a justification)"
cargo xtask lint --list-allows

echo "All checks passed."
