#!/usr/bin/env bash
# Full pre-merge check: build, tests, lints, formatting.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo xtask lint"
cargo xtask lint

echo "==> haten2-chaos smoke (fault-transparency across all 8 pipelines)"
cargo run -p haten2-chaos --release --bin haten2-chaos -- --seeds 2 --seed-base 7

echo "==> haten2-analyze --verify-paper-table (regenerates ANALYSIS.md)"
cargo run -p haten2-analyze --release -- --verify-paper-table | tee ANALYSIS.md

echo "==> haten2-analyze --reject-demo"
cargo run -p haten2-analyze --release -- --reject-demo > /dev/null

echo "All checks passed."
