#!/usr/bin/env bash
# Full pre-merge check: build, tests, lints, formatting.
# Usage: scripts/check.sh [--sanitize | --durability-smoke | --skew-smoke]
#
# The default lane is stable-only and hermetic. `--sanitize` runs the
# dynamic-analysis lane instead: ThreadSanitizer over the concurrency
# tests (worker pool, arena, DAG scheduler) and Miri over the arena's
# unsafe core. Both need nightly tooling; each step is skipped with a
# notice when its toolchain component is absent, so the lane degrades
# gracefully on stable-only hosts.
#
# `--durability-smoke` runs the block-store durability lane: the
# backend-equivalence and restart suites (spill/OOM errors identical on
# both backends, durable runs bit-identical to memory), then the real
# kill-and-reexec drill — a victim process is aborted mid-sweep and a
# fresh process must resume from segments + manifest to a bit-identical
# model for one PARAFAC and one Tucker pipeline.
#
# `--skew-smoke` runs the heavy-key-skew lane: the rewritten
# (heavy-key-split) DRI MTTKRP is asserted bit-identical to the
# unrewritten Sequential oracle, the engine-level rewrite identity
# proptests run, and the bench gates the host makespan ratio of a
# power-law tensor vs a uniform tensor at equal nnz to <= 1.2x.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--skew-smoke" ]]; then
    echo "==> rewrite identity proptests (split+mergeparts bit-identical across modes and faults)"
    cargo test --release -p haten2-mapreduce --test rewrite_identity -q
    echo "==> chaos smoke with rewrites forced on (fault transparency of rewritten plans)"
    cargo test --release -p haten2-chaos --test smoke -q rewritten
    echo "==> skew gate (power-law/uniform host makespan ratio <= 1.2x, bit-identity oracle)"
    cargo run -p haten2-bench --release --bin haten2-engine-bench -- --skew-smoke
    echo "Skew smoke passed."
    exit 0
fi

if [[ "${1:-}" == "--durability-smoke" ]]; then
    echo "==> backend equivalence (spill/OOM parity + bit-exact durable roundtrips)"
    cargo test --release -p haten2-mapreduce --test backend_equivalence -q
    cargo test --release -p haten2-mapreduce --test durable_restart -q
    echo "==> durable pipeline equivalence (8 pipelines, unlimited + zero-budget)"
    cargo test --release -p haten2-chaos --test durable_equivalence -q
    echo "==> kill-and-reexec drill (crash mid-sweep, resume in a fresh process)"
    tmpdir="$(mktemp -d)"
    trap 'rm -rf "$tmpdir"' EXIT
    cargo run -p haten2-chaos --release --bin haten2-restart -- --dir "$tmpdir"
    echo "==> out-of-core smoke (spill-forced sweep, bit-identical to in-memory)"
    cargo run -p haten2-bench --release --bin haten2-blockstore-bench -- --smoke
    echo "Durability smoke passed."
    exit 0
fi

if [[ "${1:-}" == "--sanitize" ]]; then
    if ! command -v rustup >/dev/null 2>&1 || ! rustup toolchain list 2>/dev/null | grep -q '^nightly'; then
        echo "==> sanitize lane SKIPPED: no nightly toolchain installed (rustup toolchain install nightly)"
        exit 0
    fi
    host="$(rustc -vV | sed -n 's/^host: //p')"
    if rustup component list --toolchain nightly 2>/dev/null | grep -q 'rust-src.*(installed)'; then
        echo "==> TSan: pool/arena/sched tests (suppressions: scripts/tsan.supp)"
        # TSan only instruments our code unless std is rebuilt; harness-internal
        # reports are filtered by the documented suppressions file.
        RUSTFLAGS="-Zsanitizer=thread" \
        TSAN_OPTIONS="suppressions=$(pwd)/scripts/tsan.supp" \
        cargo +nightly test -Zbuild-std --target "$host" -p haten2-mapreduce \
            --features race-detect -- pool arena sched race
    else
        echo "==> TSan SKIPPED: rust-src not installed (rustup +nightly component add rust-src)"
    fi
    if rustup component list --toolchain nightly 2>/dev/null | grep -q 'miri.*(installed)'; then
        echo "==> Miri: arena unsafe-core tests"
        cargo +nightly miri test -p haten2-mapreduce arena
    else
        echo "==> Miri SKIPPED: component not installed (rustup +nightly component add miri)"
    fi
    echo "Sanitize lane passed."
    exit 0
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> haten2-chaos smoke (fault-transparency + static/dynamic cross-validation)"
cargo run -p haten2-chaos --release --bin haten2-chaos -- --seeds 2 --seed-base 7

echo "==> dag_speedup smoke (scheduler equivalence + 2x simulated speedup on the Naive-Tucker sweep)"
cargo run -p haten2-bench --release --bin haten2-engine-bench -- --dag-smoke

echo "==> perf smoke (dag must beat sequential on this host; fault-free overhead <= 5%)"
cargo run -p haten2-bench --release --bin haten2-engine-bench -- --perf-smoke

echo "==> cargo xtask analyze (lint, paper table + ANALYSIS.md staleness gate, reject demo, determinism, JSON smoke)"
cargo xtask analyze

echo "==> cargo xtask lint --list-allows (every lint:allow must carry a justification)"
cargo xtask lint --list-allows

echo "All checks passed."
