//! Network-intrusion anomaly detection — the paper's motivating example:
//! model connection logs as a (source-ip × target-ip × port) tensor,
//! decompose with PARAFAC, and read the dominant latent factors as traffic
//! patterns. A planted port-scan (one source hitting many ports on many
//! targets) surfaces as its own high-weight concept.
//!
//! Run with: `cargo run --release --example network_anomaly`

use haten2::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_SRC: u64 = 150;
const N_DST: u64 = 150;
const N_PORT: u64 = 64;
const SCANNER: u64 = 77;

fn synth_logs(seed: u64) -> CooTensor3 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut entries = Vec::new();

    // Normal traffic: each source talks to a few targets on 1–3 well-known
    // ports (web, mail, dns).
    let common_ports = [80u64, 443, 25, 53];
    for src in 0..N_SRC {
        for _ in 0..rng.gen_range(3..8) {
            let dst = rng.gen_range(0..N_DST);
            let port = common_ports[rng.gen_range(0..common_ports.len())] % N_PORT;
            entries.push(Entry3::new(src, dst, port, rng.gen_range(1.0..5.0)));
        }
    }

    // The anomaly: source SCANNER probes most targets across many ports.
    for dst in 0..N_DST {
        if dst % 2 == 0 {
            for port in 0..N_PORT {
                if port % 3 == 0 {
                    entries.push(Entry3::new(SCANNER, dst, port, 1.0));
                }
            }
        }
    }

    CooTensor3::from_entries([N_SRC, N_DST, N_PORT], entries).expect("indices in range")
}

fn main() {
    let x = synth_logs(7);
    println!(
        "connection-log tensor: {:?}, nnz = {} (scan injected from source ip #{SCANNER})\n",
        x.dims(),
        x.nnz()
    );

    let cluster = Cluster::new(ClusterConfig::with_machines(8));
    let opts = AlsOptions {
        max_iters: 25,
        tol: 1e-6,
        ..AlsOptions::with_variant(Variant::Dri)
    };
    let rank = 4;
    let res = parafac_als(&cluster, &x, rank, &opts).expect("decomposition failed");
    println!(
        "PARAFAC rank-{rank}: fit = {:.3}, {} sweeps\n",
        res.fit(),
        res.iterations
    );

    // Rank concepts by λ and show the top source ips of each.
    let mut order: Vec<usize> = (0..rank).collect();
    order.sort_by(|&a, &b| res.lambda[b].total_cmp(&res.lambda[a]));

    let mut scanner_flagged = false;
    for (c, &r) in order.iter().enumerate() {
        let a = &res.factors[0]; // source-ip factor
        let mut scores: Vec<(u64, f64)> = (0..N_SRC)
            .map(|i| (i, a.get(i as usize, r).abs()))
            .collect();
        scores.sort_by(|x, y| y.1.total_cmp(&x.1));
        let top: Vec<String> = scores
            .iter()
            .take(3)
            .map(|(i, s)| format!("ip{i} ({s:.2})"))
            .collect();

        // Dominance of the top source over the runner-up: a normal traffic
        // pattern is spread over many sources; a scan is one machine.
        let dominance = scores[0].1 / scores[1].1.max(1e-12);
        println!(
            "concept {} (λ = {:>7.2}): top sources = [{}]  dominance = {:.1}x",
            c + 1,
            res.lambda[r],
            top.join(", "),
            dominance
        );
        if scores[0].0 == SCANNER && dominance > 5.0 {
            println!(
                "  -> ANOMALY: single-source pattern dominated by ip{SCANNER} (the port scan)"
            );
            scanner_flagged = true;
        }
    }

    assert!(
        scanner_flagged,
        "the planted scanner must dominate one concept"
    );
    println!("\nThe scan shows up as a concept owned almost entirely by one source ip —");
    println!("exactly the kind of structure the paper mines from intrusion logs.");
}
