//! Knowledge-base concept discovery — the paper's §IV-C pipeline end to
//! end: generate a Freebase-music-like KB with planted concepts, run the
//! preprocessing (literal removal, frequency filtering, TF-IDF-style
//! reweighting), decompose with both PARAFAC and Tucker, and print the
//! discovered concepts with recovery scores against the planted truth.
//!
//! Run with: `cargo run --release --example concept_discovery`

use haten2::data::discovery::{
    factor_groups, parafac_concepts, recovery_precision, tucker_concepts,
};
use haten2::prelude::*;

fn main() {
    // ---- Generate + preprocess -------------------------------------------
    let kb = KnowledgeBase::freebase_music(2, 99);
    println!(
        "synthetic Freebase-music: {} subjects, {} objects, {} predicates, {} raw triples",
        kb.subjects.len(),
        kb.objects.len(),
        kb.predicates.len(),
        kb.triples.len()
    );
    let (x, report) = preprocess(&kb, &PreprocessConfig::default());
    println!(
        "preprocessing: {} literals removed, {} scarce, {} too-frequent -> tensor nnz = {}\n",
        report.literals_removed, report.scarce_removed, report.frequent_removed, report.output_nnz
    );

    let cluster = Cluster::new(ClusterConfig::with_machines(16));

    // ---- PARAFAC concepts (paper Table VI) --------------------------------
    let rank = 8;
    let opts = AlsOptions {
        max_iters: 20,
        tol: 1e-5,
        ..AlsOptions::with_variant(Variant::Dri)
    };
    let cp = parafac_als(&cluster, &x, rank, &opts).expect("PARAFAC failed");
    println!("== PARAFAC concepts (rank {rank}, fit {:.3}) ==", cp.fit());
    let concepts = parafac_concepts(
        &cp.factors,
        &cp.lambda,
        3,
        &kb.subjects,
        &kb.objects,
        &kb.predicates,
    );
    for (n, c) in concepts.iter().take(5).enumerate() {
        println!("concept {} (λ = {:.2})", n + 1, c.weight);
        println!("  subjects:  {}", names(&c.subjects));
        println!("  objects:   {}", names(&c.objects));
        println!("  relations: {}", names(&c.relations));
        // Score against the planted blocks.
        let mut best = ("-", 0.0f64);
        for planted in &kb.concepts {
            let planted_names: Vec<String> = planted
                .subjects
                .iter()
                .map(|&s| kb.subjects[s as usize].clone())
                .collect();
            let p = recovery_precision(&c.subjects, &planted_names);
            if p > best.1 {
                best = (&planted.name, p);
            }
        }
        println!(
            "  best planted match: {} (precision {:.2})\n",
            best.0, best.1
        );
    }

    // ---- Tucker groups and concepts (paper Tables VII/VIII) ---------------
    let tk = tucker_als(&cluster, &x, [6, 6, 6], &opts).expect("Tucker failed");
    println!("== Tucker factor groups (core 6x6x6, fit {:.3}) ==", tk.fit);
    for (label, mode, vocab) in [
        ("Subject", 0usize, &kb.subjects),
        ("Object", 1, &kb.objects),
        ("Relation", 2, &kb.predicates),
    ] {
        let groups = factor_groups(&tk.factors[mode], 3, vocab);
        for g in groups.iter().take(2) {
            println!("  {label}{}: {}", g.column + 1, names(&g.members));
        }
    }

    println!("\n== Tucker concepts (core-driven group triples) ==");
    let tcs = tucker_concepts(
        &tk.core,
        &tk.factors,
        3,
        3,
        &kb.subjects,
        &kb.objects,
        &kb.predicates,
    );
    for c in &tcs {
        println!(
            "concept (S{},O{},R{}) core={:.2}",
            c.groups.0 + 1,
            c.groups.1 + 1,
            c.groups.2 + 1,
            c.core_value
        );
        println!("  subjects:  {}", names(&c.subjects));
        println!("  relations: {}", names(&c.relations));
    }
    println!("\nNote how Tucker concepts can share groups across concepts — the paper's");
    println!("observation that Tucker finds overlapping group structure where PARAFAC's");
    println!("diagonal core ties each subject group to exactly one object/relation group.");
}

fn names(items: &[(String, f64)]) -> String {
    items
        .iter()
        .map(|(n, _)| n.as_str())
        .collect::<Vec<_>>()
        .join(" | ")
}
