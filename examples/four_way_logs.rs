//! The paper's opening example, verbatim: "network intrusion logs, where we
//! record data of the form (source-ip, target-ip, port-number, timestamp)"
//! — a **4-way** tensor, decomposed with the N-way PARAFAC and N-way Tucker
//! generalizations of the HaTen2 framework (two MapReduce jobs per mode,
//! like 3-way DRI).
//!
//! Run with: `cargo run --release --example four_way_logs`

use haten2::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_SRC: u64 = 60;
const N_DST: u64 = 60;
const N_PORT: u64 = 32;
const N_HOUR: u64 = 24;

fn main() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut logs = DynTensor::new(vec![N_SRC, N_DST, N_PORT, N_HOUR]);

    // Daytime web traffic: many sources, ports 80/443, hours 8..18.
    for _ in 0..1500 {
        let idx = [
            rng.gen_range(0..N_SRC),
            rng.gen_range(0..N_DST),
            if rng.gen_bool(0.5) {
                80 % N_PORT
            } else {
                443 % N_PORT
            },
            rng.gen_range(8..18),
        ];
        logs.push(&idx, rng.gen_range(1.0..3.0))
            .expect("index within dims");
    }
    // Nightly backup job: one source, one target, one port, hours 1..4.
    for _ in 0..600 {
        let idx = [7, 13, 22 % N_PORT, rng.gen_range(1..4)];
        logs.push(&idx, rng.gen_range(4.0..6.0))
            .expect("index within dims");
    }
    let logs = logs.coalesce();
    println!(
        "4-way connection log tensor {:?}: {} nonzeros\n",
        logs.dims(),
        logs.nnz()
    );

    let cluster = Cluster::new(ClusterConfig::with_machines(8));

    // ---- N-way PARAFAC --------------------------------------------------
    let rank = 3;
    let cp = nway_parafac_als(&cluster, &logs, rank, 15, 1e-6, 11).expect("nway parafac");
    println!(
        "N-way PARAFAC rank {rank}: fit = {:.3}",
        cp.fits.last().expect("ALS records at least one fit")
    );
    println!(
        "  {} MapReduce jobs (2 per mode per sweep — the DRI framework generalizes)",
        cp.metrics.total_jobs()
    );

    // Identify the backup-job concept: the factor column whose hour profile
    // concentrates at night.
    let hour_factor = &cp.factors[3];
    for r in 0..rank {
        let night: f64 = (1..4).map(|h| hour_factor.get(h, r).abs()).sum();
        let total: f64 = (0..N_HOUR as usize)
            .map(|h| hour_factor.get(h, r).abs())
            .sum();
        let share = night / total.max(1e-12);
        let label = if share > 0.8 {
            "  <- the nightly backup job"
        } else {
            ""
        };
        println!("  concept {}: night-hour share {:.2}{label}", r + 1, share);
    }

    // ---- N-way Tucker ----------------------------------------------------
    let tk = nway_tucker_als(&cluster, &logs, &[3, 3, 3, 3], 6, 1e-6, 12).expect("nway tucker");
    println!("\nN-way Tucker core (3,3,3,3): fit = {:.3}", tk.fit);
    println!("  core nonzeros: {}", tk.core.nnz());
    println!(
        "  factors orthonormal: {}",
        tk.factors
            .iter()
            .all(|f| f.gram().approx_eq(&Mat::identity(f.cols()), 1e-6))
    );
}
