//! Machine scalability (the paper's Figure 8): run the same HaTen2-DRI
//! decomposition on clusters of 10–40 simulated machines and report the
//! scale-up T10/TM. Near-linear at first, flattening as fixed per-job
//! overheads dominate — exactly the paper's curve.
//!
//! Run with: `cargo run --release --example machine_scaling`

use haten2::prelude::*;

fn main() {
    let kb = KnowledgeBase::nell(2, 3);
    let (x, _) = preprocess(&kb, &PreprocessConfig::default());
    println!("NELL stand-in: {:?}, nnz = {}\n", x.dims(), x.nnz());

    let opts = AlsOptions {
        max_iters: 2,
        tol: 0.0,
        ..AlsOptions::with_variant(Variant::Dri)
    };
    let mut t10 = None;

    println!("machines  sim time (s)  scale-up T10/TM  ideal");
    for machines in [10usize, 20, 30, 40] {
        // Scaled cluster model: throughput and per-job overhead shrunk with
        // the data so the overhead/data mix matches the paper's regime.
        let cluster = Cluster::new(ClusterConfig {
            machines,
            per_job_overhead_s: 2.0,
            map_bytes_per_s: 100.0e3,
            shuffle_bytes_per_s: 50.0e3,
            reduce_bytes_per_s: 100.0e3,
            ..ClusterConfig::default()
        });
        tucker_als(&cluster, &x, [8, 8, 8], &opts).expect("tucker failed");
        let t = cluster.metrics().total_sim_time_s();
        let base = *t10.get_or_insert(t);
        println!(
            "{machines:>8}  {t:>12.1}  {:>15.2}  {:>5.1}",
            base / t,
            machines as f64 / 10.0
        );
    }

    println!("\nThe scale-up flattens below the ideal line because each MapReduce job");
    println!("pays a fixed overhead (JVM start, synchronization) that more machines");
    println!("cannot amortize — which is exactly why HaTen2-DRI's job-count reduction");
    println!("(2 jobs per operation instead of Q+R+1) matters.");
}
