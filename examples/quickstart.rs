//! Quickstart: decompose a small sparse tensor with both PARAFAC and
//! Tucker on a simulated cluster, and inspect the MapReduce metrics that
//! the paper's cost analysis (Tables III/IV) is about.
//!
//! Run with: `cargo run --release --example quickstart`

use haten2::prelude::*;

fn main() {
    // A random sparse 200x200x200 tensor with 2000 nonzeros — the shape of
    // the paper's scalability workloads, scaled to a laptop.
    let x = random_tensor(&RandomTensorConfig::cubic(200, 2000, 42));
    println!(
        "input tensor: {:?}, nnz = {}, density = {:.2e}\n",
        x.dims(),
        x.nnz(),
        x.density()
    );

    // A simulated 16-machine cluster (the paper uses 40 Hadoop nodes).
    let cluster = Cluster::new(ClusterConfig::with_machines(16));

    // ---- PARAFAC (rank 5) with HaTen2-DRI --------------------------------
    let opts = AlsOptions {
        max_iters: 10,
        ..AlsOptions::with_variant(Variant::Dri)
    };
    let cp = parafac_als(&cluster, &x, 5, &opts).expect("PARAFAC failed");
    println!(
        "PARAFAC-DRI: fit = {:.4} after {} sweeps",
        cp.fit(),
        cp.iterations
    );
    println!(
        "  lambda = {:?}",
        cp.lambda
            .iter()
            .map(|l| (l * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!(
        "  MapReduce: {} jobs, max intermediate {} records, {:.1} simulated s\n",
        cp.metrics.total_jobs(),
        cp.metrics.max_intermediate_records(),
        cp.metrics.total_sim_time_s()
    );

    // ---- Tucker (core 5x5x5) with HaTen2-DRI -----------------------------
    let tk = tucker_als(&cluster, &x, [5, 5, 5], &opts).expect("Tucker failed");
    println!(
        "Tucker-DRI: fit = {:.4} after {} sweeps",
        tk.fit, tk.iterations
    );
    println!(
        "  core norm trajectory = {:?}",
        tk.core_norms
            .iter()
            .map(|n| (n * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );
    println!(
        "  MapReduce: {} jobs, max intermediate {} records\n",
        tk.metrics.total_jobs(),
        tk.metrics.max_intermediate_records()
    );

    // ---- Why DRI? Compare the variants' job counts on one MTTKRP ---------
    println!("one MTTKRP (rank 5) per variant:");
    for variant in Variant::ALL {
        let c = Cluster::new(ClusterConfig::with_machines(16));
        let f1 = Mat::random(200, 5, &mut rand::rngs::mock::StepRng::new(1, 7));
        let f2 = Mat::random(200, 5, &mut rand::rngs::mock::StepRng::new(2, 11));
        match haten2::core::parafac::mttkrp(&c, variant, &x, 0, &f1, &f2) {
            Ok(_) => println!(
                "  {:<14} {:>3} jobs, max intermediate {:>8} records",
                variant.name(),
                c.metrics().total_jobs(),
                c.metrics().max_intermediate_records()
            ),
            Err(e) => println!("  {:<14} failed: {e}", variant.name()),
        }
    }
}
