//! Tensor completion and nonnegative factorization — the two extensions the
//! paper's conclusion names as future work, both running on the same
//! HaTen2-DRI distributed kernels.
//!
//! Scenario: a (user × item × time) ratings tensor where most cells were
//! never observed. EM-ALS PARAFAC (`parafac_missing`) treats absent cells
//! as *missing* rather than zero and completes them; the nonnegative
//! variant (`nonneg_parafac`) constrains the parts to be additive.
//!
//! Run with: `cargo run --release --example tensor_completion`

use haten2::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Ground truth: a nonnegative rank-3 (user × item × time) tensor.
    let (users, items, weeks) = (40u64, 30u64, 8u64);
    let rank = 3;
    let mut rng = StdRng::seed_from_u64(2025);
    let u = Mat::random(users as usize, rank, &mut rng);
    let v = Mat::random(items as usize, rank, &mut rng);
    let w = Mat::random(weeks as usize, rank, &mut rng);
    let truth = |i: u64, j: u64, k: u64| -> f64 {
        (0..rank)
            .map(|r| u.get(i as usize, r) * v.get(j as usize, r) * w.get(k as usize, r))
            .sum()
    };

    // Observe only 20% of the cells.
    let mut observed = Vec::new();
    let mut held_out = Vec::new();
    for i in 0..users {
        for j in 0..items {
            for k in 0..weeks {
                let e = Entry3::new(i, j, k, truth(i, j, k));
                if rng.gen::<f64>() < 0.2 {
                    observed.push(e);
                } else if held_out.len() < 2000 {
                    held_out.push(e);
                }
            }
        }
    }
    let x = CooTensor3::from_entries([users, items, weeks], observed)
        .expect("generated entries are in-bounds");
    println!(
        "ratings tensor {:?}: {} observed cells ({:.0}%), {} held out for evaluation\n",
        x.dims(),
        x.nnz(),
        100.0 * x.nnz() as f64 / (users * items * weeks) as f64,
        held_out.len()
    );

    let cluster = Cluster::new(ClusterConfig::with_machines(8));
    let opts = AlsOptions {
        max_iters: 40,
        tol: 1e-8,
        ..AlsOptions::with_variant(Variant::Dri)
    };

    // ---- EM-ALS completion ------------------------------------------------
    let em = parafac_missing(&cluster, &x, rank, &opts).expect("completion failed");
    let rel_err = |pred: &dyn Fn(u64, u64, u64) -> f64| {
        let err: f64 = held_out
            .iter()
            .map(|e| (pred(e.i, e.j, e.k) - e.v).powi(2))
            .sum::<f64>()
            .sqrt();
        let norm: f64 = held_out.iter().map(|e| e.v * e.v).sum::<f64>().sqrt();
        err / norm
    };
    println!("EM-ALS completion:  observed fit = {:.4}", em.fit());
    println!(
        "  held-out relative error = {:.4}",
        rel_err(&|i, j, k| em.predict(i, j, k))
    );

    // ---- Zero-filling comparison (what you get without missing-value
    //      support: absent cells treated as zeros) -------------------------
    let zf = parafac_als(&cluster, &x, rank, &opts).expect("plain ALS failed");
    println!("zero-filled ALS:    observed fit = {:.4}", zf.fit());
    println!(
        "  held-out relative error = {:.4}",
        rel_err(&|i, j, k| zf.predict(i, j, k))
    );

    // ---- Nonnegative factorization ---------------------------------------
    let nn = nonneg_parafac(&cluster, &x, rank, &opts).expect("nonneg failed");
    let all_nonneg = nn
        .factors
        .iter()
        .all(|f| f.data().iter().all(|&v| v >= 0.0));
    println!(
        "\nnonnegative PARAFAC: fit = {:.4}, factors all >= 0: {all_nonneg}",
        nn.fit()
    );

    println!(
        "\nall three ran on the same distributed DRI kernels: {} MapReduce jobs total",
        cluster.metrics().total_jobs()
    );
}
