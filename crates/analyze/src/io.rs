//! Durable I/O pass: symbolic block-store traffic floors per pipeline.
//!
//! When the input tensor lives in the durable block store (the HDFS
//! placement HaTen2 assumes) and the driver's memory budget is smaller
//! than the tensor, every pass a job DAG takes over the big input is a
//! compulsory read from segment files — no cache can serve it. The floor
//! for one ALS sweep is therefore
//!
//! ```text
//! durable bytes read ≥ (passes over X) · nnz · record_bytes
//! ```
//!
//! with `passes` derived statically from the registered
//! [`JobGraph::big_input_reads`] and `record_bytes` measured from the
//! *actual* durable encoding of one tensor record (the
//! [`haten2_mapreduce::Persist`] wire format for `(Ix4, f64)`), not a
//! hand-maintained constant. The out-of-core optimum is a single pass —
//! the compulsory-miss bound: under `M < nnz · record_bytes`, at least
//! the whole tensor must stream in once per sweep. A pipeline's **read
//! amplification** is its passes over that optimum; making it 1 is
//! exactly HaTen2-DRI's §III-B4 job-integration saving, so the table
//! below is the paper's qualitative claim turned into a checkable
//! inequality. `crates/bench` measures the runtime counterpart from
//! [`haten2_mapreduce::Dfs::durable_dataset_io`] and the spill gauges,
//! and `BENCH_blockstore.json` records both so the symbolic floor and
//! the measured traffic can be cross-checked.

use haten2_core::{plan_for, Decomp, Ix4, Variant};
use haten2_mapreduce::{encode_records, SymExpr};

/// Durable wire width of one COO tensor record, measured by encoding one
/// `(Ix4, f64)` through the engine's `Persist` format.
pub fn tensor_record_bytes() -> u64 {
    let one: [(Ix4, f64); 1] = [((0, 0, 0, 0), 0.0)];
    encode_records(&one).len() as u64
}

/// Symbolic durable-read floor for one pipeline sweep.
#[derive(Debug, Clone)]
pub struct DurableIoRow {
    /// Decomposition.
    pub decomp: Decomp,
    /// Variant.
    pub variant: Variant,
    /// Registered graph name.
    pub graph: String,
    /// Passes the DAG takes over the big input per sweep
    /// ([`haten2_mapreduce::JobGraph::big_input_reads`]).
    pub passes: SymExpr,
    /// Durable bytes those passes must stream per sweep:
    /// `passes · nnz · record_bytes`.
    pub bytes_per_sweep: SymExpr,
    /// The compulsory-miss optimum: one full-tensor read,
    /// `nnz · record_bytes`.
    pub floor_bytes: SymExpr,
}

impl DurableIoRow {
    /// Read amplification over the single-pass optimum (= `passes`).
    pub fn amplification(&self) -> &SymExpr {
        &self.passes
    }
}

/// The durable I/O table: one row per registered pipeline.
pub fn durable_io_table() -> Vec<DurableIoRow> {
    let rec = SymExpr::c(tensor_record_bytes());
    let tensor_bytes = SymExpr::nnz() * rec;
    let mut rows = Vec::new();
    for decomp in Decomp::ALL {
        for variant in Variant::ALL {
            let graph = plan_for(decomp, variant);
            let passes = graph.big_input_reads();
            rows.push(DurableIoRow {
                decomp,
                variant,
                graph: graph.name.clone(),
                bytes_per_sweep: passes.clone() * tensor_bytes.clone(),
                floor_bytes: tensor_bytes.clone(),
                passes,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::regime_envs;

    #[test]
    fn record_bytes_match_the_wire_format() {
        // Ix4 = 4 × u64 = 32 bytes, value f64 = 8 bytes, LE fixed-width.
        assert_eq!(tensor_record_bytes(), 40);
    }

    #[test]
    fn every_pipeline_reads_the_tensor_at_least_once_per_sweep() {
        let envs = regime_envs();
        for row in durable_io_table() {
            for env in &envs {
                let passes = row.passes.eval(env);
                assert!(passes >= 1, "{}: zero passes over the big input", row.graph);
                assert_eq!(
                    row.bytes_per_sweep.eval(env),
                    passes * row.floor_bytes.eval(env),
                    "{}: bytes/sweep must be passes × floor",
                    row.graph
                );
            }
        }
    }

    /// DRI's job integration is the minimum-amplification variant: on
    /// every regime its passes over X are ≤ every other variant's — the
    /// statically-checked form of the paper's §III-B4 claim.
    #[test]
    fn dri_attains_minimal_read_amplification() {
        let envs = regime_envs();
        let rows = durable_io_table();
        for decomp in Decomp::ALL {
            let dri = rows
                .iter()
                .find(|r| r.decomp == decomp && r.variant == Variant::Dri)
                .unwrap();
            for other in rows.iter().filter(|r| r.decomp == decomp) {
                for env in &envs {
                    assert!(
                        dri.passes.eval(env) <= other.passes.eval(env),
                        "{}: DRI amplification above {}",
                        dri.graph,
                        other.graph
                    );
                }
            }
        }
    }
}
