//! Static recoverability: prove a plan survives `k` faults before any job
//! runs.
//!
//! The runtime fault subsystem (PR 3) recovers from dataset loss by
//! lineage re-derivation and from driver crashes by sweep checkpoints —
//! but until now only the randomized chaos sweeps *sampled* that this
//! works. This pass proves it from the plan alone. Given a [`JobGraph`],
//! the pipeline's declared [`RecoverySpec`] (which datasets carry lineage
//! recipes, what the checkpoint policy is), and a symbolic fault budget
//! `k` ([`Var::Faults`]), it certifies:
//!
//! 1. **Lineage closure** — every dataset any job reads is a durable
//!    driver input or has a covered producer chain rooted at durable
//!    inputs. A read outside that closure is
//!    [`Violation::UnrecoverableDataset`].
//! 2. **Bounded, cycle-free re-derivation** — the producer chain of every
//!    dataset is acyclic ([`Violation::LineageCycle`]) and no deeper than
//!    the runtime's recursion guard
//!    [`haten2_mapreduce::MAX_RECOVERY_DEPTH`]
//!    ([`Violation::RederivationTooDeep`]), so a recovery the static pass
//!    admits can never be aborted by the dynamic depth guard.
//! 3. **Checkpoint coverage** — when the spec declares an iterative
//!    driver, every completed ALS sweep must be covered by a checkpoint
//!    (`every == 1`), so a `kill_at_job` crash resumes without recomputing
//!    finished sweeps ([`Violation::CheckpointGap`]).
//! 4. **A symbolic worst-case recovery bound** — `k · max_ds chain(ds)`
//!    where `chain(ds)` conservatively re-derives `ds` and its whole
//!    producer chain; the report prints it next to the paper's job counts.

use crate::Violation;
use haten2_mapreduce::{JobGraph, RecoverySpec, SymExpr, MAX_RECOVERY_DEPTH};
use std::collections::BTreeMap;

/// The symbolic worst-case recovery cost of one certified plan.
#[derive(Debug, Clone)]
pub struct RecoveryBound {
    /// Records recomputed by the costliest single re-derivation chain: a
    /// symbolic `max` over every distinct chain, because which chain
    /// dominates depends on the sizing (chains cross as dims/ranks vary).
    pub per_fault_worst: SymExpr,
    /// Total worst-case recovery records under the fault budget:
    /// `k · per_fault_worst`.
    pub total: SymExpr,
    /// Deepest re-derivation chain any single loss can trigger (jobs
    /// re-run transitively). Always `≤` [`MAX_RECOVERY_DEPTH`] when the
    /// plan certifies.
    pub max_depth: usize,
}

/// Outcome of certifying one plan: violations (empty = certified) plus the
/// recovery bound derived for it.
#[derive(Debug, Clone)]
pub struct Certification {
    /// Graph the verdict is about.
    pub graph: String,
    /// Defects found; the plan is certified iff this is empty.
    pub violations: Vec<Violation>,
    /// Worst-case recovery bound (meaningful when certified).
    pub bound: RecoveryBound,
}

impl Certification {
    /// `true` when the plan is statically recoverable.
    pub fn certified(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Chain state during the depth-first closure walk.
#[derive(Clone, Copy, PartialEq)]
enum Walk {
    InProgress,
    Done(usize),
}

/// Re-derivation depth of `ds`'s producer chain (1 for a dataset whose
/// producer reads only durable inputs), or an error naming the defect.
/// `None` depth in the memo marks "not a produced dataset". (The error is
/// boxed: `Violation` is wide and the happy path is a bare `usize`.)
fn chain_depth(
    graph: &JobGraph,
    spec: &RecoverySpec,
    ds: &str,
    memo: &mut BTreeMap<String, Walk>,
) -> Result<usize, Box<Violation>> {
    if graph.inputs.iter().any(|d| d == ds) {
        return Ok(0);
    }
    match memo.get(ds) {
        Some(Walk::Done(d)) => return Ok(*d),
        Some(Walk::InProgress) => {
            return Err(Box::new(Violation::LineageCycle {
                graph: graph.name.clone(),
                dataset: ds.to_string(),
            }));
        }
        None => {}
    }
    let Some(producer) = graph.producer_job(ds) else {
        return Err(Box::new(Violation::UnrecoverableDataset {
            dataset: ds.to_string(),
            reader: String::new(),
            cause: "no producing job and not a driver input".to_string(),
        }));
    };
    if !spec.covered.contains(ds) {
        return Err(Box::new(Violation::UnrecoverableDataset {
            dataset: ds.to_string(),
            reader: producer.name.clone(),
            cause: "no lineage recipe registered for it".to_string(),
        }));
    }
    memo.insert(ds.to_string(), Walk::InProgress);
    let mut deepest = 0usize;
    for r in &producer.reads {
        deepest = deepest.max(chain_depth(graph, spec, r, memo)?);
    }
    let depth = deepest + 1;
    memo.insert(ds.to_string(), Walk::Done(depth));
    Ok(depth)
}

/// Symbolic records recomputed to re-derive `ds`: the producer's full
/// output (`count · records` — every instance of the template re-runs)
/// plus, conservatively, the chains of all its non-durable inputs. This
/// over-counts when two inputs share a chain prefix — deliberately: the
/// bound must hold for any loss interleaving, and the runtime's one-shot
/// recovery can itself cascade.
fn chain_cost(graph: &JobGraph, ds: &str) -> SymExpr {
    let Some(producer) = graph.producer_job(ds) else {
        return SymExpr::c(0);
    };
    // `1·records` reads as noise in the report, and single-instance
    // templates are the common case.
    let mut cost = match &producer.count {
        SymExpr::Const(1) => producer.records.clone(),
        c => c.clone() * producer.records.clone(),
    };
    for r in &producer.reads {
        if !graph.inputs.iter().any(|d| d == r) {
            cost = cost + chain_cost(graph, r);
        }
    }
    cost
}

/// Certify one plan under its declared recovery spec and the symbolic
/// fault budget `k`.
pub fn certify(graph: &JobGraph, spec: &RecoverySpec) -> Certification {
    let mut violations = Vec::new();
    let mut memo: BTreeMap<String, Walk> = BTreeMap::new();
    let mut max_depth = 0usize;
    // Distinct chain costs, deduplicated syntactically (the same dataset is
    // read by several jobs, and different datasets can share a cost shape).
    let mut chains: Vec<SymExpr> = Vec::new();
    let mut chain_shapes: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();

    for job in &graph.jobs {
        for ds in &job.reads {
            match chain_depth(graph, spec, ds, &mut memo) {
                Ok(depth) => {
                    max_depth = max_depth.max(depth);
                    if depth > MAX_RECOVERY_DEPTH {
                        let v = Violation::RederivationTooDeep {
                            dataset: ds.clone(),
                            depth,
                            bound: MAX_RECOVERY_DEPTH,
                        };
                        if !violations.contains(&v) {
                            violations.push(v);
                        }
                    }
                    if depth > 0 {
                        let cost = chain_cost(graph, ds);
                        if chain_shapes.insert(cost.to_string()) {
                            chains.push(cost);
                        }
                    }
                }
                Err(v) => {
                    let mut v = *v;
                    // Attribute the defect to the job whose read hits it.
                    if let Violation::UnrecoverableDataset { reader, .. } = &mut v {
                        *reader = job.name.clone();
                    }
                    if !violations.contains(&v) {
                        violations.push(v);
                    }
                }
            }
        }
    }

    // A final output is never read by a later job but can still be lost
    // before the driver consumes it; its re-derivation chain bounds
    // recovery the same way. Datasets some job reads were already walked
    // above (with better blame attribution), so only true outputs remain.
    let read_somewhere: std::collections::BTreeSet<&String> =
        graph.jobs.iter().flat_map(|j| j.reads.iter()).collect();
    for ds in graph.produced_datasets() {
        if read_somewhere.contains(&ds) {
            continue;
        }
        match chain_depth(graph, spec, &ds, &mut memo) {
            Ok(depth) => {
                max_depth = max_depth.max(depth);
                if depth > MAX_RECOVERY_DEPTH {
                    let v = Violation::RederivationTooDeep {
                        dataset: ds.clone(),
                        depth,
                        bound: MAX_RECOVERY_DEPTH,
                    };
                    if !violations.contains(&v) {
                        violations.push(v);
                    }
                }
                if depth > 0 {
                    let cost = chain_cost(graph, &ds);
                    if chain_shapes.insert(cost.to_string()) {
                        chains.push(cost);
                    }
                }
            }
            Err(v) => {
                if !violations.contains(&*v) {
                    violations.push(*v);
                }
            }
        }
    }

    // Checkpoint coverage: an iterative driver must checkpoint every
    // completed sweep, or a crash in sweep s+1 recomputes sweep s.
    if let Some(cp) = &spec.checkpoint {
        if cp.every == 0 {
            violations.push(Violation::CheckpointGap {
                graph: graph.name.clone(),
                sweep: 1,
            });
        } else if let Some(gap) = (1..=cp.sweeps).find(|s| s % cp.every != 0) {
            violations.push(Violation::CheckpointGap {
                graph: graph.name.clone(),
                sweep: gap,
            });
        }
    }

    // No single chain is worst for every sizing — two chains cross as
    // dims/ranks vary — so the sound per-fault bound is the symbolic max
    // over all of them.
    let per_fault_worst = chains
        .into_iter()
        .reduce(SymExpr::max)
        .unwrap_or_else(|| SymExpr::c(0));
    let total = SymExpr::faults() * per_fault_worst.clone();
    Certification {
        graph: graph.name.clone(),
        violations,
        bound: RecoveryBound {
            per_fault_worst,
            total,
            max_depth,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haten2_core::{plan_for, recovery_for, Decomp, Variant};
    use haten2_mapreduce::{Env, JobGraph, PlanJob};

    fn env() -> Env {
        Env {
            nnz: 1000,
            dim_i: 10,
            dim_j: 12,
            dim_k: 14,
            rank_q: 2,
            rank_r: 3,
            machines: 4,
            faults: 1,
            reducer_memory: 1 << 20,
        }
    }

    #[test]
    fn all_eight_pipelines_certify_under_single_fault_budget() {
        for decomp in Decomp::ALL {
            for variant in Variant::ALL {
                let g = plan_for(decomp, variant);
                let cert = certify(&g, &recovery_for(decomp, variant, 3));
                assert!(
                    cert.certified(),
                    "{decomp} {variant}: {:?}",
                    cert.violations
                );
                assert!(cert.bound.max_depth >= 1);
                assert!(cert.bound.max_depth <= haten2_mapreduce::MAX_RECOVERY_DEPTH);
                // Under one fault the bound is at least one full job re-run.
                assert!(cert.bound.total.eval(&env()) > 0);
            }
        }
    }

    #[test]
    fn lineage_gap_is_rejected_naming_the_dataset() {
        let g = plan_for(Decomp::Tucker, Variant::Dri);
        let mut spec = recovery_for(Decomp::Tucker, Variant::Dri, 0);
        spec.covered.remove("t_prime");
        let cert = certify(&g, &spec);
        assert!(!cert.certified());
        assert!(cert.violations.iter().any(|v| matches!(
            v,
            Violation::UnrecoverableDataset { dataset, .. } if dataset == "t_prime"
        )));
    }

    #[test]
    fn checkpoint_gap_is_rejected_naming_the_sweep() {
        let g = plan_for(Decomp::Parafac, Variant::Dri);
        let mut spec = recovery_for(Decomp::Parafac, Variant::Dri, 4);
        // Checkpoint only every 2nd sweep: sweep 1 is uncovered.
        spec.checkpoint = Some(haten2_mapreduce::CheckpointPolicy {
            every: 2,
            sweeps: 4,
        });
        let cert = certify(&g, &spec);
        assert!(cert.violations.iter().any(|v| matches!(
            v,
            Violation::CheckpointGap { sweep, .. } if *sweep == 1
        )));
    }

    #[test]
    fn cycle_is_detected() {
        // a reads b, b reads a — both covered, but the chain never roots.
        let g = JobGraph::new("cyclic", [])
            .job(PlanJob::new("mk-a").reads(["b"]).writes(["a"]))
            .job(PlanJob::new("mk-b").reads(["a"]).writes(["b"]));
        let spec = haten2_mapreduce::RecoverySpec::new().cover("a").cover("b");
        let cert = certify(&g, &spec);
        assert!(cert
            .violations
            .iter()
            .any(|v| matches!(v, Violation::LineageCycle { .. })));
    }

    #[test]
    fn deep_chain_exceeding_runtime_guard_is_rejected() {
        let mut g = JobGraph::new("deep", ["d0"]);
        let mut spec = haten2_mapreduce::RecoverySpec::new();
        let depth = MAX_RECOVERY_DEPTH + 2;
        for i in 0..depth {
            let prev = format!("d{i}");
            let next = format!("d{}", i + 1);
            g = g.job(
                PlanJob::new(format!("step-{i}"))
                    .reads([prev.as_str()])
                    .writes([next.as_str()]),
            );
            spec = spec.cover(&next);
        }
        g = g.job(
            PlanJob::new("consume")
                .reads([format!("d{depth}").as_str()])
                .writes(["out"]),
        );
        spec = spec.cover("out");
        let cert = certify(&g, &spec);
        assert!(cert.violations.iter().any(|v| matches!(
            v,
            Violation::RederivationTooDeep { depth: d, bound, .. }
                if *d > *bound
        )));
    }

    #[test]
    fn bound_scales_linearly_in_fault_budget() {
        let g = plan_for(Decomp::Tucker, Variant::Drn);
        let cert = certify(&g, &recovery_for(Decomp::Tucker, Variant::Drn, 0));
        let e1 = env();
        let mut e3 = env();
        e3.faults = 3;
        assert_eq!(cert.bound.total.eval(&e3), 3 * cert.bound.total.eval(&e1));
    }
}
