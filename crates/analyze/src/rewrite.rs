//! Rewrite certification: plan transforms that must preserve meaning and
//! communication budgets.
//!
//! An optimizer that rewrites a [`JobGraph`] (splitting a hot reducer,
//! fusing jobs, re-sharding a merge) can silently break everything the
//! other passes certified: dataset wiring, race-freedom under the
//! declared-dependency scheduler, and the communication volume the
//! [`crate::comm`] pass holds to its lower bound. This module makes
//! rewrites *certifiable*: a [`PlanRewrite`] transforms a graph **and
//! declares** its worst-case shuffle inflation; [`certify_rewrite`] then
//! re-checks the output from scratch —
//!
//! 1. **dataflow sanity** — the rewritten graph goes back through
//!    [`crate::dataflow::check_dataflow`]; any wiring defect (dangling
//!    read, lost write, unused dataset) rejects the rewrite;
//! 2. **race-freedom** — the rewritten templates are expanded into
//!    per-instance [`EffectModel`]s (plan declarations are taken as both
//!    declared and inferred effects: the rewrite output has no source
//!    text to scan yet, so it is held to its own declarations) and run
//!    through the same pairwise rules and adversarial serializability
//!    replay as [`crate::races`];
//! 3. **volume non-inflation** — the rewritten graph's
//!    [`JobGraph::shuffle_bytes`] must stay within the rewrite's declared
//!    factor of the original on every regime environment, so a "heavy
//!    key" mitigation cannot smuggle in an asymptotic communication
//!    regression.
//!
//! The first real instance is [`HeavyKeySplit`] — the classic two-phase
//! aggregation for skewed reduce keys: the pipeline's final merge job is
//! split into `M` map-side partial-combine jobs (each shuffling `1/M` of
//! the records into a partial output shard) followed by a cheap merge of
//! the `M` partials. Two seeded mutants ([`run_rewrite_rejections`])
//! prove the certifier has teeth: a split that forgets the combine step
//! (inflating volume `M`-fold) and a split whose merge reads a typo'd
//! dataset are both rejected by name.

use crate::races::serializability_check;
use crate::{dataflow, Violation};
use haten2_mapreduce::{Env, JobGraph};
use haten2_srcscan::effects::{check_model, EffectModel};

/// The rewrite rules this pass can fire, with rationale — the fixture
/// corpus in `crates/xtask/tests/fixtures/` carries one known-bad plan
/// per rule.
pub const REWRITE_RULES: &[(&str, &str)] = &[
    (
        "rewrite-volume-inflation",
        "a rewrite's output graph must keep total shuffle volume within the factor the \
         rewrite declares, on every regime environment",
    ),
    (
        "rewrite-dataflow-broken",
        "a rewrite's output graph must re-pass dataflow and race certification from \
         scratch — a transform that breaks wiring or ordering is rejected whole",
    ),
];

/// A certifiable plan transform: produces a rewritten graph and declares
/// the worst-case shuffle inflation the transform is allowed to cost.
pub trait PlanRewrite {
    /// Stable rewrite name (what a rejection reports).
    fn name(&self) -> &str;

    /// Declared worst-case shuffle inflation as a rational `(num, den)`:
    /// the certifier enforces
    /// `rewritten_bytes · den ≤ original_bytes · num` everywhere.
    fn declared_inflation(&self) -> (u64, u64);

    /// Transform the graph. Must not mutate the input.
    fn apply(&self, graph: &JobGraph) -> JobGraph;
}

/// Certificate for one rewrite applied to one graph.
#[derive(Debug, Clone)]
pub struct RewriteCert {
    /// Rewrite name.
    pub rewrite: String,
    /// Original graph name.
    pub graph: String,
    /// The rewritten graph (kept so a certified rewrite can be executed
    /// or inspected).
    pub rewritten: JobGraph,
    /// Declared inflation factor, rendered `num/den`.
    pub declared: String,
    /// Everything the re-check found (empty = certified).
    pub violations: Vec<Violation>,
}

impl RewriteCert {
    /// Certified: dataflow-sane, race-free, and within the declared
    /// volume factor.
    pub fn certified(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Expand a graph's templates into per-instance effect models at `env`,
/// taking the plan's declared reads/writes as both declared and inferred
/// effects (a rewrite output has no source text to scan). `{}` in a
/// name/dataset is substituted with the instance index for multi-instance
/// templates and kept as a shard wildcard for single-instance ones.
pub fn plan_models(graph: &JobGraph, env: &Env) -> Vec<EffectModel> {
    let mut models = Vec::new();
    for t in &graph.jobs {
        let count = t.count.eval(env);
        for i in 0..count {
            let subst = |s: &str| {
                if count > 1 {
                    s.replace("{}", &i.to_string())
                } else {
                    s.to_string()
                }
            };
            let reads: Vec<String> = t.reads.iter().map(|d| subst(d)).collect();
            let writes: Vec<String> = t.writes.iter().map(|d| subst(d)).collect();
            models.push(EffectModel {
                name: subst(&t.name),
                declared_reads: reads.clone(),
                declared_writes: writes.clone(),
                inferred_reads: reads,
                inferred_writes: writes,
            });
        }
    }
    models
}

/// Re-check a rewrite's output graph from scratch: dataflow sanity,
/// race-freedom of the expanded instances, and shuffle-volume
/// non-inflation beyond the declared factor over `envs`.
pub fn certify_rewrite(rewrite: &dyn PlanRewrite, graph: &JobGraph, envs: &[Env]) -> RewriteCert {
    let rewritten = rewrite.apply(graph);
    let (num, den) = rewrite.declared_inflation();
    let declared = format!("{num}/{den}");
    let mut violations = Vec::new();

    // 1. Dataflow sanity of the rewritten wiring. One typo usually trips
    //    several wiring rules (the dangling read *and* the orphaned
    //    write); they describe one defect, so they aggregate into one
    //    rejection.
    let wiring: Vec<String> = dataflow::check_dataflow(&rewritten)
        .iter()
        .map(|v| v.to_string())
        .collect();
    if !wiring.is_empty() {
        violations.push(Violation::RewriteDataflowBroken {
            rewrite: rewrite.name().to_string(),
            graph: graph.name.clone(),
            cause: wiring.join("; "),
        });
    }

    // 2. Race-freedom of the expanded instances: pairwise effect rules
    //    plus the adversarial serializability replay, at every env (the
    //    instance count, hence the conflict surface, varies with M/Q/R).
    if violations.is_empty() {
        for env in envs {
            let models = plan_models(&rewritten, env);
            let mut race_causes: Vec<String> = check_model(&models)
                .iter()
                .map(|f| {
                    format!(
                        "{} between '{}' and '{}' on dataset '{}'",
                        f.rule,
                        f.job,
                        f.other.clone().unwrap_or_default(),
                        f.dataset
                    )
                })
                .collect();
            if race_causes.is_empty() {
                if let Some(v) = serializability_check(&rewritten.name, &models) {
                    race_causes.push(v.to_string());
                }
            }
            if let Some(cause) = race_causes.into_iter().next() {
                violations.push(Violation::RewriteDataflowBroken {
                    rewrite: rewrite.name().to_string(),
                    graph: graph.name.clone(),
                    cause,
                });
                break;
            }
        }
    }

    // 3. Volume non-inflation: rewritten · den ≤ original · num.
    let orig = graph.shuffle_bytes();
    let new = rewritten.shuffle_bytes();
    if let Some(env) = envs.iter().find(|e| {
        new.eval(e).saturating_mul(u128::from(den)) > orig.eval(e).saturating_mul(u128::from(num))
    }) {
        violations.push(Violation::RewriteVolumeInflation {
            rewrite: rewrite.name().to_string(),
            graph: graph.name.clone(),
            declared: declared.clone(),
            env: *env,
            original_val: orig.eval(env),
            rewritten_val: new.eval(env),
        });
    }

    RewriteCert {
        rewrite: rewrite.name().to_string(),
        graph: graph.name.clone(),
        rewritten,
        declared,
        violations,
    }
}

// ---------------------------------------------------------------------------
// HeavyKeySplit: two-phase aggregation for a skewed final merge
// ---------------------------------------------------------------------------

/// Two-phase aggregation for a skewed final reduce: split the pipeline's
/// last job (the `CrossMerge`/`PairwiseMerge` that funnels every
/// intermediate record through one reducer key space) into `M` map-side
/// partial-combine jobs — each reading the same inputs but shuffling only
/// its `1/M` hash slice into a private `…_part#i` shard — followed by a
/// merge of the `M` pre-combined partials. Declared inflation 2/1: the
/// partials cross the shuffle a second time, nothing worse.
///
/// The rewrite is legal for exactly the merge jobs the plan marks
/// commutative-associative (`PlanJob::comm_assoc`): pre-combining slices
/// in any grouping must not change the reduced output.
///
/// The transform itself lives in
/// [`haten2_mapreduce::rewrite::heavy_key_split`] and is shared with the
/// runtime: the pipelines submit the *same* rewritten graph this certifier
/// checks (gated through `haten2_core::certified_rewrite_for`), so the
/// executed graph cannot drift from the certified one.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeavyKeySplit;

/// Index of the job [`HeavyKeySplit`] targets: the last single-instance
/// comm-assoc job that writes a graph output. Delegates to the shared
/// runtime transform's target selection.
fn split_target(graph: &JobGraph) -> Option<usize> {
    haten2_mapreduce::rewrite::heavy_key_split_target(graph)
}

impl PlanRewrite for HeavyKeySplit {
    fn name(&self) -> &str {
        "heavy-key-split"
    }

    fn declared_inflation(&self) -> (u64, u64) {
        (2, 1)
    }

    fn apply(&self, graph: &JobGraph) -> JobGraph {
        haten2_mapreduce::rewrite::heavy_key_split(graph)
    }
}

// ---------------------------------------------------------------------------
// Rejection demo: seeded broken rewrites
// ---------------------------------------------------------------------------

/// Mutant of [`HeavyKeySplit`] that forgets the map-side combine: every
/// split instance shuffles the *full* record stream, inflating total
/// volume `M`-fold while still declaring 2/1.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeavyKeySplitNoCombine;

impl PlanRewrite for HeavyKeySplitNoCombine {
    fn name(&self) -> &str {
        "heavy-key-split-no-combine"
    }

    fn declared_inflation(&self) -> (u64, u64) {
        (2, 1)
    }

    fn apply(&self, graph: &JobGraph) -> JobGraph {
        let mut out = HeavyKeySplit.apply(graph);
        let Some(at) = split_target(graph) else {
            return out;
        };
        // Restore the pre-split per-instance cost on the split job: M
        // instances each shuffling the whole stream.
        out.jobs[at].records = graph.jobs[at].records.clone();
        out.jobs[at].bytes = graph.jobs[at].bytes.clone();
        out
    }
}

/// Mutant of [`HeavyKeySplit`] whose merge job reads a typo'd partial
/// dataset: the split output is never consumed and the merge reads a
/// dataset nothing writes.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeavyKeySplitTypoMerge;

impl PlanRewrite for HeavyKeySplitTypoMerge {
    fn name(&self) -> &str {
        "heavy-key-split-typo-merge"
    }

    fn declared_inflation(&self) -> (u64, u64) {
        (2, 1)
    }

    fn apply(&self, graph: &JobGraph) -> JobGraph {
        let mut out = HeavyKeySplit.apply(graph);
        let Some(at) = split_target(graph) else {
            return out;
        };
        out.jobs[at + 1].reads = vec![format!("{}__parts#{{}}", graph.jobs[at].writes[0])];
        out
    }
}

/// Look up a rewrite (real or seeded mutant) by its stable name — how
/// the `.plan` fixture corpus selects which transform to certify.
pub fn rewrite_by_name(name: &str) -> Option<Box<dyn PlanRewrite>> {
    match name {
        "heavy-key-split" => Some(Box::new(HeavyKeySplit)),
        "heavy-key-split-no-combine" => Some(Box::new(HeavyKeySplitNoCombine)),
        "heavy-key-split-typo-merge" => Some(Box::new(HeavyKeySplitTypoMerge)),
        _ => None,
    }
}

/// One deliberately broken rewrite and what its rejection must name.
pub struct RewriteRejection {
    /// What was broken.
    pub defect: &'static str,
    /// Rewrite name the rejection must carry.
    pub rewrite: &'static str,
    /// Rule the rejection must fire.
    pub rule: &'static str,
    /// Graph the rewrite was applied to.
    pub graph: String,
    /// What the certifier reported.
    pub violations: Vec<Violation>,
    /// Did the certifier reject the mutant naming rewrite and rule?
    pub rejected: bool,
}

/// Certify the real [`HeavyKeySplit`] on `graph` (must pass), then run
/// the two seeded mutants through the certifier; each must be rejected
/// naming the rewrite and firing its rule.
pub fn run_rewrite_rejections(graph: &JobGraph, envs: &[Env]) -> Vec<RewriteRejection> {
    let mut out = Vec::new();
    let good = certify_rewrite(&HeavyKeySplit, graph, envs);
    out.push(RewriteRejection {
        defect: "baseline: two-phase aggregation with map-side combine (must certify)",
        rewrite: "heavy-key-split",
        rule: "none",
        graph: graph.name.clone(),
        rejected: good.certified(),
        violations: good.violations,
    });
    for (defect, rewrite, rule, cert) in [
        (
            "split without map-side combine: M instances each shuffle the full stream",
            "heavy-key-split-no-combine",
            "rewrite-volume-inflation",
            certify_rewrite(&HeavyKeySplitNoCombine, graph, envs),
        ),
        (
            "merge reads a typo'd partial dataset nothing writes",
            "heavy-key-split-typo-merge",
            "rewrite-dataflow-broken",
            certify_rewrite(&HeavyKeySplitTypoMerge, graph, envs),
        ),
    ] {
        let rejected = cert.violations.iter().any(|v| {
            v.kind() == rule
                && matches!(
                    v,
                    Violation::RewriteVolumeInflation { rewrite: r, .. }
                    | Violation::RewriteDataflowBroken { rewrite: r, .. } if r == rewrite
                )
        });
        out.push(RewriteRejection {
            defect,
            rewrite,
            rule,
            graph: graph.name.clone(),
            violations: cert.violations,
            rejected,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::regime_envs;
    use haten2_core::{plan_for, Decomp, Variant};

    #[test]
    fn heavy_key_split_certifies_on_every_merge_pipeline() {
        let envs = regime_envs();
        for decomp in Decomp::ALL {
            for variant in [Variant::Drn, Variant::Dri] {
                let g = plan_for(decomp, variant);
                let cert = certify_rewrite(&HeavyKeySplit, &g, &envs);
                assert!(cert.certified(), "{}: {:?}", cert.graph, cert.violations);
                // The rewrite actually did something: one job became two.
                assert_eq!(cert.rewritten.jobs.len(), g.jobs.len() + 1);
            }
        }
    }

    #[test]
    fn every_runtime_certification_record_is_certified_here() {
        // The runtime's rewrite gate (haten2_core::CERTIFIED_REWRITES /
        // certified_rewrite_for) admits exactly the (graph, rewrite) pairs
        // in that table. Each such pair must actually certify under this
        // pass on every regime environment — otherwise the runtime could
        // submit a "certified" graph the analyzer would reject.
        let envs = regime_envs();
        for &(graph_name, rewrite_name) in haten2_core::CERTIFIED_REWRITES {
            let plan = Decomp::ALL
                .iter()
                .flat_map(|&d| Variant::ALL.iter().map(move |&v| plan_for(d, v)))
                .find(|g| g.name == graph_name)
                .unwrap_or_else(|| panic!("no pipeline plan named '{graph_name}'"));
            let rw = rewrite_by_name(rewrite_name)
                .unwrap_or_else(|| panic!("no rewrite named '{rewrite_name}'"));
            let cert = certify_rewrite(rw.as_ref(), &plan, &envs);
            assert!(
                cert.certified(),
                "{rewrite_name} on {graph_name}: {:?}",
                cert.violations
            );
            // The record is not vacuous: the rewrite transforms the graph.
            assert_eq!(cert.rewritten.jobs.len(), plan.jobs.len() + 1);
        }
    }

    #[test]
    fn split_preserves_outputs_and_splits_the_merge() {
        let g = plan_for(Decomp::Tucker, Variant::Dri);
        let rw = HeavyKeySplit.apply(&g);
        assert_eq!(rw.outputs, g.outputs);
        let names: Vec<&str> = rw.jobs.iter().map(|j| j.name.as_str()).collect();
        assert!(names.contains(&"tucker-dri-crossmerge-split{}"));
        assert!(names.contains(&"tucker-dri-crossmerge-mergeparts"));
        assert!(!names.contains(&"tucker-dri-crossmerge"));
    }

    #[test]
    fn rewrite_is_identity_when_no_target_exists() {
        // tucker-naive's final writer is a per-rank (count = R) job —
        // there is no single-instance comm-assoc merge to split.
        let g = plan_for(Decomp::Tucker, Variant::Naive);
        let rw = HeavyKeySplit.apply(&g);
        assert_eq!(rw.jobs.len(), g.jobs.len());
        // Identity rewrites certify trivially.
        let cert = certify_rewrite(&HeavyKeySplit, &g, &regime_envs());
        assert!(cert.certified());
    }

    #[test]
    fn both_mutants_are_rejected_by_name_and_rule() {
        let envs = regime_envs();
        let g = plan_for(Decomp::Tucker, Variant::Dri);
        let rejections = run_rewrite_rejections(&g, &envs);
        assert_eq!(rejections.len(), 3);
        for r in &rejections {
            assert!(
                r.rejected,
                "'{}' ({}) not handled as expected: {:?}",
                r.defect, r.rewrite, r.violations
            );
        }
    }

    #[test]
    fn volume_inflating_mutant_reports_concrete_byte_counts() {
        let envs = regime_envs();
        let g = plan_for(Decomp::Parafac, Variant::Dri);
        let cert = certify_rewrite(&HeavyKeySplitNoCombine, &g, &envs);
        let v = cert
            .violations
            .iter()
            .find(|v| v.kind() == "rewrite-volume-inflation")
            .expect("mutant must inflate");
        if let Violation::RewriteVolumeInflation {
            original_val,
            rewritten_val,
            declared,
            ..
        } = v
        {
            assert!(rewritten_val > &(2 * original_val));
            assert_eq!(declared, "2/1");
        }
    }

    #[test]
    fn plan_models_substitute_shards_per_instance() {
        let g = plan_for(Decomp::Tucker, Variant::Dri);
        let rw = HeavyKeySplit.apply(&g);
        let env = haten2_core::env_for([4, 5, 6], 20, 2, 3, 4);
        let models = plan_models(&rw, &env);
        // M = 4 split instances with concrete shards + the merge keeping
        // its wildcard read.
        let splits: Vec<&EffectModel> = models
            .iter()
            .filter(|m| m.name.starts_with("tucker-dri-crossmerge-split"))
            .collect();
        assert_eq!(splits.len(), 4);
        assert_eq!(splits[0].declared_writes, ["y__part#0"]);
        let merge = models
            .iter()
            .find(|m| m.name == "tucker-dri-crossmerge-mergeparts")
            .unwrap();
        assert_eq!(merge.declared_reads, ["y__part#{}"]);
        assert!(check_model(&models).is_empty());
    }
}
