//! `.plan` fixtures: tiny textual job graphs for the known-bad corpus.
//!
//! The lint/purity/effect rules have known-bad *source* fixtures under
//! `crates/xtask/tests/fixtures/`; the communication and rewrite rules
//! operate on plan IR, not source text, so their corpus entries are
//! `.plan` files — a line-oriented description of a [`JobGraph`] plus the
//! check to run on it. Expressions use the [`SymExpr`] display syntax
//! (`SymExpr::parse` round-trips it), so a fixture reads like the
//! analyzer's own output.
//!
//! ```text
//! # one deliberately under-declared pipeline
//! graph under-declared
//! big-input x
//! output y
//! job tiny
//! reads x
//! writes y
//! records nnz
//! bytes nnz
//! claim-shuffle nnz
//! expect comm-bound-exceeded
//! ```
//!
//! Directives: `graph`, `input`, `big-input`, `output` introduce the
//! graph; `job` opens a template and `count`, `reads`, `writes`,
//! `records`, `bytes`, `upper-bound`, `comm-assoc` fill it in;
//! `claim-shuffle <expr>` runs the communication check
//! ([`crate::comm::check_comm`]) with that closed form;
//! `apply-rewrite <name>` certifies the named [`crate::rewrite`]
//! transform; `expect <rule>` records which rule ids must fire. Blank
//! lines and `#` comments are skipped.

use crate::comm::check_comm;
use crate::rewrite::{certify_rewrite, rewrite_by_name};
use crate::Violation;
use haten2_core::{comm_for, Decomp, Variant};
use haten2_mapreduce::{JobGraph, PlanJob, SymExpr};
use std::path::Path;

/// A parsed `.plan` fixture: the graph plus which checks to run on it.
#[derive(Debug, Clone)]
pub struct PlanFixture {
    /// The described graph.
    pub graph: JobGraph,
    /// Closed-form shuffle claim to check, when present.
    pub claim: Option<SymExpr>,
    /// Rewrite to certify, when present (validated against
    /// [`rewrite_by_name`] at load time).
    pub rewrite: Option<String>,
    /// Rule ids the fixture expects to fire.
    pub expects: Vec<String>,
}

fn parse_expr(line_no: usize, s: &str) -> Result<SymExpr, String> {
    SymExpr::parse(s).ok_or_else(|| format!("line {line_no}: unparseable expression '{s}'"))
}

/// Parse fixture text. Errors carry the offending line number.
pub fn parse_plan_fixture(text: &str) -> Result<PlanFixture, String> {
    let mut graph: Option<JobGraph> = None;
    let mut claim = None;
    let mut rewrite = None;
    let mut expects = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (dir, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        if dir == "graph" {
            if graph.is_some() {
                return Err(format!("line {line_no}: duplicate 'graph'"));
            }
            graph = Some(JobGraph::new(rest, []));
            continue;
        }
        let g = graph
            .as_mut()
            .ok_or_else(|| format!("line {line_no}: '{dir}' before 'graph'"))?;
        match dir {
            "input" => g.inputs.push(rest.to_string()),
            "big-input" => {
                if !g.inputs.iter().any(|d| d == rest) {
                    g.inputs.push(rest.to_string());
                }
                g.big_inputs.push(rest.to_string());
            }
            "output" => g.outputs.push(rest.to_string()),
            "job" => g.jobs.push(PlanJob::new(rest)),
            "claim-shuffle" => claim = Some(parse_expr(line_no, rest)?),
            "apply-rewrite" => {
                if rewrite_by_name(rest).is_none() {
                    return Err(format!("line {line_no}: unknown rewrite '{rest}'"));
                }
                rewrite = Some(rest.to_string());
            }
            "expect" => expects.push(rest.to_string()),
            "count" | "reads" | "writes" | "records" | "bytes" | "upper-bound" | "comm-assoc" => {
                let job = g
                    .jobs
                    .last_mut()
                    .ok_or_else(|| format!("line {line_no}: '{dir}' before 'job'"))?;
                match dir {
                    "count" => job.count = parse_expr(line_no, rest)?,
                    "reads" => job.reads = rest.split_whitespace().map(String::from).collect(),
                    "writes" => job.writes = rest.split_whitespace().map(String::from).collect(),
                    "records" => job.records = parse_expr(line_no, rest)?,
                    "bytes" => job.bytes = parse_expr(line_no, rest)?,
                    "upper-bound" => job.exact = false,
                    _ => job.comm_assoc = true,
                }
            }
            _ => return Err(format!("line {line_no}: unknown directive '{dir}'")),
        }
    }
    let graph = graph.ok_or_else(|| "no 'graph' directive".to_string())?;
    Ok(PlanFixture {
        graph,
        claim,
        rewrite,
        expects,
    })
}

/// Load a `.plan` fixture from disk.
pub fn load_plan_fixture(path: &Path) -> Result<PlanFixture, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_plan_fixture(&text)
}

/// Run a fixture's declared checks over the regime grid and return every
/// violation. Fixtures are held to the Tucker-DRI [`haten2_core::CommSpec`]
/// (`rank_eff = Q + R`, minimum record width `had_coef`) — the bound the
/// real headline pipeline answers to.
pub fn run_plan_fixture(fixture: &PlanFixture) -> Vec<Violation> {
    let envs = crate::cost::regime_envs();
    let spec = comm_for(Decomp::Tucker, Variant::Dri);
    let mut out = Vec::new();
    if let Some(claim) = &fixture.claim {
        out.extend(check_comm(&fixture.graph, claim, &spec, &envs));
    }
    if let Some(name) = &fixture.rewrite {
        if let Some(rw) = rewrite_by_name(name) {
            out.extend(certify_rewrite(rw.as_ref(), &fixture.graph, &envs).violations);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# a well-formed two-job pipeline
graph demo
big-input x
output y
job expand{}
count Q
reads x
writes t
records nnz
bytes 57·nnz
job merge
reads t
writes y
comm-assoc
records nnz
bytes 49·nnz
claim-shuffle Q·57·nnz + 49·nnz
";

    #[test]
    fn well_formed_fixture_parses_and_passes() {
        let f = parse_plan_fixture(GOOD).unwrap();
        assert_eq!(f.graph.name, "demo");
        assert_eq!(f.graph.jobs.len(), 2);
        assert!(f.expects.is_empty());
        let v = run_plan_fixture(&f);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn rewrite_directive_resolves_and_runs() {
        let text = format!("{GOOD}apply-rewrite heavy-key-split\n");
        let f = parse_plan_fixture(&text).unwrap();
        assert_eq!(f.rewrite.as_deref(), Some("heavy-key-split"));
        assert!(run_plan_fixture(&f).is_empty());
    }

    #[test]
    fn errors_carry_line_numbers() {
        assert!(parse_plan_fixture("job early\n")
            .unwrap_err()
            .contains("line 1"));
        assert!(parse_plan_fixture("graph g\nrecords nnz\n")
            .unwrap_err()
            .contains("line 2"));
        assert!(parse_plan_fixture("graph g\njob j\nbytes )(\n")
            .unwrap_err()
            .contains("unparseable"));
        assert!(parse_plan_fixture("graph g\napply-rewrite nope\n")
            .unwrap_err()
            .contains("unknown rewrite"));
        assert!(parse_plan_fixture("").unwrap_err().contains("no 'graph'"));
    }

    #[test]
    fn wrong_claim_fires_shuffle_mismatch() {
        let text = GOOD.replace("claim-shuffle Q·57·nnz + 49·nnz", "claim-shuffle 57·nnz");
        let f = parse_plan_fixture(&text).unwrap();
        let v = run_plan_fixture(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind(), "shuffle-mismatch");
    }
}
