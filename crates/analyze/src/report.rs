//! Full-table verification report: every registered pipeline against its
//! paper row, rendered as the markdown committed to `ANALYSIS.md`.

use crate::cost::{paper_claim, regime_envs, PaperClaim};
use crate::{analyze_graph, Violation};
use haten2_core::{plan_for, Decomp, Variant};
use std::fmt::Write as _;

/// Verdict for one (decomposition × variant) pipeline.
pub struct RowVerdict {
    /// Decomposition.
    pub decomp: Decomp,
    /// Variant.
    pub variant: Variant,
    /// Registered graph name.
    pub graph: String,
    /// The paper row the graph was held to.
    pub claim: PaperClaim,
    /// Template name of the job whose intermediate data dominates (attains
    /// the max on the regime grid).
    pub dominant_job: String,
    /// Violations (empty = the row verifies).
    pub violations: Vec<Violation>,
}

/// The full verification report.
pub struct Report {
    /// One verdict per pipeline, Tucker rows first.
    pub rows: Vec<RowVerdict>,
    /// Number of regime environments each equivalence was checked on.
    pub envs_checked: usize,
}

impl Report {
    /// `true` when every pipeline matches its paper row and is well-formed.
    pub fn ok(&self) -> bool {
        self.rows.iter().all(|r| r.violations.is_empty())
    }

    /// All violations across rows.
    pub fn violations(&self) -> Vec<&Violation> {
        self.rows.iter().flat_map(|r| &r.violations).collect()
    }

    /// Render as the markdown table committed to `ANALYSIS.md`.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# Static plan analysis: paper cost table");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Derived statically from the `JobGraph`s registered in \
             `haten2_core::plan` — no job was executed. Each derived bound \
             was checked for extensional equivalence with the paper's \
             claimed expression on {} operating-regime environments \
             (`haten2_analyze::cost::regime_envs`), alongside the dataflow \
             well-formedness pass. Expressions count map-output records \
             (the engine's `map_output_records`); dimensions are canonical \
             (`I` = target mode).",
            self.envs_checked
        );
        for decomp in Decomp::ALL {
            let table = match decomp {
                Decomp::Tucker => "Table III",
                Decomp::Parafac => "Table IV",
            };
            let _ = writeln!(out);
            let _ = writeln!(out, "## {decomp} ({table})");
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "| Variant | Max intermediate data | Total jobs | Tensor reads | Dominant job | Verdict |"
            );
            let _ = writeln!(out, "|---|---|---|---|---|---|");
            for r in self.rows.iter().filter(|r| r.decomp == decomp) {
                let verdict = if r.violations.is_empty() {
                    "verified"
                } else {
                    "VIOLATED"
                };
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} | `{}` | {} |",
                    r.variant,
                    r.claim.max_intermediate,
                    r.claim.total_jobs,
                    r.claim.tensor_reads,
                    r.dominant_job,
                    verdict
                );
            }
        }
        let notes: Vec<&RowVerdict> = self
            .rows
            .iter()
            .filter(|r| r.claim.note.is_some())
            .collect();
        if !notes.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "Notes:");
            for r in notes {
                let _ = writeln!(out, "- `{}`: {}.", r.graph, r.claim.note.unwrap_or(""));
            }
        }
        let violations = self.violations();
        if !violations.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "## Violations");
            let _ = writeln!(out);
            for v in violations {
                let _ = writeln!(out, "- {v}");
            }
        }
        out
    }
}

/// Verify all eight registered pipelines against the paper's cost tables.
pub fn verify_paper_table() -> Report {
    let envs = regime_envs();
    let sample = envs[0];
    let mut rows = Vec::new();
    for decomp in Decomp::ALL {
        for variant in Variant::ALL {
            let graph = plan_for(decomp, variant);
            let claim = paper_claim(decomp, variant);
            let violations = analyze_graph(&graph, &claim, &envs);
            let max = graph.max_intermediate_records();
            let dominant_job = graph
                .jobs
                .iter()
                .find(|j| j.records.eval(&sample) == max.eval(&sample))
                .map(|j| j.name.clone())
                .unwrap_or_default();
            rows.push(RowVerdict {
                decomp,
                variant,
                graph: graph.name.clone(),
                claim,
                dominant_job,
                violations,
            });
        }
    }
    Report {
        rows,
        envs_checked: envs.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_table_verifies() {
        let report = verify_paper_table();
        assert!(report.ok(), "{:?}", report.violations());
        assert_eq!(report.rows.len(), 8);
    }

    #[test]
    fn markdown_contains_all_variants_and_verdicts() {
        let md = verify_paper_table().to_markdown();
        for name in ["HaTen2-Naive", "HaTen2-DNN", "HaTen2-DRN", "HaTen2-DRI"] {
            assert!(md.contains(name), "missing {name}");
        }
        assert!(md.contains("Table III"));
        assert!(md.contains("Table IV"));
        assert!(md.contains("verified"));
        assert!(!md.contains("VIOLATED"));
        assert!(md.contains("nnz·(Q + R)"));
    }
}
