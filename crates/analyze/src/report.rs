//! Full verification report: every registered pipeline against its paper
//! row, its recoverability certificate, and the workspace determinism
//! scan, rendered as the markdown committed to `ANALYSIS.md`.

use crate::comm::{check_comm, comm_table, shuffle_claim, witness_env, CommRow};
use crate::cost::{paper_claim, regime_envs, PaperClaim};
use crate::determinism::{check_determinism, DeterminismReport};
use crate::io::{durable_io_table, tensor_record_bytes, DurableIoRow};
use crate::races::{check_races, GraphRaceCert};
use crate::recovery::{certify, Certification};
use crate::rewrite::{certify_rewrite, HeavyKeySplit, RewriteCert};
use crate::{analyze_graph, Violation};
use haten2_core::{comm_for, plan_for, recovery_for, Decomp, Variant};
use haten2_mapreduce::SymExpr;
use std::fmt::Write as _;

/// Sweeps assumed for the iterative-driver checkpoint certificate. Any
/// positive value exercises the coverage check; three matches the chaos
/// sweeps and the README examples.
pub const REPORT_SWEEPS: usize = 3;

/// Verdict for one (decomposition × variant) pipeline.
pub struct RowVerdict {
    /// Decomposition.
    pub decomp: Decomp,
    /// Variant.
    pub variant: Variant,
    /// Registered graph name.
    pub graph: String,
    /// The paper row the graph was held to.
    pub claim: PaperClaim,
    /// Longest dependency chain in the graph, in jobs — the number of
    /// sequential MapReduce rounds a DAG scheduler cannot avoid, versus
    /// the paper's *total* job count which assumes one job at a time.
    pub critical_path: SymExpr,
    /// Template name of the job whose intermediate data dominates (attains
    /// the max on the regime grid).
    pub dominant_job: String,
    /// Recoverability certificate under the symbolic fault budget `k`.
    pub recovery: Certification,
    /// Race certificate: effect-inference + unordered-conflict +
    /// serializability over the expanded instances.
    pub races: GraphRaceCert,
    /// Dataflow/cost violations (empty = the row verifies).
    pub violations: Vec<Violation>,
}

/// The full verification report.
pub struct Report {
    /// One verdict per pipeline, Tucker rows first.
    pub rows: Vec<RowVerdict>,
    /// Number of regime environments each equivalence was checked on.
    pub envs_checked: usize,
    /// Symbolic durable-read floors, one row per pipeline.
    pub durable_io: Vec<DurableIoRow>,
    /// Communication certification: shuffle volume vs. MTTKRP lower
    /// bound, one row per pipeline.
    pub comm: Vec<CommRow>,
    /// Communication violations (shuffle-mismatch / comm-bound-exceeded
    /// across all pipelines; empty = certified).
    pub comm_violations: Vec<Violation>,
    /// Rewrite certificates for the registered transforms on the merge
    /// pipelines.
    pub rewrites: Vec<RewriteCert>,
    /// The UDF-purity scan over the workspace sources.
    pub determinism: DeterminismReport,
    /// Source-level effect findings from the races pass (per-batch, not
    /// attributable to a single pipeline row).
    pub race_source_violations: Vec<Violation>,
    /// Source files the races pass scanned for submit sites.
    pub race_files_scanned: usize,
}

impl Report {
    /// `true` when every pipeline matches its paper row, certifies as
    /// recoverable, and the determinism scan is clean.
    pub fn ok(&self) -> bool {
        self.rows
            .iter()
            .all(|r| r.violations.is_empty() && r.recovery.certified() && r.races.certified())
            && self.determinism.ok()
            && self.race_source_violations.is_empty()
            && self.comm_violations.is_empty()
            && self.comm.iter().all(|c| !c.gap_unbounded_in_nnz)
            && self.rewrites.iter().all(RewriteCert::certified)
    }

    /// All violations across every pass.
    pub fn violations(&self) -> Vec<&Violation> {
        self.rows
            .iter()
            .flat_map(|r| {
                r.violations
                    .iter()
                    .chain(r.recovery.violations.iter())
                    .chain(r.races.violations.iter())
            })
            .chain(self.determinism.violations.iter())
            .chain(self.race_source_violations.iter())
            .chain(self.comm_violations.iter())
            .chain(self.rewrites.iter().flat_map(|c| c.violations.iter()))
            .collect()
    }

    /// Render as the markdown committed to `ANALYSIS.md`.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# Static plan analysis: paper cost table");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Derived statically from the `JobGraph`s registered in \
             `haten2_core::plan` — no job was executed. Each derived bound \
             was checked for extensional equivalence with the paper's \
             claimed expression on {} operating-regime environments \
             (`haten2_analyze::cost::regime_envs`), alongside the dataflow \
             well-formedness pass. Expressions count map-output records \
             (the engine's `map_output_records`); dimensions are canonical \
             (`I` = target mode). The *recovery bound* column is the \
             worst-case records recomputed under a symbolic fault budget \
             `k` — the cost of re-deriving the most expensive lost dataset \
             through its full lineage chain, times `k` \
             (`haten2_analyze::recovery::certify`). The *critical path* \
             column is the longest read-after-write chain in the job DAG \
             (`JobGraph::critical_path_jobs`): the sequential-round floor \
             the concurrent scheduler cannot beat, shown beside the \
             paper's total job counts which assume one job at a time. \
             `crates/bench` cross-checks these symbolic depths against the \
             scheduler's measured `BatchReport::critical_path_len`.",
            self.envs_checked
        );
        for decomp in Decomp::ALL {
            let table = match decomp {
                Decomp::Tucker => "Table III",
                Decomp::Parafac => "Table IV",
            };
            let _ = writeln!(out);
            let _ = writeln!(out, "## {decomp} ({table})");
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "| Variant | Max intermediate data | Total jobs | Critical path (jobs) | Recovery bound (k faults) | Tensor reads | Dominant job | Races | Verdict |"
            );
            let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|");
            for r in self.rows.iter().filter(|r| r.decomp == decomp) {
                let verdict =
                    if r.violations.is_empty() && r.recovery.certified() && r.races.certified() {
                        "verified"
                    } else {
                        "VIOLATED"
                    };
                let races = if r.races.certified() {
                    format!("race-free ({} jobs)", r.races.jobs_checked)
                } else {
                    "RACY".to_string()
                };
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} | {} | {} | `{}` | {} | {} |",
                    r.variant,
                    r.claim.max_intermediate,
                    r.claim.total_jobs,
                    r.critical_path,
                    r.recovery.bound.total,
                    r.claim.tensor_reads,
                    r.dominant_job,
                    races,
                    verdict
                );
            }
        }
        let notes: Vec<&RowVerdict> = self
            .rows
            .iter()
            .filter(|r| r.claim.note.is_some())
            .collect();
        if !notes.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "Notes:");
            for r in notes {
                let _ = writeln!(out, "- `{}`: {}.", r.graph, r.claim.note.unwrap_or(""));
            }
        }

        let _ = writeln!(out);
        let _ = writeln!(out, "## Durable I/O floor");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "With the tensor resident in the durable block store and a \
             memory budget below its footprint (the out-of-core regime the \
             spill benchmark drives), every pass over the big input is a \
             compulsory segment read: per sweep a pipeline must stream at \
             least `passes · nnz · {} B` from disk, where {} B is the \
             measured `Persist` wire width of one `(Ix4, f64)` tensor \
             record. The single-pass floor `nnz · {} B` is the \
             compulsory-miss optimum; *read amplification* is the \
             pipeline's passes over it — the quantity HaTen2-DRI's job \
             integration (§III-B4) drives to the minimum. \
             `BENCH_blockstore.json` records the measured durable traffic \
             for cross-checking.",
            tensor_record_bytes(),
            tensor_record_bytes(),
            tensor_record_bytes()
        );
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "| Pipeline | Tensor passes / sweep | Durable bytes / sweep | Single-pass floor | Read amplification |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|");
        for r in &self.durable_io {
            let _ = writeln!(
                out,
                "| `{}` | {} | {} | {} | {} |",
                r.graph,
                r.passes,
                r.bytes_per_sweep,
                r.floor_bytes,
                r.amplification()
            );
        }

        let _ = writeln!(out);
        let _ = writeln!(out, "## Communication certification");
        let _ = writeln!(out);
        let witness = witness_env();
        let _ = writeln!(
            out,
            "Each pipeline's total shuffle volume \
             (`JobGraph::shuffle_bytes` = Σ jobs · per-instance map-output \
             bytes) was checked for extensional equivalence with a \
             hand-reconstructed closed form on the regime grid, then held \
             to two MTTKRP communication lower bounds instantiated from \
             the pipeline's `CommSpec` (after Ballard & Rouse, \
             arXiv:1708.07401, adapted to the engine's stateless-mapper, \
             no-combiner execution model): the memory-independent floor \
             `nnz · w_min` (every contributing nonzero crosses the shuffle \
             as at least one minimum-width wire record) and the \
             memory-dependent `nnz · rank_eff · 8 / Mr` (a reducer holding \
             `Mr` bytes combines each resident byte with at most one \
             shuffled byte per residency). The *gap* column is the ratio \
             `shuffle / max(bounds)` at the witness environment \
             (nnz={}, I={}, J={}, K={}, Q={}, R={}, Mr={}); *bounded* \
             certifies the symbolic gap does not grow without bound in \
             `nnz`. Exact-marked pipelines are dynamically cross-checked: \
             the metered cluster shuffle equals the symbolic prediction \
             and never falls below the instantiated bound \
             (`crates/bench/tests/analyzer_crosscheck.rs`).",
            witness.nnz,
            witness.dim_i,
            witness.dim_j,
            witness.dim_k,
            witness.rank_q,
            witness.rank_r,
            witness.reducer_memory
        );
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "| Pipeline | Shuffle volume (B) | Applicable lower bound (B) | Gap at witness | Bounded in `nnz` | Exact |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|");
        for c in &self.comm {
            let _ = writeln!(
                out,
                "| `{}` | {} | max({}, {}) | {}× | {} | {} |",
                c.graph,
                c.shuffle,
                c.bound_indep,
                c.bound_dep,
                c.gap_at_witness,
                if c.gap_unbounded_in_nnz {
                    "UNBOUNDED"
                } else {
                    "yes"
                },
                if c.exact { "yes" } else { "upper bound" }
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "For each decomposition the DRI variant attains the **minimum \
             gap ratio on every regime environment** \
             (`haten2_analyze::comm`): the job-integrated pipeline is \
             certified closest to communication-optimal, the static form \
             of the paper's §III-B4 claim."
        );
        if !self.rewrites.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "Certified plan rewrites (output re-checked from scratch \
                 for dataflow sanity, race-freedom, and shuffle-volume \
                 non-inflation):"
            );
            let _ = writeln!(out);
            for c in &self.rewrites {
                let _ = writeln!(
                    out,
                    "- `{}` on `{}`: {} (declared inflation ≤ {})",
                    c.rewrite,
                    c.graph,
                    if c.certified() {
                        "certified"
                    } else {
                        "REJECTED"
                    },
                    c.declared
                );
            }
        }

        let _ = writeln!(out);
        let _ = writeln!(out, "## Recoverability");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Each pipeline's lineage closure was proven rooted at durable \
             driver inputs, cycle-free, and no deeper than the runtime \
             recursion guard ({} jobs); iterative drivers checkpoint every \
             completed sweep (policy checked over {} sweeps), so a crash \
             resumes without recomputing finished work.",
            haten2_mapreduce::MAX_RECOVERY_DEPTH,
            REPORT_SWEEPS
        );
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "| Pipeline | Certified | Max re-derivation depth | Worst single-fault cost |"
        );
        let _ = writeln!(out, "|---|---|---|---|");
        for r in &self.rows {
            let _ = writeln!(
                out,
                "| `{}` | {} | {} | {} |",
                r.graph,
                if r.recovery.certified() { "yes" } else { "NO" },
                r.recovery.bound.max_depth,
                r.recovery.bound.per_fault_worst
            );
        }

        let _ = writeln!(out);
        let _ = writeln!(out, "## Race certification");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Effect inference over {} pipeline source file(s): the dataset \
             names (including `#shard` patterns) each submitted closure \
             actually touches were extracted from its body and proven a \
             subset of its declared read/write sets; each registered graph \
             was then expanded at a witness environment (Q=2, R=3) and \
             every pair of jobs with no declared-dependency path between \
             them was proven conflict-free (no write/write or read/write \
             overlap under symbolic shard naming). An adversarial \
             latest-ready-first replay of the declared DAG observed the \
             same last-writer for every read as submission order, so every \
             topological order the DAG scheduler may choose commutes with \
             the sequential oracle.",
            self.race_files_scanned
        );
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "| Pipeline | Race-free | Job instances checked | Submit sites matched |"
        );
        let _ = writeln!(out, "|---|---|---|---|");
        for r in &self.rows {
            let _ = writeln!(
                out,
                "| `{}` | {} | {} | {}/{} |",
                r.graph,
                if r.races.certified() { "yes" } else { "NO" },
                r.races.jobs_checked,
                r.races.templates_matched,
                r.races.templates_total
            );
        }

        let _ = writeln!(out);
        let _ = writeln!(out, "## Determinism");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{} source file(s) scanned for nondeterministic UDFs (unordered \
             iteration feeding emits, wall-clock reads, thread-id \
             dependence, undeclared float reductions); {} reducer site(s) \
             seen, of which {} perform float reductions declared \
             commutative-associative in the plan metadata and covered by \
             generated property tests. Verdict: {}.",
            self.determinism.files_scanned,
            self.determinism.reducers.len(),
            self.determinism
                .reducers
                .iter()
                .filter(|r| r.has_float_reduction)
                .count(),
            if self.determinism.ok() {
                "clean"
            } else {
                "VIOLATED"
            }
        );

        let violations = self.violations();
        if !violations.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "## Violations");
            let _ = writeln!(out);
            for v in violations {
                let _ = writeln!(out, "- {v}");
            }
        }
        out
    }
}

/// Verify all eight registered pipelines against the paper's cost tables,
/// certify their recoverability, and run the workspace determinism scan.
pub fn verify_paper_table() -> Report {
    let envs = regime_envs();
    let sample = envs[0];
    let race_report = check_races();
    let mut rows = Vec::new();
    for decomp in Decomp::ALL {
        for variant in Variant::ALL {
            let graph = plan_for(decomp, variant);
            let claim = paper_claim(decomp, variant);
            let violations = analyze_graph(&graph, &claim, &envs);
            let critical_path = graph.critical_path_jobs();
            let recovery = certify(&graph, &recovery_for(decomp, variant, REPORT_SWEEPS));
            let max = graph.max_intermediate_records();
            let dominant_job = graph
                .jobs
                .iter()
                .find(|j| j.records.eval(&sample) == max.eval(&sample))
                .map(|j| j.name.clone())
                .unwrap_or_default();
            let races = race_report
                .certs
                .iter()
                .find(|c| c.decomp == decomp && c.variant == variant)
                .cloned()
                .unwrap_or(GraphRaceCert {
                    decomp,
                    variant,
                    graph: graph.name.clone(),
                    jobs_checked: 0,
                    templates_matched: 0,
                    templates_total: graph.jobs.len(),
                    violations: Vec::new(),
                });
            rows.push(RowVerdict {
                decomp,
                variant,
                graph: graph.name.clone(),
                claim,
                critical_path,
                dominant_job,
                recovery,
                races,
                violations,
            });
        }
    }
    let mut comm_violations = Vec::new();
    for decomp in Decomp::ALL {
        for variant in Variant::ALL {
            comm_violations.extend(check_comm(
                &plan_for(decomp, variant),
                &shuffle_claim(decomp, variant),
                &comm_for(decomp, variant),
                &envs,
            ));
        }
    }
    // Certify the two-phase-aggregation rewrite on every pipeline whose
    // final merge it can split (the Drn/Dri merge variants).
    let mut rewrites = Vec::new();
    for decomp in Decomp::ALL {
        for variant in [Variant::Drn, Variant::Dri] {
            rewrites.push(certify_rewrite(
                &HeavyKeySplit,
                &plan_for(decomp, variant),
                &envs,
            ));
        }
    }
    Report {
        rows,
        envs_checked: envs.len(),
        durable_io: durable_io_table(),
        comm: comm_table(),
        comm_violations,
        rewrites,
        determinism: check_determinism(),
        race_source_violations: race_report.source_violations,
        race_files_scanned: race_report.files_scanned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_table_verifies() {
        let report = verify_paper_table();
        assert!(report.ok(), "{:?}", report.violations());
        assert_eq!(report.rows.len(), 8);
        for r in &report.rows {
            assert!(r.recovery.certified(), "{} not recoverable", r.graph);
        }
    }

    #[test]
    fn markdown_contains_all_variants_and_verdicts() {
        let md = verify_paper_table().to_markdown();
        for name in ["HaTen2-Naive", "HaTen2-DNN", "HaTen2-DRN", "HaTen2-DRI"] {
            assert!(md.contains(name), "missing {name}");
        }
        assert!(md.contains("Table III"));
        assert!(md.contains("Table IV"));
        assert!(md.contains("verified"));
        assert!(!md.contains("VIOLATED"));
        assert!(md.contains("nnz·(Q + R)"));
        // The recovery bound is symbolic in the fault budget and sits in
        // the main table, next to the paper's job counts.
        assert!(md.contains("Recovery bound (k faults)"));
        assert!(md.contains("k·"), "symbolic fault budget missing:\n{md}");
        assert!(md.contains("Critical path (jobs)"));
        assert!(md.contains("## Recoverability"));
        assert!(md.contains("## Durable I/O floor"));
        assert!(md.contains("Read amplification"));
        assert!(md.contains("## Race certification"));
        assert!(md.contains("race-free ("), "races column missing:\n{md}");
        assert!(!md.contains("RACY"));
        assert!(md.contains("## Communication certification"));
        assert!(md.contains("Applicable lower bound"));
        assert!(md.contains("arXiv:1708.07401"));
        assert!(
            md.contains("minimum gap ratio"),
            "DRI-minimality note missing:\n{md}"
        );
        assert!(md.contains("`heavy-key-split` on `tucker-dri`: certified"));
        assert!(!md.contains("UNBOUNDED"));
        assert!(!md.contains("REJECTED"));
        assert!(md.contains("## Determinism"));
    }

    /// Every registered pipeline's critical path is a rank-independent
    /// constant — that is the whole point of the DAG scheduler: the
    /// paper's `Q + R`-style job counts collapse to a fixed number of
    /// sequential rounds. Expected depths per variant hold for both
    /// decompositions.
    #[test]
    fn critical_paths_are_constant_and_below_total_jobs() {
        let report = verify_paper_table();
        let env = regime_envs()[0];
        for r in &report.rows {
            let depth = match r.critical_path {
                SymExpr::Const(c) => c,
                ref e => panic!("{}: critical path {e} is not a constant", r.graph),
            };
            let expected = match r.variant {
                Variant::Naive => 2,
                Variant::Dnn => 4,
                Variant::Drn => 2,
                Variant::Dri => 2,
            };
            assert_eq!(depth, expected, "{}: unexpected depth", r.graph);
            assert!(
                u128::from(depth) <= r.claim.total_jobs.eval(&env),
                "{}: critical path exceeds total jobs",
                r.graph
            );
        }
    }
}
