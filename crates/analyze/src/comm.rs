//! Communication certification: symbolic shuffle volume vs. MTTKRP lower
//! bounds.
//!
//! HaTen2's whole contribution (§III, Tables III/IV) is shrinking
//! intermediate-data *communication*, and the analyzer so far certified
//! job counts, max-intermediate sizes, and durable-I/O floors — never the
//! total shuffle volume against a principled yardstick. Ballard & Rouse's
//! communication lower bounds for MTTKRP (arXiv:1708.07401) give exactly
//! that yardstick. This pass:
//!
//! 1. derives each pipeline's **total shuffle volume**
//!    [`haten2_mapreduce::JobGraph::shuffle_bytes`] (`Σ count · bytes`
//!    over job templates) and holds it to a hand-reconstructed closed
//!    form by extensional equivalence over the regime grid, exactly as
//!    [`crate::cost`] does for Tables III/IV;
//! 2. instantiates two lower bounds from the pipeline's registered
//!    [`CommSpec`] and certifies `bound ≤ declared shuffle` everywhere on
//!    the grid ([`Violation::CommBoundExceeded`] otherwise — a plan that
//!    declares less communication than any execution must pay is lying);
//! 3. computes the symbolic **gap ratio** `shuffle / bound` per pipeline,
//!    flags any gap that grows unboundedly in `nnz`, and certifies which
//!    variant attains the minimum gap (expected, and proven in tests:
//!    DRI, the paper's headline variant).
//!
//! # Adapting Ballard–Rouse to the engine's integer semiring
//!
//! The paper's bounds for `Y = X₍₁₎(C ⊙ B)` on a machine with fast
//! memory `M̂` are `Ω(nnz·R / (M̂^{1/2}·…))`-shaped (memory-dependent,
//! from pebbling the contraction) and `Ω(nnz)`-shaped
//! (memory-independent, from the atom argument: every nonzero must be
//! touched). [`SymExpr`] is an integer `(+, ·, max, /)` semiring — no
//! radicals — so we encode the two families in the forms that are exact
//! for *this* engine's execution model and stay valid lower bounds:
//!
//! * **memory-independent floor** `W_indep = nnz · w_min` bytes: the
//!   engine's mappers are stateless and the registered pipelines run
//!   without combiners, so every contributing nonzero crosses the
//!   shuffle at least once, as at least one wire record of the minimum
//!   width `w_min` ([`CommSpec::min_record_bytes`] — key + value +
//!   framing of the smallest emission);
//! * **memory-dependent bound** `W_dep = nnz · rank_eff · 8 / Mr`: one
//!   sweep combines `nnz · rank_eff` factor words (8 bytes each) with
//!   tensor entries ([`CommSpec::rank_eff`] = `Q + R` for Tucker, `2·R`
//!   for PARAFAC), and a reducer holding at most `Mr` bytes can combine
//!   each resident byte with at most one shuffled byte per residency —
//!   the streaming-pebbling form of the paper's argument.
//!
//! In the operating regime (`Mr ≥ 8·max(Q, R)`: a reducer holds at least
//! one factor row) the memory-dependent term never exceeds the
//! memory-independent floor, so `max(W_indep, W_dep)` — the **applicable
//! bound** printed in `ANALYSIS.md` — is dominated by `W_indep` there,
//! while both families remain visible in the table. The bench crosscheck
//! (`crates/bench/tests/analyzer_crosscheck.rs`) closes the loop
//! dynamically: metered shuffle bytes equal the symbolic prediction for
//! exact-marked pipelines and never fall below the instantiated bound.

use crate::Violation;
use haten2_core::plan::{
    collapse_bytes, had_coef_bytes, had_ent_bytes, imhp_ent_bytes, imhp_row_base_bytes,
    imhp_row_elem_bytes, merge_bytes, naive_bytes,
};
use haten2_core::{comm_for, env_for, plan_for, CommSpec, Decomp, Variant};
use haten2_mapreduce::{Env, JobGraph, SymExpr};

/// The communication rules this pass can fire, with rationale — the
/// fixture corpus in `crates/xtask/tests/fixtures/` carries one
/// known-bad plan per rule.
pub const COMM_RULES: &[(&str, &str)] = &[
    (
        "shuffle-mismatch",
        "the graph-derived total shuffle volume must match the hand-reconstructed closed form \
         on every regime environment",
    ),
    (
        "comm-bound-exceeded",
        "the instantiated MTTKRP communication lower bound must never exceed the plan's \
         declared shuffle volume — a plan declaring less communication than any execution \
         must pay is under-declaring",
    ),
];

fn n() -> SymExpr {
    SymExpr::nnz()
}
fn di() -> SymExpr {
    SymExpr::dim_i()
}
fn dj() -> SymExpr {
    SymExpr::dim_j()
}
fn dk() -> SymExpr {
    SymExpr::dim_k()
}
fn q() -> SymExpr {
    SymExpr::rank_q()
}
fn r() -> SymExpr {
    SymExpr::rank_r()
}
fn c(v: u64) -> SymExpr {
    SymExpr::c(v)
}

/// Hand-reconstructed closed form of one pipeline's total shuffle volume
/// (bytes per invocation), written against the paper's job structure and
/// the measured wire widths — *not* derived from the graph, so drift
/// between the two is caught by [`check_comm`]'s extensional comparison.
pub fn shuffle_claim(decomp: Decomp, variant: Variant) -> SymExpr {
    let nb = c(naive_bytes());
    let he = c(had_ent_bytes());
    let hc = c(had_coef_bytes());
    let cb = c(collapse_bytes());
    let mb = c(merge_bytes());
    let ie = c(imhp_ent_bytes());
    let rb = c(imhp_row_base_bytes());
    let re = c(imhp_row_elem_bytes());
    match (decomp, variant) {
        // Q broadcast TTV passes (nnz + I·J·K blowup each), then R passes
        // over |T| ≤ Q·nnz.
        (Decomp::Tucker, Variant::Naive) => {
            q() * nb.clone() * (n() + di() * dj() * dk())
                + r() * nb * (n() * q() + di() * q() * dk())
        }
        // Q Hadamard passes + collapse(J), then R Hadamard passes over
        // T (Q·nnz entries) + the nnz·Q·R collapse(K) blowup.
        (Decomp::Tucker, Variant::Dnn) => {
            q() * (he.clone() * n() + hc.clone() * dj())
                + cb.clone() * n() * q()
                + r() * (he * n() * q() + hc * dk())
                + cb * n() * q() * r()
        }
        // Q passes over X, R passes over bin(X), one CrossMerge.
        (Decomp::Tucker, Variant::Drn) => {
            q() * (he.clone() * n() + hc.clone() * dj())
                + r() * (he * n() + hc * dk())
                + mb * n() * (q() + r())
        }
        // One integrated IMHP pass (2 entry emissions per nonzero + one
        // row record per factor column), one CrossMerge.
        (Decomp::Tucker, Variant::Dri) => {
            c(2) * ie * n()
                + (rb.clone() + re.clone() * q()) * dj()
                + (rb + re * r()) * dk()
                + mb * n() * (q() + r())
        }
        // R broadcast TTV passes, then R passes over |T_r| ≤ nnz.
        (Decomp::Parafac, Variant::Naive) => {
            r() * nb.clone() * (n() + di() * dj() * dk()) + r() * nb * (n() + di() * dk())
        }
        // Four R-instance stages: Hadamard(B) + collapse(J) + Hadamard(C)
        // + collapse(K), each over nnz entries.
        (Decomp::Parafac, Variant::Dnn) => {
            r() * (he.clone() * n() + hc.clone() * dj())
                + r() * cb.clone() * n()
                + r() * (he * n() + hc * dk())
                + r() * cb * n()
        }
        // R passes over X, R passes over bin(X), one PairwiseMerge.
        (Decomp::Parafac, Variant::Drn) => {
            r() * (he.clone() * n() + hc.clone() * dj())
                + r() * (he * n() + hc * dk())
                + c(2) * mb * n() * r()
        }
        // One integrated IMHP pass, one PairwiseMerge.
        (Decomp::Parafac, Variant::Dri) => {
            c(2) * ie * n()
                + (rb.clone() + re.clone() * r()) * dj()
                + (rb + re * r()) * dk()
                + c(2) * mb * n() * r()
        }
    }
}

/// The two Ballard–Rouse-style lower bounds instantiated from a
/// pipeline's [`CommSpec`]: `(memory-independent, memory-dependent)`,
/// both in bytes per invocation (see the module docs for the integer
/// adaptation).
pub fn lower_bounds(spec: &CommSpec) -> (SymExpr, SymExpr) {
    let indep = n() * c(spec.min_record_bytes);
    let dep = n() * spec.rank_eff.clone() * c(8) / SymExpr::reducer_memory();
    (indep, dep)
}

/// The applicable lower bound: `max(W_indep, W_dep)` — valid because each
/// family is a lower bound on its own.
pub fn applicable_bound(spec: &CommSpec) -> SymExpr {
    let (indep, dep) = lower_bounds(spec);
    SymExpr::max(indep, dep)
}

/// The witness environment at which `ANALYSIS.md` prints concrete gap
/// values: a regime-scale tensor (10⁵ nonzeros, KB-shaped dims, paper
/// ranks) with the default 1 MiB reducer budget.
pub fn witness_env() -> Env {
    env_for([1_000, 800, 600], 100_000, 2, 3, 10)
}

/// One row of the communication-certification table.
#[derive(Debug, Clone)]
pub struct CommRow {
    /// Decomposition.
    pub decomp: Decomp,
    /// Variant.
    pub variant: Variant,
    /// Registered graph name.
    pub graph: String,
    /// Derived total shuffle volume ([`JobGraph::shuffle_bytes`]).
    pub shuffle: SymExpr,
    /// Whether every template's cost is exact in generic position (the
    /// bench crosscheck requires metered equality for these pipelines).
    pub exact: bool,
    /// Memory-independent floor `nnz · w_min`.
    pub bound_indep: SymExpr,
    /// Memory-dependent bound `nnz · rank_eff · 8 / Mr`.
    pub bound_dep: SymExpr,
    /// The applicable bound `max(indep, dep)`.
    pub bound: SymExpr,
    /// Symbolic gap ratio `shuffle / bound`.
    pub gap: SymExpr,
    /// Gap ratio evaluated at [`witness_env`].
    pub gap_at_witness: u128,
    /// `true` when the gap keeps growing without bound as `nnz` does —
    /// the flag for a pipeline whose communication is asymptotically
    /// *worse* than the lower bound by a growing factor.
    pub gap_unbounded_in_nnz: bool,
}

/// Does `gap` grow without bound in `nnz`? Decided on an `nnz`-doubling
/// ladder anchored at `base`: a gap that keeps at least doubling across
/// the top of a 2²⁰-fold ladder is growing in `nnz` (any `nnz`-free
/// ratio, or one converging to a constant, flattens long before that).
pub fn gap_unbounded_in_nnz(gap: &SymExpr, base: &Env) -> bool {
    let at = |nnz: u64| gap.eval(&Env { nnz, ..*base });
    let lo = at(base.nnz.max(1));
    let mid = at(base.nnz.max(1).saturating_mul(1 << 10));
    let hi = at(base.nnz.max(1).saturating_mul(1 << 20));
    hi >= mid.saturating_mul(2) && mid >= lo.saturating_mul(2)
}

/// The communication-certification table: one row per registered
/// pipeline.
pub fn comm_table() -> Vec<CommRow> {
    let witness = witness_env();
    let mut rows = Vec::new();
    for decomp in Decomp::ALL {
        for variant in Variant::ALL {
            let graph = plan_for(decomp, variant);
            let spec = comm_for(decomp, variant);
            let shuffle = graph.shuffle_bytes();
            let (bound_indep, bound_dep) = lower_bounds(&spec);
            let bound = applicable_bound(&spec);
            let gap = shuffle.clone() / bound.clone();
            rows.push(CommRow {
                decomp,
                variant,
                graph: graph.name.clone(),
                exact: graph.shuffle_exact(),
                gap_at_witness: gap.eval(&witness),
                gap_unbounded_in_nnz: gap_unbounded_in_nnz(&gap, &witness),
                shuffle,
                bound_indep,
                bound_dep,
                bound,
                gap,
            });
        }
    }
    rows
}

/// Check one graph's communication declaration: the derived shuffle
/// volume must match `claim` extensionally, and the instantiated lower
/// bound must never exceed the declared volume, both over `envs`.
pub fn check_comm(
    graph: &JobGraph,
    claim: &SymExpr,
    spec: &CommSpec,
    envs: &[Env],
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let derived = graph.shuffle_bytes();
    if let Some(env) = envs.iter().find(|e| derived.eval(e) != claim.eval(e)) {
        violations.push(Violation::ShuffleMismatch {
            graph: graph.name.clone(),
            derived: derived.to_string(),
            claimed: claim.to_string(),
            derived_val: derived.eval(env),
            claimed_val: claim.eval(env),
            env: *env,
        });
    }
    let bound = applicable_bound(spec);
    if let Some(env) = envs.iter().find(|e| bound.eval(e) > derived.eval(e)) {
        violations.push(Violation::CommBoundExceeded {
            graph: graph.name.clone(),
            shuffle: derived.to_string(),
            bound: bound.to_string(),
            shuffle_val: derived.eval(env),
            bound_val: bound.eval(env),
            env: *env,
        });
    }
    violations
}

// ---------------------------------------------------------------------------
// Rejection demo: seeded communication lies
// ---------------------------------------------------------------------------

/// One deliberately wrong communication declaration and what its
/// rejection must name.
pub struct CommRejection {
    /// What was broken.
    pub defect: &'static str,
    /// Graph the rejection must name.
    pub graph: String,
    /// Rule the rejection must fire.
    pub rule: &'static str,
    /// What the pass reported.
    pub violations: Vec<Violation>,
    /// Did the pass reject the lie naming graph and rule?
    pub rejected: bool,
}

/// Seed two communication lies and run each through [`check_comm`]: the
/// DRI pipeline claimed with the DRN closed form (the shuffle volumes
/// differ — job integration is exactly what separates them), and a plan
/// declaring 1 byte of shuffle per nonzero (below the `nnz · w_min`
/// floor any execution must pay). Each must be rejected naming the graph
/// and firing its rule.
pub fn run_comm_rejections(envs: &[Env]) -> Vec<CommRejection> {
    let mut out = Vec::new();
    let dri = plan_for(Decomp::Tucker, Variant::Dri);
    let spec = comm_for(Decomp::Tucker, Variant::Dri);
    let v = check_comm(
        &dri,
        &shuffle_claim(Decomp::Tucker, Variant::Drn),
        &spec,
        envs,
    );
    out.push(CommRejection {
        defect: "DRI pipeline claimed with the DRN closed form (pre-integration volume)",
        graph: dri.name.clone(),
        rule: "shuffle-mismatch",
        rejected: v.iter().any(|x| {
            x.kind() == "shuffle-mismatch"
                && matches!(x, Violation::ShuffleMismatch { graph, .. } if *graph == dri.name)
        }),
        violations: v,
    });
    let lying = JobGraph::new("under-declared-shuffle", [])
        .big_input("x")
        .output("y")
        .job(
            haten2_mapreduce::PlanJob::new("too-cheap")
                .reads(["x"])
                .writes(["y"])
                .emits(n(), n()),
        );
    let claim = lying.shuffle_bytes();
    let v = check_comm(&lying, &claim, &spec, envs);
    out.push(CommRejection {
        defect: "plan declares 1 shuffle byte per nonzero, below the nnz·w_min floor",
        graph: lying.name.clone(),
        rule: "comm-bound-exceeded",
        rejected: v.iter().any(|x| {
            x.kind() == "comm-bound-exceeded"
                && matches!(x, Violation::CommBoundExceeded { graph, .. } if *graph == lying.name)
        }),
        violations: v,
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::regime_envs;

    #[test]
    fn every_registered_pipeline_passes_the_comm_check() {
        let envs = regime_envs();
        for decomp in Decomp::ALL {
            for variant in Variant::ALL {
                let g = plan_for(decomp, variant);
                let v = check_comm(
                    &g,
                    &shuffle_claim(decomp, variant),
                    &comm_for(decomp, variant),
                    &envs,
                );
                assert!(v.is_empty(), "{decomp} {variant}: {v:?}");
            }
        }
    }

    #[test]
    fn wrong_shuffle_claim_is_caught_with_counterexample() {
        let envs = regime_envs();
        let g = plan_for(Decomp::Tucker, Variant::Dri);
        // Claim the DRN closed form for the DRI pipeline: DRN pays Q+R
        // Hadamard passes where DRI pays one integrated pass.
        let bogus = shuffle_claim(Decomp::Tucker, Variant::Drn);
        let v = check_comm(&g, &bogus, &comm_for(Decomp::Tucker, Variant::Dri), &envs);
        assert!(v.iter().any(|v| matches!(
            v,
            Violation::ShuffleMismatch { graph, derived_val, claimed_val, .. }
                if graph == "tucker-dri" && derived_val != claimed_val
        )));
    }

    #[test]
    fn under_declared_shuffle_volume_trips_the_bound() {
        let envs = regime_envs();
        // A graph claiming to shuffle 1 byte per nonzero: below the
        // nnz·w_min floor everywhere.
        let g = JobGraph::new("under-declared", [])
            .big_input("x")
            .output("y")
            .job(
                haten2_mapreduce::PlanJob::new("tiny")
                    .reads(["x"])
                    .writes(["y"])
                    .emits(n(), n()),
            );
        let claim = g.shuffle_bytes();
        let v = check_comm(&g, &claim, &comm_for(Decomp::Tucker, Variant::Dri), &envs);
        assert_eq!(v.len(), 1);
        assert!(matches!(
            &v[0],
            Violation::CommBoundExceeded { graph, .. } if graph == "under-declared"
        ));
        assert_eq!(v[0].kind(), "comm-bound-exceeded");
    }

    #[test]
    fn bounds_are_positive_and_dep_stays_below_indep_in_regime() {
        let envs = regime_envs();
        for decomp in Decomp::ALL {
            for variant in Variant::ALL {
                let spec = comm_for(decomp, variant);
                let (indep, dep) = lower_bounds(&spec);
                for env in &envs {
                    assert!(indep.eval(env) > 0);
                    // Regime envs keep Mr ≥ 8·max(Q, R), where the
                    // streaming-pebbling term is dominated by the floor.
                    assert!(
                        dep.eval(env) <= indep.eval(env),
                        "{decomp} {variant}: memory-dependent bound above the floor at \
                         Mr={}",
                        env.reducer_memory
                    );
                    assert_eq!(
                        applicable_bound(&spec).eval(env),
                        indep.eval(env).max(dep.eval(env))
                    );
                }
            }
        }
    }

    #[test]
    fn table_covers_all_eight_pipelines_with_bounded_gaps() {
        let rows = comm_table();
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert!(
                row.gap_at_witness >= 1,
                "{}: shuffle volume below its own lower bound",
                row.graph
            );
            assert!(
                !row.gap_unbounded_in_nnz,
                "{}: gap ratio grows unboundedly in nnz",
                row.graph
            );
        }
        // The DRI rows are the exact-marked ones alongside DRN.
        for row in rows.iter().filter(|r| r.variant == Variant::Dri) {
            assert!(row.exact, "{}: DRI must be exact-marked", row.graph);
        }
    }

    /// DRI attains the minimum gap ratio of its decomposition on every
    /// regime environment — the statically-certified form of "closest to
    /// communication-optimal", mirroring the durable-I/O DRI-minimality
    /// proof.
    #[test]
    fn dri_attains_the_minimum_gap_ratio() {
        let envs = regime_envs();
        let rows = comm_table();
        for decomp in Decomp::ALL {
            let dri = rows
                .iter()
                .find(|r| r.decomp == decomp && r.variant == Variant::Dri)
                .unwrap();
            for other in rows.iter().filter(|r| r.decomp == decomp) {
                for env in &envs {
                    assert!(
                        dri.gap.eval(env) <= other.gap.eval(env),
                        "{}: DRI gap above {} at nnz={}",
                        dri.graph,
                        other.graph,
                        env.nnz
                    );
                }
            }
        }
    }

    #[test]
    fn comm_rejections_fire_their_rules_by_name() {
        let rejections = run_comm_rejections(&regime_envs());
        assert_eq!(rejections.len(), 2);
        for r in &rejections {
            assert!(
                r.rejected,
                "'{}' not rejected naming '{}' via {}: {:?}",
                r.defect, r.graph, r.rule, r.violations
            );
        }
    }

    /// A deliberately quadratic-shuffle graph is flagged as unbounded in
    /// `nnz` — the detector is not a rubber stamp.
    #[test]
    fn quadratic_shuffle_gap_is_flagged_unbounded() {
        let spec = comm_for(Decomp::Tucker, Variant::Dri);
        let quadratic = n() * n(); // nnz² bytes
        let gap = quadratic / applicable_bound(&spec);
        assert!(gap_unbounded_in_nnz(&gap, &witness_env()));
        // …while every real pipeline's gap converges (checked above) and
        // even a bare linear shuffle is bounded.
        let linear = n() * c(1_000);
        let gap = linear / applicable_bound(&spec);
        assert!(!gap_unbounded_in_nnz(&gap, &witness_env()));
    }
}
