//! Race certification: prove the pipelines' `Batch` programs cannot race
//! on the DAG scheduler, from source text alone.
//!
//! The DAG scheduler (`haten2_mapreduce::sched`) orders jobs only by their
//! *declared* read/write sets; anything a closure touches beyond its
//! declaration is invisible to the dependency builder and can race. This
//! pass closes that gap statically, in three layers:
//!
//! 1. **Effect inference** (`haten2_srcscan::effects`) — every
//!    `batch.submit(..)` site in the pipeline sources is scanned for the
//!    dataset names its closure actually touches (`ctx.get` of a handle,
//!    direct DFS calls), including `#shard` patterns, and checked against
//!    its declaration per batch ([`scan_sources`]).
//! 2. **Instance-level certification** ([`certify_graph`]) — each
//!    registered [`JobGraph`] is expanded at a small witness environment
//!    (Q=2, R=3); every instance gets concrete effect sets by
//!    substituting its index into the scanned templates (a vector of
//!    handles becomes a `{}` wildcard over every producer instance). The
//!    three effect rules then prove: inferred ⊆ declared, and no two
//!    jobs unordered by declared dependencies conflict (write/write or
//!    read/write) under symbolic shard naming.
//! 3. **Serializability oracle** ([`certify_graph`], via an adversarial
//!    replay) — the declared-dependency DAG is replayed in submission
//!    order and in a latest-ready-first topological order; both replays
//!    must observe the same last-writer for every read and the same
//!    final writer per dataset, making "every topological order commutes
//!    with the submission-order oracle" an executable certificate.
//!
//! The dynamic counterpart is the `race-detect` feature of
//! `haten2-mapreduce` (a per-dataset last-writer/readers vector-epoch
//! detector inside the DFS); the chaos harness cross-validates the two:
//! a run the dynamic detector finds race-free on a pipeline this pass
//! refused to certify is reported as a cross-validation failure.

use crate::Violation;
use haten2_core::{env_for, plan_for, Decomp, Variant};
use haten2_mapreduce::{Env, JobGraph};
use haten2_srcscan::effects::{
    check_effects, check_model, sym_overlap, EffectFinding, EffectModel, ModelFinding, SubmitSite,
};
use haten2_srcscan::{rs_files, workspace_root};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::OnceLock;

/// Result of the source-level effect scan over the pipeline sources.
#[derive(Debug, Clone, Default)]
pub struct RaceScan {
    /// Per-batch effect findings (empty = every submit site is honest).
    pub violations: Vec<Violation>,
    /// Every submit site seen, keyed later by job-name template.
    pub sites: Vec<SubmitSite>,
    /// Number of source files scanned.
    pub files_scanned: usize,
}

/// Race certificate for one registered pipeline.
#[derive(Debug, Clone)]
pub struct GraphRaceCert {
    /// Decomposition.
    pub decomp: Decomp,
    /// Variant.
    pub variant: Variant,
    /// Registered graph name.
    pub graph: String,
    /// Concrete job instances checked at the witness environment.
    pub jobs_checked: usize,
    /// Plan templates matched to a scanned submit site.
    pub templates_matched: usize,
    /// Plan templates in the graph.
    pub templates_total: usize,
    /// Rule violations (empty = race-free).
    pub violations: Vec<Violation>,
}

impl GraphRaceCert {
    /// Certified race-free: every template was matched to a real submit
    /// site and no rule fired on the expanded instances.
    pub fn certified(&self) -> bool {
        self.templates_total > 0
            && self.templates_matched == self.templates_total
            && self.violations.is_empty()
    }
}

/// The full races-pass verdict: source findings plus one certificate per
/// registered pipeline.
#[derive(Debug, Clone, Default)]
pub struct RaceCertReport {
    /// Source-level effect findings.
    pub source_violations: Vec<Violation>,
    /// One certificate per (decomposition × variant).
    pub certs: Vec<GraphRaceCert>,
    /// Source files scanned.
    pub files_scanned: usize,
}

impl RaceCertReport {
    /// Clean: no source finding, every pipeline certified.
    pub fn ok(&self) -> bool {
        self.source_violations.is_empty() && self.certs.iter().all(GraphRaceCert::certified)
    }

    /// All violations across both layers.
    pub fn violations(&self) -> Vec<&Violation> {
        self.source_violations
            .iter()
            .chain(self.certs.iter().flat_map(|c| c.violations.iter()))
            .collect()
    }
}

fn finding_violation(f: &EffectFinding) -> Violation {
    let site = format!("{}:{}", f.file.display(), f.line);
    match f.rule {
        "unordered-conflict" => Violation::UnorderedConflict {
            scope: site,
            job_a: f.job.clone(),
            job_b: f.other.clone().unwrap_or_default(),
            dataset: f.dataset.clone(),
        },
        "over-declared-read" => Violation::OverDeclaredRead {
            site,
            job: f.job.clone(),
            dataset: f.dataset.clone(),
        },
        _ => Violation::UndeclaredEffect {
            site,
            job: f.job.clone(),
            dataset: f.dataset.clone(),
        },
    }
}

fn model_violation(scope: &str, f: &ModelFinding) -> Violation {
    match f.rule {
        "unordered-conflict" => Violation::UnorderedConflict {
            scope: scope.to_string(),
            job_a: f.job.clone(),
            job_b: f.other.clone().unwrap_or_default(),
            dataset: f.dataset.clone(),
        },
        "over-declared-read" => Violation::OverDeclaredRead {
            site: scope.to_string(),
            job: f.job.clone(),
            dataset: f.dataset.clone(),
        },
        _ => Violation::UndeclaredEffect {
            site: scope.to_string(),
            job: f.job.clone(),
            dataset: f.dataset.clone(),
        },
    }
}

/// Scan the pipeline sources (`crates/core/src`) for submit sites and
/// per-batch effect findings.
pub fn scan_sources(root: &Path) -> RaceScan {
    let mut files = Vec::new();
    rs_files(&root.join("crates/core/src"), &mut files);
    files.sort();
    let mut scan = RaceScan {
        files_scanned: files.len(),
        ..RaceScan::default()
    };
    for f in &files {
        let Ok(raw) = std::fs::read_to_string(f) else {
            continue;
        };
        let (findings, sites) = check_effects(f, &raw);
        scan.violations
            .extend(findings.iter().map(finding_violation));
        scan.sites.extend(sites);
    }
    scan
}

/// Witness environment for instance expansion: ranks Q=2, R=3 are the
/// smallest values that give every per-rank template multiple instances
/// with Q ≠ R (so a shard index cannot accidentally alias across ranks).
fn witness_env() -> Env {
    env_for([4, 5, 6], 20, 2, 3, 4)
}

fn subst(template: &str, i: u128) -> String {
    template.replace("{}", &i.to_string())
}

/// Expand a pipeline's plan templates into per-instance effect models
/// using the *source-scanned* declarations of the matching submit sites.
/// Returns the models (submission order) and how many templates matched
/// a scanned site.
pub fn instance_models(
    graph: &JobGraph,
    env: &Env,
    sites: &[SubmitSite],
) -> (Vec<EffectModel>, usize) {
    let by_name: BTreeMap<&str, &SubmitSite> = sites.iter().map(|s| (s.name.as_str(), s)).collect();
    let mut models = Vec::new();
    let mut matched = 0usize;
    for t in &graph.jobs {
        let Some(site) = by_name.get(t.name.as_str()) else {
            continue;
        };
        matched += 1;
        for i in 0..t.count.eval(env) {
            models.push(EffectModel {
                name: subst(&t.name, i),
                declared_reads: site.declared_reads.iter().map(|d| subst(d, i)).collect(),
                declared_writes: site.declared_writes.iter().map(|d| subst(d, i)).collect(),
                inferred_reads: site
                    .inferred_reads
                    .iter()
                    .map(|r| {
                        if r.correlated {
                            subst(&r.dataset, i)
                        } else {
                            r.dataset.clone()
                        }
                    })
                    .collect(),
                inferred_writes: site.inferred_writes.iter().map(|d| subst(d, i)).collect(),
            });
        }
    }
    (models, matched)
}

/// Direct declared-dependency edge from earlier job `a` to later job `b`
/// — the same RAW/WAW/WAR rule `Batch::dependencies` applies at runtime.
fn declared_edge(a: &EffectModel, b: &EffectModel) -> bool {
    let ov = |xs: &[String], ys: &[String]| xs.iter().any(|x| ys.iter().any(|y| sym_overlap(x, y)));
    ov(&b.declared_reads, &a.declared_writes)
        || ov(&b.declared_writes, &a.declared_writes)
        || ov(&b.declared_writes, &a.declared_reads)
}

/// Replay `models[order]`, observing for every declared read the current
/// last-writer of each overlapping dataset, and the final writer per
/// dataset. Two schedules are conflict-equivalent iff their observations
/// agree.
fn replay(models: &[EffectModel], order: &[usize]) -> BTreeMap<String, String> {
    let mut last_writer: BTreeMap<String, String> = BTreeMap::new();
    let mut obs = BTreeMap::new();
    for &j in order {
        for r in &models[j].declared_reads {
            for (d, w) in &last_writer {
                if sym_overlap(d, r) {
                    obs.insert(format!("{} reads {}", models[j].name, d), w.clone());
                }
            }
        }
        for w in &models[j].declared_writes {
            last_writer.insert(w.clone(), models[j].name.clone());
        }
    }
    for (d, w) in last_writer {
        obs.insert(format!("final {d}"), w);
    }
    obs
}

/// Serializability oracle: replay the declared program in submission
/// order and in an adversarial (latest-ready-first) topological order of
/// the declared-dependency DAG; any observable difference names the two
/// jobs whose commutation broke.
fn serializability_witness(scope: &str, models: &[EffectModel]) -> Option<Violation> {
    let n = models.len();
    let submission: Vec<usize> = (0..n).collect();
    // Latest-ready-first maximally reorders independent jobs: any pair
    // the declared DAG fails to order will run in reverse here.
    let mut adversarial = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    while adversarial.len() < n {
        let pick = (0..n).rev().find(|&j| {
            !placed[j] && (0..j).all(|i| placed[i] || !declared_edge(&models[i], &models[j]))
        });
        match pick {
            Some(j) => {
                placed[j] = true;
                adversarial.push(j);
            }
            // Unreachable: edges only point forward, so job 0 is always ready.
            None => return None,
        }
    }
    let a = replay(models, &submission);
    let b = replay(models, &adversarial);
    for (key, writer) in &a {
        let other = b.get(key).cloned().unwrap_or_default();
        if *writer != other {
            let dataset = key.rsplit(' ').next().unwrap_or(key).to_string();
            return Some(Violation::UnorderedConflict {
                scope: scope.to_string(),
                job_a: writer.clone(),
                job_b: if other.is_empty() { key.clone() } else { other },
                dataset,
            });
        }
    }
    None
}

/// Public entry to the serializability oracle for other passes: the
/// rewrite certifier ([`crate::rewrite::certify_rewrite`]) re-checks
/// transformed plans with the same adversarial replay used here.
pub fn serializability_check(scope: &str, models: &[EffectModel]) -> Option<Violation> {
    serializability_witness(scope, models)
}

/// Certify one registered pipeline race-free against the scanned submit
/// sites.
pub fn certify_graph(decomp: Decomp, variant: Variant, sites: &[SubmitSite]) -> GraphRaceCert {
    let graph = plan_for(decomp, variant);
    let env = witness_env();
    let (models, matched) = instance_models(&graph, &env, sites);
    let mut violations: Vec<Violation> = check_model(&models)
        .iter()
        .map(|f| model_violation(&graph.name, f))
        .collect();
    if violations.is_empty() {
        if let Some(v) = serializability_witness(&graph.name, &models) {
            violations.push(v);
        }
    }
    GraphRaceCert {
        decomp,
        variant,
        graph: graph.name.clone(),
        jobs_checked: models.len(),
        templates_matched: matched,
        templates_total: graph.jobs.len(),
        violations,
    }
}

/// Run the full races pass: scan the pipeline sources, then certify all
/// eight registered pipelines.
pub fn check_races_at(root: &Path) -> RaceCertReport {
    let scan = scan_sources(root);
    let mut certs = Vec::new();
    for decomp in Decomp::ALL {
        for variant in Variant::ALL {
            certs.push(certify_graph(decomp, variant, &scan.sites));
        }
    }
    RaceCertReport {
        source_violations: scan.violations,
        certs,
        files_scanned: scan.files_scanned,
    }
}

fn cached() -> &'static (RaceCertReport, Vec<SubmitSite>) {
    static CACHE: OnceLock<(RaceCertReport, Vec<SubmitSite>)> = OnceLock::new();
    CACHE.get_or_init(|| {
        let root = workspace_root();
        let sites = scan_sources(&root).sites;
        (check_races_at(&root), sites)
    })
}

/// Run (or reuse) the full races pass over the workspace sources.
pub fn check_races() -> RaceCertReport {
    cached().0.clone()
}

/// Static race verdict for one pipeline, for the chaos harness's
/// static ⊆ dynamic cross-validation. Cached: the source scan runs once
/// per process.
pub fn race_certified(decomp: Decomp, variant: Variant) -> bool {
    let report = &cached().0;
    report.source_violations.is_empty()
        && report
            .certs
            .iter()
            .any(|c| c.decomp == decomp && c.variant == variant && c.certified())
}

// ---------------------------------------------------------------------------
// Rejection demo: seeded racy batches
// ---------------------------------------------------------------------------

/// One deliberately racy batch program and what its rejection must name.
pub struct RaceRejection {
    /// What was broken.
    pub defect: &'static str,
    /// Pipeline the mutant was seeded from.
    pub graph: String,
    /// Expected earlier job of the racing pair.
    pub job_a: &'static str,
    /// Expected later job of the racing pair.
    pub job_b: &'static str,
    /// Expected racing dataset.
    pub dataset: &'static str,
    /// What the pass reported.
    pub violations: Vec<Violation>,
    /// Did the pass reject the mutant naming the pair and dataset?
    pub rejected: bool,
}

fn names_pair(violations: &[Violation], a: &str, b: &str, d: &str) -> bool {
    violations.iter().any(|v| {
        matches!(v, Violation::UnorderedConflict { job_a, job_b, dataset, .. }
            if job_a == a && job_b == b && dataset == d)
    })
}

/// Seed three racy mutants of the scanned `parafac-naive` batch — drop a
/// declared read, rename a declared write shard out from under the body,
/// swap two declared dependencies — and run each through the effect
/// rules. Every mutant must be rejected naming the racing job pair and
/// dataset.
pub fn run_race_rejections() -> Vec<RaceRejection> {
    let graph = plan_for(Decomp::Parafac, Variant::Naive);
    let env = witness_env();
    let sites = &cached().1;
    let (base, _matched) = instance_models(&graph, &env, sites);
    let idx = |name: &str| base.iter().position(|m| m.name == name);
    let mut out = Vec::new();
    // Degenerate scan (e.g. sources moved): emit un-rejected rows so the
    // gate fails loudly instead of passing vacuously.
    let (Some(xb1), Some(tc0), Some(tc1)) = (
        idx("parafac-naive-xb1"),
        idx("parafac-naive-tc0"),
        idx("parafac-naive-tc1"),
    ) else {
        out.push(RaceRejection {
            defect: "scan failure: parafac-naive submit sites not found",
            graph: graph.name.clone(),
            job_a: "parafac-naive-xb1",
            job_b: "parafac-naive-tc1",
            dataset: "t#1",
            violations: Vec::new(),
            rejected: false,
        });
        return out;
    };

    // 1. Drop a declared read: tc1 still consumes t#1 via its handle but
    //    no longer declares it, so the scheduler will not order it after
    //    xb1.
    let mut m1 = base.clone();
    m1[tc1].declared_reads.clear();
    let v1: Vec<Violation> = check_model(&m1)
        .iter()
        .map(|f| model_violation(&graph.name, f))
        .collect();
    let r1 = names_pair(&v1, "parafac-naive-xb1", "parafac-naive-tc1", "t#1")
        && v1
            .iter()
            .any(|v| matches!(v, Violation::UndeclaredEffect { .. }));
    out.push(RaceRejection {
        defect: "dropped declared read (body still consumes the handle)",
        graph: graph.name.clone(),
        job_a: "parafac-naive-xb1",
        job_b: "parafac-naive-tc1",
        dataset: "t#1",
        violations: v1,
        rejected: r1,
    });

    // 2. Rename a write shard in the declaration while the body still
    //    writes the old shard directly.
    let mut m2 = base.clone();
    m2[xb1].declared_writes = vec!["u#1".to_string()];
    m2[xb1].inferred_writes = vec!["t#1".to_string()];
    let v2: Vec<Violation> = check_model(&m2)
        .iter()
        .map(|f| model_violation(&graph.name, f))
        .collect();
    let r2 = names_pair(&v2, "parafac-naive-xb1", "parafac-naive-tc1", "t#1")
        && v2
            .iter()
            .any(|v| matches!(v, Violation::UndeclaredEffect { .. }));
    out.push(RaceRejection {
        defect: "renamed declared write shard (body still writes the old shard)",
        graph: graph.name.clone(),
        job_a: "parafac-naive-xb1",
        job_b: "parafac-naive-tc1",
        dataset: "t#1",
        violations: v2,
        rejected: r2,
    });

    // 3. Swap two declared dependencies: tc0 and tc1 exchange declared
    //    reads while each body keeps its own handle.
    let mut m3 = base.clone();
    let tmp = m3[tc0].declared_reads.clone();
    m3[tc0].declared_reads = m3[tc1].declared_reads.clone();
    m3[tc1].declared_reads = tmp;
    let v3: Vec<Violation> = check_model(&m3)
        .iter()
        .map(|f| model_violation(&graph.name, f))
        .collect();
    let r3 = names_pair(&v3, "parafac-naive-xb1", "parafac-naive-tc1", "t#1")
        && names_pair(&v3, "parafac-naive-xb0", "parafac-naive-tc0", "t#0");
    out.push(RaceRejection {
        defect: "swapped declared dependencies between two readers",
        graph: graph.name.clone(),
        job_a: "parafac-naive-xb1",
        job_b: "parafac-naive-tc1",
        dataset: "t#1",
        violations: v3,
        rejected: r3,
    });

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eight_pipelines_certify_race_free() {
        let report = check_races();
        assert!(
            report.source_violations.is_empty(),
            "source findings: {:?}",
            report.source_violations
        );
        assert_eq!(report.certs.len(), 8);
        for c in &report.certs {
            assert!(
                c.certified(),
                "{} not certified: matched {}/{} templates, violations {:?}",
                c.graph,
                c.templates_matched,
                c.templates_total,
                c.violations
            );
            assert!(c.jobs_checked >= 2, "{}: too few instances", c.graph);
        }
        assert!(report.ok());
    }

    #[test]
    fn every_submit_site_of_every_plan_is_scanned() {
        // Template coverage is what makes the certificate meaningful: a
        // renamed job in the sources must fail the match, not pass
        // silently.
        let report = check_races();
        for c in &report.certs {
            assert_eq!(
                c.templates_matched, c.templates_total,
                "{}: a plan template has no scanned submit site",
                c.graph
            );
        }
    }

    #[test]
    fn race_rejections_name_pair_and_dataset() {
        let rejections = run_race_rejections();
        assert_eq!(rejections.len(), 3);
        for r in &rejections {
            assert!(
                r.rejected,
                "mutant '{}' not rejected naming ({}, {}, {}): {:?}",
                r.defect, r.job_a, r.job_b, r.dataset, r.violations
            );
        }
    }

    #[test]
    fn serializability_witness_catches_an_unordered_pair() {
        // Two writers of the same dataset with no declared edge between
        // them: the adversarial order flips them and the replays disagree.
        let models = vec![
            EffectModel {
                name: "w0".into(),
                declared_writes: vec!["d".into()],
                ..EffectModel::default()
            },
            EffectModel {
                name: "w1".into(),
                // Disjoint declared set ⇒ no WAW edge; the direct write
                // happens behind the declaration's back.
                declared_writes: vec!["e".into()],
                inferred_writes: vec!["d".into()],
                ..EffectModel::default()
            },
            EffectModel {
                name: "r".into(),
                declared_reads: vec!["d".into(), "e".into()],
                ..EffectModel::default()
            },
        ];
        // The pairwise rule already flags this; the witness is checked
        // directly on a variant the pairwise rules would order: here the
        // declared sets are disjoint so the pair is unordered, and the
        // check_model path reports it.
        let findings = check_model(&models);
        assert!(
            findings.iter().any(|f| f.rule == "unordered-conflict"),
            "{findings:?}"
        );
        // And a program whose declared DAG orders everything replays
        // identically under both schedules.
        let ordered = vec![
            EffectModel {
                name: "a".into(),
                declared_writes: vec!["d#0".into()],
                ..EffectModel::default()
            },
            EffectModel {
                name: "b".into(),
                declared_writes: vec!["d#1".into()],
                ..EffectModel::default()
            },
            EffectModel {
                name: "c".into(),
                declared_reads: vec!["d".into()],
                declared_writes: vec!["y".into()],
                ..EffectModel::default()
            },
        ];
        assert!(serializability_witness("test", &ordered).is_none());
    }

    #[test]
    fn witness_env_ranks_are_distinct_and_small() {
        let env = witness_env();
        assert_eq!(env.rank_q, 2);
        assert_eq!(env.rank_r, 3);
    }
}
