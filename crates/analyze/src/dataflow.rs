//! Dataflow well-formedness: every dataset is produced before it is
//! consumed, never clobbered while live, and never written for nothing.
//!
//! The pass walks a [`JobGraph`]'s templates in execution order at
//! *template* granularity: the instances of one template (e.g. the `Q`
//! Hadamard jobs `tucker-dnn-had-b{}`) all append to the same dataset and
//! count as a single write event. Driver-provided inputs are modelled as a
//! write by the pseudo-producer [`DRIVER`] that happens before the first
//! job.

use crate::Violation;
use haten2_mapreduce::JobGraph;
use std::collections::HashMap;

/// Pseudo-producer name for datasets that exist before the first job
/// (driver-provided inputs).
pub const DRIVER: &str = "<driver input>";

/// State of one dataset while walking the graph.
struct DatasetState {
    /// Template name of the most recent writer.
    last_writer: String,
    /// Whether anything read the dataset since that write.
    read_since_write: bool,
}

/// Check a graph's dataset wiring; returns every violation found (empty =
/// well-formed).
pub fn check_dataflow(graph: &JobGraph) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut state: HashMap<String, DatasetState> = graph
        .inputs
        .iter()
        .map(|ds| {
            (
                ds.clone(),
                DatasetState {
                    last_writer: DRIVER.to_string(),
                    // Inputs are allowed to go unread (a driver may register
                    // more views than a variant touches).
                    read_since_write: true,
                },
            )
        })
        .collect();

    for job in &graph.jobs {
        for ds in &job.reads {
            match state.get_mut(ds) {
                Some(s) => s.read_since_write = true,
                None => violations.push(Violation::DanglingRead {
                    job: job.name.clone(),
                    dataset: ds.clone(),
                }),
            }
        }
        for ds in &job.writes {
            if let Some(s) = state.get(ds) {
                if !s.read_since_write {
                    violations.push(Violation::LostWrite {
                        job: job.name.clone(),
                        dataset: ds.clone(),
                        prior_job: s.last_writer.clone(),
                    });
                }
            }
            state.insert(
                ds.clone(),
                DatasetState {
                    last_writer: job.name.clone(),
                    read_since_write: false,
                },
            );
        }
    }

    for (ds, s) in &state {
        if !s.read_since_write && !graph.outputs.iter().any(|o| o == ds) {
            violations.push(Violation::UnusedDataset {
                job: s.last_writer.clone(),
                dataset: ds.clone(),
            });
        }
    }
    violations.sort_by(|a, b| format!("{a}").cmp(&format!("{b}")));
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use haten2_mapreduce::{PlanJob, SymExpr};

    fn well_formed() -> JobGraph {
        JobGraph::new("wf", [])
            .big_input("x")
            .output("y")
            .job(
                PlanJob::new("expand{}")
                    .repeat(SymExpr::rank_q())
                    .reads(["x"])
                    .writes(["t"])
                    .emits(SymExpr::nnz(), SymExpr::nnz()),
            )
            .job(
                PlanJob::new("merge")
                    .reads(["t"])
                    .writes(["y"])
                    .emits(SymExpr::nnz(), SymExpr::nnz()),
            )
    }

    #[test]
    fn accepts_well_formed_graph() {
        assert!(check_dataflow(&well_formed()).is_empty());
    }

    #[test]
    fn flags_dangling_read() {
        let mut g = well_formed();
        g.jobs[1].reads = vec!["t_typo".to_string()];
        let v = check_dataflow(&g);
        assert_eq!(v.len(), 2, "dangling read plus the now-unread 't': {v:?}");
        assert!(v.iter().any(|v| matches!(
            v,
            Violation::DanglingRead { job, dataset } if job == "merge" && dataset == "t_typo"
        )));
        assert!(v.iter().any(|v| matches!(
            v,
            Violation::UnusedDataset { dataset, .. } if dataset == "t"
        )));
    }

    #[test]
    fn flags_lost_write() {
        let mut g = well_formed();
        g.jobs.insert(
            1,
            PlanJob::new("rogue-refresh")
                .reads(["x"])
                .writes(["t"])
                .emits(SymExpr::nnz(), SymExpr::nnz()),
        );
        let v = check_dataflow(&g);
        assert!(v.iter().any(|v| matches!(
            v,
            Violation::LostWrite { job, dataset, prior_job }
                if job == "rogue-refresh" && dataset == "t" && prior_job == "expand{}"
        )));
    }

    #[test]
    fn flags_unused_dataset() {
        let g = well_formed().job(
            PlanJob::new("rogue-scan")
                .reads(["y"])
                .writes(["scratch"])
                .emits(SymExpr::nnz(), SymExpr::nnz()),
        );
        let v = check_dataflow(&g);
        assert!(matches!(
            &v[..],
            [Violation::UnusedDataset { job, dataset }]
                if job == "rogue-scan" && dataset == "scratch"
        ));
    }
}
