//! Cost verification: hold each pipeline's *derived* bounds to the
//! paper's Tables III/IV.
//!
//! The analyzer derives three quantities from a registered [`JobGraph`] —
//! max per-job intermediate records, total job instances, and passes over
//! the big input tensor — as [`SymExpr`]s, and compares each against the
//! paper's claimed expression by **extensional equivalence over the paper
//! regime**: both expressions must evaluate identically on every
//! environment of [`regime_envs`]. That sidesteps symbolic normalization
//! (the derived bound is a `max` over per-job costs; the claim is its
//! closed dominant form, and the two coincide exactly when the regime's
//! dominance conditions hold, e.g. `nnz·(Q+R) ≥ 2·nnz + J + K` for DRI).

use crate::Violation;
use haten2_core::{Decomp, Variant};
use haten2_mapreduce::{Env, JobGraph, SymExpr};

/// One row of the paper's cost table (Table III for Tucker, Table IV for
/// PARAFAC), as symbolic expressions.
#[derive(Debug, Clone)]
pub struct PaperClaim {
    /// Claimed max intermediate data (records) of any single job.
    pub max_intermediate: SymExpr,
    /// Claimed total MapReduce jobs per invocation.
    pub total_jobs: SymExpr,
    /// Claimed passes over the big input tensor per invocation.
    pub tensor_reads: SymExpr,
    /// Correspondence note where our statement refines the paper's (e.g.
    /// orientation-free `nnz + max(J, K)` for the paper's `nnz + J`).
    pub note: Option<&'static str>,
}

fn n() -> SymExpr {
    SymExpr::nnz()
}
fn ijk() -> SymExpr {
    SymExpr::dim_i() * SymExpr::dim_j() * SymExpr::dim_k()
}
fn q() -> SymExpr {
    SymExpr::rank_q()
}
fn r() -> SymExpr {
    SymExpr::rank_r()
}
fn c(v: u64) -> SymExpr {
    SymExpr::c(v)
}

/// The paper's claimed bounds for one (decomposition × variant) pipeline.
pub fn paper_claim(decomp: Decomp, variant: Variant) -> PaperClaim {
    match (decomp, variant) {
        // Table III (Tucker), with Q = |B columns|, R = |C columns|.
        (Decomp::Tucker, Variant::Naive) => PaperClaim {
            max_intermediate: n() + ijk(),
            total_jobs: q() + r(),
            tensor_reads: q(),
            note: None,
        },
        (Decomp::Tucker, Variant::Dnn) => PaperClaim {
            max_intermediate: n() * q() * r(),
            total_jobs: q() + r() + c(2),
            tensor_reads: q(),
            note: None,
        },
        (Decomp::Tucker, Variant::Drn) => PaperClaim {
            max_intermediate: n() * (q() + r()),
            total_jobs: q() + r() + c(1),
            tensor_reads: q() + r(),
            note: Some("tensor reads split Q over X and R over bin(X)"),
        },
        (Decomp::Tucker, Variant::Dri) => PaperClaim {
            max_intermediate: n() * (q() + r()),
            total_jobs: c(2),
            tensor_reads: c(1),
            note: None,
        },
        // Table IV (PARAFAC), rank R.
        (Decomp::Parafac, Variant::Naive) => PaperClaim {
            max_intermediate: n() + ijk(),
            total_jobs: c(2) * r(),
            tensor_reads: r(),
            note: None,
        },
        (Decomp::Parafac, Variant::Dnn) => PaperClaim {
            max_intermediate: n() + SymExpr::max(SymExpr::dim_j(), SymExpr::dim_k()),
            total_jobs: c(4) * r(),
            tensor_reads: r(),
            note: Some("paper writes nnz + J under its J ≥ K orientation"),
        },
        (Decomp::Parafac, Variant::Drn) => PaperClaim {
            max_intermediate: c(2) * n() * r(),
            total_jobs: c(2) * r() + c(1),
            tensor_reads: c(2) * r(),
            note: Some("tensor reads split R over X and R over bin(X)"),
        },
        (Decomp::Parafac, Variant::Dri) => PaperClaim {
            max_intermediate: c(2) * n() * r(),
            total_jobs: c(2),
            tensor_reads: c(1),
            note: None,
        },
    }
}

/// The environment grid over which claimed and derived expressions must
/// coincide: the paper's operating regime, where the tensor is sparse but
/// its nonzero count dominates its dimensions (`nnz ≥ 5·max(I,J,K)`) and
/// ranks are small (`2 ≤ Q, R ≤ 10`). Dimension triples are deliberately
/// taken in *both* orientations (J < K and J > K) so orientation-dependent
/// claims cannot pass by accident. The per-reducer memory budget `Mr`
/// spans a small and a large setting (both ≥ the `8·max(Q, R)` floor the
/// communication bounds assume — a reducer must at least hold one factor
/// row), so memory-dependent bounds are exercised at both ends without
/// leaving the bounds' validity regime.
pub fn regime_envs() -> Vec<Env> {
    let dims: [[u64; 3]; 6] = [
        [300, 400, 500],
        [300, 500, 400],
        [500, 400, 300],
        [1000, 800, 600],
        [600, 800, 1000],
        [800, 1000, 600],
    ];
    let ranks: [u64; 4] = [2, 3, 5, 10];
    let nnzs: [u64; 3] = [5_000, 20_000, 100_000];
    let reducer_memories: [u64; 2] = [4 << 10, 1 << 20];
    let mut envs = Vec::new();
    for d in dims {
        for &rank_q in &ranks {
            for &rank_r in &ranks {
                for &nnz in &nnzs {
                    for &reducer_memory in &reducer_memories {
                        envs.push(Env {
                            nnz,
                            dim_i: d[0],
                            dim_j: d[1],
                            dim_k: d[2],
                            rank_q,
                            rank_r,
                            machines: 10,
                            faults: 1,
                            reducer_memory,
                        });
                    }
                }
            }
        }
    }
    envs
}

fn mismatch_env(derived: &SymExpr, claimed: &SymExpr, envs: &[Env]) -> Option<Env> {
    envs.iter()
        .find(|e| derived.eval(e) != claimed.eval(e))
        .copied()
}

/// Check one graph against its paper row; returns every violation (empty =
/// the derived bounds match the table).
pub fn check_cost(graph: &JobGraph, claim: &PaperClaim, envs: &[Env]) -> Vec<Violation> {
    let mut violations = Vec::new();
    let derived = graph.max_intermediate_records();
    if let Some(env) = mismatch_env(&derived, &claim.max_intermediate, envs) {
        violations.push(Violation::CostMismatch {
            graph: graph.name.clone(),
            derived: derived.to_string(),
            claimed: claim.max_intermediate.to_string(),
            derived_val: derived.eval(&env),
            claimed_val: claim.max_intermediate.eval(&env),
            env,
        });
    }
    let derived = graph.total_jobs();
    if let Some(env) = mismatch_env(&derived, &claim.total_jobs, envs) {
        violations.push(Violation::JobCountMismatch {
            graph: graph.name.clone(),
            derived: derived.to_string(),
            claimed: claim.total_jobs.to_string(),
            derived_val: derived.eval(&env),
            claimed_val: claim.total_jobs.eval(&env),
            env,
        });
    }
    let derived = graph.big_input_reads();
    if let Some(env) = mismatch_env(&derived, &claim.tensor_reads, envs) {
        violations.push(Violation::TensorReadMismatch {
            graph: graph.name.clone(),
            derived: derived.to_string(),
            claimed: claim.tensor_reads.to_string(),
            derived_val: derived.eval(&env),
            claimed_val: claim.tensor_reads.eval(&env),
            env,
        });
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use haten2_core::plan_for;

    #[test]
    fn every_registered_pipeline_matches_its_paper_row() {
        let envs = regime_envs();
        for decomp in Decomp::ALL {
            for variant in Variant::ALL {
                let g = plan_for(decomp, variant);
                let v = check_cost(&g, &paper_claim(decomp, variant), &envs);
                assert!(v.is_empty(), "{decomp} {variant}: {v:?}");
            }
        }
    }

    #[test]
    fn wrong_claim_is_caught_with_counterexample() {
        let envs = regime_envs();
        let g = plan_for(Decomp::Tucker, Variant::Dri);
        // Claim the DNN bound for the DRI pipeline: nnz·Q·R ≠ nnz·(Q+R).
        let bogus = paper_claim(Decomp::Tucker, Variant::Dnn);
        let v = check_cost(&g, &bogus, &envs);
        assert!(v.iter().any(|v| matches!(
            v,
            Violation::CostMismatch { graph, derived_val, claimed_val, .. }
                if graph == "tucker-dri" && derived_val != claimed_val
        )));
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::JobCountMismatch { .. })));
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::TensorReadMismatch { .. })));
    }

    #[test]
    fn regime_covers_both_orientations() {
        let envs = regime_envs();
        assert!(envs.iter().any(|e| e.dim_j < e.dim_k));
        assert!(envs.iter().any(|e| e.dim_j > e.dim_k));
        assert!(envs.len() > 100);
    }
}
