//! CLI for the static plan analyzer.
//!
//! * `--verify-paper-table` — check all eight registered pipelines against
//!   the paper's Tables III/IV and print the markdown report (this is what
//!   `scripts/check.sh` commits to `ANALYSIS.md`). Exits non-zero on any
//!   violation.
//! * `--reject-demo` — run deliberately mis-wired plans through the
//!   analyzer and print the diagnostics, proving that malformed plans are
//!   rejected naming the offending job. Exits non-zero if any demo plan
//!   slips through.

use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: haten2-analyze [--verify-paper-table] [--reject-demo]\n\
         \n\
         --verify-paper-table  verify all 8 pipelines against the paper's cost\n\
         \x20                     tables and print the markdown report\n\
         --reject-demo         show that mis-wired plans are rejected with\n\
         \x20                     diagnostics naming the offending job"
    );
    ExitCode::from(2)
}

fn verify_paper_table() -> bool {
    let report = haten2_analyze::verify_paper_table();
    print!("{}", report.to_markdown());
    if report.ok() {
        true
    } else {
        eprintln!(
            "\npaper-table verification FAILED: {} violation(s)",
            report.violations().len()
        );
        false
    }
}

fn reject_demo() -> bool {
    let mut all_rejected = true;
    println!("# Analyzer rejection demo\n");
    for (r, violations, ok) in haten2_analyze::demo::run_rejections() {
        println!("## {} — {}", r.graph.name, r.defect);
        if violations.is_empty() {
            println!("NOT REJECTED (analyzer found nothing)\n");
        } else {
            for v in &violations {
                println!("- {v}");
            }
            println!();
        }
        if !ok {
            all_rejected = false;
            eprintln!(
                "demo plan '{}' was not rejected with the expected diagnostic",
                r.graph.name
            );
        }
    }
    if all_rejected {
        println!("all demo plans rejected, each diagnostic names the offending job");
    }
    all_rejected
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let mut ok = true;
    for arg in &args {
        ok &= match arg.as_str() {
            "--verify-paper-table" => verify_paper_table(),
            "--reject-demo" => reject_demo(),
            _ => return usage(),
        };
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
