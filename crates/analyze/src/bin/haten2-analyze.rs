//! CLI for the static plan analyzer.
//!
//! * `--verify-paper-table` — check all eight registered pipelines against
//!   the paper's Tables III/IV, certify their recoverability under the
//!   symbolic fault budget, run the determinism scan, and print the report
//!   (this is what `cargo xtask analyze` commits to `ANALYSIS.md`). Exits
//!   non-zero on any violation.
//! * `--reject-demo` — run deliberately defective plans/specs through the
//!   analyzer and print the diagnostics, proving that malformed plans are
//!   rejected naming the offending job, dataset, or sweep — including
//!   seeded racy batches, communication lies (wrong closed form,
//!   under-declared shuffle volume), and broken plan rewrites
//!   (volume-inflating, dataflow-breaking). Exits non-zero if any demo
//!   plan slips through.
//! * `--determinism` — print only the UDF-purity scan verdict.
//! * `--format md|json` — report format for `--verify-paper-table`
//!   (default `md`). JSON output is a single stable document with one
//!   object per violation (`haten2_analyze::json`).

use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: haten2-analyze [--format md|json] [--verify-paper-table] [--reject-demo] [--determinism]\n\
         \n\
         --verify-paper-table  verify all 8 pipelines against the paper's cost\n\
         \x20                     tables, certify recoverability, scan UDF purity,\n\
         \x20                     and print the report\n\
         --reject-demo         show that defective plans and recovery specs are\n\
         \x20                     rejected with diagnostics naming the offender\n\
         --determinism         print only the UDF-purity scan verdict\n\
         --format md|json      report format for --verify-paper-table (default md)"
    );
    ExitCode::from(2)
}

fn verify_paper_table(format: &str) -> bool {
    let report = haten2_analyze::verify_paper_table();
    match format {
        "json" => println!("{}", haten2_analyze::json::full_json(&report)),
        _ => print!("{}", report.to_markdown()),
    }
    if report.ok() {
        true
    } else {
        eprintln!(
            "\npaper-table verification FAILED: {} violation(s)",
            report.violations().len()
        );
        false
    }
}

fn determinism() -> bool {
    let report = haten2_analyze::check_determinism();
    println!(
        "determinism scan: {} file(s), {} reducer site(s), {} violation(s)",
        report.files_scanned,
        report.reducers.len(),
        report.violations.len()
    );
    for v in &report.violations {
        println!("- {v}");
    }
    report.ok()
}

fn reject_demo() -> bool {
    let mut all_rejected = true;
    println!("# Analyzer rejection demo\n");
    for (r, violations, ok) in haten2_analyze::demo::run_rejections() {
        println!("## {} — {}", r.graph.name, r.defect);
        if violations.is_empty() {
            println!("NOT REJECTED (analyzer found nothing)\n");
        } else {
            for v in &violations {
                println!("- {v}");
            }
            println!();
        }
        if !ok {
            all_rejected = false;
            eprintln!(
                "demo plan '{}' was not rejected with the expected diagnostic \
                 naming '{}'",
                r.graph.name, r.must_name
            );
        }
    }
    for r in haten2_analyze::races::run_race_rejections() {
        println!("## {} — {}", r.graph, r.defect);
        if r.violations.is_empty() {
            println!("NOT REJECTED (races pass found nothing)\n");
        } else {
            for v in &r.violations {
                println!("- {v}");
            }
            println!();
        }
        if !r.rejected {
            all_rejected = false;
            eprintln!(
                "seeded racing batch '{}' ({}) was not rejected naming jobs \
                 '{}'/'{}' and dataset '{}'",
                r.graph, r.defect, r.job_a, r.job_b, r.dataset
            );
        }
    }
    let envs = haten2_analyze::cost::regime_envs();
    for r in haten2_analyze::comm::run_comm_rejections(&envs) {
        println!("## {} — {}", r.graph, r.defect);
        if r.violations.is_empty() {
            println!("NOT REJECTED (comm pass found nothing)\n");
        } else {
            for v in &r.violations {
                println!("- {v}");
            }
            println!();
        }
        if !r.rejected {
            all_rejected = false;
            eprintln!(
                "seeded communication lie '{}' ({}) was not rejected via rule '{}'",
                r.graph, r.defect, r.rule
            );
        }
    }
    let merge_graph = haten2_core::plan_for(haten2_core::Decomp::Tucker, haten2_core::Variant::Dri);
    for r in haten2_analyze::rewrite::run_rewrite_rejections(&merge_graph, &envs) {
        println!("## {} on {} — {}", r.rewrite, r.graph, r.defect);
        if r.rule == "none" {
            println!(
                "{}\n",
                if r.rejected {
                    "certified (baseline rewrite must pass)"
                } else {
                    "BASELINE REWRITE REJECTED"
                }
            );
        } else if r.violations.is_empty() {
            println!("NOT REJECTED (rewrite certifier found nothing)\n");
        } else {
            for v in &r.violations {
                println!("- {v}");
            }
            println!();
        }
        if !r.rejected {
            all_rejected = false;
            eprintln!(
                "seeded rewrite mutant '{}' ({}) was not handled as expected \
                 (rule '{}')",
                r.rewrite, r.defect, r.rule
            );
        }
    }
    if all_rejected {
        println!(
            "all demo plans rejected, each diagnostic names the offending \
             job, dataset, sweep, racing pair, or rewrite"
        );
    }
    all_rejected
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let mut format = "md".to_string();
    let mut actions: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                let Some(f) = args.get(i + 1) else {
                    return usage();
                };
                if f != "md" && f != "json" {
                    return usage();
                }
                format = f.clone();
                i += 1;
            }
            "--verify-paper-table" => actions.push("verify"),
            "--reject-demo" => actions.push("reject"),
            "--determinism" => actions.push("determinism"),
            _ => return usage(),
        }
        i += 1;
    }
    if actions.is_empty() {
        return usage();
    }
    let mut ok = true;
    for action in actions {
        ok &= match action {
            "verify" => verify_paper_table(&format),
            "reject" => reject_demo(),
            "determinism" => determinism(),
            _ => unreachable!(),
        };
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
