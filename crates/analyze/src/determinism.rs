//! Determinism (UDF-purity) pass: certify that map/reduce closures cannot
//! produce different output under re-execution or reordering.
//!
//! Hadoop's fault tolerance silently *assumes* user-defined functions are
//! pure: a re-executed task must emit the same records, a reducer must
//! tolerate its values arriving in any order (speculative execution races
//! two attempts and keeps whichever finishes first). This pass makes the
//! assumption checkable:
//!
//! * **Source scan** — every closure passed to the engine's job runners
//!   (`run_job`, `run_job_dfs`, `run_job_dfs_recovering`) in
//!   `crates/mapreduce/src/pipeline.rs` and the `crates/core` pipelines is
//!   scanned by [`haten2_srcscan::scan_udf_purity`] for nondeterminism
//!   sources: unordered `HashMap`/`HashSet` iteration feeding emits,
//!   wall-clock reads, thread-id dependence, and float reductions not
//!   declared commutative-associative in the plan metadata.
//! * **Plan consistency** — every [`haten2_mapreduce::PlanJob`] whose `op`
//!   appears in [`haten2_core::COMM_ASSOC_REDUCERS`] must carry the
//!   `comm_assoc` flag and vice versa, so the annotation the scanner
//!   trusts is exactly the one the generated property tests exercise.

use crate::Violation;
use haten2_core::{is_comm_assoc_site, plan_for, Decomp, Variant};
use haten2_srcscan::{rs_files, scan_udf_purity, workspace_root, ReducerSite};
use std::path::{Path, PathBuf};

/// Result of the determinism pass over the workspace sources.
#[derive(Debug)]
pub struct DeterminismReport {
    /// Purity violations found (empty = all scanned UDFs are pure).
    pub violations: Vec<Violation>,
    /// Every reducer site seen, for coverage reporting.
    pub reducers: Vec<ReducerSite>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl DeterminismReport {
    /// `true` when no scanned closure violates a purity rule and the plan
    /// annotations are consistent with the registry.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The library sources whose job-runner closures the pass scans: the
/// engine's pipeline layer plus every `haten2-core` pipeline module.
fn scan_targets(root: &Path) -> Vec<PathBuf> {
    let mut files = vec![root.join("crates/mapreduce/src/pipeline.rs")];
    let mut core = Vec::new();
    rs_files(&root.join("crates/core/src"), &mut core);
    core.sort();
    files.extend(core);
    files.retain(|f| f.exists());
    files
}

/// Run the source-scan half of the pass on the workspace rooted at `root`.
pub fn scan_workspace(root: &Path) -> DeterminismReport {
    let mut violations = Vec::new();
    let mut reducers = Vec::new();
    let files = scan_targets(root);
    let files_scanned = files.len();
    for file in files {
        let Ok(text) = std::fs::read_to_string(&file) else {
            continue;
        };
        let (findings, mut sites) = scan_udf_purity(&file, &text, &is_comm_assoc_site);
        for f in findings {
            violations.push(Violation::NondeterministicUdf {
                file: f.file.display().to_string(),
                line: f.line,
                rule: f.rule.to_string(),
                site: f.site,
                message: f.message,
            });
        }
        reducers.append(&mut sites);
    }
    violations.extend(check_plan_consistency());
    DeterminismReport {
        violations,
        reducers,
        files_scanned,
    }
}

/// Run the full determinism pass from the current workspace.
pub fn check_determinism() -> DeterminismReport {
    scan_workspace(&workspace_root())
}

/// The plan-consistency half: `comm_assoc` flags on every registered graph
/// must agree with the annotation registry, in both directions.
pub fn check_plan_consistency() -> Vec<Violation> {
    let mut violations = Vec::new();
    for decomp in Decomp::ALL {
        for variant in Variant::ALL {
            let g = plan_for(decomp, variant);
            for job in &g.jobs {
                let Some(op) = job.op.as_deref() else {
                    violations.push(Violation::AnnotationMismatch {
                        graph: g.name.clone(),
                        job: job.name.clone(),
                        op: "<none>".to_string(),
                        detail: "job declares no reducer op; the determinism pass \
                                 cannot match it against the registry"
                            .to_string(),
                    });
                    continue;
                };
                let registered = is_comm_assoc_site(op);
                if job.comm_assoc && !registered {
                    violations.push(Violation::AnnotationMismatch {
                        graph: g.name.clone(),
                        job: job.name.clone(),
                        op: op.to_string(),
                        detail: "declared comm_assoc but the reducer registry has no \
                                 entry (so no property test covers the claim)"
                            .to_string(),
                    });
                }
                if !job.comm_assoc && registered {
                    violations.push(Violation::AnnotationMismatch {
                        graph: g.name.clone(),
                        job: job.name.clone(),
                        op: op.to_string(),
                        detail: "registry declares the reducer comm-assoc but the plan \
                                 does not flag the job"
                            .to_string(),
                    });
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_pipelines_are_clean() {
        let report = check_determinism();
        assert!(
            report.ok(),
            "determinism violations on the real tree: {:#?}",
            report.violations
        );
        // The scan must actually see the pipelines (engine pipeline layer
        // + core modules), and find the annotated reducers.
        assert!(report.files_scanned >= 5, "{} files", report.files_scanned);
        assert!(
            report.reducers.iter().any(|r| r.site == "collapse_job"),
            "reducer sites seen: {:?}",
            report
                .reducers
                .iter()
                .map(|r| r.site.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn every_float_reducing_site_is_annotated() {
        let report = check_determinism();
        for r in &report.reducers {
            if r.has_float_reduction {
                assert!(
                    is_comm_assoc_site(&r.site),
                    "float-reducing site '{}' ({}:{}) lacks a comm-assoc annotation",
                    r.site,
                    r.file.display(),
                    r.line
                );
            }
        }
    }

    #[test]
    fn seeded_nondeterministic_reducer_is_flagged() {
        let src = r#"
fn seeded() {
    run_job(
        c,
        JobSpec::named("seeded-bad"),
        &input,
        |k, v, emit| emit(k, v),
        |k, vals, emit| {
            let mut acc: HashMap<u64, f64> = HashMap::new();
            for v in vals { *acc.entry(v).or_insert(0.0) += 1.0; }
            for (k2, v2) in acc { emit(k2, v2); }
        },
    );
}
"#;
        let (findings, _) =
            scan_udf_purity(std::path::Path::new("seeded.rs"), src, &is_comm_assoc_site);
        assert!(findings
            .iter()
            .any(|f| f.rule == "no-unordered-iteration" && f.site == "seeded-bad"));
        assert!(findings
            .iter()
            .any(|f| f.rule == "unannotated-float-reduction"));
    }
}
