//! Machine-readable analyzer output (`haten2-analyze --format json`).
//!
//! Hand-rolled serialization — the workspace vendors no serde — with a
//! deliberately stable schema so CI and the chaos cross-validator can
//! consume verdicts without parsing markdown:
//!
//! ```json
//! {
//!   "ok": true,
//!   "envs_checked": 288,
//!   "rows": [ {"graph": "...", "verdict": "verified", ...}, ... ],
//!   "recovery": [ {"graph": "...", "certified": true, ...}, ... ],
//!   "races": [ {"graph": "...", "certified": true, ...}, ... ],
//!   "comm": [ {"graph": "...", "shuffle": "...", "bound": "...", ...}, ... ],
//!   "rewrites": [ {"rewrite": "...", "graph": "...", "certified": true, ...}, ... ],
//!   "determinism": {"ok": true, "files_scanned": 13, "violations": []},
//!   "violations": [ {"pass": "...", "kind": "...", ...}, ... ]
//! }
//! ```
//!
//! Every violation is **one object** with a `pass` (which analyzer pass
//! produced it), a `kind` (the [`Violation`] variant name in kebab-case),
//! its variant fields, and a `display` with the human diagnostic. Fields
//! are emitted in a fixed order; additions are append-only.

use crate::report::Report;
use crate::Violation;
use haten2_mapreduce::Env;
use std::fmt::Write as _;

/// Escape `s` for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn env_json(e: &Env) -> String {
    format!(
        "{{\"nnz\":{},\"dim_i\":{},\"dim_j\":{},\"dim_k\":{},\"rank_q\":{},\"rank_r\":{},\"machines\":{},\"faults\":{},\"reducer_memory\":{}}}",
        e.nnz, e.dim_i, e.dim_j, e.dim_k, e.rank_q, e.rank_r, e.machines, e.faults, e.reducer_memory
    )
}

/// Which pass a violation belongs to, for the `pass` field.
fn pass_of(v: &Violation) -> &'static str {
    match v {
        Violation::DanglingRead { .. }
        | Violation::LostWrite { .. }
        | Violation::UnusedDataset { .. } => "dataflow",
        Violation::CostMismatch { .. }
        | Violation::JobCountMismatch { .. }
        | Violation::TensorReadMismatch { .. } => "cost",
        Violation::UnrecoverableDataset { .. }
        | Violation::LineageCycle { .. }
        | Violation::RederivationTooDeep { .. }
        | Violation::CheckpointGap { .. } => "recovery",
        Violation::NondeterministicUdf { .. } | Violation::AnnotationMismatch { .. } => {
            "determinism"
        }
        Violation::UndeclaredEffect { .. }
        | Violation::UnorderedConflict { .. }
        | Violation::OverDeclaredRead { .. } => "races",
        Violation::ShuffleMismatch { .. } | Violation::CommBoundExceeded { .. } => "comm",
        Violation::RewriteVolumeInflation { .. } | Violation::RewriteDataflowBroken { .. } => {
            "rewrite"
        }
    }
}

/// One violation as a single JSON object (the stable unit of the schema).
pub fn violation_json(v: &Violation) -> String {
    let pass = pass_of(v);
    let body = match v {
        Violation::DanglingRead { job, dataset } => format!(
            "\"kind\":\"dangling-read\",\"job\":\"{}\",\"dataset\":\"{}\"",
            esc(job),
            esc(dataset)
        ),
        Violation::LostWrite {
            job,
            dataset,
            prior_job,
        } => format!(
            "\"kind\":\"lost-write\",\"job\":\"{}\",\"dataset\":\"{}\",\"prior_job\":\"{}\"",
            esc(job),
            esc(dataset),
            esc(prior_job)
        ),
        Violation::UnusedDataset { job, dataset } => format!(
            "\"kind\":\"unused-dataset\",\"job\":\"{}\",\"dataset\":\"{}\"",
            esc(job),
            esc(dataset)
        ),
        Violation::CostMismatch {
            graph,
            derived,
            claimed,
            env,
            derived_val,
            claimed_val,
        } => format!(
            "\"kind\":\"cost-mismatch\",\"graph\":\"{}\",\"derived\":\"{}\",\"claimed\":\"{}\",\"env\":{},\"derived_val\":{},\"claimed_val\":{}",
            esc(graph), esc(derived), esc(claimed), env_json(env), derived_val, claimed_val
        ),
        Violation::JobCountMismatch {
            graph,
            derived,
            claimed,
            env,
            derived_val,
            claimed_val,
        } => format!(
            "\"kind\":\"job-count-mismatch\",\"graph\":\"{}\",\"derived\":\"{}\",\"claimed\":\"{}\",\"env\":{},\"derived_val\":{},\"claimed_val\":{}",
            esc(graph), esc(derived), esc(claimed), env_json(env), derived_val, claimed_val
        ),
        Violation::TensorReadMismatch {
            graph,
            derived,
            claimed,
            env,
            derived_val,
            claimed_val,
        } => format!(
            "\"kind\":\"tensor-read-mismatch\",\"graph\":\"{}\",\"derived\":\"{}\",\"claimed\":\"{}\",\"env\":{},\"derived_val\":{},\"claimed_val\":{}",
            esc(graph), esc(derived), esc(claimed), env_json(env), derived_val, claimed_val
        ),
        Violation::UnrecoverableDataset {
            dataset,
            reader,
            cause,
        } => format!(
            "\"kind\":\"unrecoverable-dataset\",\"dataset\":\"{}\",\"reader\":\"{}\",\"cause\":\"{}\"",
            esc(dataset),
            esc(reader),
            esc(cause)
        ),
        Violation::LineageCycle { graph, dataset } => format!(
            "\"kind\":\"lineage-cycle\",\"graph\":\"{}\",\"dataset\":\"{}\"",
            esc(graph),
            esc(dataset)
        ),
        Violation::RederivationTooDeep {
            dataset,
            depth,
            bound,
        } => format!(
            "\"kind\":\"rederivation-too-deep\",\"dataset\":\"{}\",\"depth\":{},\"bound\":{}",
            esc(dataset),
            depth,
            bound
        ),
        Violation::CheckpointGap { graph, sweep } => format!(
            "\"kind\":\"checkpoint-gap\",\"graph\":\"{}\",\"sweep\":{}",
            esc(graph),
            sweep
        ),
        Violation::NondeterministicUdf {
            file,
            line,
            rule,
            site,
            message,
        } => format!(
            "\"kind\":\"nondeterministic-udf\",\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"site\":\"{}\",\"message\":\"{}\"",
            esc(file), line, esc(rule), esc(site), esc(message)
        ),
        Violation::AnnotationMismatch {
            graph,
            job,
            op,
            detail,
        } => format!(
            "\"kind\":\"annotation-mismatch\",\"graph\":\"{}\",\"job\":\"{}\",\"op\":\"{}\",\"detail\":\"{}\"",
            esc(graph), esc(job), esc(op), esc(detail)
        ),
        Violation::UndeclaredEffect { site, job, dataset } => format!(
            "\"kind\":\"undeclared-effect\",\"site\":\"{}\",\"job\":\"{}\",\"dataset\":\"{}\"",
            esc(site),
            esc(job),
            esc(dataset)
        ),
        Violation::UnorderedConflict {
            scope,
            job_a,
            job_b,
            dataset,
        } => format!(
            "\"kind\":\"unordered-conflict\",\"scope\":\"{}\",\"job_a\":\"{}\",\"job_b\":\"{}\",\"dataset\":\"{}\"",
            esc(scope), esc(job_a), esc(job_b), esc(dataset)
        ),
        Violation::OverDeclaredRead { site, job, dataset } => format!(
            "\"kind\":\"over-declared-read\",\"site\":\"{}\",\"job\":\"{}\",\"dataset\":\"{}\"",
            esc(site),
            esc(job),
            esc(dataset)
        ),
        Violation::ShuffleMismatch {
            graph,
            derived,
            claimed,
            env,
            derived_val,
            claimed_val,
        } => format!(
            "\"kind\":\"shuffle-mismatch\",\"graph\":\"{}\",\"derived\":\"{}\",\"claimed\":\"{}\",\"env\":{},\"derived_val\":{},\"claimed_val\":{}",
            esc(graph), esc(derived), esc(claimed), env_json(env), derived_val, claimed_val
        ),
        Violation::CommBoundExceeded {
            graph,
            shuffle,
            bound,
            env,
            shuffle_val,
            bound_val,
        } => format!(
            "\"kind\":\"comm-bound-exceeded\",\"graph\":\"{}\",\"shuffle\":\"{}\",\"bound\":\"{}\",\"env\":{},\"shuffle_val\":{},\"bound_val\":{}",
            esc(graph), esc(shuffle), esc(bound), env_json(env), shuffle_val, bound_val
        ),
        Violation::RewriteVolumeInflation {
            rewrite,
            graph,
            declared,
            env,
            original_val,
            rewritten_val,
        } => format!(
            "\"kind\":\"rewrite-volume-inflation\",\"rewrite\":\"{}\",\"graph\":\"{}\",\"declared\":\"{}\",\"env\":{},\"original_val\":{},\"rewritten_val\":{}",
            esc(rewrite), esc(graph), esc(declared), env_json(env), original_val, rewritten_val
        ),
        Violation::RewriteDataflowBroken {
            rewrite,
            graph,
            cause,
        } => format!(
            "\"kind\":\"rewrite-dataflow-broken\",\"rewrite\":\"{}\",\"graph\":\"{}\",\"cause\":\"{}\"",
            esc(rewrite),
            esc(graph),
            esc(cause)
        ),
    };
    format!(
        "{{\"pass\":\"{pass}\",{body},\"display\":\"{}\"}}",
        esc(&v.to_string())
    )
}

/// The full analyzer verdict as one JSON document.
pub fn full_json(report: &Report) -> String {
    let mut out = String::new();
    out.push('{');
    let _ = write!(out, "\"ok\":{},", report.ok());
    let _ = write!(out, "\"envs_checked\":{},", report.envs_checked);

    out.push_str("\"rows\":[");
    for (i, r) in report.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let verdict = if r.violations.is_empty() {
            "verified"
        } else {
            "violated"
        };
        let _ = write!(
            out,
            "{{\"graph\":\"{}\",\"decomp\":\"{}\",\"variant\":\"{}\",\"max_intermediate\":\"{}\",\"total_jobs\":\"{}\",\"tensor_reads\":\"{}\",\"dominant_job\":\"{}\",\"verdict\":\"{}\"}}",
            esc(&r.graph),
            esc(&r.decomp.to_string()),
            esc(&r.variant.to_string()),
            esc(&r.claim.max_intermediate.to_string()),
            esc(&r.claim.total_jobs.to_string()),
            esc(&r.claim.tensor_reads.to_string()),
            esc(&r.dominant_job),
            verdict
        );
    }
    out.push_str("],");

    out.push_str("\"recovery\":[");
    for (i, r) in report.rows.iter().enumerate() {
        let c = &r.recovery;
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"graph\":\"{}\",\"certified\":{},\"per_fault_worst\":\"{}\",\"total_bound\":\"{}\",\"max_depth\":{}}}",
            esc(&c.graph),
            c.certified(),
            esc(&c.bound.per_fault_worst.to_string()),
            esc(&c.bound.total.to_string()),
            c.bound.max_depth
        );
    }
    out.push_str("],");

    out.push_str("\"races\":[");
    for (i, r) in report.rows.iter().enumerate() {
        let c = &r.races;
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"graph\":\"{}\",\"certified\":{},\"jobs_checked\":{},\"templates_matched\":{},\"templates_total\":{}}}",
            esc(&c.graph),
            c.certified(),
            c.jobs_checked,
            c.templates_matched,
            c.templates_total
        );
    }
    out.push_str("],");

    out.push_str("\"comm\":[");
    for (i, c) in report.comm.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"graph\":\"{}\",\"shuffle\":\"{}\",\"bound_indep\":\"{}\",\"bound_dep\":\"{}\",\"bound\":\"{}\",\"gap_at_witness\":{},\"gap_bounded_in_nnz\":{},\"exact\":{}}}",
            esc(&c.graph),
            esc(&c.shuffle.to_string()),
            esc(&c.bound_indep.to_string()),
            esc(&c.bound_dep.to_string()),
            esc(&c.bound.to_string()),
            c.gap_at_witness,
            !c.gap_unbounded_in_nnz,
            c.exact
        );
    }
    out.push_str("],");

    out.push_str("\"rewrites\":[");
    for (i, c) in report.rewrites.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rewrite\":\"{}\",\"graph\":\"{}\",\"declared_inflation\":\"{}\",\"certified\":{}}}",
            esc(&c.rewrite),
            esc(&c.graph),
            esc(&c.declared),
            c.certified()
        );
    }
    out.push_str("],");

    let det = &report.determinism;
    let _ = write!(
        out,
        "\"determinism\":{{\"ok\":{},\"files_scanned\":{},\"reducers_seen\":{}}},",
        det.ok(),
        det.files_scanned,
        det.reducers.len()
    );

    out.push_str("\"violations\":[");
    for (i, v) in report.violations().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&violation_json(v));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_objects_are_wellformed() {
        let v = Violation::UnrecoverableDataset {
            dataset: "t_prime".to_string(),
            reader: "merge \"job\"".to_string(),
            cause: "no recipe".to_string(),
        };
        let j = violation_json(&v);
        assert!(j.starts_with("{\"pass\":\"recovery\""));
        assert!(j.contains("\"kind\":\"unrecoverable-dataset\""));
        assert!(j.contains("\\\"job\\\""), "quotes escaped: {j}");
        assert!(j.ends_with('}'));
    }

    #[test]
    fn race_violation_objects_carry_pair_and_dataset() {
        // The races pass emits one object per finding; an unordered
        // conflict must name both jobs of the racing pair and the
        // dataset, mirroring the runtime's two-job PlanViolation and
        // DuplicateWrite messages.
        let v = Violation::UnorderedConflict {
            scope: "parafac-naive".to_string(),
            job_a: "parafac-naive-xb1".to_string(),
            job_b: "parafac-naive-tc1".to_string(),
            dataset: "t#1".to_string(),
        };
        let j = violation_json(&v);
        assert!(j.starts_with("{\"pass\":\"races\""));
        assert!(j.contains("\"kind\":\"unordered-conflict\""));
        assert!(j.contains("\"job_a\":\"parafac-naive-xb1\""));
        assert!(j.contains("\"job_b\":\"parafac-naive-tc1\""));
        assert!(j.contains("\"dataset\":\"t#1\""));
        for v in [
            Violation::UndeclaredEffect {
                site: "core/src/ops.rs:10".to_string(),
                job: "a".to_string(),
                dataset: "d#0".to_string(),
            },
            Violation::OverDeclaredRead {
                site: "core/src/ops.rs:11".to_string(),
                job: "b".to_string(),
                dataset: "d".to_string(),
            },
        ] {
            let j = violation_json(&v);
            assert!(j.starts_with("{\"pass\":\"races\""), "{j}");
            assert!(j.contains("\"site\":"), "{j}");
            assert!(j.contains("\"display\":"), "{j}");
        }
    }

    #[test]
    fn comm_violation_objects_carry_expressions_and_envs() {
        // The comm/rewrite passes' objects follow the same shape as the
        // cost pass: symbolic expressions as strings, the counterexample
        // env inline, concrete values as numbers — and the `kind` field
        // always equals `Violation::kind()`.
        let env = crate::comm::witness_env();
        let vs = [
            Violation::ShuffleMismatch {
                graph: "g".to_string(),
                derived: "57·nnz".to_string(),
                claimed: "56·nnz".to_string(),
                env,
                derived_val: 57,
                claimed_val: 56,
            },
            Violation::CommBoundExceeded {
                graph: "g".to_string(),
                shuffle: "nnz".to_string(),
                bound: "max(25·nnz, nnz·(Q + R)·8 / Mr)".to_string(),
                env,
                shuffle_val: 1,
                bound_val: 25,
            },
            Violation::RewriteVolumeInflation {
                rewrite: "heavy-key-split-no-combine".to_string(),
                graph: "g".to_string(),
                declared: "2/1".to_string(),
                env,
                original_val: 10,
                rewritten_val: 40,
            },
            Violation::RewriteDataflowBroken {
                rewrite: "heavy-key-split-typo-merge".to_string(),
                graph: "g".to_string(),
                cause: "dangling read".to_string(),
            },
        ];
        for v in &vs {
            let j = violation_json(v);
            assert!(
                j.contains(&format!("\"kind\":\"{}\"", v.kind())),
                "kind mismatch: {j}"
            );
            assert!(j.contains("\"display\":"), "{j}");
        }
        assert!(violation_json(&vs[0]).starts_with("{\"pass\":\"comm\""));
        assert!(violation_json(&vs[1]).contains("\"reducer_memory\":"));
        assert!(violation_json(&vs[2]).starts_with("{\"pass\":\"rewrite\""));
        assert!(violation_json(&vs[3]).contains("\"cause\":\"dangling read\""));
    }

    #[test]
    fn comm_section_covers_every_pipeline_with_full_schema() {
        // Mirrors the races-section coverage test: one object per
        // pipeline, every schema key present.
        let report = crate::verify_paper_table();
        let doc = full_json(&report);
        assert!(doc.contains("\"comm\":["));
        assert!(doc.contains("\"rewrites\":["));
        assert_eq!(doc.matches("\"bound_indep\":").count(), report.comm.len());
        assert_eq!(report.comm.len(), 8);
        for c in &report.comm {
            for key in [
                "graph",
                "shuffle",
                "bound_indep",
                "bound_dep",
                "bound",
                "gap_at_witness",
                "gap_bounded_in_nnz",
                "exact",
            ] {
                assert!(
                    doc.contains(&format!("\"{key}\":")),
                    "comm schema key {key} missing"
                );
            }
            assert!(
                doc.contains(&format!("{{\"graph\":\"{}\",\"shuffle\":", c.graph)),
                "no comm object for {}",
                c.graph
            );
        }
        for c in &report.rewrites {
            assert!(
                doc.contains(&format!(
                    "{{\"rewrite\":\"{}\",\"graph\":\"{}\"",
                    c.rewrite, c.graph
                )),
                "no rewrite object for {} on {}",
                c.rewrite,
                c.graph
            );
        }
        assert!(doc.contains("\"certified\":true"));
    }

    #[test]
    fn escaping_handles_control_chars() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn full_document_round_trips_the_clean_tree() {
        let doc = full_json(&crate::verify_paper_table());
        assert!(
            doc.starts_with("{\"ok\":true"),
            "{}",
            &doc[..60.min(doc.len())]
        );
        assert!(doc.contains("\"recovery\":["));
        assert!(doc.contains("\"races\":["));
        assert!(doc.contains("\"violations\":[]"));
        // Balanced braces/brackets outside strings = structurally sound.
        let (mut depth, mut in_str, mut escp) = (0i64, false, false);
        for c in doc.chars() {
            if escp {
                escp = false;
                continue;
            }
            match c {
                '\\' if in_str => escp = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }
}
