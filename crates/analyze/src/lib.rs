//! Static plan analyzer: verify the paper's cost table before a job runs.
//!
//! HaTen2's contribution is largely *static*: Tables III/IV bound, per
//! variant, the maximum intermediate data of any MapReduce job, the total
//! number of jobs per iteration, and how often the (billion-scale) input
//! tensor is re-read. This crate checks those claims against the
//! declarative [`JobGraph`]s the pipelines register in
//! `haten2_core::plan`, without executing anything:
//!
//! * **Dataflow pass** ([`dataflow::check_dataflow`]) — every dataset is
//!   produced before it is consumed, never overwritten while live, and
//!   never written without a reader; big-tensor reads are counted from the
//!   graph, so a variant cannot silently take an extra pass over the
//!   input.
//! * **Cost pass** ([`cost::check_cost`]) — the graph-derived max
//!   intermediate records, job count, and tensor-read count are held to
//!   the paper's claimed expressions by extensional equivalence over the
//!   operating-regime grid ([`cost::regime_envs`]).
//! * **Durable I/O pass** ([`io::durable_io_table`]) — when the tensor
//!   lives in the durable block store and the memory budget is smaller
//!   than it, each pass over the big input is a compulsory segment read;
//!   the pass derives the symbolic bytes-per-sweep floor
//!   `passes · nnz · record_bytes` (record width measured from the real
//!   `Persist` wire format) and the read amplification over the
//!   single-pass optimum that HaTen2-DRI attains.
//! * **Communication pass** ([`comm::comm_table`]) — derives each
//!   pipeline's total shuffle volume ([`haten2_mapreduce::JobGraph::
//!   shuffle_bytes`]), holds it to a hand-reconstructed closed form over
//!   the regime grid, instantiates the Ballard–Rouse MTTKRP communication
//!   lower bounds (memory-independent and memory-dependent) from the
//!   pipeline's registered [`haten2_core::CommSpec`], and certifies the
//!   symbolic gap ratio — plus a rewrite-certification API
//!   ([`rewrite::certify_rewrite`]) that re-checks any [`rewrite::
//!   PlanRewrite`]'s output graph for dataflow sanity, race-freedom, and
//!   shuffle-volume non-inflation beyond its declared factor.
//! * **Recoverability pass** ([`recovery::certify`]) — given a pipeline's
//!   declared [`RecoverySpec`](haten2_mapreduce::RecoverySpec) and the
//!   symbolic fault budget `k`, proves lineage closure (every read is
//!   durable or re-derivable), cycle-free re-derivation within the
//!   runtime's depth guard, checkpoint coverage of every ALS sweep, and a
//!   symbolic worst-case recovery bound `k · max(chains)` printed next to
//!   the paper's job counts.
//! * **Determinism pass** ([`determinism::check_determinism`]) — scans
//!   the map/reduce closures the real pipelines submit (via
//!   `haten2-srcscan`) for UDF impurity: unordered `HashMap`/`HashSet`
//!   iteration feeding emits, wall-clock reads, thread-id dependence, and
//!   float reductions not declared commutative-associative in plan
//!   metadata (each declaration is property-checked by a generated
//!   proptest per reducer).
//! * **Races pass** ([`races::check_races`]) — infers the dataset names
//!   each submitted closure actually touches (via `haten2-srcscan`
//!   effect inference, including `#shard` patterns), proves inferred ⊆
//!   declared per batch, expands every registered graph at a witness
//!   environment, and certifies that no two jobs unordered by declared
//!   dependencies conflict — plus an adversarial-schedule replay showing
//!   every topological order commutes with the submission-order oracle.
//!   The `race-detect` feature of the engine is the dynamic counterpart;
//!   the chaos harness cross-validates the two.
//! * **Lint pass** — source-level rules (forbidden APIs, undocumented
//!   `unsafe`, `unwrap` in library code) live in the `xtask` package
//!   (`cargo xtask lint`), layered on the same `haten2-srcscan` scanner:
//!   they scan text, not plans.
//!
//! Every violation is a [`Violation`] whose `Display` names the offending
//! job, dataset, sweep, or source site. `cargo run -p haten2-analyze --
//! --verify-paper-table` renders the full verification report (committed
//! as `ANALYSIS.md`, staleness-gated by `cargo xtask analyze`);
//! `--reject-demo` proves the analyzer rejects deliberately mis-wired or
//! under-covered plans ([`demo`]); `--format json` emits one stable JSON
//! object per violation for tooling.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod comm;
pub mod cost;
pub mod dataflow;
pub mod demo;
pub mod determinism;
pub mod fixture;
pub mod io;
pub mod json;
pub mod races;
pub mod recovery;
pub mod report;
pub mod rewrite;

pub use comm::{check_comm, comm_table, shuffle_claim, CommRow, COMM_RULES};
pub use cost::{paper_claim, regime_envs, PaperClaim};
pub use dataflow::check_dataflow;
pub use determinism::{check_determinism, check_plan_consistency, DeterminismReport};
pub use fixture::{load_plan_fixture, run_plan_fixture, PlanFixture};
pub use io::{durable_io_table, tensor_record_bytes, DurableIoRow};
pub use races::{check_races, race_certified, GraphRaceCert, RaceCertReport};
pub use recovery::{certify, Certification, RecoveryBound};
pub use report::{verify_paper_table, Report, RowVerdict};
pub use rewrite::{certify_rewrite, HeavyKeySplit, PlanRewrite, RewriteCert, REWRITE_RULES};

use haten2_mapreduce::{Env, JobGraph};

/// One defect found by the analyzer. `Display` always names the offending
/// job (or graph) so a rejection is actionable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A job reads a dataset that no earlier job writes and the driver
    /// does not provide.
    DanglingRead {
        /// Offending job template.
        job: String,
        /// The dataset it reads.
        dataset: String,
    },
    /// A job overwrites a dataset whose previous contents were never read
    /// — a lost update.
    LostWrite {
        /// Offending job template.
        job: String,
        /// The clobbered dataset.
        dataset: String,
        /// The writer whose output is lost.
        prior_job: String,
    },
    /// A dataset is written but neither read by a later job nor declared a
    /// pipeline output.
    UnusedDataset {
        /// The job left holding the unread write.
        job: String,
        /// The unused dataset.
        dataset: String,
    },
    /// The graph-derived max intermediate data disagrees with the paper's
    /// claim on some regime environment.
    CostMismatch {
        /// Graph whose bound failed.
        graph: String,
        /// Derived expression.
        derived: String,
        /// Claimed expression.
        claimed: String,
        /// Counterexample environment.
        env: Env,
        /// Derived value on `env`.
        derived_val: u128,
        /// Claimed value on `env`.
        claimed_val: u128,
    },
    /// The graph's total job count disagrees with the paper's claim.
    JobCountMismatch {
        /// Graph whose count failed.
        graph: String,
        /// Derived expression.
        derived: String,
        /// Claimed expression.
        claimed: String,
        /// Counterexample environment.
        env: Env,
        /// Derived value on `env`.
        derived_val: u128,
        /// Claimed value on `env`.
        claimed_val: u128,
    },
    /// The number of passes over the big input tensor disagrees with the
    /// variant's claim.
    TensorReadMismatch {
        /// Graph whose read count failed.
        graph: String,
        /// Derived expression.
        derived: String,
        /// Claimed expression.
        claimed: String,
        /// Counterexample environment.
        env: Env,
        /// Derived value on `env`.
        derived_val: u128,
        /// Claimed value on `env`.
        claimed_val: u128,
    },
    /// A job reads a dataset whose loss the plan cannot recover from:
    /// no lineage recipe covers it (or its producer chain never roots at a
    /// durable input).
    UnrecoverableDataset {
        /// The dataset whose loss is fatal.
        dataset: String,
        /// The job whose read hits the gap.
        reader: String,
        /// Why the dataset is unrecoverable.
        cause: String,
    },
    /// A dataset's producer chain is cyclic, so re-derivation can never
    /// terminate.
    LineageCycle {
        /// Graph the cycle lives in.
        graph: String,
        /// A dataset on the cycle.
        dataset: String,
    },
    /// A dataset's re-derivation chain is deeper than the runtime's
    /// recursion guard, so a recovery the plan relies on would be aborted.
    RederivationTooDeep {
        /// The dataset at the end of the chain.
        dataset: String,
        /// Static chain depth.
        depth: usize,
        /// The runtime bound ([`haten2_mapreduce::MAX_RECOVERY_DEPTH`]).
        bound: usize,
    },
    /// An iterative driver leaves a completed ALS sweep uncovered by any
    /// checkpoint, so a crash recomputes finished work.
    CheckpointGap {
        /// Graph (pipeline) the policy belongs to.
        graph: String,
        /// First sweep no checkpoint covers.
        sweep: usize,
    },
    /// A map/reduce closure contains a nondeterminism source (unordered
    /// iteration feeding emits, wall clock, thread identity, or an
    /// undeclared float reduction).
    NondeterministicUdf {
        /// Source file of the closure.
        file: String,
        /// 1-based line of the offending token.
        line: usize,
        /// Purity rule id.
        rule: String,
        /// Reducer/mapper site label.
        site: String,
        /// Rule rationale.
        message: String,
    },
    /// A plan's `comm_assoc` flag disagrees with the reducer-annotation
    /// registry (in either direction).
    AnnotationMismatch {
        /// Graph the job belongs to.
        graph: String,
        /// Offending job template.
        job: String,
        /// The reducer op named by the plan.
        op: String,
        /// What disagrees.
        detail: String,
    },
    /// A submitted closure touches a dataset its declaration omits, so
    /// the DAG scheduler cannot order the access.
    UndeclaredEffect {
        /// Where the effect was inferred: `file:line` for a source
        /// finding, the graph name for an instance-level one.
        site: String,
        /// Offending job (template or instance).
        job: String,
        /// The dataset the body touches without declaring.
        dataset: String,
    },
    /// Two jobs with no declared-dependency path between them conflict on
    /// a dataset (write/write or read/write) — the scheduler may run them
    /// concurrently.
    UnorderedConflict {
        /// Batch or graph the racing pair lives in.
        scope: String,
        /// Earlier job of the racing pair.
        job_a: String,
        /// Later job of the racing pair.
        job_b: String,
        /// The dataset both touch.
        dataset: String,
    },
    /// A declared read of an intermediate dataset the closure never
    /// consumes — a stale declaration that over-serializes the schedule.
    OverDeclaredRead {
        /// Where the declaration lives: `file:line` or the graph name.
        site: String,
        /// Job carrying the stale declaration.
        job: String,
        /// The declared-but-unused dataset.
        dataset: String,
    },
    /// The graph-derived total shuffle volume disagrees with the
    /// hand-reconstructed closed form on some regime environment.
    ShuffleMismatch {
        /// Graph whose shuffle volume failed.
        graph: String,
        /// Derived expression (`JobGraph::shuffle_bytes`).
        derived: String,
        /// Claimed closed-form expression.
        claimed: String,
        /// Counterexample environment.
        env: Env,
        /// Derived value on `env`.
        derived_val: u128,
        /// Claimed value on `env`.
        claimed_val: u128,
    },
    /// The instantiated MTTKRP communication lower bound exceeds the
    /// plan's declared shuffle volume on some regime environment — the
    /// plan under-declares communication that any execution must pay.
    CommBoundExceeded {
        /// Graph whose declaration is impossible.
        graph: String,
        /// Declared shuffle-volume expression.
        shuffle: String,
        /// The lower-bound expression that exceeds it.
        bound: String,
        /// Counterexample environment.
        env: Env,
        /// Declared shuffle bytes on `env`.
        shuffle_val: u128,
        /// Lower-bound bytes on `env`.
        bound_val: u128,
    },
    /// A plan rewrite inflates total shuffle volume beyond the factor it
    /// declares, on some regime environment.
    RewriteVolumeInflation {
        /// The offending rewrite, by name.
        rewrite: String,
        /// Graph the rewrite was applied to.
        graph: String,
        /// Declared inflation factor, as `num/den`.
        declared: String,
        /// Counterexample environment.
        env: Env,
        /// Original shuffle bytes on `env`.
        original_val: u128,
        /// Rewritten shuffle bytes on `env`.
        rewritten_val: u128,
    },
    /// A plan rewrite's output graph fails re-checking: broken dataflow
    /// or a race the original graph did not have.
    RewriteDataflowBroken {
        /// The offending rewrite, by name.
        rewrite: String,
        /// Graph the rewrite was applied to.
        graph: String,
        /// The underlying defect, rendered.
        cause: String,
    },
}

impl Violation {
    /// Stable kebab-case rule id of this violation — the name the fixture
    /// corpus and the JSON output key on.
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::DanglingRead { .. } => "dangling-read",
            Violation::LostWrite { .. } => "lost-write",
            Violation::UnusedDataset { .. } => "unused-dataset",
            Violation::CostMismatch { .. } => "cost-mismatch",
            Violation::JobCountMismatch { .. } => "job-count-mismatch",
            Violation::TensorReadMismatch { .. } => "tensor-read-mismatch",
            Violation::UnrecoverableDataset { .. } => "unrecoverable-dataset",
            Violation::LineageCycle { .. } => "lineage-cycle",
            Violation::RederivationTooDeep { .. } => "rederivation-too-deep",
            Violation::CheckpointGap { .. } => "checkpoint-gap",
            Violation::NondeterministicUdf { .. } => "nondeterministic-udf",
            Violation::AnnotationMismatch { .. } => "annotation-mismatch",
            Violation::UndeclaredEffect { .. } => "undeclared-effect",
            Violation::UnorderedConflict { .. } => "unordered-conflict",
            Violation::OverDeclaredRead { .. } => "over-declared-read",
            Violation::ShuffleMismatch { .. } => "shuffle-mismatch",
            Violation::CommBoundExceeded { .. } => "comm-bound-exceeded",
            Violation::RewriteVolumeInflation { .. } => "rewrite-volume-inflation",
            Violation::RewriteDataflowBroken { .. } => "rewrite-dataflow-broken",
        }
    }
}

fn fmt_env(env: &Env) -> String {
    format!(
        "nnz={}, I={}, J={}, K={}, Q={}, R={}, Mr={}",
        env.nnz, env.dim_i, env.dim_j, env.dim_k, env.rank_q, env.rank_r, env.reducer_memory
    )
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::DanglingRead { job, dataset } => write!(
                f,
                "dangling read: job '{job}' reads dataset '{dataset}', which no \
                 preceding job writes and the driver does not provide"
            ),
            Violation::LostWrite {
                job,
                dataset,
                prior_job,
            } => write!(
                f,
                "lost write: job '{job}' overwrites dataset '{dataset}' while the \
                 output of job '{prior_job}' is still unread"
            ),
            Violation::UnusedDataset { job, dataset } => write!(
                f,
                "unused dataset: job '{job}' writes '{dataset}', which no later job \
                 reads and the pipeline does not output"
            ),
            Violation::CostMismatch {
                graph,
                derived,
                claimed,
                env,
                derived_val,
                claimed_val,
            } => write!(
                f,
                "cost mismatch in graph '{graph}': derived max intermediate data \
                 {derived} ≠ claimed {claimed}; at {} the jobs produce {derived_val} \
                 records but the table claims {claimed_val}",
                fmt_env(env)
            ),
            Violation::JobCountMismatch {
                graph,
                derived,
                claimed,
                env,
                derived_val,
                claimed_val,
            } => write!(
                f,
                "job-count mismatch in graph '{graph}': derived {derived} ≠ claimed \
                 {claimed}; at {} the graph runs {derived_val} jobs but the table \
                 claims {claimed_val}",
                fmt_env(env)
            ),
            Violation::TensorReadMismatch {
                graph,
                derived,
                claimed,
                env,
                derived_val,
                claimed_val,
            } => write!(
                f,
                "tensor-read mismatch in graph '{graph}': derived {derived} ≠ claimed \
                 {claimed}; at {} the jobs read the big input {derived_val} times but \
                 the variant claims {claimed_val}",
                fmt_env(env)
            ),
            Violation::UnrecoverableDataset {
                dataset,
                reader,
                cause,
            } => write!(
                f,
                "unrecoverable dataset: job '{reader}' reads '{dataset}', whose loss \
                 cannot be re-derived ({cause})"
            ),
            Violation::LineageCycle { graph, dataset } => write!(
                f,
                "lineage cycle in graph '{graph}': re-deriving dataset '{dataset}' \
                 requires itself, so recovery can never terminate"
            ),
            Violation::RederivationTooDeep {
                dataset,
                depth,
                bound,
            } => write!(
                f,
                "re-derivation too deep: recovering dataset '{dataset}' re-runs a \
                 chain of {depth} jobs, past the runtime recursion guard of {bound}"
            ),
            Violation::CheckpointGap { graph, sweep } => write!(
                f,
                "checkpoint gap in '{graph}': completed sweep {sweep} is covered by \
                 no checkpoint, so a crash recomputes it"
            ),
            Violation::NondeterministicUdf {
                file,
                line,
                rule,
                site,
                message,
            } => write!(
                f,
                "nondeterministic UDF at {file}:{line} [{rule}] in site '{site}': \
                 {message}"
            ),
            Violation::AnnotationMismatch {
                graph,
                job,
                op,
                detail,
            } => write!(
                f,
                "annotation mismatch in graph '{graph}', job '{job}' (op '{op}'): \
                 {detail}"
            ),
            Violation::UndeclaredEffect { site, job, dataset } => write!(
                f,
                "undeclared effect at {site}: job '{job}' touches dataset \
                 '{dataset}' without declaring it, so the scheduler cannot \
                 order the access"
            ),
            Violation::UnorderedConflict {
                scope,
                job_a,
                job_b,
                dataset,
            } => write!(
                f,
                "unordered conflict in {scope}: jobs '{job_a}' and '{job_b}' \
                 both touch dataset '{dataset}' with no declared-dependency \
                 path between them — the DAG scheduler may race them"
            ),
            Violation::OverDeclaredRead { site, job, dataset } => write!(
                f,
                "over-declared read at {site}: job '{job}' declares a read of \
                 '{dataset}' its body never consumes, over-serializing the \
                 schedule"
            ),
            Violation::ShuffleMismatch {
                graph,
                derived,
                claimed,
                env,
                derived_val,
                claimed_val,
            } => write!(
                f,
                "shuffle mismatch in graph '{graph}': derived total shuffle volume \
                 {derived} ≠ claimed {claimed}; at {} the jobs shuffle {derived_val} \
                 bytes but the closed form claims {claimed_val}",
                fmt_env(env)
            ),
            Violation::CommBoundExceeded {
                graph,
                shuffle,
                bound,
                env,
                shuffle_val,
                bound_val,
            } => write!(
                f,
                "communication bound exceeded in graph '{graph}': declared shuffle \
                 volume {shuffle} falls below the MTTKRP lower bound {bound}; at {} \
                 the plan declares {shuffle_val} bytes but any execution must \
                 shuffle at least {bound_val}",
                fmt_env(env)
            ),
            Violation::RewriteVolumeInflation {
                rewrite,
                graph,
                declared,
                env,
                original_val,
                rewritten_val,
            } => write!(
                f,
                "rewrite volume inflation: rewrite '{rewrite}' on graph '{graph}' \
                 inflates shuffle volume beyond its declared {declared} factor; at \
                 {} the original shuffles {original_val} bytes but the rewritten \
                 graph shuffles {rewritten_val}",
                fmt_env(env)
            ),
            Violation::RewriteDataflowBroken {
                rewrite,
                graph,
                cause,
            } => write!(
                f,
                "rewrite dataflow broken: rewrite '{rewrite}' on graph '{graph}' \
                 produces an ill-formed plan — {cause}"
            ),
        }
    }
}

/// Run both static passes (dataflow, then cost) on one graph.
pub fn analyze_graph(graph: &JobGraph, claim: &PaperClaim, envs: &[Env]) -> Vec<Violation> {
    let mut v = dataflow::check_dataflow(graph);
    v.extend(cost::check_cost(graph, claim, envs));
    v
}
