//! Static plan analyzer: verify the paper's cost table before a job runs.
//!
//! HaTen2's contribution is largely *static*: Tables III/IV bound, per
//! variant, the maximum intermediate data of any MapReduce job, the total
//! number of jobs per iteration, and how often the (billion-scale) input
//! tensor is re-read. This crate checks those claims against the
//! declarative [`JobGraph`]s the pipelines register in
//! `haten2_core::plan`, without executing anything:
//!
//! * **Dataflow pass** ([`dataflow::check_dataflow`]) — every dataset is
//!   produced before it is consumed, never overwritten while live, and
//!   never written without a reader; big-tensor reads are counted from the
//!   graph, so a variant cannot silently take an extra pass over the
//!   input.
//! * **Cost pass** ([`cost::check_cost`]) — the graph-derived max
//!   intermediate records, job count, and tensor-read count are held to
//!   the paper's claimed expressions by extensional equivalence over the
//!   operating-regime grid ([`cost::regime_envs`]).
//! * **Lint pass** — source-level rules (forbidden APIs, undocumented
//!   `unsafe`, `unwrap` in library code) live in the `xtask` binary
//!   (`cargo xtask lint`), not here: they scan text, not plans.
//!
//! Every violation is a [`Violation`] whose `Display` names the offending
//! job. `cargo run -p haten2-analyze -- --verify-paper-table` renders the
//! full verification report (committed as `ANALYSIS.md`);
//! `--reject-demo` proves the analyzer rejects deliberately mis-wired
//! plans ([`demo`]).

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod cost;
pub mod dataflow;
pub mod demo;
pub mod report;

pub use cost::{paper_claim, regime_envs, PaperClaim};
pub use dataflow::check_dataflow;
pub use report::{verify_paper_table, Report, RowVerdict};

use haten2_mapreduce::{Env, JobGraph};

/// One defect found by the analyzer. `Display` always names the offending
/// job (or graph) so a rejection is actionable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A job reads a dataset that no earlier job writes and the driver
    /// does not provide.
    DanglingRead {
        /// Offending job template.
        job: String,
        /// The dataset it reads.
        dataset: String,
    },
    /// A job overwrites a dataset whose previous contents were never read
    /// — a lost update.
    LostWrite {
        /// Offending job template.
        job: String,
        /// The clobbered dataset.
        dataset: String,
        /// The writer whose output is lost.
        prior_job: String,
    },
    /// A dataset is written but neither read by a later job nor declared a
    /// pipeline output.
    UnusedDataset {
        /// The job left holding the unread write.
        job: String,
        /// The unused dataset.
        dataset: String,
    },
    /// The graph-derived max intermediate data disagrees with the paper's
    /// claim on some regime environment.
    CostMismatch {
        /// Graph whose bound failed.
        graph: String,
        /// Derived expression.
        derived: String,
        /// Claimed expression.
        claimed: String,
        /// Counterexample environment.
        env: Env,
        /// Derived value on `env`.
        derived_val: u128,
        /// Claimed value on `env`.
        claimed_val: u128,
    },
    /// The graph's total job count disagrees with the paper's claim.
    JobCountMismatch {
        /// Graph whose count failed.
        graph: String,
        /// Derived expression.
        derived: String,
        /// Claimed expression.
        claimed: String,
        /// Counterexample environment.
        env: Env,
        /// Derived value on `env`.
        derived_val: u128,
        /// Claimed value on `env`.
        claimed_val: u128,
    },
    /// The number of passes over the big input tensor disagrees with the
    /// variant's claim.
    TensorReadMismatch {
        /// Graph whose read count failed.
        graph: String,
        /// Derived expression.
        derived: String,
        /// Claimed expression.
        claimed: String,
        /// Counterexample environment.
        env: Env,
        /// Derived value on `env`.
        derived_val: u128,
        /// Claimed value on `env`.
        claimed_val: u128,
    },
}

fn fmt_env(env: &Env) -> String {
    format!(
        "nnz={}, I={}, J={}, K={}, Q={}, R={}",
        env.nnz, env.dim_i, env.dim_j, env.dim_k, env.rank_q, env.rank_r
    )
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::DanglingRead { job, dataset } => write!(
                f,
                "dangling read: job '{job}' reads dataset '{dataset}', which no \
                 preceding job writes and the driver does not provide"
            ),
            Violation::LostWrite {
                job,
                dataset,
                prior_job,
            } => write!(
                f,
                "lost write: job '{job}' overwrites dataset '{dataset}' while the \
                 output of job '{prior_job}' is still unread"
            ),
            Violation::UnusedDataset { job, dataset } => write!(
                f,
                "unused dataset: job '{job}' writes '{dataset}', which no later job \
                 reads and the pipeline does not output"
            ),
            Violation::CostMismatch {
                graph,
                derived,
                claimed,
                env,
                derived_val,
                claimed_val,
            } => write!(
                f,
                "cost mismatch in graph '{graph}': derived max intermediate data \
                 {derived} ≠ claimed {claimed}; at {} the jobs produce {derived_val} \
                 records but the table claims {claimed_val}",
                fmt_env(env)
            ),
            Violation::JobCountMismatch {
                graph,
                derived,
                claimed,
                env,
                derived_val,
                claimed_val,
            } => write!(
                f,
                "job-count mismatch in graph '{graph}': derived {derived} ≠ claimed \
                 {claimed}; at {} the graph runs {derived_val} jobs but the table \
                 claims {claimed_val}",
                fmt_env(env)
            ),
            Violation::TensorReadMismatch {
                graph,
                derived,
                claimed,
                env,
                derived_val,
                claimed_val,
            } => write!(
                f,
                "tensor-read mismatch in graph '{graph}': derived {derived} ≠ claimed \
                 {claimed}; at {} the jobs read the big input {derived_val} times but \
                 the variant claims {claimed_val}",
                fmt_env(env)
            ),
        }
    }
}

/// Run both static passes (dataflow, then cost) on one graph.
pub fn analyze_graph(graph: &JobGraph, claim: &PaperClaim, envs: &[Env]) -> Vec<Violation> {
    let mut v = dataflow::check_dataflow(graph);
    v.extend(cost::check_cost(graph, claim, envs));
    v
}
