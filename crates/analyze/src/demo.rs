//! Deliberately malformed plans, for demonstrating (and regression-testing)
//! that the analyzer rejects them with diagnostics naming the offending
//! job. The `--reject-demo` CLI flag runs these; `README.md` walks through
//! the first one.

use crate::{analyze_graph, cost::paper_claim, cost::regime_envs, Violation};
use haten2_core::{plan_for, Decomp, Variant};
use haten2_mapreduce::{JobGraph, PlanJob, SymExpr};

/// One rejection scenario: a malformed plan plus the violation kind the
/// analyzer must produce for it.
pub struct Rejection {
    /// Human-readable description of the injected defect.
    pub defect: &'static str,
    /// The malformed graph.
    pub graph: JobGraph,
    /// Name of the job each diagnostic must mention.
    pub offending_job: &'static str,
    /// Predicate: does this violation list constitute a correct rejection?
    pub matches: fn(&[Violation]) -> bool,
}

/// The demo scenarios, each a one-edit corruption of a real registered
/// pipeline.
pub fn rejections() -> Vec<Rejection> {
    let mut out = Vec::new();

    // 1. Dangling read: the DRI merge consumes a dataset nobody produces.
    let mut g = plan_for(Decomp::Tucker, Variant::Dri);
    g.name = "tucker-dri(mis-wired)".to_string();
    g.jobs[1].reads = vec!["t_typo".to_string(), "t_dprime".to_string()];
    out.push(Rejection {
        defect: "crossmerge reads 't_typo', which no job writes",
        graph: g,
        offending_job: "tucker-dri-crossmerge",
        matches: |v| {
            v.iter().any(|v| {
                matches!(v, Violation::DanglingRead { job, dataset }
                    if job == "tucker-dri-crossmerge" && dataset == "t_typo")
            })
        },
    });

    // 2. Lost write: an extra job clobbers T' before the merge reads it.
    let mut g = plan_for(Decomp::Tucker, Variant::Dri);
    g.name = "tucker-dri(rogue-refresh)".to_string();
    g.jobs.insert(
        1,
        PlanJob::new("rogue-refresh")
            .reads(["x"])
            .writes(["t_prime"])
            .emits(SymExpr::nnz(), SymExpr::c(58) * SymExpr::nnz()),
    );
    out.push(Rejection {
        defect: "'rogue-refresh' overwrites 't_prime' while the IMHP output is still unread",
        graph: g,
        offending_job: "rogue-refresh",
        matches: |v| {
            v.iter().any(|v| {
                matches!(v, Violation::LostWrite { job, dataset, prior_job }
                    if job == "rogue-refresh"
                        && dataset == "t_prime"
                        && prior_job == "tucker-dri-imhp")
            })
        },
    });

    // 3. Extra job producing a dataset nothing consumes — and inflating the
    //    job count past the paper's "2 jobs" claim for DRI.
    let mut g = plan_for(Decomp::Parafac, Variant::Dri).job(
        PlanJob::new("rogue-scan")
            .reads(["y"])
            .writes(["scratch"])
            .emits(SymExpr::nnz(), SymExpr::c(49) * SymExpr::nnz()),
    );
    g.name = "parafac-dri(rogue-scan)".to_string();
    out.push(Rejection {
        defect: "extra job 'rogue-scan' writes unread 'scratch' and breaks the 2-job claim",
        graph: g,
        offending_job: "rogue-scan",
        matches: |v| {
            let unused = v.iter().any(|v| {
                matches!(v, Violation::UnusedDataset { job, dataset }
                    if job == "rogue-scan" && dataset == "scratch")
            });
            let count = v
                .iter()
                .any(|v| matches!(v, Violation::JobCountMismatch { .. }));
            unused && count
        },
    });

    out
}

/// Run every demo scenario through the full analyzer. Returns, per
/// scenario, the violations produced and whether they constitute a correct
/// rejection.
pub fn run_rejections() -> Vec<(Rejection, Vec<Violation>, bool)> {
    let envs = regime_envs();
    rejections()
        .into_iter()
        .map(|r| {
            // Every demo corrupts a DRI pipeline, so hold it to the DRI row.
            let decomp = if r.graph.name.starts_with("tucker") {
                Decomp::Tucker
            } else {
                Decomp::Parafac
            };
            let claim = paper_claim(decomp, Variant::Dri);
            let v = analyze_graph(&r.graph, &claim, &envs);
            let ok = (r.matches)(&v) && v.iter().all(|x| format!("{x}").contains("job"));
            (r, v, ok)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_demo_plan_is_rejected_naming_the_offender() {
        for (r, violations, ok) in run_rejections() {
            assert!(ok, "{}: got {violations:?}", r.defect);
            assert!(
                violations
                    .iter()
                    .any(|v| format!("{v}").contains(r.offending_job)),
                "{}: no diagnostic names '{}': {violations:?}",
                r.defect,
                r.offending_job
            );
        }
    }
}
