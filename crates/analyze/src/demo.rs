//! Deliberately malformed plans, for demonstrating (and regression-testing)
//! that the analyzer rejects them with diagnostics naming the offending
//! job, dataset, or sweep. The `--reject-demo` CLI flag runs these;
//! `README.md` walks through the first one.

use crate::recovery::certify;
use crate::{analyze_graph, cost::paper_claim, cost::regime_envs, Violation};
use haten2_core::{plan_for, recovery_for, Decomp, Variant};
use haten2_mapreduce::{CheckpointPolicy, JobGraph, PlanJob, RecoverySpec, SymExpr};

/// One rejection scenario: a malformed plan (or sound plan with a defective
/// recovery spec) plus the violation the analyzer must produce for it.
pub struct Rejection {
    /// Human-readable description of the injected defect.
    pub defect: &'static str,
    /// The (possibly corrupted) graph.
    pub graph: JobGraph,
    /// When present, the recoverability pass also runs under this spec.
    pub spec: Option<RecoverySpec>,
    /// The offending job / dataset / sweep some diagnostic must name.
    pub must_name: &'static str,
    /// Predicate: does this violation list constitute a correct rejection?
    pub matches: fn(&[Violation]) -> bool,
}

/// The demo scenarios, each a one-edit corruption of a real registered
/// pipeline (or of its recovery spec).
pub fn rejections() -> Vec<Rejection> {
    let mut out = Vec::new();

    // 1. Dangling read: the DRI merge consumes a dataset nobody produces.
    let mut g = plan_for(Decomp::Tucker, Variant::Dri);
    g.name = "tucker-dri(mis-wired)".to_string();
    g.jobs[1].reads = vec!["t_typo".to_string(), "t_dprime".to_string()];
    out.push(Rejection {
        defect: "crossmerge reads 't_typo', which no job writes",
        graph: g,
        spec: None,
        must_name: "tucker-dri-crossmerge",
        matches: |v| {
            v.iter().any(|v| {
                matches!(v, Violation::DanglingRead { job, dataset }
                    if job == "tucker-dri-crossmerge" && dataset == "t_typo")
            })
        },
    });

    // 2. Lost write: an extra job clobbers T' before the merge reads it.
    let mut g = plan_for(Decomp::Tucker, Variant::Dri);
    g.name = "tucker-dri(rogue-refresh)".to_string();
    g.jobs.insert(
        1,
        PlanJob::new("rogue-refresh")
            .reads(["x"])
            .writes(["t_prime"])
            .emits(SymExpr::nnz(), SymExpr::c(58) * SymExpr::nnz()),
    );
    out.push(Rejection {
        defect: "'rogue-refresh' overwrites 't_prime' while the IMHP output is still unread",
        graph: g,
        spec: None,
        must_name: "rogue-refresh",
        matches: |v| {
            v.iter().any(|v| {
                matches!(v, Violation::LostWrite { job, dataset, prior_job }
                    if job == "rogue-refresh"
                        && dataset == "t_prime"
                        && prior_job == "tucker-dri-imhp")
            })
        },
    });

    // 3. Extra job producing a dataset nothing consumes — and inflating the
    //    job count past the paper's "2 jobs" claim for DRI.
    let mut g = plan_for(Decomp::Parafac, Variant::Dri).job(
        PlanJob::new("rogue-scan")
            .reads(["y"])
            .writes(["scratch"])
            .emits(SymExpr::nnz(), SymExpr::c(49) * SymExpr::nnz()),
    );
    g.name = "parafac-dri(rogue-scan)".to_string();
    out.push(Rejection {
        defect: "extra job 'rogue-scan' writes unread 'scratch' and breaks the 2-job claim",
        graph: g,
        spec: None,
        must_name: "rogue-scan",
        matches: |v| {
            let unused = v.iter().any(|v| {
                matches!(v, Violation::UnusedDataset { job, dataset }
                    if job == "rogue-scan" && dataset == "scratch")
            });
            let count = v
                .iter()
                .any(|v| matches!(v, Violation::JobCountMismatch { .. }));
            unused && count
        },
    });

    // 4. Lineage gap: the plan is sound, but the pipeline's recovery spec
    //    registers no recipe for T' — losing it mid-run is unrecoverable.
    let mut g = plan_for(Decomp::Tucker, Variant::Dri);
    g.name = "tucker-dri(lineage-gap)".to_string();
    let mut spec = recovery_for(Decomp::Tucker, Variant::Dri, 0);
    spec.covered.remove("t_prime");
    out.push(Rejection {
        defect: "recovery spec drops the lineage recipe for intermediate 't_prime'",
        graph: g,
        spec: Some(spec),
        must_name: "t_prime",
        matches: |v| {
            v.iter().any(|v| {
                matches!(v, Violation::UnrecoverableDataset { dataset, .. }
                    if dataset == "t_prime")
            })
        },
    });

    // 5. Checkpoint gap: the driver checkpoints only every 2nd sweep, so a
    //    crash after sweep 1 recomputes it from scratch.
    let mut g = plan_for(Decomp::Parafac, Variant::Dri);
    g.name = "parafac-dri(checkpoint-gap)".to_string();
    let mut spec = recovery_for(Decomp::Parafac, Variant::Dri, 4);
    spec.checkpoint = Some(CheckpointPolicy {
        every: 2,
        sweeps: 4,
    });
    out.push(Rejection {
        defect: "checkpoint policy skips odd sweeps; completed sweep 1 is uncovered",
        graph: g,
        spec: Some(spec),
        must_name: "sweep 1",
        matches: |v| {
            v.iter()
                .any(|v| matches!(v, Violation::CheckpointGap { sweep, .. } if *sweep == 1))
        },
    });

    out
}

/// Run every demo scenario through the full analyzer (dataflow + cost,
/// plus recoverability when the scenario carries a spec). Returns, per
/// scenario, the violations produced and whether they constitute a correct
/// rejection.
pub fn run_rejections() -> Vec<(Rejection, Vec<Violation>, bool)> {
    let envs = regime_envs();
    rejections()
        .into_iter()
        .map(|r| {
            // Every demo corrupts a DRI pipeline, so hold it to the DRI row.
            let decomp = if r.graph.name.starts_with("tucker") {
                Decomp::Tucker
            } else {
                Decomp::Parafac
            };
            let claim = paper_claim(decomp, Variant::Dri);
            let mut v = analyze_graph(&r.graph, &claim, &envs);
            if let Some(spec) = &r.spec {
                v.extend(certify(&r.graph, spec).violations);
            }
            let ok = (r.matches)(&v) && v.iter().any(|x| format!("{x}").contains(r.must_name));
            (r, v, ok)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_demo_plan_is_rejected_naming_the_offender() {
        let results = run_rejections();
        assert_eq!(results.len(), 5);
        for (r, violations, ok) in results {
            assert!(ok, "{}: got {violations:?}", r.defect);
            assert!(
                violations
                    .iter()
                    .any(|v| format!("{v}").contains(r.must_name)),
                "{}: no diagnostic names '{}': {violations:?}",
                r.defect,
                r.must_name
            );
        }
    }

    #[test]
    fn recovery_scenarios_reject_only_via_the_recovery_pass() {
        // The lineage-gap and checkpoint-gap graphs are *sound* plans; the
        // dataflow and cost passes must stay clean so the rejection is
        // attributable to the recoverability certificate alone.
        let envs = regime_envs();
        for (r, _, _) in run_rejections() {
            if r.spec.is_some() {
                let decomp = if r.graph.name.starts_with("tucker") {
                    Decomp::Tucker
                } else {
                    Decomp::Parafac
                };
                let claim = paper_claim(decomp, Variant::Dri);
                assert!(
                    analyze_graph(&r.graph, &claim, &envs).is_empty(),
                    "{}: graph itself should be well-formed",
                    r.defect
                );
            }
        }
    }
}
