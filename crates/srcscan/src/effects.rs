//! Effect inference for DAG-scheduler `Batch::submit` sites.
//!
//! The scheduler trusts each job's *hand-declared* dataset read/write sets;
//! `JobCtx::get` only spot-checks them at runtime. This module closes the
//! gap statically: it extracts from each `batch.submit(name, reads, writes,
//! closure)` call site the datasets the closure *actually* touches —
//! `ctx.get(&handle)` accesses resolved through handle bindings back to the
//! producing site's declared writes, plus direct `dfs.get/put/delete`
//! calls — and checks three rules over the result:
//!
//! * **undeclared-effect** — an inferred read or write not covered by the
//!   site's declared set (the access the runtime spot-check may miss when
//!   the dependency edge happens to order the jobs anyway).
//! * **unordered-conflict** — two sites of the same batch whose *effective*
//!   (declared ∪ inferred) sets conflict (write/write or read/write) while
//!   no declared-dependency path orders them.
//! * **over-declared-read** — a declared read of an intermediate dataset the
//!   closure never actually consumes (warning: stale declarations rot the
//!   dependency graph and over-serialize the schedule).
//!
//! Dataset names are compared symbolically: `#shard` suffixes with `{}`
//! holes (normalized loop indices) act as wildcards, mirroring the
//! scheduler's base-name overlap rule. The same checks are exposed over a
//! pure in-memory model ([`check_model`]) so the analyzer's demo scenarios
//! and the mutation proptests can exercise them without source text.

use crate::{
    find_calls, is_suppressed, line_of, matching_close, normalize_template, split_top_level,
    SourceText,
};
use std::path::{Path, PathBuf};

/// The effect-inference rule ids and their rationale, in reporting order.
pub const EFFECT_RULES: &[(&str, &str)] = &[
    (
        "undeclared-effect",
        "the closure reads or writes a dataset its submit declaration does not \
         cover; the scheduler cannot order what it cannot see",
    ),
    (
        "unordered-conflict",
        "two jobs of the same batch touch a conflicting dataset with no \
         declared-dependency path between them; the DAG scheduler may run \
         them concurrently",
    ),
    (
        "over-declared-read",
        "a declared read of an intermediate dataset the closure never \
         consumes; stale declarations over-serialize the schedule and hide \
         real wiring mistakes",
    ),
];

/// An inferred read, with whether its `{}` shard holes are co-indexed with
/// the reading site's own loop instance (a single handle bound in the same
/// loop iteration) or range over *all* instances (a vector of handles).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferredRead {
    /// Normalized dataset template, e.g. `t#{}`.
    pub dataset: String,
    /// `true`: holes substitute the reader's instance index; `false`: the
    /// holes are wildcards over every producer instance.
    pub correlated: bool,
}

/// One `batch.submit(..)` call site with its declared and inferred effects.
#[derive(Debug, Clone)]
pub struct SubmitSite {
    /// File the site lives in.
    pub file: PathBuf,
    /// 1-based line of the `.submit` token.
    pub line: usize,
    /// Normalized job-name template (`{…}` → `{}`).
    pub name: String,
    /// Code offset of the owning batch constructor — sites sharing it were
    /// submitted to the same `Batch` and are checked pairwise.
    pub batch_at: usize,
    /// Declared read templates (second argument).
    pub declared_reads: Vec<String>,
    /// Declared write templates (third argument).
    pub declared_writes: Vec<String>,
    /// Reads inferred from the closure body.
    pub inferred_reads: Vec<InferredRead>,
    /// Writes inferred from direct DFS calls in the closure body.
    pub inferred_writes: Vec<String>,
}

/// One effect-rule finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EffectFinding {
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line it anchors to (the submit site; for pair rules, the
    /// later site of the pair).
    pub line: usize,
    /// Rule id (one of [`EFFECT_RULES`]).
    pub rule: &'static str,
    /// Offending job-name template.
    pub job: String,
    /// The other job of a pair rule.
    pub other: Option<String>,
    /// The dataset at fault.
    pub dataset: String,
    /// Human-readable diagnostic.
    pub message: String,
}

impl std::fmt::Display for EffectFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] job `{}`",
            self.file.display(),
            self.line,
            self.rule,
            self.job
        )?;
        if let Some(o) = &self.other {
            write!(f, " vs `{o}`")?;
        }
        write!(f, " dataset `{}`: {}", self.dataset, self.message)
    }
}

/// Split `base#shard`; `None` shard means the whole dataset.
fn split_shard_sym(name: &str) -> (&str, Option<&str>) {
    match name.split_once('#') {
        Some((b, s)) => (b, Some(s)),
        None => (name, None),
    }
}

/// Symbolic dataset overlap: bases must match; a missing shard means the
/// whole dataset, and a `{}` hole is a wildcard over shard indices.
pub fn sym_overlap(a: &str, b: &str) -> bool {
    let (ab, ash) = split_shard_sym(a);
    let (bb, bsh) = split_shard_sym(b);
    if ab != bb {
        return false;
    }
    match (ash, bsh) {
        (None, _) | (_, None) => true,
        (Some(x), Some(y)) => x == "{}" || y == "{}" || x == y,
    }
}

/// True when `c` can appear in an identifier.
fn ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Every *method* call `.method(` in the code view, as
/// `(name_start, args_region)` — the counterpart of [`find_calls`], which
/// deliberately rejects method calls.
pub fn find_method_calls(code: &str, method: &str) -> Vec<(usize, (usize, usize))> {
    let mut out = Vec::new();
    let b = code.as_bytes();
    let mut search = 0usize;
    while let Some(off) = code[search..].find(method) {
        let at = search + off;
        search = at + method.len();
        // Walk back over whitespace: the previous token must be `.`.
        let mut k = at;
        while k > 0 && (b[k - 1] == b' ' || b[k - 1] == b'\n' || b[k - 1] == b'\t') {
            k -= 1;
        }
        if k == 0 || b[k - 1] != b'.' {
            continue;
        }
        let after = at + method.len();
        if after < b.len() && ident_byte(b[after]) {
            continue;
        }
        let mut j = after;
        while j < b.len() && (b[j] == b' ' || b[j] == b'\n' || b[j] == b'\t') {
            j += 1;
        }
        if j < b.len() && b[j] == b'(' {
            if let Some(close) = matching_close(code, j) {
                out.push((at, (j + 1, close)));
            }
        }
    }
    out
}

/// The identifier receiving a method call whose name starts at `name_at`
/// (walk back over whitespace and the `.`, then read the identifier).
fn receiver_ident(code: &str, name_at: usize) -> Option<String> {
    let b = code.as_bytes();
    let mut k = name_at;
    while k > 0 && (b[k - 1] == b' ' || b[k - 1] == b'\n' || b[k - 1] == b'\t') {
        k -= 1;
    }
    if k == 0 || b[k - 1] != b'.' {
        return None;
    }
    let mut e = k - 1;
    while e > 0 && (b[e - 1] == b' ' || b[e - 1] == b'\n' || b[e - 1] == b'\t') {
        e -= 1;
    }
    let end = e;
    while e > 0 && ident_byte(b[e - 1]) {
        e -= 1;
    }
    if e == end {
        return None;
    }
    Some(code[e..end].to_string())
}

/// All string literals starting inside `region`, quotes stripped and
/// `{…}` holes normalized.
fn literals_in(st: &SourceText, region: (usize, usize)) -> Vec<String> {
    st.strings
        .iter()
        .filter(|(s, _)| *s >= region.0 && *s < region.1)
        .map(|&(s, e)| {
            let lit = st.raw[s..e]
                .trim_start_matches('b')
                .trim_start_matches('r')
                .trim_matches('#')
                .trim_matches('"');
            normalize_template(lit)
        })
        .collect()
}

/// Leading identifier of a code-view region (trimmed).
fn leading_ident(code: &str, region: (usize, usize)) -> Option<String> {
    let text = code[region.0..region.1].trim_start();
    let name: String = text
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Resolve a submit-name argument: a direct string literal, or an
/// identifier traced back to its last `let <ident> = format!(…)` binding
/// before the call.
fn resolve_name(st: &SourceText, piece: (usize, usize), call_at: usize) -> Option<String> {
    if let Some(lit) = st.first_string_in(piece) {
        return Some(normalize_template(lit));
    }
    let ident = leading_ident(&st.code, piece)?;
    let pat = format!("let {ident}");
    let b = st.code.as_bytes();
    let mut found = None;
    let mut search = 0usize;
    while let Some(off) = st.code[search..call_at].find(&pat) {
        let at = search + off;
        search = at + pat.len();
        let after = at + pat.len();
        if after < b.len() && ident_byte(b[after]) {
            continue;
        }
        found = Some(at);
    }
    let at = found?;
    let stmt_end = st.code[at..]
        .find(';')
        .map(|o| at + o)
        .unwrap_or(st.code.len());
    st.first_string_in((at, stmt_end)).map(normalize_template)
}

/// How a submit call's return value is bound.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Binding {
    Let(String),
    Push(String),
    None,
}

/// The binding of a submit expression: look at the statement prefix before
/// the receiver for `let <ident> =` or `<vec>.push(`.
fn binding_before(code: &str, recv_start: usize) -> Binding {
    let stmt_start = code[..recv_start]
        .rfind([';', '{', '}'])
        .map(|p| p + 1)
        .unwrap_or(0);
    let prefix = &code[stmt_start..recv_start];
    if let Some(push_at) = prefix.rfind(".push(") {
        let b = prefix.as_bytes();
        let mut e = push_at;
        while e > 0 && ident_byte(b[e - 1]) {
            e -= 1;
        }
        if e < push_at {
            return Binding::Push(prefix[e..push_at].to_string());
        }
    }
    if let Some(let_at) = prefix.rfind("let ") {
        let mut rest = prefix[let_at + 4..].trim_start();
        if let Some(r) = rest.strip_prefix("mut ") {
            rest = r.trim_start();
        }
        let name: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() {
            return Binding::Let(name);
        }
    }
    Binding::None
}

/// Vector an identifier iterates over inside `body`
/// (`for <ident> in &<vec>` and friends), if any. `before` is the offset
/// of the use inside `body`: with two loops reusing the same variable
/// name, the binding in scope is the nearest header *preceding* the use.
fn loop_source(body: &str, ident: &str, before: usize) -> Option<String> {
    let pat = format!("for {ident} in ");
    let mut at = None;
    let mut search = 0usize;
    while let Some(off) = body[search..before.min(body.len())].find(&pat) {
        at = Some(search + off);
        search = search + off + pat.len();
    }
    let at = at.or_else(|| body.find(&pat))?;
    let rest = body[at + pat.len()..]
        .trim_start()
        .trim_start_matches('&')
        .trim_start_matches("mut ");
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Byte offset where the file's `#[cfg(test)]` region starts.
fn test_cutoff(raw: &str) -> usize {
    raw.lines()
        .scan(0usize, |off, l| {
            let at = *off;
            *off += l.len() + 1;
            Some((at, l))
        })
        .find(|(_, l)| l.trim_start().starts_with("#[cfg(test)]"))
        .map(|(at, _)| at)
        .unwrap_or(raw.len())
}

/// Extract every `batch.submit(..)` site of one source file with its
/// declared sets and the effects inferred from the closure body.
pub fn scan_submit_sites(path: &Path, raw: &str) -> Vec<SubmitSite> {
    let st = SourceText::parse(raw);
    let cutoff = test_cutoff(raw);

    // Batch constructors, for grouping sites into batches.
    let mut batch_origins: Vec<usize> = Vec::new();
    for pat in ["Batch::new", "Batch::with_graph"] {
        for (at, _) in find_calls(&st.code, pat) {
            batch_origins.push(at);
        }
    }
    batch_origins.sort_unstable();

    // First pass: structure of every site.
    struct RawSite {
        site: SubmitSite,
        closure: (usize, usize),
        binding: Binding,
    }
    let mut raws: Vec<RawSite> = Vec::new();
    for (at, args) in find_method_calls(&st.code, "submit") {
        if at >= cutoff {
            continue;
        }
        let pieces = split_top_level(&st.code, args);
        if pieces.len() < 4 {
            continue;
        }
        let Some(name) = resolve_name(&st, pieces[0], at) else {
            continue;
        };
        let batch_at = batch_origins
            .iter()
            .rev()
            .find(|&&o| o < at)
            .copied()
            .unwrap_or(0);
        // Receiver start (for statement-prefix binding detection).
        let b = st.code.as_bytes();
        let mut k = at;
        while k > 0 && (b[k - 1] == b' ' || b[k - 1] == b'\n' || b[k - 1] == b'\t') {
            k -= 1;
        }
        let dot = k.saturating_sub(1);
        let mut e = dot;
        while e > 0 && ident_byte(b[e - 1]) {
            e -= 1;
        }
        raws.push(RawSite {
            site: SubmitSite {
                file: path.to_path_buf(),
                line: line_of(&st.raw, at),
                name,
                batch_at,
                declared_reads: literals_in(&st, pieces[1]),
                declared_writes: literals_in(&st, pieces[2]),
                inferred_reads: Vec::new(),
                inferred_writes: Vec::new(),
            },
            closure: (pieces[3].0, args.1),
            binding: binding_before(&st.code, e),
        });
    }

    // Producer maps: handle/vec identifier → declared writes of the site(s)
    // bound to it. Same-name rebindings (`let t = t.clone()`) resolve to
    // the original because shadowing reuses the identifier.
    use std::collections::HashMap;
    let mut handle_writes: HashMap<String, Vec<String>> = HashMap::new();
    let mut vec_writes: HashMap<String, Vec<String>> = HashMap::new();
    for r in &raws {
        match &r.binding {
            Binding::Let(id) => {
                handle_writes
                    .entry(id.clone())
                    .or_default()
                    .extend(r.site.declared_writes.iter().cloned());
            }
            Binding::Push(id) => {
                vec_writes
                    .entry(id.clone())
                    .or_default()
                    .extend(r.site.declared_writes.iter().cloned());
            }
            Binding::None => {}
        }
    }
    let dedup = |v: &mut Vec<String>| {
        v.sort();
        v.dedup();
    };
    for v in handle_writes.values_mut() {
        dedup(v);
    }
    for v in vec_writes.values_mut() {
        dedup(v);
    }

    // Second pass: infer effects from each closure body.
    let get_calls = {
        let mut g = find_method_calls(&st.code, "get");
        g.extend(find_method_calls(&st.code, "get_raced"));
        g
    };
    let put_calls = {
        let mut p = find_method_calls(&st.code, "put");
        p.extend(find_method_calls(&st.code, "put_shared"));
        p
    };
    let delete_calls = find_method_calls(&st.code, "delete");
    for r in &mut raws {
        let (cs, ce) = r.closure;
        let body = &st.code[cs..ce];
        for &(m_at, args) in &get_calls {
            if m_at < cs || m_at >= ce {
                continue;
            }
            let Some(recv) = receiver_ident(&st.code, m_at) else {
                continue;
            };
            if recv == "ctx" {
                let Some(arg) = leading_ident(
                    &st.code,
                    (
                        // Skip a leading `&`.
                        st.code[args.0..args.1]
                            .find(|c: char| c != '&' && !c.is_whitespace())
                            .map(|o| args.0 + o)
                            .unwrap_or(args.0),
                        args.1,
                    ),
                ) else {
                    continue;
                };
                let (writes, correlated) = if let Some(w) = handle_writes.get(&arg) {
                    (Some(w), true)
                } else if let Some(w) = vec_writes.get(&arg) {
                    (Some(w), false)
                } else if let Some(vec_id) = loop_source(body, &arg, m_at - cs) {
                    (vec_writes.get(&vec_id), false)
                } else {
                    (None, false)
                };
                if let Some(w) = writes {
                    for d in w {
                        let ir = InferredRead {
                            dataset: d.clone(),
                            correlated,
                        };
                        if !r.site.inferred_reads.contains(&ir) {
                            r.site.inferred_reads.push(ir);
                        }
                    }
                }
            } else if recv.ends_with("dfs") {
                if let Some(lit) = st.first_string_in(args) {
                    let ir = InferredRead {
                        dataset: normalize_template(lit),
                        correlated: false,
                    };
                    if !r.site.inferred_reads.contains(&ir) {
                        r.site.inferred_reads.push(ir);
                    }
                }
            }
        }
        for calls in [&put_calls, &delete_calls] {
            for &(m_at, args) in calls.iter() {
                if m_at < cs || m_at >= ce {
                    continue;
                }
                let is_dfs = receiver_ident(&st.code, m_at).is_some_and(|r| r.ends_with("dfs"));
                if !is_dfs {
                    continue;
                }
                if let Some(lit) = st.first_string_in(args) {
                    let d = normalize_template(lit);
                    if !r.site.inferred_writes.contains(&d) {
                        r.site.inferred_writes.push(d);
                    }
                }
            }
        }
    }

    raws.into_iter().map(|r| r.site).collect()
}

// ---------------------------------------------------------------------------
// Model-level checking (shared by the source pass, the analyzer's demo
// scenarios, and the mutation proptests)
// ---------------------------------------------------------------------------

/// A job's effect sets, detached from source text.
#[derive(Debug, Clone, Default)]
pub struct EffectModel {
    /// Job name.
    pub name: String,
    /// Declared read set.
    pub declared_reads: Vec<String>,
    /// Declared write set.
    pub declared_writes: Vec<String>,
    /// Reads the body actually performs.
    pub inferred_reads: Vec<String>,
    /// Writes the body actually performs beyond the declared ones.
    pub inferred_writes: Vec<String>,
}

/// One model-level finding; `job_index` points into the checked slice (for
/// pair rules, the *later* job).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelFinding {
    /// Rule id (one of [`EFFECT_RULES`]).
    pub rule: &'static str,
    /// Index of the offending job in the checked slice.
    pub job_index: usize,
    /// Offending job name.
    pub job: String,
    /// The other job of a pair rule.
    pub other: Option<String>,
    /// The dataset at fault.
    pub dataset: String,
}

/// Declared-dependency edge: does earlier job `a` order later job `b`
/// (RAW, WAW, or WAR on declared sets)?
fn declared_edge(a: &EffectModel, b: &EffectModel) -> bool {
    let overlap =
        |xs: &[String], ys: &[String]| xs.iter().any(|x| ys.iter().any(|y| sym_overlap(x, y)));
    overlap(&b.declared_reads, &a.declared_writes)
        || overlap(&b.declared_writes, &a.declared_writes)
        || overlap(&b.declared_writes, &a.declared_reads)
}

/// Check the three effect rules over a batch of jobs in submission order.
pub fn check_model(jobs: &[EffectModel]) -> Vec<ModelFinding> {
    let mut findings = Vec::new();

    // undeclared-effect.
    for (i, j) in jobs.iter().enumerate() {
        for ir in &j.inferred_reads {
            if !j.declared_reads.iter().any(|d| sym_overlap(d, ir)) {
                findings.push(ModelFinding {
                    rule: "undeclared-effect",
                    job_index: i,
                    job: j.name.clone(),
                    other: None,
                    dataset: ir.clone(),
                });
            }
        }
        for iw in &j.inferred_writes {
            if !j.declared_writes.iter().any(|d| sym_overlap(d, iw)) {
                findings.push(ModelFinding {
                    rule: "undeclared-effect",
                    job_index: i,
                    job: j.name.clone(),
                    other: None,
                    dataset: iw.clone(),
                });
            }
        }
    }

    // over-declared-read: a declared read of an intermediate (written by
    // another job of the batch) the body never consumes. Only judged when
    // the body's reads were resolvable at all.
    for (i, j) in jobs.iter().enumerate() {
        if j.inferred_reads.is_empty() && j.inferred_writes.is_empty() {
            continue;
        }
        for d in &j.declared_reads {
            let produced_here = jobs
                .iter()
                .enumerate()
                .any(|(k, o)| k != i && o.declared_writes.iter().any(|w| sym_overlap(w, d)));
            let covered = j.inferred_reads.iter().any(|ir| sym_overlap(ir, d));
            if produced_here && !covered {
                findings.push(ModelFinding {
                    rule: "over-declared-read",
                    job_index: i,
                    job: j.name.clone(),
                    other: None,
                    dataset: d.clone(),
                });
            }
        }
    }

    // unordered-conflict: transitive closure of declared edges, then every
    // unordered pair is checked for effective-set conflicts.
    let n = jobs.len();
    let mut reach = vec![vec![false; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            if declared_edge(&jobs[i], &jobs[j]) {
                reach[i][j] = true;
            }
        }
    }
    for k in 0..n {
        let via = reach[k].clone();
        for row in &mut reach {
            if row[k] {
                for (slot, &through_k) in row.iter_mut().zip(&via) {
                    *slot |= through_k;
                }
            }
        }
    }
    let eff_reads = |j: &EffectModel| -> Vec<String> {
        let mut v = j.declared_reads.clone();
        v.extend(j.inferred_reads.iter().cloned());
        v
    };
    let eff_writes = |j: &EffectModel| -> Vec<String> {
        let mut v = j.declared_writes.clone();
        v.extend(j.inferred_writes.iter().cloned());
        v
    };
    for i in 0..n {
        for j in (i + 1)..n {
            if reach[i][j] {
                continue;
            }
            let (ri, wi) = (eff_reads(&jobs[i]), eff_writes(&jobs[i]));
            let (rj, wj) = (eff_reads(&jobs[j]), eff_writes(&jobs[j]));
            let first_overlap = |xs: &[String], ys: &[String]| -> Option<String> {
                for x in xs {
                    for y in ys {
                        if sym_overlap(x, y) {
                            return Some(if x.contains('#') {
                                x.clone()
                            } else {
                                y.clone()
                            });
                        }
                    }
                }
                None
            };
            let hit = first_overlap(&wi, &wj)
                .or_else(|| first_overlap(&wi, &rj))
                .or_else(|| first_overlap(&ri, &wj));
            if let Some(dataset) = hit {
                findings.push(ModelFinding {
                    rule: "unordered-conflict",
                    job_index: j,
                    job: jobs[i].name.clone(),
                    other: Some(jobs[j].name.clone()),
                    dataset,
                });
            }
        }
    }
    findings
}

/// Run the effect rules over one source file, honouring
/// `// lint:allow(<rule>)` suppressions on the finding's or the preceding
/// line.
pub fn check_effects(path: &Path, raw: &str) -> (Vec<EffectFinding>, Vec<SubmitSite>) {
    let sites = scan_submit_sites(path, raw);
    let raw_lines: Vec<&str> = raw.lines().collect();
    let mut findings = Vec::new();

    // Group by owning batch, preserving submission order.
    let mut origins: Vec<usize> = sites.iter().map(|s| s.batch_at).collect();
    origins.sort_unstable();
    origins.dedup();
    for origin in origins {
        let group: Vec<&SubmitSite> = sites.iter().filter(|s| s.batch_at == origin).collect();
        let models: Vec<EffectModel> = group
            .iter()
            .map(|s| EffectModel {
                name: s.name.clone(),
                declared_reads: s.declared_reads.clone(),
                declared_writes: s.declared_writes.clone(),
                inferred_reads: s.inferred_reads.iter().map(|r| r.dataset.clone()).collect(),
                inferred_writes: s.inferred_writes.clone(),
            })
            .collect();
        for mf in check_model(&models) {
            let line = group[mf.job_index].line;
            if is_suppressed(&raw_lines, line - 1, mf.rule) {
                continue;
            }
            let message = EFFECT_RULES
                .iter()
                .find(|(id, _)| *id == mf.rule)
                .map(|(_, m)| *m)
                .unwrap_or("");
            findings.push(EffectFinding {
                file: path.to_path_buf(),
                line,
                rule: mf.rule,
                job: mf.job,
                other: mf.other,
                dataset: mf.dataset,
                message: message.to_string(),
            });
        }
    }
    (findings, sites)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLEAN: &str = r#"
fn clean_pipeline() {
    let mut batch = Batch::with_graph(&graph);
    let mut parts = Vec::new();
    for q in 0..qd {
        let name = format!("demo-xv-b{q}");
        parts.push(batch.submit(
            name.clone(),
            vec!["x".into()],
            vec![format!("t#{q}")],
            move |ctx| work(ctx, &name),
        )?);
    }
    let y = batch.submit(
        "demo-merge",
        vec!["t".into()],
        vec!["y".into()],
        {
            let parts = parts.clone();
            move |ctx| {
                let mut all = Vec::new();
                for h in &parts {
                    all.push(ctx.get(h)?);
                }
                merge(ctx, all)
            }
        },
    )?;
}
"#;

    #[test]
    fn clean_pipeline_has_no_findings() {
        let (findings, sites) = check_effects(Path::new("mem.rs"), CLEAN);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].name, "demo-xv-b{}");
        assert_eq!(sites[0].declared_writes, vec!["t#{}".to_string()]);
        assert_eq!(
            sites[1].inferred_reads,
            vec![InferredRead {
                dataset: "t#{}".into(),
                correlated: false
            }]
        );
    }

    #[test]
    fn undeclared_read_is_flagged() {
        let src = r#"
fn sneaky() {
    let mut batch = Batch::new();
    let a = batch.submit("job-a", vec![], vec!["t".into()], |ctx| make(ctx))?;
    let b = batch.submit("job-b", vec![], vec!["y".into()], move |ctx| ctx.get(&a))?;
}
"#;
        let (findings, _) = check_effects(Path::new("mem.rs"), src);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "undeclared-effect" && f.job == "job-b" && f.dataset == "t"),
            "{findings:?}"
        );
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "unordered-conflict" && f.other.as_deref() == Some("job-b")),
            "{findings:?}"
        );
    }

    #[test]
    fn separate_batches_do_not_conflict() {
        let src = r#"
fn two_batches() {
    let mut batch = Batch::new();
    let a = batch.submit("one-a", vec!["x".into()], vec!["t".into()], |ctx| f(ctx))?;
    batch.run(cluster)?;
    let mut batch2 = Batch::new();
    let b = batch2.submit("two-a", vec!["x".into()], vec!["t".into()], |ctx| f(ctx))?;
}
"#;
        let (findings, sites) = check_effects(Path::new("mem.rs"), src);
        assert_eq!(sites.len(), 2);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn direct_dfs_write_is_an_inferred_effect() {
        let src = r#"
fn side_channel() {
    let mut batch = Batch::new();
    let a = batch.submit("dfs-a", vec![], vec!["t".into()], |ctx| {
        dfs.put("scratch", data)
    })?;
}
"#;
        let (findings, sites) = check_effects(Path::new("mem.rs"), src);
        assert_eq!(sites[0].inferred_writes, vec!["scratch".to_string()]);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "undeclared-effect" && f.dataset == "scratch"),
            "{findings:?}"
        );
    }

    #[test]
    fn shard_wildcards_overlap_symbolically() {
        assert!(sym_overlap("t", "t#{}"));
        assert!(sym_overlap("t#{}", "t#3"));
        assert!(sym_overlap("t#2", "t#2"));
        assert!(!sym_overlap("t#2", "t#3"));
        assert!(!sym_overlap("t", "u"));
        assert!(sym_overlap("t", "t"));
    }

    #[test]
    fn model_checker_matches_source_semantics() {
        let jobs = vec![
            EffectModel {
                name: "a".into(),
                declared_writes: vec!["t#0".into()],
                ..Default::default()
            },
            EffectModel {
                name: "b".into(),
                declared_writes: vec!["t#1".into()],
                ..Default::default()
            },
            EffectModel {
                name: "c".into(),
                declared_reads: vec!["t".into()],
                declared_writes: vec!["y".into()],
                inferred_reads: vec!["t#{}".into()],
                ..Default::default()
            },
        ];
        assert!(check_model(&jobs).is_empty());
        // Drop c's declared read: now c races with both writers and the
        // read is undeclared.
        let mut mutated = jobs.clone();
        mutated[2].declared_reads.clear();
        let findings = check_model(&mutated);
        assert!(findings.iter().any(|f| f.rule == "undeclared-effect"));
        assert!(findings.iter().any(|f| f.rule == "unordered-conflict"));
    }

    #[test]
    fn suppression_markers_are_honoured() {
        let src = r#"
fn hushed() {
    let mut batch = Batch::new();
    let a = batch.submit("h-a", vec![], vec!["t".into()], |ctx| make(ctx))?;
    // lint:allow(undeclared-effect) lint:allow(unordered-conflict) — deliberate
    let b = batch.submit("h-b", vec![], vec!["y".into()], move |ctx| ctx.get(&a))?;
}
"#;
        let (findings, _) = check_effects(Path::new("mem.rs"), src);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
