//! Shared source-scanning machinery for the workspace's static passes.
//!
//! Both text-level passes of the static analysis harness — the lint rules
//! of `cargo xtask lint` and the UDF-purity determinism pass of
//! `haten2-analyze` — need the same substrate: walk `.rs` files, separate
//! *code* from comments and string literals, extract balanced regions, and
//! honour `// lint:allow(<rule>) — <reason>` suppressions. This crate is
//! that substrate, lifted out of the `xtask` binary so the analyzer can
//! reuse it:
//!
//! * [`SourceText`] — a tokenizer aware of line/nested-block comments,
//!   string/raw-string/byte-string/char literals, and lifetimes. It
//!   produces a same-length **code view** in which comment and
//!   string-literal *contents* are blanked, so substring rules cannot
//!   fire inside prose or data, plus the byte spans of every string
//!   literal (for reading literal contents back out of the raw text).
//! * Region helpers — [`matching_close`], [`find_calls`],
//!   [`split_top_level`], [`enclosing_fn_name`]: enough structure to pull
//!   the closure arguments out of a `run_job(...)` call without a full
//!   parser.
//! * [`scan_udf_purity`] — the determinism pass proper: inspects every
//!   map/reduce closure passed to the engine's job runners for
//!   nondeterminism sources (unordered `HashMap`/`HashSet` iteration
//!   feeding emits, wall-clock reads, thread-id dependence, and float
//!   reductions in reducers not declared commutative-associative in plan
//!   metadata).
//! * [`rs_files`], [`workspace_root`], [`is_suppressed`] — the shared
//!   walking and suppression conventions.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod effects;

use std::path::{Path, PathBuf};

/// One parsed source file: the raw text plus its code view.
///
/// The code view has exactly the same byte length and line structure as
/// the raw text; bytes belonging to comments or to string/char literal
/// *contents* are replaced with spaces (newlines are preserved). String
/// literal delimiters are kept, and the byte span of every string literal
/// (delimiters included) is recorded in [`SourceText::strings`].
#[derive(Debug, Clone)]
pub struct SourceText {
    /// The original text.
    pub raw: String,
    /// Same-length view with comments and literal contents blanked.
    pub code: String,
    /// Byte spans `(start, end)` of string literals, delimiters included.
    pub strings: Vec<(usize, usize)>,
}

impl SourceText {
    /// Tokenize `raw` into a code view.
    pub fn parse(raw: &str) -> SourceText {
        let b = raw.as_bytes();
        let mut code = vec![0u8; b.len()];
        let mut strings = Vec::new();
        let mut i = 0usize;
        let blank = |out: &mut [u8], from: usize, to: usize, src: &[u8]| {
            for (j, slot) in out.iter_mut().enumerate().take(to).skip(from) {
                *slot = if src[j] == b'\n' { b'\n' } else { b' ' };
            }
        };
        while i < b.len() {
            let c = b[i];
            // Line comment.
            if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
                let end = raw[i..].find('\n').map(|o| i + o).unwrap_or(b.len());
                blank(&mut code, i, end, b);
                i = end;
                continue;
            }
            // Block comment (nesting honoured, as rustc does).
            if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut code, i, j, b);
                i = j;
                continue;
            }
            // Raw (byte) string: r"...", r#"..."#, br#"..."# — only when the
            // `r` does not terminate a longer identifier.
            if (c == b'r' || (c == b'b' && i + 1 < b.len() && b[i + 1] == b'r'))
                && (i == 0 || !is_ident_byte(b[i - 1]))
            {
                let r_at = if c == b'b' { i + 1 } else { i };
                let mut j = r_at + 1;
                let mut hashes = 0usize;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    let content_start = j + 1;
                    let closer: String = format!("\"{}", "#".repeat(hashes));
                    let end = raw[content_start..]
                        .find(&closer)
                        .map(|o| content_start + o + closer.len())
                        .unwrap_or(b.len());
                    // Keep delimiters, blank the contents.
                    code[i..content_start].copy_from_slice(&b[i..content_start]);
                    blank(
                        &mut code,
                        content_start,
                        end.saturating_sub(closer.len()),
                        b,
                    );
                    code[end.saturating_sub(closer.len())..end]
                        .copy_from_slice(&b[end.saturating_sub(closer.len())..end]);
                    strings.push((i, end));
                    i = end;
                    continue;
                }
            }
            // String / byte-string literal.
            if c == b'"' || (c == b'b' && i + 1 < b.len() && b[i + 1] == b'"') {
                let quote_at = if c == b'b' { i + 1 } else { i };
                let mut j = quote_at + 1;
                while j < b.len() {
                    match b[j] {
                        b'\\' => j += 2,
                        b'"' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                code[i..=quote_at].copy_from_slice(&b[i..=quote_at]);
                blank(&mut code, quote_at + 1, j.saturating_sub(1), b);
                if j > quote_at + 1 {
                    code[j - 1] = b'"';
                }
                strings.push((i, j));
                i = j;
                continue;
            }
            // Char literal vs lifetime: 'x' / '\n' are literals, 'a (no
            // closing quote nearby) is a lifetime and stays code.
            if c == b'\'' {
                let is_char = if i + 1 < b.len() && b[i + 1] == b'\\' {
                    true
                } else {
                    i + 2 < b.len() && b[i + 2] == b'\''
                };
                if is_char {
                    let mut j = i + 1;
                    while j < b.len() {
                        match b[j] {
                            b'\\' => j += 2,
                            b'\'' => {
                                j += 1;
                                break;
                            }
                            _ => j += 1,
                        }
                    }
                    code[i] = b'\'';
                    blank(&mut code, i + 1, j.saturating_sub(1), b);
                    if j > i + 1 {
                        code[j - 1] = b'\'';
                    }
                    i = j;
                    continue;
                }
            }
            code[i] = c;
            i += 1;
        }
        SourceText {
            raw: raw.to_string(),
            code: String::from_utf8(code).unwrap_or_else(|_| raw.to_string()),
            strings,
        }
    }

    /// The first string literal whose span starts inside `region`
    /// (byte range of the code view), as raw text without the quotes.
    pub fn first_string_in(&self, region: (usize, usize)) -> Option<&str> {
        self.strings
            .iter()
            .find(|(s, _)| *s >= region.0 && *s < region.1)
            .map(|&(s, e)| {
                let inner = &self.raw[s..e];
                inner
                    .trim_start_matches('b')
                    .trim_start_matches('r')
                    .trim_matches('#')
                    .trim_matches('"')
            })
    }
}

/// True when `c` can appear in an identifier.
fn is_ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// 1-based line number of byte offset `pos` in `text`.
pub fn line_of(text: &str, pos: usize) -> usize {
    text.as_bytes()[..pos.min(text.len())]
        .iter()
        .filter(|&&c| c == b'\n')
        .count()
        + 1
}

/// Byte index of the bracket matching the opener at `open`
/// (`(`/`[`/`{`), scanning the code view. `None` when unbalanced.
pub fn matching_close(code: &str, open: usize) -> Option<usize> {
    let b = code.as_bytes();
    let mut depth = 0i64;
    for (j, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Every call of `callee` in the code view, as `(name_start, args_region)`
/// where `args_region` is the byte range *between* the call's parentheses.
/// `callee` must be a standalone token followed by `(` (whitespace
/// allowed), so `run_job` does not match `run_job_dfs`.
pub fn find_calls(code: &str, callee: &str) -> Vec<(usize, (usize, usize))> {
    let mut out = Vec::new();
    let b = code.as_bytes();
    let mut search = 0usize;
    while let Some(off) = code[search..].find(callee) {
        let at = search + off;
        search = at + callee.len();
        let before_ok = at == 0 || !matches!(b[at - 1], c if is_ident_byte(c) || c == b'.');
        let after = at + callee.len();
        if !before_ok || (after < b.len() && is_ident_byte(b[after])) {
            continue;
        }
        let mut j = after;
        while j < b.len() && (b[j] == b' ' || b[j] == b'\n' || b[j] == b'\t') {
            j += 1;
        }
        if j < b.len() && b[j] == b'(' {
            if let Some(close) = matching_close(code, j) {
                out.push((at, (j + 1, close)));
            }
        }
    }
    out
}

/// Split a code-view region into top-level comma-separated pieces
/// (commas nested in brackets or closure pipes do not split).
pub fn split_top_level(code: &str, region: (usize, usize)) -> Vec<(usize, usize)> {
    let b = code.as_bytes();
    let mut pieces = Vec::new();
    let mut depth = 0i64;
    let mut in_pipes = false;
    let mut start = region.0;
    for j in region.0..region.1.min(b.len()) {
        match b[j] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            // Closure parameter pipes: commas between them are the
            // closure's own arguments, not call arguments.
            b'|' if depth == 0
                && j > 0
                && b[j - 1] != b'|'
                && (j + 1 >= b.len() || b[j + 1] != b'|') =>
            {
                in_pipes = !in_pipes;
            }
            b',' if depth == 0 && !in_pipes => {
                pieces.push((start, j));
                start = j + 1;
            }
            _ => {}
        }
    }
    if start < region.1 {
        pieces.push((start, region.1));
    }
    pieces
}

/// Name of the innermost `fn` declared before byte `pos` in the code view
/// (a cheap proxy for "the function this call site lives in").
pub fn enclosing_fn_name(code: &str, pos: usize) -> Option<String> {
    let b = code.as_bytes();
    let mut best: Option<String> = None;
    let mut search = 0usize;
    while let Some(off) = code[search..].find("fn ") {
        let at = search + off;
        search = at + 3;
        if at >= pos {
            break;
        }
        if at > 0 && is_ident_byte(b[at - 1]) {
            continue;
        }
        let rest = &code[at + 3..];
        let name: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() {
            best = Some(name);
        }
    }
    best
}

/// Whether a finding of `rule` on line `idx` (0-based) is suppressed by a
/// `// lint:allow(<rule>)` marker on the same or the preceding raw line.
pub fn is_suppressed(raw_lines: &[&str], idx: usize, rule: &str) -> bool {
    let marker = format!("lint:allow({rule})");
    raw_lines.get(idx).is_some_and(|l| l.contains(&marker))
        || (idx > 0 && raw_lines[idx - 1].contains(&marker))
}

/// Recursively collect `.rs` files under `dir` into `out`.
pub fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// The workspace root: walk up from the calling crate's manifest dir (or
/// the CWD when cargo's env is absent) to the first `Cargo.toml` declaring
/// `[workspace]`. Works both for xtask-style tools run from the root and
/// for per-crate test harnesses run from `crates/<name>/`.
pub fn workspace_root() -> PathBuf {
    let start = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .ok()
        .or_else(|| std::env::current_dir().ok())
        .unwrap_or_else(|| PathBuf::from("."));
    let mut dir = start.clone();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            return start;
        }
    }
}

// ---------------------------------------------------------------------------
// UDF-purity rules (the determinism pass)
// ---------------------------------------------------------------------------

/// One UDF-purity finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PurityFinding {
    /// File the closure lives in.
    pub file: PathBuf,
    /// 1-based line of the offending token.
    pub line: usize,
    /// Rule id (one of [`PURITY_RULES`]).
    pub rule: &'static str,
    /// The reducer/mapper site label (enclosing function name, or the job
    /// name template for literally-named jobs, `{..}` normalized to `{}`).
    pub site: String,
    /// Human-readable diagnostic.
    pub message: String,
}

impl std::fmt::Display for PurityFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} (site `{}`)",
            self.file.display(),
            self.line,
            self.rule,
            self.message,
            self.site
        )
    }
}

/// The UDF-purity rule ids and their rationale, in reporting order.
pub const PURITY_RULES: &[(&str, &str)] = &[
    (
        "no-unordered-iteration",
        "iterating a HashMap/HashSet inside an emitting closure makes emission \
         order depend on hasher state; use BTreeMap/BTreeSet or sort first",
    ),
    (
        "no-wall-clock",
        "SystemTime/Instant reads inside a map/reduce closure make output \
         depend on scheduling; clocks belong to the engine, not UDFs",
    ),
    (
        "no-thread-id",
        "thread-identity reads inside a map/reduce closure make output depend \
         on worker placement",
    ),
    (
        "unannotated-float-reduction",
        "a float reduction in a reducer must be declared commutative-associative \
         in the plan metadata (PlanJob::comm_assoc, backed by a property test), \
         or re-execution and reordering may change the bits",
    ),
];

/// One reducer closure found by the scan, with its site label and whether
/// its body contains a floating-point reduction pattern.
#[derive(Debug, Clone)]
pub struct ReducerSite {
    /// File the reducer lives in.
    pub file: PathBuf,
    /// 1-based line the closure starts on.
    pub line: usize,
    /// Site label (enclosing fn or normalized job-name template).
    pub site: String,
    /// Whether the body accumulates floats (`+=`, `.sum()`, `.product()`).
    pub has_float_reduction: bool,
}

/// The job runners whose closure arguments the purity pass inspects.
const JOB_RUNNERS: &[&str] = &[
    "run_job",
    "run_job_streaming",
    "run_job_dfs",
    "run_job_dfs_recovering",
];

fn contains_token(hay: &str, needle: &str) -> Option<usize> {
    let b = hay.as_bytes();
    let mut search = 0usize;
    while let Some(off) = hay[search..].find(needle) {
        let at = search + off;
        search = at + needle.len();
        let before_ok = at == 0 || !is_ident_byte(b[at - 1]);
        let after = at + needle.len();
        let after_ok = after >= b.len() || !is_ident_byte(b[after]);
        if before_ok && after_ok {
            return Some(at);
        }
    }
    None
}

/// Variable names declared as `HashMap`/`HashSet` inside `region` of the
/// code view (statement-level heuristic: a `let [mut] NAME …;` statement
/// that mentions either type).
fn unordered_decls(code_region: &str) -> Vec<String> {
    let mut names = Vec::new();
    for stmt in code_region.split(';') {
        if !(stmt.contains("HashMap") || stmt.contains("HashSet")) {
            continue;
        }
        let Some(let_at) = contains_token(stmt, "let") else {
            continue;
        };
        let mut rest = stmt[let_at + 3..].trim_start();
        if let Some(r) = rest.strip_prefix("mut ") {
            rest = r.trim_start();
        }
        let name: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() {
            names.push(name);
        }
    }
    names
}

/// Does `code_region` iterate the variable `name` (loop or iterator
/// adapter), as opposed to keyed lookups, which are order-free?
fn iterates(code_region: &str, name: &str) -> Option<usize> {
    for pat in [
        format!("in {name}"),
        format!("in &{name}"),
        format!("in &mut {name}"),
        format!("{name}.iter()"),
        format!("{name}.into_iter()"),
        format!("{name}.keys()"),
        format!("{name}.values()"),
        format!("{name}.drain("),
    ] {
        let mut search = 0usize;
        while let Some(off) = code_region[search..].find(&pat) {
            let at = search + off;
            search = at + pat.len();
            let b = code_region.as_bytes();
            // Token boundary on the variable name inside the pattern.
            let name_at = at + pat.find(name).unwrap_or(0);
            let before_ok = name_at == 0 || !is_ident_byte(b[name_at - 1]);
            let after = name_at + name.len();
            let after_ok = after >= b.len() || !is_ident_byte(b[after]) || b[after] == b'.';
            if before_ok && after_ok {
                return Some(at);
            }
        }
    }
    None
}

/// Float-reduction patterns a reducer body may contain.
fn float_reduction_at(code_region: &str) -> Option<usize> {
    for pat in ["+=", ".sum()", ".sum::<", ".product()", ".product::<"] {
        if let Some(at) = code_region.find(pat) {
            return Some(at);
        }
    }
    None
}

/// The normalized site label of one job-runner call: the first string
/// literal inside its `JobSpec::named(...)` argument with `{…}` holes
/// normalized to `{}` (e.g. `nway-imhp-mode{mode}` → `nway-imhp-mode{}`),
/// or the enclosing function name when the job name is built dynamically.
fn site_label(st: &SourceText, call_start: usize, args: (usize, usize)) -> String {
    if let Some(named_at) = st.code[args.0..args.1]
        .find("JobSpec::named")
        .map(|o| args.0 + o)
    {
        if let Some(open) = st.code[named_at..args.1].find('(').map(|o| named_at + o) {
            if let Some(close) = matching_close(&st.code, open) {
                if let Some(lit) = st.first_string_in((open, close)) {
                    return normalize_template(lit);
                }
            }
        }
    }
    enclosing_fn_name(&st.code, call_start).unwrap_or_else(|| "<unknown>".to_string())
}

/// Replace every `{…}` hole in a job-name template with `{}`.
pub fn normalize_template(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut in_hole = false;
    for c in name.chars() {
        match c {
            '{' => {
                in_hole = true;
                out.push('{');
            }
            '}' => {
                in_hole = false;
                out.push('}');
            }
            _ if in_hole => {}
            _ => out.push(c),
        }
    }
    out
}

/// Scan one source file for UDF-purity violations in the closures passed
/// to the engine's job runners.
///
/// `is_comm_assoc` answers whether the plan metadata declares the reducer
/// at a given site label commutative-associative (the analyzer wires this
/// to `haten2_core::plan::is_comm_assoc_site`; the fixture tests pass
/// `|_| false`). Returns the findings plus every reducer site seen, so
/// callers can cross-check annotation coverage.
///
/// Scanning stops at the file's `#[cfg(test)]` region (tests may use
/// whatever they like), and `// lint:allow(<rule>)` on the same or the
/// preceding line suppresses a finding.
pub fn scan_udf_purity(
    path: &Path,
    raw: &str,
    is_comm_assoc: &dyn Fn(&str) -> bool,
) -> (Vec<PurityFinding>, Vec<ReducerSite>) {
    let st = SourceText::parse(raw);
    let raw_lines: Vec<&str> = raw.lines().collect();
    let mut findings = Vec::new();
    let mut reducers = Vec::new();

    // Byte offset where the test module starts (scan stops there).
    let test_cutoff = raw
        .lines()
        .scan(0usize, |off, l| {
            let at = *off;
            *off += l.len() + 1;
            Some((at, l))
        })
        .find(|(_, l)| l.trim_start().starts_with("#[cfg(test)]"))
        .map(|(at, _)| at)
        .unwrap_or(raw.len());

    let push = |findings: &mut Vec<PurityFinding>, at: usize, rule: &'static str, site: &str| {
        let line = line_of(&st.raw, at);
        if is_suppressed(&raw_lines, line - 1, rule) {
            return;
        }
        let message = PURITY_RULES
            .iter()
            .find(|(id, _)| *id == rule)
            .map(|(_, m)| *m)
            .unwrap_or("");
        findings.push(PurityFinding {
            file: path.to_path_buf(),
            line,
            rule,
            site: site.to_string(),
            message: message.to_string(),
        });
    };

    for runner in JOB_RUNNERS {
        for (call_start, args) in find_calls(&st.code, runner) {
            if call_start >= test_cutoff {
                continue;
            }
            let site = site_label(&st, call_start, args);
            let pieces = split_top_level(&st.code, args);
            let closures: Vec<(usize, usize)> = pieces
                .into_iter()
                .filter(|&(s, e)| {
                    let t = st.code[s..e].trim_start();
                    t.starts_with('|') || t.starts_with("move ")
                })
                .collect();
            for (ci, &(s, e)) in closures.iter().enumerate() {
                let body = &st.code[s..e];
                let is_reducer = ci + 1 == closures.len() && closures.len() >= 2;
                let emits = body.contains("emit");

                if emits {
                    for name in unordered_decls(body) {
                        if let Some(at) = iterates(body, &name) {
                            push(&mut findings, s + at, "no-unordered-iteration", &site);
                        }
                    }
                }
                for tok in ["SystemTime", "Instant"] {
                    if let Some(at) = contains_token(body, tok) {
                        push(&mut findings, s + at, "no-wall-clock", &site);
                    }
                }
                for pat in ["thread::current", "ThreadId"] {
                    if let Some(at) = body.find(pat) {
                        push(&mut findings, s + at, "no-thread-id", &site);
                    }
                }
                if is_reducer {
                    let float_at = float_reduction_at(body);
                    reducers.push(ReducerSite {
                        file: path.to_path_buf(),
                        line: line_of(&st.raw, s),
                        site: site.clone(),
                        has_float_reduction: float_at.is_some(),
                    });
                    if let Some(at) = float_at {
                        if !is_comm_assoc(&site) {
                            push(&mut findings, s + at, "unannotated-float-reduction", &site);
                        }
                    }
                }
            }
        }
    }
    (findings, reducers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_view_blanks_comments_and_strings() {
        let src = r#"let a = "thread::spawn"; // thread::spawn in prose
/* thread::spawn */ let b = 'x'; let c: &'static str = "";"#;
        let st = SourceText::parse(src);
        assert_eq!(st.raw.len(), st.code.len());
        assert!(!st.code.contains("thread::spawn"));
        assert!(st.code.contains("let a"));
        assert!(st.code.contains("&'static str"));
        assert_eq!(st.strings.len(), 2);
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let src = r##"let a = r#"dbg!( inside "#; let b = '\n'; let c = b"dbg!(";"##;
        let st = SourceText::parse(src);
        assert!(!st.code.contains("dbg!("));
        assert_eq!(st.raw.len(), st.code.len());
    }

    #[test]
    fn call_and_region_extraction() {
        let src = "fn outer() { run_job(cluster, spec, |a, b| a + b, |k, v| k) }";
        let st = SourceText::parse(src);
        let calls = find_calls(&st.code, "run_job");
        assert_eq!(calls.len(), 1);
        let pieces = split_top_level(&st.code, calls[0].1);
        assert_eq!(pieces.len(), 4);
        assert_eq!(
            enclosing_fn_name(&st.code, calls[0].0),
            Some("outer".to_string())
        );
        // run_job must not match run_job_dfs.
        let src2 = "run_job_dfs(a, b)";
        let st2 = SourceText::parse(src2);
        assert!(find_calls(&st2.code, "run_job").is_empty());
        assert_eq!(find_calls(&st2.code, "run_job_dfs").len(), 1);
    }

    #[test]
    fn purity_flags_unordered_iteration_and_float_reduction() {
        let src = r#"
fn bad_reduce() {
    run_job(
        c,
        JobSpec::named("bad-job{i}"),
        &input,
        |k, v, emit| emit(k, v),
        |k, vals, emit| {
            let mut acc: HashMap<u64, f64> = HashMap::new();
            for v in vals { *acc.entry(v).or_insert(0.0) += 1.0; }
            for (k2, v2) in acc { emit(k2, v2); }
        },
    );
}
"#;
        let (findings, reducers) = scan_udf_purity(Path::new("mem.rs"), src, &|_| false);
        assert!(findings
            .iter()
            .any(|f| f.rule == "no-unordered-iteration" && f.site == "bad-job{}"));
        assert!(findings
            .iter()
            .any(|f| f.rule == "unannotated-float-reduction"));
        assert_eq!(reducers.len(), 1);
        assert!(reducers[0].has_float_reduction);
        // Declared comm-assoc: the float-reduction finding disappears.
        let (findings2, _) = scan_udf_purity(Path::new("mem.rs"), src, &|_| true);
        assert!(!findings2
            .iter()
            .any(|f| f.rule == "unannotated-float-reduction"));
    }

    #[test]
    fn purity_ignores_lookups_and_tests() {
        let src = r#"
fn good_reduce() {
    run_job(
        c,
        JobSpec::named(name.to_string()),
        &input,
        |k, v, emit| emit(k, v),
        |k, vals, emit| {
            let mut coefs: HashMap<u64, f64> = HashMap::new();
            for v in &vals { coefs.insert(v.0, v.1); }
            if let Some(c) = coefs.get(&k) { emit(k, *c); }
        },
    );
}
#[cfg(test)]
mod tests {
    fn in_tests() {
        run_job(c, s, &i, |a, b, emit| emit(a, Instant::now()), |k, v, e| e(k, v));
    }
}
"#;
        let (findings, reducers) = scan_udf_purity(Path::new("mem.rs"), src, &|_| false);
        // `coefs.insert` / `coefs.get` are keyed, not iteration; the
        // iteration over `&vals` is a Vec, not a map. Tests are skipped.
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(reducers.len(), 1);
        assert_eq!(reducers[0].site, "good_reduce");
        assert!(!reducers[0].has_float_reduction);
    }

    #[test]
    fn suppression_marker_is_honoured() {
        let src = r#"
fn noisy() {
    run_job(
        c,
        s,
        &i,
        |k, v, emit| emit(k, v),
        |k, vals, emit| {
            // lint:allow(no-wall-clock) — timestamping is this job's purpose
            let t = Instant::now();
            emit(k, t)
        },
    );
}
"#;
        let (findings, _) = scan_udf_purity(Path::new("mem.rs"), src, &|_| false);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn template_normalization() {
        assert_eq!(normalize_template("job-{mode}"), "job-{}");
        assert_eq!(normalize_template("plain"), "plain");
        assert_eq!(normalize_template("a{x}b{y}"), "a{}b{}");
    }
}
