//! Durable append-only block store — the on-disk half of the HaTen2 DFS.
//!
//! HaTen2 keeps the input tensor, every intermediate dataset, and the
//! factor matrices on HDFS; the billion-nonzero regime of the paper is
//! only reachable because datasets larger than cluster RAM live in HDFS
//! blocks and are streamed back on demand. This crate reproduces the
//! storage layer of that story against the local filesystem:
//!
//! * **Segments** ([`segment`]) — append-only data files
//!   (`seg-NNNNNN.dat`). A dataset's payload is one contiguous extent in
//!   a segment; readers fetch it with a positional read (`pread`), so the
//!   OS page cache serves hot extents without any user-level buffer
//!   management — the mmap-style access path of an HDFS `DataNode`.
//! * **Manifest** ([`manifest`]) — a versioned, checksummed append-only
//!   log mapping dataset name → (segment, offset, length, codec, type
//!   tag, checksum). Replaying the log reconstructs the namespace after
//!   a crash or restart; a torn tail (a crash mid-append) is detected by
//!   the per-entry checksum and truncated away. This is the `NameNode`'s
//!   edit log, scaled to one machine.
//! * **Codec** ([`codec`]) — optional per-block compression. Sparse
//!   tensor payloads are index-heavy (`u64` slots whose high bytes are
//!   almost always zero), so a byte-level zero-run codec already removes
//!   most of the wire volume without burning CPU on entropy coding.
//! * **Store** ([`store`]) — the façade tying the two together:
//!   `put`/`get`/`delete` of named byte blobs with crash-consistent
//!   durability (segment extent is fsynced before the manifest entry
//!   that references it commits).
//! * **Local FS façade** ([`localfs`]) — atomic, fsynced small-file
//!   writes for the checkpoint layer, so *all* file I/O of the engine
//!   crates is confined to this crate (the `no-direct-fs` lint enforces
//!   it) and every write follows the same crash-consistency discipline.
//!
//! The crate speaks bytes only: record typing, size estimation, and the
//! spill/cache policy live in `haten2-mapreduce`'s `Dfs`, which drives
//! this store through its `Durable` backend.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod checksum;
pub mod codec;
pub mod localfs;
pub mod manifest;
pub mod segment;
pub mod store;

pub use checksum::fnv1a64;
pub use codec::Codec;
pub use manifest::{BlobMeta, Manifest, ManifestEntry};
pub use store::{BlockStore, DatasetIo, StoreOptions, StoreStats, StoredBlob};
