//! Crash-consistent small-file I/O for the checkpoint layer.
//!
//! Checkpoint markers and factor snapshots are small named files, not
//! block-store blobs — a restarted driver must find them by path before
//! any store is open. This façade gives them the same durability
//! discipline as the store proper: every write is staged to a temp file,
//! fsynced, and atomically renamed into place, so a reader never observes
//! a half-written checkpoint no matter where a crash lands. It also
//! concentrates the engine's remaining direct file I/O in this crate,
//! which the `no-direct-fs` lint then enforces workspace-wide.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// Atomically replace `path` with `bytes`: write to a sibling temp file,
/// fsync it, rename over `path`, then fsync the parent directory so the
/// rename itself is durable.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = match dir {
        Some(d) => d.join(format!(".{file_name}.tmp-{}", std::process::id())),
        None => std::path::PathBuf::from(format!(".{file_name}.tmp-{}", std::process::id())),
    };
    {
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    if let Some(d) = dir {
        // Directory fsync makes the rename durable; best-effort on
        // filesystems that refuse to open directories.
        if let Ok(dirf) = File::open(d) {
            let _ = dirf.sync_all();
        }
    }
    Ok(())
}

/// Read a whole file as bytes.
pub fn read(path: &Path) -> io::Result<Vec<u8>> {
    std::fs::read(path)
}

/// Read a whole file as UTF-8.
pub fn read_to_string(path: &Path) -> io::Result<String> {
    std::fs::read_to_string(path)
}

/// Create `dir` and any missing parents.
pub fn create_dir_all(path: &Path) -> io::Result<()> {
    std::fs::create_dir_all(path)
}

/// Remove a file; missing files are not an error.
pub fn remove_file(path: &Path) -> io::Result<()> {
    match std::fs::remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

/// Remove a directory tree; missing trees are not an error.
pub fn remove_dir_all(path: &Path) -> io::Result<()> {
    match std::fs::remove_dir_all(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

/// Whether `path` exists.
#[must_use]
pub fn exists(path: &Path) -> bool {
    path.exists()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("haten2-localfs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_atomic_roundtrip_and_replace() {
        let dir = tmpdir("atomic");
        let path = dir.join("marker.txt");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(read_to_string(&path).unwrap(), "first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(read(&path).unwrap(), b"second");
        // No temp residue.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn remove_file_tolerates_missing() {
        let dir = tmpdir("rm");
        remove_file(&dir.join("nope")).unwrap();
        remove_dir_all(&dir.join("nope-dir")).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
