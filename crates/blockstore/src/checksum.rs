//! FNV-1a 64-bit checksums.
//!
//! Every manifest entry and every stored payload carries an FNV-1a digest.
//! FNV is not cryptographic — the threat model is torn writes and bit rot,
//! not an adversary — and it is the same hash family the engine's shuffle
//! partitioner already standardizes on, so the workspace has exactly one
//! hash story.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit digest of `bytes`.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = fnv1a64(&[0u8; 64]);
        let mut flipped = [0u8; 64];
        flipped[63] = 1;
        assert_ne!(a, fnv1a64(&flipped));
    }
}
