//! Versioned, checksummed manifest log.
//!
//! The manifest is the store's namespace: an append-only log of `put` and
//! `delete` records mapping dataset names to segment extents. Replaying
//! the log from the top reconstructs the live name → extent index after a
//! restart — the single-machine analogue of an HDFS `NameNode` replaying
//! its edit log.
//!
//! Each entry is framed as
//!
//! ```text
//! [u32 body_len] [u64 fnv1a64(body)] [body…]
//! ```
//!
//! so a crash mid-append leaves a *torn tail*: a frame whose length field
//! runs past EOF or whose checksum does not match. Replay stops at the
//! first torn frame and truncates the file there — every fully committed
//! entry before it survives, and the store's crash-consistency contract
//! (segment extent fsynced *before* its manifest entry is appended) means
//! a truncated tail never orphans referenced data, only un-references
//! bytes that were still in flight.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::checksum::fnv1a64;
use crate::codec::Codec;

/// Name of the manifest log inside a store directory.
pub const MANIFEST_FILE: &str = "manifest.log";

const KIND_PUT: u8 = 1;
const KIND_DELETE: u8 = 2;

/// Everything the store must remember about one committed blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlobMeta {
    /// Type tag of the records serialized into the blob (e.g.
    /// `"((u64,u64,u64,u64),f64)"`), checked on read so a dataset is never
    /// decoded as the wrong record type after a restart.
    pub type_tag: String,
    /// Codec the payload was stored with.
    pub codec: Codec,
    /// Segment file the payload lives in.
    pub segment: u32,
    /// Byte offset of the extent inside the segment.
    pub offset: u64,
    /// On-disk (post-codec) extent length.
    pub stored_len: u64,
    /// Decoded payload length.
    pub raw_len: u64,
    /// In-memory size estimate of the dataset (`EstimateSize` bytes);
    /// persisted because it cannot be recomputed from encoded bytes.
    pub est_bytes: u64,
    /// Number of records in the dataset.
    pub records: u64,
    /// FNV-1a digest of the on-disk (stored) extent bytes.
    pub payload_checksum: u64,
}

/// One replayed manifest record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Monotonic version; later entries for a name shadow earlier ones.
    pub version: u64,
    /// Dataset name the entry applies to.
    pub name: String,
    /// `Some(meta)` for a put, `None` for a delete.
    pub meta: Option<BlobMeta>,
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let out = self.bytes.get(self.pos..self.pos + n).ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "truncated manifest body")
        })?;
        self.pos += n;
        Ok(out)
    }
    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }
    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }
    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }
    fn str(&mut self, len: usize) -> io::Result<String> {
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 manifest string"))
    }
}

fn encode_body(entry: &ManifestEntry) -> io::Result<Vec<u8>> {
    let mut body = Vec::with_capacity(64 + entry.name.len());
    body.push(if entry.meta.is_some() {
        KIND_PUT
    } else {
        KIND_DELETE
    });
    put_u64(&mut body, entry.version);
    let name_len = u16::try_from(entry.name.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "dataset name too long"))?;
    put_u16(&mut body, name_len);
    body.extend_from_slice(entry.name.as_bytes());
    if let Some(meta) = &entry.meta {
        let tag_len = u16::try_from(meta.type_tag.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "type tag too long"))?;
        put_u16(&mut body, tag_len);
        body.extend_from_slice(meta.type_tag.as_bytes());
        body.push(meta.codec.tag());
        put_u32(&mut body, meta.segment);
        put_u64(&mut body, meta.offset);
        put_u64(&mut body, meta.stored_len);
        put_u64(&mut body, meta.raw_len);
        put_u64(&mut body, meta.est_bytes);
        put_u64(&mut body, meta.records);
        put_u64(&mut body, meta.payload_checksum);
    }
    Ok(body)
}

fn decode_body(body: &[u8]) -> io::Result<ManifestEntry> {
    let mut c = Cursor {
        bytes: body,
        pos: 0,
    };
    let kind = c.u8()?;
    let version = c.u64()?;
    let name_len = c.u16()? as usize;
    let name = c.str(name_len)?;
    let meta = match kind {
        KIND_DELETE => None,
        KIND_PUT => {
            let tag_len = c.u16()? as usize;
            let type_tag = c.str(tag_len)?;
            let codec = Codec::from_tag(c.u8()?)?;
            Some(BlobMeta {
                type_tag,
                codec,
                segment: c.u32()?,
                offset: c.u64()?,
                stored_len: c.u64()?,
                raw_len: c.u64()?,
                est_bytes: c.u64()?,
                records: c.u64()?,
                payload_checksum: c.u64()?,
            })
        }
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown manifest entry kind {other}"),
            ))
        }
    };
    if c.pos != body.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "trailing bytes in manifest body",
        ));
    }
    Ok(ManifestEntry {
        version,
        name,
        meta,
    })
}

/// Outcome of replaying a manifest log.
#[derive(Debug)]
pub struct Replay {
    /// Live namespace after applying every committed entry in order.
    pub index: BTreeMap<String, BlobMeta>,
    /// Next version to assign (max committed version + 1).
    pub next_version: u64,
    /// Committed entries replayed.
    pub entries: usize,
    /// Bytes of torn tail truncated away, if any.
    pub truncated_bytes: u64,
}

/// Open handle to the manifest log: replay on open, append afterwards.
#[derive(Debug)]
pub struct Manifest {
    file: File,
    path: PathBuf,
    next_version: u64,
    entries: usize,
}

impl Manifest {
    /// Open (creating if absent) the manifest in `dir`, replaying the log
    /// and truncating any torn tail left by a crash mid-append.
    pub fn open(dir: &Path) -> io::Result<(Manifest, Replay)> {
        let path = dir.join(MANIFEST_FILE);
        let mut bytes = Vec::new();
        match File::open(&path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }

        let mut index = BTreeMap::new();
        let mut next_version = 1u64;
        let mut entries = 0usize;
        let mut pos = 0usize;
        let valid_end = loop {
            if pos == bytes.len() {
                break pos;
            }
            let Some(header) = bytes.get(pos..pos + 12) else {
                break pos;
            };
            let body_len = u32::from_le_bytes(header[0..4].try_into().expect("len 4")) as usize;
            let want = u64::from_le_bytes(header[4..12].try_into().expect("len 8"));
            let Some(body) = bytes.get(pos + 12..pos + 12 + body_len) else {
                break pos;
            };
            if fnv1a64(body) != want {
                break pos;
            }
            let Ok(entry) = decode_body(body) else {
                break pos;
            };
            next_version = next_version.max(entry.version + 1);
            match entry.meta {
                Some(meta) => {
                    index.insert(entry.name, meta);
                }
                None => {
                    index.remove(&entry.name);
                }
            }
            entries += 1;
            pos += 12 + body_len;
        };

        let truncated_bytes = (bytes.len() - valid_end) as u64;
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&path)?;
        if truncated_bytes > 0 {
            file.set_len(valid_end as u64)?;
            file.sync_data()?;
        }
        let mut manifest = Manifest {
            file,
            path,
            next_version,
            entries,
        };
        // Position the cursor at the committed end for future appends.
        io::Seek::seek(&mut manifest.file, io::SeekFrom::Start(valid_end as u64))?;
        Ok((
            manifest,
            Replay {
                index,
                next_version,
                entries,
                truncated_bytes,
            },
        ))
    }

    fn append(&mut self, entry: &ManifestEntry) -> io::Result<()> {
        let body = encode_body(entry)?;
        let body_len = u32::try_from(body.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "manifest body too large"))?;
        let mut frame = Vec::with_capacity(12 + body.len());
        put_u32(&mut frame, body_len);
        put_u64(&mut frame, fnv1a64(&body));
        frame.extend_from_slice(&body);
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.entries += 1;
        Ok(())
    }

    /// Commit a put; returns the version assigned to the entry.
    pub fn append_put(&mut self, name: &str, meta: BlobMeta) -> io::Result<u64> {
        let version = self.next_version;
        self.append(&ManifestEntry {
            version,
            name: name.to_string(),
            meta: Some(meta),
        })?;
        self.next_version += 1;
        Ok(version)
    }

    /// Commit a delete; returns the version assigned to the entry.
    pub fn append_delete(&mut self, name: &str) -> io::Result<u64> {
        let version = self.next_version;
        self.append(&ManifestEntry {
            version,
            name: name.to_string(),
            meta: None,
        })?;
        self.next_version += 1;
        Ok(version)
    }

    /// Committed entries in the log (including shadowed and deleted ones).
    #[must_use]
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Path of the log file.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("haten2-manifest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn meta(segment: u32, offset: u64) -> BlobMeta {
        BlobMeta {
            type_tag: "((u64,u64,u64,u64),f64)".to_string(),
            codec: Codec::ZeroRle,
            segment,
            offset,
            stored_len: 100,
            raw_len: 400,
            est_bytes: 640,
            records: 10,
            payload_checksum: 0xdead_beef,
        }
    }

    #[test]
    fn body_roundtrip() {
        for entry in [
            ManifestEntry {
                version: 1,
                name: "tensor/x".to_string(),
                meta: Some(meta(3, 1234)),
            },
            ManifestEntry {
                version: 9,
                name: "gone".to_string(),
                meta: None,
            },
        ] {
            let body = encode_body(&entry).unwrap();
            assert_eq!(decode_body(&body).unwrap(), entry);
        }
    }

    #[test]
    fn replay_applies_puts_deletes_and_shadowing() {
        let dir = tmpdir("replay");
        {
            let (mut m, replay) = Manifest::open(&dir).unwrap();
            assert_eq!(replay.entries, 0);
            m.append_put("a", meta(0, 0)).unwrap();
            m.append_put("b", meta(0, 100)).unwrap();
            m.append_put("a", meta(1, 0)).unwrap(); // shadows the first put
            m.append_delete("b").unwrap();
        }
        let (m, replay) = Manifest::open(&dir).unwrap();
        assert_eq!(replay.entries, 4);
        assert_eq!(replay.truncated_bytes, 0);
        assert_eq!(m.entries(), 4);
        assert_eq!(replay.next_version, 5);
        assert_eq!(replay.index.len(), 1);
        assert_eq!(replay.index["a"].segment, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_log_stays_appendable() {
        let dir = tmpdir("torn");
        {
            let (mut m, _) = Manifest::open(&dir).unwrap();
            m.append_put("a", meta(0, 0)).unwrap();
            m.append_put("b", meta(0, 100)).unwrap();
        }
        // Simulate a crash mid-append: garbage tail bytes.
        let path = dir.join(MANIFEST_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let committed = bytes.len();
        bytes.extend_from_slice(&[0x42; 7]);
        std::fs::write(&path, &bytes).unwrap();

        let (mut m, replay) = Manifest::open(&dir).unwrap();
        assert_eq!(replay.entries, 2);
        assert_eq!(replay.truncated_bytes, 7);
        assert_eq!(replay.index.len(), 2);
        assert_eq!(std::fs::metadata(&path).unwrap().len() as usize, committed);

        // Appending after truncation produces a clean, replayable log.
        m.append_delete("a").unwrap();
        let (_, replay) = Manifest::open(&dir).unwrap();
        assert_eq!(replay.entries, 3);
        assert_eq!(replay.index.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checksum_cuts_replay_at_that_entry() {
        let dir = tmpdir("corrupt");
        {
            let (mut m, _) = Manifest::open(&dir).unwrap();
            m.append_put("a", meta(0, 0)).unwrap();
            m.append_put("b", meta(0, 100)).unwrap();
            m.append_put("c", meta(0, 200)).unwrap();
        }
        let path = dir.join(MANIFEST_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit in the middle entry's body; replay must stop before it.
        let one_entry = bytes.len() / 3;
        bytes[one_entry + 20] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let (_, replay) = Manifest::open(&dir).unwrap();
        assert_eq!(replay.entries, 1);
        assert_eq!(replay.index.len(), 1);
        assert!(replay.index.contains_key("a"));
        assert!(replay.truncated_bytes > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_and_missing_logs_open_clean() {
        let dir = tmpdir("empty");
        let (_, replay) = Manifest::open(&dir).unwrap();
        assert_eq!(replay.entries, 0);
        assert_eq!(replay.next_version, 1);
        assert!(replay.index.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
