//! The block store façade: named byte blobs over segments + manifest.
//!
//! `put` encodes the payload, appends it to the current segment, fsyncs
//! the segment, and only then commits a manifest entry referencing the
//! extent — so a crash at any point leaves either a fully readable blob
//! or no blob, never a manifest entry pointing at unsynced bytes. `get`
//! is a positional read of the extent followed by checksum verification
//! and decode. The store speaks bytes only; record typing and the spill
//! policy live in the engine's `Dfs` layer.
//!
//! Space is append-only: overwriting or deleting a dataset shadows the
//! old extent in the manifest but does not reclaim segment bytes. The
//! stats report the resulting dead volume so callers (and the bench
//! harness) can see write amplification; compaction is future work and
//! mirrors HDFS, where blocks are immutable and reclamation is a
//! namespace-level concern.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

use crate::checksum::fnv1a64;
use crate::codec::{self, Codec};
use crate::manifest::{BlobMeta, Manifest};
use crate::segment::{SegmentReader, SegmentWriter};

/// Default segment rotation threshold (64 MiB).
pub const DEFAULT_SEGMENT_ROTATE_BYTES: u64 = 64 << 20;

/// Configuration for opening a [`BlockStore`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Directory holding segments and the manifest (created if absent).
    pub dir: PathBuf,
    /// Preferred codec for new blobs (per-blob fallback to `Raw` when the
    /// encoding does not shrink; reads always honor the recorded codec).
    pub codec: Codec,
    /// Rotate to a fresh segment file once the current one crosses this.
    pub segment_rotate_bytes: u64,
}

impl StoreOptions {
    /// Options rooted at `dir` with the default codec and rotation size.
    pub fn new(dir: impl Into<PathBuf>) -> StoreOptions {
        StoreOptions {
            dir: dir.into(),
            codec: Codec::ZeroRle,
            segment_rotate_bytes: DEFAULT_SEGMENT_ROTATE_BYTES,
        }
    }

    /// Set the preferred codec.
    #[must_use]
    pub fn codec(mut self, codec: Codec) -> StoreOptions {
        self.codec = codec;
        self
    }

    /// Set the segment rotation threshold.
    #[must_use]
    pub fn segment_rotate_bytes(mut self, bytes: u64) -> StoreOptions {
        self.segment_rotate_bytes = bytes;
        self
    }
}

/// A blob read back from the store: decoded bytes plus its manifest meta.
#[derive(Debug, Clone)]
pub struct StoredBlob {
    /// Manifest metadata the blob was served under.
    pub meta: BlobMeta,
    /// Decoded (raw) payload bytes.
    pub bytes: Vec<u8>,
}

/// Per-dataset durable I/O counters (raw, pre-codec byte volumes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DatasetIo {
    /// Raw bytes written for this dataset (sum over all puts).
    pub bytes_written: u64,
    /// Raw bytes read back for this dataset (sum over all gets).
    pub bytes_read: u64,
    /// Number of puts.
    pub writes: u64,
    /// Number of gets.
    pub reads: u64,
}

/// Snapshot of store-wide counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreStats {
    /// Completed puts.
    pub puts: u64,
    /// Completed gets (hits only).
    pub gets: u64,
    /// Completed deletes.
    pub deletes: u64,
    /// Raw (pre-codec) bytes accepted by puts.
    pub raw_bytes_written: u64,
    /// On-disk (post-codec) bytes appended to segments.
    pub stored_bytes_written: u64,
    /// Raw bytes served by gets.
    pub raw_bytes_read: u64,
    /// On-disk bytes fetched from segments by gets.
    pub stored_bytes_read: u64,
    /// Live datasets in the namespace.
    pub live_datasets: u64,
    /// On-disk bytes referenced by live datasets.
    pub live_stored_bytes: u64,
    /// Raw bytes represented by live datasets.
    pub live_raw_bytes: u64,
    /// On-disk bytes shadowed by overwrites/deletes (not reclaimed).
    pub dead_stored_bytes: u64,
    /// Torn-tail bytes truncated from the manifest when the store opened.
    pub truncated_bytes_on_open: u64,
}

#[derive(Debug, Default)]
struct Counters {
    puts: AtomicU64,
    gets: AtomicU64,
    deletes: AtomicU64,
    raw_bytes_written: AtomicU64,
    stored_bytes_written: AtomicU64,
    raw_bytes_read: AtomicU64,
    stored_bytes_read: AtomicU64,
    dead_stored_bytes: AtomicU64,
}

#[derive(Debug)]
struct WriterState {
    segments: SegmentWriter,
    manifest: Manifest,
}

/// Durable block store: crash-consistent named blobs on local disk.
#[derive(Debug)]
pub struct BlockStore {
    dir: PathBuf,
    codec: Codec,
    index: RwLock<BTreeMap<String, BlobMeta>>,
    writer: Mutex<WriterState>,
    reader: SegmentReader,
    counters: Counters,
    io: Mutex<BTreeMap<String, DatasetIo>>,
    truncated_on_open: u64,
}

impl BlockStore {
    /// Open (creating if needed) the store at `options.dir`, replaying the
    /// manifest to rebuild the namespace.
    pub fn open(options: StoreOptions) -> io::Result<BlockStore> {
        std::fs::create_dir_all(&options.dir)?;
        let (manifest, replay) = Manifest::open(&options.dir)?;
        let segments = SegmentWriter::open(&options.dir, options.segment_rotate_bytes)?;
        Ok(BlockStore {
            dir: options.dir.clone(),
            codec: options.codec,
            index: RwLock::new(replay.index),
            writer: Mutex::new(WriterState { segments, manifest }),
            reader: SegmentReader::new(&options.dir),
            counters: Counters::default(),
            io: Mutex::new(BTreeMap::new()),
            truncated_on_open: replay.truncated_bytes,
        })
    }

    /// Directory the store lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Durably store `raw` under `name`, replacing any previous blob.
    ///
    /// `type_tag` names the record type serialized into the bytes;
    /// `records` and `est_bytes` are engine-level bookkeeping persisted
    /// alongside the extent because they cannot be recovered from the
    /// encoded payload after a restart.
    pub fn put(
        &self,
        name: &str,
        type_tag: &str,
        raw: &[u8],
        records: u64,
        est_bytes: u64,
    ) -> io::Result<BlobMeta> {
        let (codec_used, stored) = codec::encode_auto(self.codec, raw);
        let payload_checksum = fnv1a64(&stored);
        let meta = {
            let mut w = self.writer.lock().expect("block store writer poisoned");
            let (segment, offset) = w.segments.append(&stored)?;
            // Crash-consistency: the extent must be durable before the
            // manifest entry referencing it commits.
            w.segments.sync()?;
            let meta = BlobMeta {
                type_tag: type_tag.to_string(),
                codec: codec_used,
                segment,
                offset,
                stored_len: stored.len() as u64,
                raw_len: raw.len() as u64,
                est_bytes,
                records,
                payload_checksum,
            };
            w.manifest.append_put(name, meta.clone())?;
            meta
        };
        let prior = {
            let mut index = self.index.write().expect("block store index poisoned");
            index.insert(name.to_string(), meta.clone())
        };
        if let Some(old) = prior {
            self.counters
                .dead_stored_bytes
                .fetch_add(old.stored_len, Ordering::Relaxed);
        }
        self.counters.puts.fetch_add(1, Ordering::Relaxed);
        self.counters
            .raw_bytes_written
            .fetch_add(raw.len() as u64, Ordering::Relaxed);
        self.counters
            .stored_bytes_written
            .fetch_add(stored.len() as u64, Ordering::Relaxed);
        {
            let mut io = self.io.lock().expect("block store io map poisoned");
            let entry = io.entry(name.to_string()).or_default();
            entry.bytes_written += raw.len() as u64;
            entry.writes += 1;
        }
        Ok(meta)
    }

    /// Read the blob stored under `name`, verifying its checksum and
    /// decoding it. Returns `Ok(None)` when the name is not live.
    pub fn get(&self, name: &str) -> io::Result<Option<StoredBlob>> {
        let meta = {
            let index = self.index.read().expect("block store index poisoned");
            match index.get(name) {
                Some(m) => m.clone(),
                None => return Ok(None),
            }
        };
        let stored = self
            .reader
            .read(meta.segment, meta.offset, meta.stored_len)?;
        if fnv1a64(&stored) != meta.payload_checksum {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("checksum mismatch reading dataset '{name}'"),
            ));
        }
        let raw_len = usize::try_from(meta.raw_len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "raw length overflow"))?;
        let bytes = codec::decode(meta.codec, &stored, raw_len)?;
        self.counters.gets.fetch_add(1, Ordering::Relaxed);
        self.counters
            .stored_bytes_read
            .fetch_add(stored.len() as u64, Ordering::Relaxed);
        self.counters
            .raw_bytes_read
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        {
            let mut io = self.io.lock().expect("block store io map poisoned");
            let entry = io.entry(name.to_string()).or_default();
            entry.bytes_read += bytes.len() as u64;
            entry.reads += 1;
        }
        Ok(Some(StoredBlob { meta, bytes }))
    }

    /// Manifest metadata for `name`, if live (no payload read).
    #[must_use]
    pub fn meta(&self, name: &str) -> Option<BlobMeta> {
        self.index
            .read()
            .expect("block store index poisoned")
            .get(name)
            .cloned()
    }

    /// Whether `name` is live in the namespace.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.index
            .read()
            .expect("block store index poisoned")
            .contains_key(name)
    }

    /// Remove `name` from the namespace (extent bytes are not reclaimed).
    /// Returns whether the name was live.
    pub fn delete(&self, name: &str) -> io::Result<bool> {
        let was_live = {
            let index = self.index.read().expect("block store index poisoned");
            index.contains_key(name)
        };
        if !was_live {
            return Ok(false);
        }
        {
            let mut w = self.writer.lock().expect("block store writer poisoned");
            w.manifest.append_delete(name)?;
        }
        let removed = {
            let mut index = self.index.write().expect("block store index poisoned");
            index.remove(name)
        };
        if let Some(old) = removed {
            self.counters
                .dead_stored_bytes
                .fetch_add(old.stored_len, Ordering::Relaxed);
            self.counters.deletes.fetch_add(1, Ordering::Relaxed);
        }
        Ok(true)
    }

    /// Names of all live datasets, sorted.
    #[must_use]
    pub fn datasets(&self) -> Vec<String> {
        self.index
            .read()
            .expect("block store index poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// Per-dataset durable I/O counters accumulated since open.
    #[must_use]
    pub fn dataset_io(&self) -> BTreeMap<String, DatasetIo> {
        self.io.lock().expect("block store io map poisoned").clone()
    }

    /// Snapshot of store-wide counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        let (live_datasets, live_stored_bytes, live_raw_bytes) = {
            let index = self.index.read().expect("block store index poisoned");
            (
                index.len() as u64,
                index.values().map(|m| m.stored_len).sum(),
                index.values().map(|m| m.raw_len).sum(),
            )
        };
        StoreStats {
            puts: self.counters.puts.load(Ordering::Relaxed),
            gets: self.counters.gets.load(Ordering::Relaxed),
            deletes: self.counters.deletes.load(Ordering::Relaxed),
            raw_bytes_written: self.counters.raw_bytes_written.load(Ordering::Relaxed),
            stored_bytes_written: self.counters.stored_bytes_written.load(Ordering::Relaxed),
            raw_bytes_read: self.counters.raw_bytes_read.load(Ordering::Relaxed),
            stored_bytes_read: self.counters.stored_bytes_read.load(Ordering::Relaxed),
            live_datasets,
            live_stored_bytes,
            live_raw_bytes,
            dead_stored_bytes: self.counters.dead_stored_bytes.load(Ordering::Relaxed),
            truncated_bytes_on_open: self.truncated_on_open,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("haten2-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn open(dir: &Path) -> BlockStore {
        BlockStore::open(StoreOptions::new(dir)).unwrap()
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let dir = tmpdir("roundtrip");
        let store = open(&dir);
        let payload: Vec<u8> = (0..500u32).flat_map(|i| i.to_le_bytes()).collect();
        let meta = store.put("ds/x", "u32", &payload, 500, 2000).unwrap();
        assert_eq!(meta.raw_len, payload.len() as u64);
        assert_eq!(meta.records, 500);
        assert_eq!(meta.est_bytes, 2000);

        let blob = store.get("ds/x").unwrap().unwrap();
        assert_eq!(blob.bytes, payload);
        assert_eq!(blob.meta.type_tag, "u32");

        assert!(store.delete("ds/x").unwrap());
        assert!(!store.delete("ds/x").unwrap());
        assert!(store.get("ds/x").unwrap().is_none());
        assert!(!store.contains("ds/x"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn state_survives_reopen() {
        let dir = tmpdir("reopen");
        let payload = vec![7u8; 1000];
        {
            let store = open(&dir);
            store.put("keep", "u8", &payload, 1000, 1000).unwrap();
            store.put("drop", "u8", &[1, 2, 3], 3, 3).unwrap();
            store.delete("drop").unwrap();
            store.put("keep2", "u8", &[9; 10], 10, 10).unwrap();
        }
        let store = open(&dir);
        assert_eq!(store.datasets(), vec!["keep".to_string(), "keep2".into()]);
        assert_eq!(store.get("keep").unwrap().unwrap().bytes, payload);
        assert_eq!(store.get("keep2").unwrap().unwrap().bytes, vec![9u8; 10]);
        assert!(store.get("drop").unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn overwrite_shadows_and_counts_dead_bytes() {
        let dir = tmpdir("shadow");
        let store = open(&dir);
        store.put("a", "u8", &[1u8; 100], 100, 100).unwrap();
        let first_stored = store.stats().stored_bytes_written;
        store.put("a", "u8", &[2u8; 100], 100, 100).unwrap();
        assert_eq!(store.get("a").unwrap().unwrap().bytes, vec![2u8; 100]);
        let stats = store.stats();
        assert_eq!(stats.live_datasets, 1);
        assert_eq!(stats.dead_stored_bytes, first_stored);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn per_dataset_io_is_metered() {
        let dir = tmpdir("meter");
        let store = open(&dir);
        store.put("a", "u8", &[0u8; 64], 64, 64).unwrap();
        store.get("a").unwrap().unwrap();
        store.get("a").unwrap().unwrap();
        let io = store.dataset_io();
        assert_eq!(io["a"].writes, 1);
        assert_eq!(io["a"].reads, 2);
        assert_eq!(io["a"].bytes_written, 64);
        assert_eq!(io["a"].bytes_read, 128);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_extent_is_detected_on_read() {
        let dir = tmpdir("bitrot");
        let store = open(&dir);
        // Incompressible payload so it is stored raw and byte 0 of the
        // extent is payload (not codec framing).
        let payload: Vec<u8> = (1..=255u8).cycle().take(300).collect();
        let meta = store.put("a", "u8", &payload, 300, 300).unwrap();
        drop(store);
        // Flip one byte of the extent on disk.
        let seg = dir.join(crate::segment::segment_file_name(meta.segment));
        let mut bytes = std::fs::read(&seg).unwrap();
        let at = usize::try_from(meta.offset).unwrap();
        bytes[at] ^= 0xff;
        std::fs::write(&seg, &bytes).unwrap();
        let store = open(&dir);
        let err = store.get("a").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compressible_payloads_store_smaller() {
        let dir = tmpdir("codec");
        let store = open(&dir);
        let mut payload = Vec::new();
        for i in 0..2000u64 {
            payload.extend_from_slice(&(i % 50).to_le_bytes());
        }
        let meta = store.put("ix", "u64", &payload, 2000, 16000).unwrap();
        assert_eq!(meta.codec, Codec::ZeroRle);
        assert!(meta.stored_len * 2 < meta.raw_len);
        assert_eq!(store.get("ix").unwrap().unwrap().bytes, payload);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_payload_roundtrips() {
        let dir = tmpdir("emptyblob");
        let store = open(&dir);
        store.put("nil", "unit", &[], 0, 0).unwrap();
        let blob = store.get("nil").unwrap().unwrap();
        assert!(blob.bytes.is_empty());
        drop(store);
        let store = open(&dir);
        assert!(store.get("nil").unwrap().unwrap().bytes.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
