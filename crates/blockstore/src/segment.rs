//! Append-only segment files.
//!
//! A segment is a plain data file `seg-NNNNNN.dat` that only ever grows;
//! a stored blob is one contiguous extent `(segment, offset, len)` inside
//! one segment. The writer appends to the newest segment and rotates to a
//! fresh file once it crosses the configured size, so no file grows
//! unboundedly and old segments become immutable — the single-machine
//! analogue of HDFS blocks on a `DataNode`.
//!
//! Reads are positional (`pread`-style): a shared, cached read handle per
//! segment plus `read_at` at the recorded offset. There is no user-level
//! buffer layer — the OS page cache *is* the cache, which gives hot
//! extents mmap-like service times without `unsafe` or explicit mappings.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// File name of segment `id` inside the store directory.
#[must_use]
pub fn segment_file_name(id: u32) -> String {
    format!("seg-{id:06}.dat")
}

/// Parse a segment id back out of a file name, if it is one of ours.
#[must_use]
pub fn parse_segment_file_name(name: &str) -> Option<u32> {
    let digits = name.strip_prefix("seg-")?.strip_suffix(".dat")?;
    if digits.len() == 6 && digits.bytes().all(|b| b.is_ascii_digit()) {
        digits.parse().ok()
    } else {
        None
    }
}

/// Appends blobs to the newest segment, rotating at a size threshold.
#[derive(Debug)]
pub struct SegmentWriter {
    dir: PathBuf,
    id: u32,
    file: File,
    len: u64,
    rotate_at: u64,
    synced: bool,
}

impl SegmentWriter {
    /// Open the writer over `dir`, resuming the highest-numbered existing
    /// segment (or creating `seg-000000.dat` in an empty directory).
    pub fn open(dir: &Path, rotate_at: u64) -> io::Result<SegmentWriter> {
        let mut max_id: Option<u32> = None;
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if let Some(id) = entry.file_name().to_str().and_then(parse_segment_file_name) {
                max_id = Some(max_id.map_or(id, |m: u32| m.max(id)));
            }
        }
        let id = max_id.unwrap_or(0);
        let path = dir.join(segment_file_name(id));
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let len = file.metadata()?.len();
        Ok(SegmentWriter {
            dir: dir.to_path_buf(),
            id,
            file,
            len,
            rotate_at: rotate_at.max(1),
            synced: true,
        })
    }

    /// Append `bytes` and return the extent `(segment, offset)` it landed
    /// at. The data is not durable until [`SegmentWriter::sync`] returns.
    pub fn append(&mut self, bytes: &[u8]) -> io::Result<(u32, u64)> {
        if self.len > 0 && self.len.saturating_add(bytes.len() as u64) > self.rotate_at {
            self.rotate()?;
        }
        let offset = self.len;
        io::Write::write_all(&mut self.file, bytes)?;
        self.len += bytes.len() as u64;
        self.synced = false;
        Ok((self.id, offset))
    }

    fn rotate(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.id += 1;
        let path = self.dir.join(segment_file_name(self.id));
        self.file = OpenOptions::new().create(true).append(true).open(&path)?;
        self.len = 0;
        self.synced = true;
        Ok(())
    }

    /// Fsync the current segment. Must complete before a manifest entry
    /// referencing the appended extent is committed.
    pub fn sync(&mut self) -> io::Result<()> {
        if !self.synced {
            self.file.sync_data()?;
            self.synced = true;
        }
        Ok(())
    }

    /// Id of the segment currently being appended to.
    #[must_use]
    pub fn current_segment(&self) -> u32 {
        self.id
    }

    /// Bytes in the segment currently being appended to.
    #[must_use]
    pub fn current_len(&self) -> u64 {
        self.len
    }
}

/// Shared positional reader over a store directory's segments.
///
/// Read handles are opened lazily and cached per segment; reads go through
/// `read_at` (on Unix) so concurrent readers never contend on a seek
/// cursor and the page cache backs repeated access to hot extents.
#[derive(Debug, Default)]
pub struct SegmentReader {
    dir: PathBuf,
    handles: Mutex<HashMap<u32, Arc<File>>>,
}

impl SegmentReader {
    /// A reader over the segments in `dir`.
    #[must_use]
    pub fn new(dir: &Path) -> SegmentReader {
        SegmentReader {
            dir: dir.to_path_buf(),
            handles: Mutex::new(HashMap::new()),
        }
    }

    fn handle(&self, segment: u32) -> io::Result<Arc<File>> {
        let mut handles = self.handles.lock().expect("segment reader cache poisoned");
        if let Some(f) = handles.get(&segment) {
            return Ok(Arc::clone(f));
        }
        let path = self.dir.join(segment_file_name(segment));
        let file = Arc::new(File::open(&path)?);
        handles.insert(segment, Arc::clone(&file));
        Ok(file)
    }

    /// Read exactly `len` bytes at `offset` in `segment`.
    pub fn read(&self, segment: u32, offset: u64, len: u64) -> io::Result<Vec<u8>> {
        let file = self.handle(segment)?;
        let len_usize = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "extent length overflow"))?;
        let mut buf = vec![0u8; len_usize];
        read_exact_at(&file, &mut buf, offset)?;
        Ok(buf)
    }

    /// Drop cached read handles (e.g. after segments are removed).
    pub fn clear_cache(&self) {
        self.handles
            .lock()
            .expect("segment reader cache poisoned")
            .clear();
    }
}

#[cfg(unix)]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(not(unix))]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    // Portable fallback: clone the handle so the shared cursor is not
    // disturbed, then seek + read on the clone.
    use std::io::{Read, Seek, SeekFrom};
    let mut f = file.try_clone()?;
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("haten2-segment-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn file_name_roundtrip() {
        assert_eq!(segment_file_name(7), "seg-000007.dat");
        assert_eq!(parse_segment_file_name("seg-000007.dat"), Some(7));
        assert_eq!(parse_segment_file_name("seg-7.dat"), None);
        assert_eq!(parse_segment_file_name("manifest.log"), None);
        assert_eq!(parse_segment_file_name("seg-00000x.dat"), None);
    }

    #[test]
    fn append_read_roundtrip() {
        let dir = tmpdir("roundtrip");
        let mut w = SegmentWriter::open(&dir, 1 << 20).unwrap();
        let (s0, o0) = w.append(b"hello").unwrap();
        let (s1, o1) = w.append(b"world!").unwrap();
        w.sync().unwrap();
        assert_eq!((s0, o0), (0, 0));
        assert_eq!((s1, o1), (0, 5));
        let r = SegmentReader::new(&dir);
        assert_eq!(r.read(s0, o0, 5).unwrap(), b"hello");
        assert_eq!(r.read(s1, o1, 6).unwrap(), b"world!");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_creates_new_segments() {
        let dir = tmpdir("rotate");
        let mut w = SegmentWriter::open(&dir, 10).unwrap();
        let (s0, _) = w.append(&[1u8; 8]).unwrap();
        let (s1, o1) = w.append(&[2u8; 8]).unwrap();
        let (s2, o2) = w.append(&[3u8; 64]).unwrap(); // oversized blob still fits alone
        w.sync().unwrap();
        assert_eq!(s0, 0);
        assert_eq!((s1, o1), (1, 0));
        assert_eq!((s2, o2), (2, 0));
        let r = SegmentReader::new(&dir);
        assert_eq!(r.read(s2, o2, 64).unwrap(), vec![3u8; 64]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_resumes_highest_segment() {
        let dir = tmpdir("reopen");
        {
            let mut w = SegmentWriter::open(&dir, 10).unwrap();
            w.append(&[1u8; 8]).unwrap();
            w.append(&[2u8; 8]).unwrap(); // rotates to segment 1
            w.sync().unwrap();
        }
        let mut w = SegmentWriter::open(&dir, 10).unwrap();
        assert_eq!(w.current_segment(), 1);
        assert_eq!(w.current_len(), 8);
        let (s, o) = w.append(&[9u8; 2]).unwrap();
        w.sync().unwrap();
        // 8 + 2 = 10 <= rotate_at, so it stays in segment 1.
        assert_eq!((s, o), (1, 8));
        let r = SegmentReader::new(&dir);
        assert_eq!(r.read(1, 8, 2).unwrap(), vec![9u8; 2]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_read_is_an_error() {
        let dir = tmpdir("short");
        let mut w = SegmentWriter::open(&dir, 1 << 20).unwrap();
        w.append(b"abc").unwrap();
        w.sync().unwrap();
        let r = SegmentReader::new(&dir);
        assert!(r.read(0, 1, 10).is_err());
        assert!(r.read(3, 0, 1).is_err()); // no such segment
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
