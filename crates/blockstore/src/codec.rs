//! Per-block payload compression.
//!
//! Sparse tensor records are index-heavy: four `u64` slots per entry whose
//! high bytes are overwhelmingly zero at any realistic dimensionality, plus
//! `f64` values. A byte-level zero-run codec therefore removes most of the
//! stored volume for a few cycles per byte — the same observation that
//! makes the CANDELINC-style compression path in `haten2-core` pay off at
//! the algebra level: tensors in this workload are *compressible*, and the
//! cheap exploit is usually the right one.
//!
//! The encoded stream is a sequence of chunks, each
//!
//! ```text
//! [varint literal_len] [literal bytes…] [varint zero_run]
//! ```
//!
//! and decoding is a strict inverse: the decoder consumes chunks until the
//! input is exhausted and fails loudly on any truncation or overrun. A
//! block's codec is recorded per manifest entry, so stores with different
//! settings interoperate and a block that does not shrink is stored `Raw`
//! (see [`encode_auto`]).

use std::io;

/// How a stored payload is encoded on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Codec {
    /// Bytes stored verbatim.
    #[default]
    Raw,
    /// Zero-run-length encoding (chunked literals + zero runs).
    ZeroRle,
}

impl Codec {
    /// Stable on-disk tag.
    #[must_use]
    pub fn tag(self) -> u8 {
        match self {
            Codec::Raw => 0,
            Codec::ZeroRle => 1,
        }
    }

    /// Inverse of [`Codec::tag`].
    pub fn from_tag(tag: u8) -> io::Result<Codec> {
        match tag {
            0 => Ok(Codec::Raw),
            1 => Ok(Codec::ZeroRle),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown codec tag {other}"),
            )),
        }
    }
}

/// Minimum zero-run length worth breaking a literal for: a chunk boundary
/// costs about two varint bytes, so runs shorter than this are cheaper
/// left inside the literal.
const MIN_ZERO_RUN: usize = 4;

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated varint in compressed block",
            ));
        };
        *pos += 1;
        if shift >= 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint overflows u64 in compressed block",
            ));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Zero-run-length encode `raw`.
#[must_use]
pub fn zero_rle_encode(raw: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(raw.len() / 2 + 16);
    let mut i = 0usize;
    while i < raw.len() {
        // Extend the literal until a zero run of at least MIN_ZERO_RUN (or
        // the end of input).
        let lit_start = i;
        let mut lit_end = i;
        while lit_end < raw.len() {
            if raw[lit_end] == 0 {
                let mut z = lit_end;
                while z < raw.len() && raw[z] == 0 {
                    z += 1;
                }
                if z - lit_end >= MIN_ZERO_RUN || z == raw.len() {
                    break;
                }
                lit_end = z;
            } else {
                lit_end += 1;
            }
        }
        let mut zero_end = lit_end;
        while zero_end < raw.len() && raw[zero_end] == 0 {
            zero_end += 1;
        }
        push_varint(&mut out, (lit_end - lit_start) as u64);
        out.extend_from_slice(&raw[lit_start..lit_end]);
        push_varint(&mut out, (zero_end - lit_end) as u64);
        i = zero_end;
    }
    out
}

/// Decode a zero-run-length stream; `raw_len` is the expected decoded
/// length (known from the manifest) and any mismatch is an error.
pub fn zero_rle_decode(encoded: &[u8], raw_len: usize) -> io::Result<Vec<u8>> {
    let mut out = Vec::with_capacity(raw_len);
    let mut pos = 0usize;
    while pos < encoded.len() {
        let lit = usize::try_from(read_varint(encoded, &mut pos)?)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "literal length overflow"))?;
        let Some(literal) = encoded.get(pos..pos + lit) else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated literal in compressed block",
            ));
        };
        out.extend_from_slice(literal);
        pos += lit;
        let zeros = usize::try_from(read_varint(encoded, &mut pos)?)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "zero run overflow"))?;
        if out.len() + zeros > raw_len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "compressed block decodes past its declared length",
            ));
        }
        out.resize(out.len() + zeros, 0);
    }
    if out.len() != raw_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "compressed block decoded to {} bytes, manifest declares {raw_len}",
                out.len()
            ),
        ));
    }
    Ok(out)
}

/// Encode `raw` with `preferred`, falling back to [`Codec::Raw`] when the
/// encoding does not shrink the payload. Returns the codec actually used
/// (recorded in the manifest) and the stored bytes.
#[must_use]
pub fn encode_auto(preferred: Codec, raw: &[u8]) -> (Codec, Vec<u8>) {
    match preferred {
        Codec::Raw => (Codec::Raw, raw.to_vec()),
        Codec::ZeroRle => {
            let enc = zero_rle_encode(raw);
            if enc.len() < raw.len() {
                (Codec::ZeroRle, enc)
            } else {
                (Codec::Raw, raw.to_vec())
            }
        }
    }
}

/// Decode stored bytes with the manifest-recorded codec.
pub fn decode(codec: Codec, stored: &[u8], raw_len: usize) -> io::Result<Vec<u8>> {
    match codec {
        Codec::Raw => {
            if stored.len() != raw_len {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "raw block is {} bytes, manifest declares {raw_len}",
                        stored.len()
                    ),
                ));
            }
            Ok(stored.to_vec())
        }
        Codec::ZeroRle => zero_rle_decode(stored, raw_len),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn roundtrip(raw: &[u8]) {
        let enc = zero_rle_encode(raw);
        let dec = zero_rle_decode(&enc, raw.len()).unwrap();
        assert_eq!(dec, raw);
    }

    #[test]
    fn roundtrip_edges() {
        roundtrip(&[]);
        roundtrip(&[0]);
        roundtrip(&[1]);
        roundtrip(&[0; 1000]);
        roundtrip(&[7; 1000]);
        roundtrip(&[0, 0, 0, 1]);
        roundtrip(&[1, 0, 0, 0]);
        roundtrip(&[0, 1, 0, 2, 0, 3]);
    }

    #[test]
    fn roundtrip_random() {
        let mut rng = StdRng::seed_from_u64(0xB10C);
        for _ in 0..200 {
            let len = rng.gen_range(0..512);
            let raw: Vec<u8> = (0..len)
                .map(|_| {
                    if rng.gen_range(0..4) == 0 {
                        rng.gen_range(1..=255u8)
                    } else {
                        0
                    }
                })
                .collect();
            roundtrip(&raw);
        }
    }

    #[test]
    fn index_heavy_payloads_shrink() {
        // A stand-in for ((u64,u64,u64,u64), f64) tensor records with small
        // indices: most bytes are zero.
        let mut raw = Vec::new();
        for i in 0..1000u64 {
            raw.extend_from_slice(&i.to_le_bytes());
            raw.extend_from_slice(&(i % 37).to_le_bytes());
            raw.extend_from_slice(&(i % 11).to_le_bytes());
            raw.extend_from_slice(&0u64.to_le_bytes());
            raw.extend_from_slice(&1.5f64.to_le_bytes());
        }
        let enc = zero_rle_encode(&raw);
        assert!(
            enc.len() * 2 < raw.len(),
            "expected >2x shrink, got {} -> {}",
            raw.len(),
            enc.len()
        );
        assert_eq!(zero_rle_decode(&enc, raw.len()).unwrap(), raw);
    }

    #[test]
    fn incompressible_payload_falls_back_to_raw() {
        let raw: Vec<u8> = (0..256).map(|i| (i % 255 + 1) as u8).collect();
        let (codec, stored) = encode_auto(Codec::ZeroRle, &raw);
        assert_eq!(codec, Codec::Raw);
        assert_eq!(stored, raw);
    }

    #[test]
    fn truncated_stream_is_detected() {
        let raw = vec![1u8, 2, 3, 0, 0, 0, 0, 0, 9];
        let enc = zero_rle_encode(&raw);
        for cut in 0..enc.len() {
            assert!(
                zero_rle_decode(&enc[..cut], raw.len()).is_err(),
                "cut at {cut} silently decoded"
            );
        }
    }

    #[test]
    fn wrong_declared_length_is_detected() {
        let raw = vec![5u8; 32];
        let enc = zero_rle_encode(&raw);
        assert!(zero_rle_decode(&enc, 31).is_err());
        assert!(zero_rle_decode(&enc, 33).is_err());
        assert!(decode(Codec::Raw, &raw, 31).is_err());
    }

    #[test]
    fn codec_tags_roundtrip() {
        for c in [Codec::Raw, Codec::ZeroRle] {
            assert_eq!(Codec::from_tag(c.tag()).unwrap(), c);
        }
        assert!(Codec::from_tag(9).is_err());
    }
}
