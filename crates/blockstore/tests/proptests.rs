//! Property tests: codec round-trips and store recovery over random data.

#![allow(clippy::unwrap_used)]

use haten2_blockstore::codec::{decode, encode_auto, zero_rle_decode, zero_rle_encode};
use haten2_blockstore::{BlockStore, Codec, StoreOptions};
use proptest::prelude::*;

proptest! {
    #[test]
    fn zero_rle_roundtrips(raw in proptest::collection::vec(any::<u8>(), 0..512)) {
        let enc = zero_rle_encode(&raw);
        prop_assert_eq!(zero_rle_decode(&enc, raw.len()).unwrap(), raw);
    }

    #[test]
    fn sparse_bytes_roundtrip_and_shrink(
        runs in proptest::collection::vec((0u8..=255, 1usize..40), 1..40)
    ) {
        // Alternate literal bytes with zero padding, like index-heavy records.
        let mut raw = Vec::new();
        for (byte, pad) in runs {
            raw.push(byte);
            raw.extend(std::iter::repeat_n(0u8, pad));
        }
        let (codec, stored) = encode_auto(Codec::ZeroRle, &raw);
        prop_assert_eq!(decode(codec, &stored, raw.len()).unwrap(), raw);
    }

    #[test]
    fn store_roundtrips_random_blobs(
        raw_blobs in proptest::collection::vec(
            (0u8..6, proptest::collection::vec(any::<u8>(), 0..256)),
            1..8,
        ),
        seed in any::<u32>(),
    ) {
        let blobs: Vec<(String, Vec<u8>)> = raw_blobs
            .into_iter()
            .map(|(id, bytes)| (format!("ds-{id}"), bytes))
            .collect();
        let dir = std::env::temp_dir().join(format!(
            "haten2-store-prop-{}-{seed}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = BlockStore::open(StoreOptions::new(&dir)).unwrap();
            for (name, bytes) in &blobs {
                store
                    .put(name, "u8", bytes, bytes.len() as u64, bytes.len() as u64)
                    .unwrap();
            }
        }
        // Reopen: last write per name wins, byte-identical.
        let store = BlockStore::open(StoreOptions::new(&dir)).unwrap();
        let mut expected = std::collections::BTreeMap::new();
        for (name, bytes) in &blobs {
            expected.insert(name.clone(), bytes.clone());
        }
        for (name, bytes) in &expected {
            prop_assert_eq!(&store.get(name).unwrap().unwrap().bytes, bytes);
        }
        prop_assert_eq!(store.datasets().len(), expected.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
