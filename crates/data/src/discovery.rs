//! Concept discovery from decomposition factors (§IV-C).
//!
//! > "For each element in an output factor matrix, we normalize the value
//! > by dividing it with the sum of all the values of the same element in
//! > the same factor matrix, to further mitigate the effects of dominant
//! > terms. Then, we choose top-k highest valued elements from each column
//! > of the factors."
//!
//! PARAFAC concepts (Table VI) pair the r-th column of every factor; Tucker
//! first yields per-mode groups (Table VII) and then combines groups into
//! concepts through the largest core-tensor entries (Table VIII).

use haten2_linalg::Mat;
use haten2_tensor::DenseTensor3;

/// One labelled, scored entity group (a column of one factor).
#[derive(Debug, Clone)]
pub struct Group {
    /// Column index in the factor.
    pub column: usize,
    /// `(entity name, normalized score)`, descending by score.
    pub members: Vec<(String, f64)>,
}

/// A PARAFAC concept: the r-th group of each of the three modes.
#[derive(Debug, Clone)]
pub struct ParafacConcept {
    /// Rank index.
    pub r: usize,
    /// Concept weight `λ_r`.
    pub weight: f64,
    /// Top subjects.
    pub subjects: Vec<(String, f64)>,
    /// Top objects.
    pub objects: Vec<(String, f64)>,
    /// Top relations.
    pub relations: Vec<(String, f64)>,
}

/// A Tucker concept: a (subject-group, object-group, relation-group) triple
/// selected by core-tensor magnitude.
#[derive(Debug, Clone)]
pub struct TuckerConcept {
    /// Group indices `(p, q, r)` into the three factors.
    pub groups: (usize, usize, usize),
    /// Core value `G(p,q,r)` (signed).
    pub core_value: f64,
    /// Top subjects of group p.
    pub subjects: Vec<(String, f64)>,
    /// Top objects of group q.
    pub objects: Vec<(String, f64)>,
    /// Top relations of group r.
    pub relations: Vec<(String, f64)>,
}

/// Row-normalize a factor: divide each element by the sum of |values| in
/// its row (the paper's dominant-term mitigation). Zero rows stay zero.
pub fn normalize_factor(f: &Mat) -> Mat {
    let mut out = f.clone();
    for i in 0..out.rows() {
        let row_sum: f64 = out.row(i).iter().map(|v| v.abs()).sum();
        if row_sum > 0.0 {
            for v in out.row_mut(i) {
                *v /= row_sum;
            }
        }
    }
    out
}

/// Top-`k` highest-scoring rows of column `col`, with names attached.
pub fn top_k(f: &Mat, col: usize, k: usize, names: &[String]) -> Vec<(String, f64)> {
    let mut scored: Vec<(usize, f64)> = (0..f.rows()).map(|i| (i, f.get(i, col))).collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
    scored
        .into_iter()
        .take(k)
        .map(|(i, s)| {
            let name = names
                .get(i)
                .cloned()
                .unwrap_or_else(|| format!("entity-{i}"));
            (name, s)
        })
        .collect()
}

/// Extract the groups of a single (normalized) factor — one per column.
pub fn factor_groups(f: &Mat, k: usize, names: &[String]) -> Vec<Group> {
    let norm = normalize_factor(f);
    (0..norm.cols())
        .map(|c| Group {
            column: c,
            members: top_k(&norm, c, k, names),
        })
        .collect()
}

/// Build PARAFAC concepts (Table VI): one per rank, combining the top-k of
/// each mode's r-th column, sorted by `λ_r` descending.
pub fn parafac_concepts(
    factors: &[Mat; 3],
    lambda: &[f64],
    k: usize,
    subject_names: &[String],
    object_names: &[String],
    relation_names: &[String],
) -> Vec<ParafacConcept> {
    let a = normalize_factor(&factors[0]);
    let b = normalize_factor(&factors[1]);
    let c = normalize_factor(&factors[2]);
    let mut order: Vec<usize> = (0..lambda.len()).collect();
    order.sort_by(|&x, &y| lambda[y].partial_cmp(&lambda[x]).expect("finite lambda"));
    order
        .into_iter()
        .map(|r| ParafacConcept {
            r,
            weight: lambda[r],
            subjects: top_k(&a, r, k, subject_names),
            objects: top_k(&b, r, k, object_names),
            relations: top_k(&c, r, k, relation_names),
        })
        .collect()
}

/// Build Tucker concepts (Table VIII): the `n_concepts` largest-magnitude
/// core entries, each mapped to its (subject, object, relation) groups.
pub fn tucker_concepts(
    core: &DenseTensor3,
    factors: &[Mat; 3],
    k: usize,
    n_concepts: usize,
    subject_names: &[String],
    object_names: &[String],
    relation_names: &[String],
) -> Vec<TuckerConcept> {
    let a = normalize_factor(&factors[0]);
    let b = normalize_factor(&factors[1]);
    let c = normalize_factor(&factors[2]);
    let [p_d, q_d, r_d] = core.dims();
    let mut cells: Vec<(usize, usize, usize, f64)> = Vec::with_capacity(p_d * q_d * r_d);
    for p in 0..p_d {
        for q in 0..q_d {
            for r in 0..r_d {
                cells.push((p, q, r, core.get(p, q, r)));
            }
        }
    }
    cells.sort_by(|x, y| y.3.abs().partial_cmp(&x.3.abs()).expect("finite core"));
    cells
        .into_iter()
        .take(n_concepts)
        .map(|(p, q, r, v)| TuckerConcept {
            groups: (p, q, r),
            core_value: v,
            subjects: top_k(&a, p, k, subject_names),
            objects: top_k(&b, q, k, object_names),
            relations: top_k(&c, r, k, relation_names),
        })
        .collect()
}

/// Score how well a discovered group recovers a planted id set:
/// |top-k ∩ planted| / k.
pub fn recovery_precision(top: &[(String, f64)], planted_names: &[String]) -> f64 {
    if top.is_empty() {
        return 0.0;
    }
    let hits = top
        .iter()
        .filter(|(name, _)| planted_names.iter().any(|p| p == name))
        .count();
    hits as f64 / top.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize, prefix: &str) -> Vec<String> {
        (0..n).map(|i| format!("{prefix}{i}")).collect()
    }

    #[test]
    fn normalize_factor_rows_sum_to_one() {
        let f = Mat::from_rows(&[vec![1.0, 3.0], vec![0.0, 0.0], vec![2.0, 2.0]]).unwrap();
        let n = normalize_factor(&f);
        assert!((n.get(0, 0) - 0.25).abs() < 1e-12);
        assert!((n.get(0, 1) - 0.75).abs() < 1e-12);
        assert_eq!(n.get(1, 0), 0.0); // zero row untouched
        assert!((n.row(2).iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_orders_and_names() {
        let f = Mat::from_rows(&[vec![0.1], vec![0.9], vec![0.5]]).unwrap();
        let t = top_k(&f, 0, 2, &names(3, "e"));
        assert_eq!(t[0].0, "e1");
        assert_eq!(t[1].0, "e2");
    }

    #[test]
    fn parafac_concepts_sorted_by_lambda() {
        let a = Mat::identity(3);
        let factors = [a.clone(), a.clone(), a.clone()];
        let lambda = vec![1.0, 5.0, 3.0];
        let cs = parafac_concepts(
            &factors,
            &lambda,
            1,
            &names(3, "s"),
            &names(3, "o"),
            &names(3, "p"),
        );
        assert_eq!(cs[0].r, 1);
        assert_eq!(cs[1].r, 2);
        assert_eq!(cs[2].r, 0);
        // Identity factors: concept r's top subject is s_r.
        assert_eq!(cs[0].subjects[0].0, "s1");
    }

    #[test]
    fn tucker_concepts_pick_largest_core_cells() {
        let mut core = DenseTensor3::zeros([2, 2, 2]);
        core.set(0, 1, 0, 5.0);
        core.set(1, 0, 1, -7.0);
        let f = Mat::identity(2);
        let factors = [f.clone(), f.clone(), f.clone()];
        let cs = tucker_concepts(
            &core,
            &factors,
            1,
            2,
            &names(2, "s"),
            &names(2, "o"),
            &names(2, "p"),
        );
        assert_eq!(cs[0].groups, (1, 0, 1)); // |-7| largest
        assert_eq!(cs[0].core_value, -7.0);
        assert_eq!(cs[1].groups, (0, 1, 0));
        assert_eq!(cs[1].subjects[0].0, "s0");
    }

    #[test]
    fn recovery_precision_counts_hits() {
        let top = vec![("a".to_string(), 1.0), ("b".to_string(), 0.5)];
        let planted = vec!["b".to_string(), "c".to_string()];
        assert!((recovery_precision(&top, &planted) - 0.5).abs() < 1e-12);
        assert_eq!(recovery_precision(&[], &planted), 0.0);
    }
}
