//! Random sparse tensor generation for the scalability sweeps.
//!
//! §IV-A: "synthetic random tensor of size I×I×I. The size I varies from
//! 10³ to 10⁸, the number of nonzeros varies from 10⁴ to 10¹⁰, and the
//! density varies from 10⁻¹⁵ ~ 10⁻⁵."

use haten2_tensor::{CooTensor3, Entry3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Parameters for [`random_tensor`].
#[derive(Debug, Clone)]
pub struct RandomTensorConfig {
    /// Dimensions `[I, J, K]`.
    pub dims: [u64; 3],
    /// Number of distinct nonzeros to place.
    pub nnz: usize,
    /// Value range (uniform).
    pub value_range: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl RandomTensorConfig {
    /// Cubic tensor `I×I×I` with the given nonzero count — the paper's
    /// sweep shape.
    pub fn cubic(i: u64, nnz: usize, seed: u64) -> Self {
        RandomTensorConfig {
            dims: [i, i, i],
            nnz,
            value_range: (0.0, 1.0),
            seed,
        }
    }

    /// Cubic tensor of dimensionality `i` with the given density
    /// (`nnz = density · I³`, saturating).
    pub fn cubic_density(i: u64, density: f64, seed: u64) -> Self {
        let total = (i as f64).powi(3);
        let nnz = (total * density).round().min(usize::MAX as f64).max(0.0) as usize;
        RandomTensorConfig::cubic(i, nnz, seed)
    }
}

/// Generate a random sparse tensor with distinct coordinates.
///
/// Coordinates are sampled uniformly; duplicates are rejected so the
/// resulting tensor has exactly `min(nnz, I·J·K)` nonzeros (the paper's
/// generator counts distinct cells).
pub fn random_tensor(cfg: &RandomTensorConfig) -> CooTensor3 {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let [i_d, j_d, k_d] = cfg.dims;
    let capacity = (i_d as u128) * (j_d as u128) * (k_d as u128);
    let target = (cfg.nnz as u128).min(capacity) as usize;
    let (lo, hi) = cfg.value_range;

    let mut seen: HashSet<(u64, u64, u64)> = HashSet::with_capacity(target);
    let mut t = CooTensor3::new(cfg.dims);
    // Rejection sampling is fine while target ≪ capacity (always true at
    // the paper's densities); fall back to dense enumeration when the
    // requested fill is above half the cells.
    if (target as u128) * 2 > capacity {
        let mut cells: Vec<(u64, u64, u64)> = Vec::with_capacity(capacity as usize);
        for i in 0..i_d {
            for j in 0..j_d {
                for k in 0..k_d {
                    cells.push((i, j, k));
                }
            }
        }
        // Partial Fisher-Yates for the first `target` cells.
        for n in 0..target {
            let pick = rng.gen_range(n..cells.len());
            cells.swap(n, pick);
            let (i, j, k) = cells[n];
            t.push_unchecked(Entry3::new(i, j, k, sample_value(&mut rng, lo, hi)));
        }
        return t;
    }
    while seen.len() < target {
        let c = (
            rng.gen_range(0..i_d),
            rng.gen_range(0..j_d),
            rng.gen_range(0..k_d),
        );
        if seen.insert(c) {
            t.push_unchecked(Entry3::new(c.0, c.1, c.2, sample_value(&mut rng, lo, hi)));
        }
    }
    t
}

/// Generate a sparse tensor with power-law (Zipf-like) index popularity —
/// the skew profile of real knowledge-base and network tensors, where a few
/// entities participate in most facts. `alpha` controls the skew (0 =
/// uniform; 1 ≈ Zipf); coordinates are deduplicated like
/// [`random_tensor`].
///
/// The HaTen2 evaluation uses uniform random tensors for its sweeps, but
/// its headline datasets (Freebase, NELL) are heavily skewed; this
/// generator lets the reduce-side skew term of the cost model be exercised
/// under realistic load imbalance.
pub fn powerlaw_tensor(cfg: &RandomTensorConfig, alpha: f64) -> CooTensor3 {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let [i_d, j_d, k_d] = cfg.dims;
    let capacity = (i_d as u128) * (j_d as u128) * (k_d as u128);
    let target = (cfg.nnz as u128).min(capacity) as usize;
    let (lo, hi) = cfg.value_range;

    let mut seen: HashSet<(u64, u64, u64)> = HashSet::with_capacity(target);
    let mut t = CooTensor3::new(cfg.dims);
    let mut attempts = 0usize;
    // Skewed sampling collides often near saturation; cap the attempts and
    // fall back to uniform for the remainder.
    let max_attempts = target.saturating_mul(50).max(1000);
    while seen.len() < target && attempts < max_attempts {
        attempts += 1;
        let c = (
            powerlaw_index(&mut rng, i_d, alpha),
            powerlaw_index(&mut rng, j_d, alpha),
            powerlaw_index(&mut rng, k_d, alpha),
        );
        if seen.insert(c) {
            t.push_unchecked(Entry3::new(c.0, c.1, c.2, sample_value(&mut rng, lo, hi)));
        }
    }
    while seen.len() < target {
        let c = (
            rng.gen_range(0..i_d),
            rng.gen_range(0..j_d),
            rng.gen_range(0..k_d),
        );
        if seen.insert(c) {
            t.push_unchecked(Entry3::new(c.0, c.1, c.2, sample_value(&mut rng, lo, hi)));
        }
    }
    t
}

/// Sample an index in `[0, n)` with probability `∝ (1+i)^-alpha` via
/// inverse-CDF on the continuous approximation.
fn powerlaw_index(rng: &mut StdRng, n: u64, alpha: f64) -> u64 {
    if n <= 1 {
        return 0;
    }
    let u: f64 = rng.gen();
    let nf = n as f64;
    let idx = if (alpha - 1.0).abs() < 1e-9 {
        // CDF ∝ ln(1+x): invert against ln(1+n).
        ((u * (1.0 + nf).ln()).exp() - 1.0).max(0.0)
    } else {
        // CDF ∝ (1+x)^{1-alpha}: invert.
        let p = 1.0 - alpha;
        let top = (1.0 + nf).powf(p);
        ((1.0 + u * (top - 1.0)).powf(1.0 / p) - 1.0).max(0.0)
    };
    (idx as u64).min(n - 1)
}

fn sample_value(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    if lo == hi {
        return if lo == 0.0 { 1.0 } else { lo };
    }
    // Avoid exact zeros (they would vanish from the sparse tensor).
    loop {
        let v = rng.gen_range(lo..hi);
        if v != 0.0 {
            return v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_nnz_and_bounds() {
        let t = random_tensor(&RandomTensorConfig::cubic(50, 400, 1));
        assert_eq!(t.nnz(), 400);
        assert_eq!(t.dims(), [50, 50, 50]);
        for e in t.entries() {
            assert!(e.i < 50 && e.j < 50 && e.k < 50);
            assert!(e.v != 0.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = random_tensor(&RandomTensorConfig::cubic(20, 100, 7));
        let b = random_tensor(&RandomTensorConfig::cubic(20, 100, 7));
        assert_eq!(a, b);
        let c = random_tensor(&RandomTensorConfig::cubic(20, 100, 8));
        assert_ne!(a, c);
    }

    #[test]
    fn density_config() {
        let cfg = RandomTensorConfig::cubic_density(100, 1e-4, 2);
        assert_eq!(cfg.nnz, 100); // 1e6 cells * 1e-4
        let t = random_tensor(&cfg);
        assert!((t.density() - 1e-4).abs() < 1e-6);
    }

    #[test]
    fn saturates_at_capacity() {
        let t = random_tensor(&RandomTensorConfig::cubic(3, 1000, 3));
        assert_eq!(t.nnz(), 27);
    }

    #[test]
    fn dense_fill_path() {
        // Above half capacity exercises the Fisher-Yates path.
        let t = random_tensor(&RandomTensorConfig::cubic(4, 40, 4));
        assert_eq!(t.nnz(), 40);
        // Distinctness is implied by nnz (duplicates would have merged).
    }

    #[test]
    fn powerlaw_is_skewed_toward_low_indices() {
        let cfg = RandomTensorConfig::cubic(1000, 3000, 5);
        let skewed = powerlaw_tensor(&cfg, 1.0);
        assert_eq!(skewed.nnz(), 3000);
        let uniform = random_tensor(&cfg);
        // The heaviest mode-0 slice of the skewed tensor dwarfs uniform's.
        let s = skewed.heaviest_slice(0).unwrap().unwrap().1;
        let u = uniform.heaviest_slice(0).unwrap().unwrap().1;
        assert!(s > 3 * u, "skewed heaviest {s} vs uniform {u}");
        // And the mass concentrates in the low indices.
        let low_mass = skewed.entries().iter().filter(|e| e.i < 100).count();
        assert!(low_mass > skewed.nnz() / 3, "low-index mass {low_mass}");
    }

    #[test]
    fn powerlaw_alpha_zero_no_crash_and_exact_nnz() {
        let cfg = RandomTensorConfig::cubic(50, 400, 6);
        let t = powerlaw_tensor(&cfg, 0.0);
        assert_eq!(t.nnz(), 400);
    }

    #[test]
    fn powerlaw_saturates_via_uniform_fallback() {
        // Small tensor, heavy skew: collisions force the uniform fallback,
        // which must still reach the target.
        let cfg = RandomTensorConfig::cubic(4, 60, 7);
        let t = powerlaw_tensor(&cfg, 2.0);
        assert_eq!(t.nnz(), 60);
    }

    #[test]
    fn powerlaw_deterministic() {
        let cfg = RandomTensorConfig::cubic(100, 500, 8);
        assert_eq!(powerlaw_tensor(&cfg, 1.5), powerlaw_tensor(&cfg, 1.5));
    }
}
