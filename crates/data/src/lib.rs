//! Workloads, knowledge-base synthesis, preprocessing and concept discovery
//! for the HaTen2 reproduction.
//!
//! The paper's evaluation uses three data sources (Table V): random sparse
//! tensors (scalability sweeps), the NELL knowledge base, and the
//! Freebase-music RDF slice (discovery, Tables VI–VIII). The real dumps are
//! not redistributable, so this crate generates *synthetic equivalents with
//! planted structure*:
//!
//! * [`random`] — uniform random sparse tensors parameterized exactly like
//!   the paper's sweeps (dimensionality, nonzeros, density, core size).
//! * [`kb`] — synthetic knowledge bases: named subject/object/predicate
//!   vocabularies, planted latent concepts (blocks of co-occurring
//!   entities), power-law noise, and literal/name triples. Presets imitate
//!   Freebase-music and NELL.
//! * [`mod@preprocess`] — the paper's §IV-C pipeline: literal removal,
//!   predicate frequency filtering, and the TF-IDF-style reweighting
//!   `1 + log(α/links(z))`.
//! * [`discovery`] — factor normalization and top-k concept extraction for
//!   PARAFAC (Table VI) and Tucker (Tables VII/VIII), plus recovery scoring
//!   against the planted ground truth.
//! * [`temporal`] — 4-way (subject, object, predicate, time) synthesis with
//!   planted activity windows, for the N-way decompositions.
//! * [`datasets`] — the Table V registry mapping each paper dataset to its
//!   scaled stand-in.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod datasets;
pub mod discovery;
pub mod kb;
pub mod preprocess;
pub mod random;
pub mod temporal;
pub mod triples;

pub use datasets::{DatasetSpec, TABLE_V};
pub use kb::{KbConfig, KnowledgeBase, PlantedConcept};
pub use preprocess::{preprocess, PreprocessConfig, PreprocessReport};
pub use random::{powerlaw_tensor, random_tensor, RandomTensorConfig};
pub use temporal::{TemporalConcept, TemporalKb};
pub use triples::{load_triples, parse_triples, TripleOrder};
