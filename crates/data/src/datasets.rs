//! The Table V dataset registry.
//!
//! Maps each dataset of the paper's evaluation to its scale there and to
//! the scaled stand-in this reproduction generates. Paper scales:
//!
//! | Dataset        | I × J × K            | nnz   |
//! |----------------|----------------------|-------|
//! | Freebase-music | 23M × 23M × 166      | 99M   |
//! | NELL           | 26M × 26M × 48M      | 144M  |
//! | Random         | 10³..10⁸ (cubic)     | 10⁴..10¹⁰ |

use crate::kb::KnowledgeBase;
use crate::preprocess::{preprocess, PreprocessConfig};
use crate::random::{random_tensor, RandomTensorConfig};
use haten2_tensor::CooTensor3;

/// A named dataset with its paper-scale description and a scaled generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetSpec {
    /// Freebase music RDF slice.
    FreebaseMusic,
    /// NELL "Read the Web" knowledge base.
    Nell,
    /// Synthetic cubic random tensor.
    Random,
}

/// All Table V rows.
pub const TABLE_V: [DatasetSpec; 3] = [
    DatasetSpec::FreebaseMusic,
    DatasetSpec::Nell,
    DatasetSpec::Random,
];

impl DatasetSpec {
    /// Dataset name as in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetSpec::FreebaseMusic => "Freebase-music",
            DatasetSpec::Nell => "NELL",
            DatasetSpec::Random => "Random",
        }
    }

    /// The paper's reported scale (for reports; not generated here).
    pub fn paper_scale(&self) -> &'static str {
        match self {
            DatasetSpec::FreebaseMusic => "23M x 23M x 166, 99M nonzeros",
            DatasetSpec::Nell => "26M x 26M x 48M, 144M nonzeros",
            DatasetSpec::Random => "I=10^3..10^8 cubic, 10^4..10^10 nonzeros",
        }
    }

    /// Generate the scaled stand-in tensor. `scale` multiplies the base
    /// size (1 = smallest useful size; experiments typically use 1–8).
    /// Knowledge-base datasets run through the §IV-C preprocessing.
    pub fn generate(&self, scale: usize, seed: u64) -> CooTensor3 {
        match self {
            DatasetSpec::FreebaseMusic => {
                let kb = KnowledgeBase::freebase_music(scale.max(1), seed);
                preprocess(&kb, &PreprocessConfig::default()).0
            }
            DatasetSpec::Nell => {
                let kb = KnowledgeBase::nell(scale.max(1), seed);
                preprocess(&kb, &PreprocessConfig::default()).0
            }
            DatasetSpec::Random => {
                let i = (1000 * scale.max(1)) as u64;
                random_tensor(&RandomTensorConfig::cubic(i, (i * 10) as usize, seed))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_generate() {
        for spec in TABLE_V {
            let t = spec.generate(1, 9);
            assert!(t.nnz() > 0, "{} generated empty", spec.name());
            assert!(!spec.name().is_empty());
            assert!(!spec.paper_scale().is_empty());
        }
    }

    #[test]
    fn random_scale_grows() {
        let t1 = DatasetSpec::Random.generate(1, 9);
        let t2 = DatasetSpec::Random.generate(2, 9);
        assert!(t2.dims()[0] > t1.dims()[0]);
        assert!(t2.nnz() > t1.nnz());
    }

    #[test]
    fn kb_datasets_have_no_literal_noise() {
        // Preprocessing ran: weighted values >= 1 (reweighting floor).
        let t = DatasetSpec::FreebaseMusic.generate(1, 9);
        assert!(t.entries().iter().all(|e| e.v >= 1.0 - 1e-12));
    }
}
