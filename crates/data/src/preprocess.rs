//! The paper's §IV-C preprocessing pipeline.
//!
//! > "First, we remove the triples containing literal entities … Next, we
//! > filter unimportant triples in a way similar to the Term
//! > Frequency/Inverse Document Frequency based filtering: we remove too
//! > scarce triples whose predicates appear only once in the data, as well
//! > as too frequent triples. Finally, we reweight the elements of the
//! > tensor data … we change the element 1 for the triple (x, y, z) to
//! > `1 + log(α/links(z))` where α is the number of triples for the most
//! > frequent predicate, and links(z) is the number of triples for the
//! > predicate z."

use crate::kb::KnowledgeBase;
use haten2_tensor::{CooTensor3, Entry3};
use std::collections::{HashMap, HashSet};

/// Knobs for [`preprocess`].
#[derive(Debug, Clone)]
pub struct PreprocessConfig {
    /// Remove triples whose predicate is a literal/definition predicate.
    pub remove_literals: bool,
    /// Drop predicates appearing at most this many times ("too scarce";
    /// the paper uses 1).
    pub min_predicate_count: usize,
    /// Drop predicates carrying more than this fraction of all triples
    /// ("too frequent"). 1.0 disables the cap.
    pub max_predicate_share: f64,
    /// Apply the `1 + log(α/links(z))` reweighting.
    pub reweight: bool,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig {
            remove_literals: true,
            min_predicate_count: 1,
            max_predicate_share: 0.5,
            reweight: true,
        }
    }
}

/// What the pipeline did — for reporting and tests.
#[derive(Debug, Clone, Default)]
pub struct PreprocessReport {
    /// Triples in the input (with duplicates).
    pub input_triples: usize,
    /// Triples dropped as literals.
    pub literals_removed: usize,
    /// Triples dropped because their predicate was too scarce.
    pub scarce_removed: usize,
    /// Triples dropped because their predicate was too frequent.
    pub frequent_removed: usize,
    /// Distinct (s, o, p) cells in the output tensor.
    pub output_nnz: usize,
}

/// Run the preprocessing pipeline over a knowledge base, producing the
/// weighted tensor the decompositions consume plus a report.
pub fn preprocess(kb: &KnowledgeBase, cfg: &PreprocessConfig) -> (CooTensor3, PreprocessReport) {
    let mut report = PreprocessReport {
        input_triples: kb.triples.len(),
        ..Default::default()
    };
    let literal: HashSet<u64> = kb.literal_predicates.iter().copied().collect();

    // Pass 1: literal filter.
    let mut kept: Vec<(u64, u64, u64)> = Vec::with_capacity(kb.triples.len());
    for &t in &kb.triples {
        if cfg.remove_literals && literal.contains(&t.2) {
            report.literals_removed += 1;
        } else {
            kept.push(t);
        }
    }

    // Pass 2: predicate frequency filter.
    let mut links: HashMap<u64, usize> = HashMap::new();
    for &(_, _, p) in &kept {
        *links.entry(p).or_insert(0) += 1;
    }
    let total = kept.len().max(1);
    let max_count = (cfg.max_predicate_share * total as f64).floor() as usize;
    let mut filtered: Vec<(u64, u64, u64)> = Vec::with_capacity(kept.len());
    for t in kept {
        let count = links[&t.2];
        if count <= cfg.min_predicate_count {
            report.scarce_removed += 1;
        } else if cfg.max_predicate_share < 1.0 && count > max_count {
            report.frequent_removed += 1;
        } else {
            filtered.push(t);
        }
    }

    // Recount links over surviving triples for the reweighting.
    let mut links: HashMap<u64, usize> = HashMap::new();
    for &(_, _, p) in &filtered {
        *links.entry(p).or_insert(0) += 1;
    }
    let alpha = links.values().copied().max().unwrap_or(1) as f64;

    // Distinct cells, reweighted.
    let mut seen: HashSet<(u64, u64, u64)> = HashSet::with_capacity(filtered.len());
    let mut entries = Vec::new();
    for &(s, o, p) in &filtered {
        if seen.insert((s, o, p)) {
            let w = if cfg.reweight {
                1.0 + (alpha / links[&p] as f64).ln()
            } else {
                1.0
            };
            entries.push(Entry3::new(s, o, p, w));
        }
    }
    report.output_nnz = entries.len();
    let dims = [
        kb.subjects.len() as u64,
        kb.objects.len() as u64,
        kb.predicates.len() as u64,
    ];
    let tensor = CooTensor3::from_entries(dims, entries).expect("ids in range");
    (tensor, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::{KbConfig, Theme};

    fn kb() -> KnowledgeBase {
        KnowledgeBase::generate(&KbConfig {
            n_subjects: 80,
            n_objects: 80,
            n_predicates: 10,
            n_concepts: 2,
            concept_entities: 8,
            concept_predicates: 2,
            triples_per_concept: 150,
            noise_triples: 80,
            literal_triples: 40,
            seed: 13,
            theme: Theme::Music,
        })
    }

    #[test]
    fn literals_are_removed() {
        let kb = kb();
        let (tensor, report) = preprocess(&kb, &PreprocessConfig::default());
        assert!(report.literals_removed > 0);
        // No surviving entry uses a literal predicate.
        for e in tensor.entries() {
            assert!(!kb.literal_predicates.contains(&e.k));
        }
    }

    #[test]
    fn literal_removal_can_be_disabled() {
        let kb = kb();
        let cfg = PreprocessConfig {
            remove_literals: false,
            ..Default::default()
        };
        let (_, report) = preprocess(&kb, &cfg);
        assert_eq!(report.literals_removed, 0);
    }

    #[test]
    fn scarce_predicates_removed() {
        // Hand-build a KB with one singleton predicate.
        let mut kb = kb();
        kb.triples.push((0, 0, 7)); // if predicate 7 now appears once more it may not be scarce
        let mut solo = kb.clone();
        solo.triples = vec![(0, 0, 1), (1, 1, 2), (2, 2, 2), (3, 3, 2)];
        solo.literal_predicates = vec![];
        let (t, report) = preprocess(
            &solo,
            &PreprocessConfig {
                max_predicate_share: 1.0,
                reweight: false,
                ..Default::default()
            },
        );
        assert_eq!(report.scarce_removed, 1); // predicate 1 appeared once
        assert_eq!(t.nnz(), 3);
    }

    #[test]
    fn frequent_predicates_removed() {
        let mut solo = kb();
        // Predicate 3 carries 90% of triples.
        solo.triples = (0..90u64)
            .map(|i| (i % 10, i % 10, 3))
            .chain((0..10u64).map(|i| (i % 10, (i + 1) % 10, 4)))
            .collect();
        solo.literal_predicates = vec![];
        let (_, report) = preprocess(
            &solo,
            &PreprocessConfig {
                min_predicate_count: 0,
                max_predicate_share: 0.5,
                reweight: false,
                ..Default::default()
            },
        );
        assert_eq!(report.frequent_removed, 90);
    }

    #[test]
    fn reweighting_formula() {
        let mut solo = kb();
        // p=1 appears 4 times, p=2 appears 2 times -> α = 4.
        solo.triples = vec![
            (0, 0, 1),
            (1, 1, 1),
            (2, 2, 1),
            (3, 3, 1),
            (0, 1, 2),
            (1, 2, 2),
        ];
        solo.literal_predicates = vec![];
        let (t, _) = preprocess(
            &solo,
            &PreprocessConfig {
                min_predicate_count: 0,
                max_predicate_share: 1.0,
                reweight: true,
                ..Default::default()
            },
        );
        // Most frequent predicate: weight 1 + ln(4/4) = 1.
        assert!((t.get(0, 0, 1) - 1.0).abs() < 1e-12);
        // Rarer predicate: 1 + ln(4/2).
        assert!((t.get(0, 1, 2) - (1.0 + 2.0f64.ln())).abs() < 1e-12);
    }

    #[test]
    fn duplicates_collapse_to_single_cell() {
        let mut solo = kb();
        solo.triples = vec![(0, 0, 1), (0, 0, 1), (0, 0, 1), (1, 1, 1)];
        solo.literal_predicates = vec![];
        let (t, report) = preprocess(
            &solo,
            &PreprocessConfig {
                min_predicate_count: 0,
                max_predicate_share: 1.0,
                reweight: false,
                ..Default::default()
            },
        );
        assert_eq!(report.output_nnz, 2);
        assert_eq!(t.get(0, 0, 1), 1.0);
    }

    #[test]
    fn report_accounts_for_everything() {
        let kb = kb();
        let (_, r) = preprocess(&kb, &PreprocessConfig::default());
        assert_eq!(r.input_triples, kb.triples.len());
        assert!(r.literals_removed + r.scarce_removed + r.frequent_removed < r.input_triples);
        assert!(r.output_nnz > 0);
    }
}
