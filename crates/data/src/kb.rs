//! Synthetic knowledge bases with planted latent concepts.
//!
//! The paper's discovery experiments (Tables VI–VIII) run on the
//! Freebase-music RDF slice and on NELL — neither of which is available
//! here. What those experiments exercise is: (subject, object, predicate)
//! triples whose co-occurrence structure contains latent concepts, plus the
//! noise the preprocessing pipeline must remove. This generator produces
//! exactly that, with ground truth: each planted concept is a block of
//! subjects × objects × predicates that co-occur densely, noise triples are
//! sampled with power-law-ish entity popularity, and a configurable
//! fraction of literal `name` triples imitates the RDF definitional triples
//! the paper filters out.

use haten2_tensor::{CooTensor3, Entry3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// A planted ground-truth concept: a dense block of co-occurring entities.
#[derive(Debug, Clone)]
pub struct PlantedConcept {
    /// Human-readable theme, e.g. "Classic Album".
    pub name: String,
    /// Subject ids in the block.
    pub subjects: Vec<u64>,
    /// Object ids in the block.
    pub objects: Vec<u64>,
    /// Predicate ids in the block.
    pub predicates: Vec<u64>,
}

/// Configuration for [`KnowledgeBase::generate`].
#[derive(Debug, Clone)]
pub struct KbConfig {
    /// Number of subject entities.
    pub n_subjects: u64,
    /// Number of object entities.
    pub n_objects: u64,
    /// Number of predicates (relations).
    pub n_predicates: u64,
    /// Number of planted concepts.
    pub n_concepts: usize,
    /// Entities per concept block (subjects and objects each).
    pub concept_entities: usize,
    /// Predicates per concept block.
    pub concept_predicates: usize,
    /// Triples sampled inside each concept block.
    pub triples_per_concept: usize,
    /// Uniform background noise triples.
    pub noise_triples: usize,
    /// Literal/name triples (to be removed by preprocessing).
    pub literal_triples: usize,
    /// RNG seed.
    pub seed: u64,
    /// Naming theme for vocabularies.
    pub theme: Theme,
}

/// Vocabulary naming theme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Theme {
    /// Freebase-music-like names (artists, works, `ns:music.*` predicates).
    Music,
    /// NELL-like names (noun phrases and contexts).
    Nell,
}

impl Default for KbConfig {
    fn default() -> Self {
        KbConfig {
            n_subjects: 600,
            n_objects: 600,
            n_predicates: 60,
            n_concepts: 5,
            concept_entities: 25,
            concept_predicates: 4,
            triples_per_concept: 600,
            noise_triples: 400,
            literal_triples: 150,
            seed: 0x6b62, // "kb"
            theme: Theme::Music,
        }
    }
}

/// A generated knowledge base: named vocabularies, raw triples, and the
/// planted ground truth.
///
/// ```
/// use haten2_data::kb::KnowledgeBase;
/// use haten2_data::preprocess::{preprocess, PreprocessConfig};
///
/// let kb = KnowledgeBase::freebase_music(1, 42);
/// assert!(!kb.concepts.is_empty());           // planted ground truth
/// assert!(!kb.literal_predicates.is_empty()); // noise to be filtered
///
/// let (tensor, report) = preprocess(&kb, &PreprocessConfig::default());
/// assert!(report.literals_removed > 0);
/// // Reweighted values are 1 + log(α/links(z)) ≥ 1.
/// assert!(tensor.entries().iter().all(|e| e.v >= 1.0 - 1e-12));
/// ```
#[derive(Debug, Clone)]
pub struct KnowledgeBase {
    /// Subject entity names (index = id).
    pub subjects: Vec<String>,
    /// Object entity names.
    pub objects: Vec<String>,
    /// Predicate names.
    pub predicates: Vec<String>,
    /// Raw `(subject, object, predicate)` triples (duplicates possible —
    /// preprocessing counts them).
    pub triples: Vec<(u64, u64, u64)>,
    /// Planted ground-truth concepts.
    pub concepts: Vec<PlantedConcept>,
    /// Ids of the literal "name" predicates (ground truth for the literal
    /// filter).
    pub literal_predicates: Vec<u64>,
}

const MUSIC_CONCEPTS: &[&str] = &[
    "Classic Album",
    "Pop/Rock Music",
    "Instrumentalist",
    "Record Labels",
    "Concert Music",
    "Jazz Ensembles",
    "Film Scores",
    "Opera",
];

const NELL_CONCEPTS: &[&str] = &[
    "Athletes and Teams",
    "Cities and Countries",
    "Companies and Products",
    "Scientists and Fields",
    "Foods and Cuisines",
    "Books and Authors",
];

impl KnowledgeBase {
    /// Generate a knowledge base per `cfg`.
    pub fn generate(cfg: &KbConfig) -> KnowledgeBase {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let themes: &[&str] = match cfg.theme {
            Theme::Music => MUSIC_CONCEPTS,
            Theme::Nell => NELL_CONCEPTS,
        };

        let subjects = name_entities(cfg.theme, "subject", cfg.n_subjects);
        let objects = name_entities(cfg.theme, "object", cfg.n_objects);
        let mut predicates = name_predicates(cfg.theme, cfg.n_predicates);

        // The last predicate ids become literal/name predicates.
        let n_literal_preds = 2.min(cfg.n_predicates as usize);
        let literal_predicates: Vec<u64> = (0..n_literal_preds)
            .map(|t| cfg.n_predicates - 1 - t as u64)
            .collect();
        for (t, &p) in literal_predicates.iter().enumerate() {
            predicates[p as usize] = if t == 0 {
                "ns:type.object.name".to_string()
            } else {
                "ns:common.topic.alias".to_string()
            };
        }

        // Plant concepts on disjoint id blocks.
        let mut concepts = Vec::new();
        let mut triples = Vec::new();
        for c in 0..cfg.n_concepts {
            let s0 = (c * cfg.concept_entities) as u64 % cfg.n_subjects.max(1);
            let o0 = (c * cfg.concept_entities) as u64 % cfg.n_objects.max(1);
            let p0 = (c * cfg.concept_predicates) as u64
                % cfg
                    .n_predicates
                    .saturating_sub(n_literal_preds as u64)
                    .max(1);
            let subj_block: Vec<u64> = (0..cfg.concept_entities as u64)
                .map(|d| (s0 + d) % cfg.n_subjects)
                .collect();
            let obj_block: Vec<u64> = (0..cfg.concept_entities as u64)
                .map(|d| (o0 + d) % cfg.n_objects)
                .collect();
            let pred_block: Vec<u64> = (0..cfg.concept_predicates as u64)
                .map(|d| {
                    (p0 + d)
                        % cfg
                            .n_predicates
                            .saturating_sub(n_literal_preds as u64)
                            .max(1)
                })
                .collect();
            for _ in 0..cfg.triples_per_concept {
                let s = subj_block[rng.gen_range(0..subj_block.len())];
                let o = obj_block[rng.gen_range(0..obj_block.len())];
                let p = pred_block[rng.gen_range(0..pred_block.len())];
                triples.push((s, o, p));
            }
            concepts.push(PlantedConcept {
                name: themes[c % themes.len()].to_string(),
                subjects: subj_block,
                objects: obj_block,
                predicates: pred_block,
            });
        }

        // Power-law-ish noise: popularity ∝ 1/(1+id).
        let non_literal_preds = cfg
            .n_predicates
            .saturating_sub(n_literal_preds as u64)
            .max(1);
        for _ in 0..cfg.noise_triples {
            let s = powerlaw_index(&mut rng, cfg.n_subjects);
            let o = powerlaw_index(&mut rng, cfg.n_objects);
            let p = powerlaw_index(&mut rng, non_literal_preds);
            triples.push((s, o, p));
        }

        // Literal/name triples on the literal predicates.
        for _ in 0..cfg.literal_triples {
            let s = rng.gen_range(0..cfg.n_subjects);
            let o = rng.gen_range(0..cfg.n_objects);
            let p = literal_predicates[rng.gen_range(0..literal_predicates.len().max(1))];
            triples.push((s, o, p));
        }

        KnowledgeBase {
            subjects,
            objects,
            predicates,
            triples,
            concepts,
            literal_predicates,
        }
    }

    /// Preset imitating the Freebase-music slice at a configurable scale.
    pub fn freebase_music(scale: usize, seed: u64) -> KnowledgeBase {
        let cfg = KbConfig {
            n_subjects: (200 * scale) as u64,
            n_objects: (200 * scale) as u64,
            n_predicates: (20 * scale.min(8)) as u64,
            n_concepts: 5.min(2 + scale),
            concept_entities: 10 * scale.max(1),
            concept_predicates: 3,
            triples_per_concept: 300 * scale,
            noise_triples: 150 * scale,
            literal_triples: 80 * scale,
            seed,
            theme: Theme::Music,
        };
        KnowledgeBase::generate(&cfg)
    }

    /// Preset imitating NELL at a configurable scale.
    pub fn nell(scale: usize, seed: u64) -> KnowledgeBase {
        let cfg = KbConfig {
            n_subjects: (300 * scale) as u64,
            n_objects: (300 * scale) as u64,
            n_predicates: (30 * scale.min(6)) as u64,
            n_concepts: 4.min(2 + scale),
            concept_entities: 12 * scale.max(1),
            concept_predicates: 4,
            triples_per_concept: 350 * scale,
            noise_triples: 200 * scale,
            literal_triples: 60 * scale,
            seed,
            theme: Theme::Nell,
        };
        KnowledgeBase::generate(&cfg)
    }

    /// Raw triples as a binary `(subject × object × predicate)` tensor with
    /// duplicate triples collapsed to a single 1 (pre-reweighting).
    pub fn to_binary_tensor(&self) -> CooTensor3 {
        let dims = [
            self.subjects.len() as u64,
            self.objects.len() as u64,
            self.predicates.len() as u64,
        ];
        let mut seen: HashSet<(u64, u64, u64)> = HashSet::with_capacity(self.triples.len());
        let mut entries = Vec::new();
        for &(s, o, p) in &self.triples {
            if seen.insert((s, o, p)) {
                entries.push(Entry3::new(s, o, p, 1.0));
            }
        }
        CooTensor3::from_entries(dims, entries).expect("generated ids are in range")
    }
}

fn powerlaw_index(rng: &mut StdRng, n: u64) -> u64 {
    // Inverse-CDF sampling of p(i) ∝ 1/(1+i) over [0, n).
    let u: f64 = rng.gen();
    let hmax = ((n as f64) + 1.0).ln();
    let idx = (u * hmax).exp() - 1.0;
    (idx as u64).min(n.saturating_sub(1))
}

fn name_entities(theme: Theme, role: &str, n: u64) -> Vec<String> {
    let (first, second): (&[&str], &[&str]) = match theme {
        Theme::Music => (
            &[
                "London Symphony Orchestra",
                "Wolfgang Amadeus Mozart",
                "Ludwig van Beethoven",
                "New York Philharmonic",
                "Guitar",
                "Keyboard",
                "Drums",
                "Bass guitar",
                "EMI",
                "Atlantic Records",
                "Universal Music Group",
                "Warner Bros. Records",
                "Rock music",
                "Pop music",
                "Alternative rock",
                "Cor anglais",
                "Flute",
                "Columbia",
            ],
            &[
                "Faust: Soldatenchor",
                "Main Theme",
                "Love Is Like Oxygen",
                "Honeysuckle Love",
                "True Love",
                "Jungle",
                "Sikidim",
                "Terrifying Tales",
                "Rose of Tralee",
                "Luftbahn",
                "Piano Concerto in A minor",
                "Symphony No. 7 in E minor",
                "13 Preludes, Op. 32",
                "Our Album!",
                "Plastic Parachute",
                "Since the Accident",
            ],
        ),
        Theme::Nell => (
            &[
                "George Harrison",
                "Michael Jordan",
                "Pittsburgh",
                "Carnegie Mellon",
                "Apple",
                "Marie Curie",
                "Toyota",
                "Amazon River",
                "Mount Everest",
                "Shakespeare",
            ],
            &[
                "guitars",
                "basketball",
                "steel city",
                "computer science",
                "smartphones",
                "radioactivity",
                "automobiles",
                "rainforest",
                "mountains",
                "plays",
            ],
        ),
    };
    let pool = if role == "subject" { first } else { second };
    (0..n)
        .map(|i| {
            let base = pool[(i as usize) % pool.len()];
            if (i as usize) < pool.len() {
                base.to_string()
            } else {
                format!("{base} #{}", i as usize / pool.len())
            }
        })
        .collect()
}

fn name_predicates(theme: Theme, n: u64) -> Vec<String> {
    let pool: &[&str] = match theme {
        Theme::Music => &[
            "ns:music.album-release-type.albums",
            "ns:music.artist.track",
            "ns:music.performance-role.track-performances",
            "ns:music.genre.albums",
            "ns:music.voice.singers",
            "ns:music.performance-role.regular-performances",
            "ns:music.instrument.instrumentalists",
            "ns:music.genre.artists",
            "ns:music.concert.concert-video",
            "ns:music.concert-tour.concert-films-or-videos",
            "ns:music.live-album.concert",
            "ns:music.concert-film.concert",
            "ns:music.instrument.variation",
            "ns:music.instrument.family",
            "ns:music.guitar.guitarists",
            "ns:music.release.region",
            "ns:music.record-label.artist",
            "ns:music.album.artist",
            "ns:music.release.album",
        ],
        Theme::Nell => &[
            "plays",
            "locatedIn",
            "worksFor",
            "headquarteredIn",
            "discovered",
            "manufactures",
            "flowsThrough",
            "climbedBy",
            "wrote",
            "teammateOf",
        ],
    };
    (0..n)
        .map(|i| {
            let base = pool[(i as usize) % pool.len()];
            if (i as usize) < pool.len() {
                base.to_string()
            } else {
                format!("{base}.{}", i as usize / pool.len())
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> KbConfig {
        KbConfig {
            n_subjects: 100,
            n_objects: 100,
            n_predicates: 12,
            n_concepts: 3,
            concept_entities: 10,
            concept_predicates: 2,
            triples_per_concept: 200,
            noise_triples: 100,
            literal_triples: 50,
            seed: 11,
            theme: Theme::Music,
        }
    }

    #[test]
    fn generates_expected_counts() {
        let kb = KnowledgeBase::generate(&small_cfg());
        assert_eq!(kb.subjects.len(), 100);
        assert_eq!(kb.objects.len(), 100);
        assert_eq!(kb.predicates.len(), 12);
        assert_eq!(kb.triples.len(), 3 * 200 + 100 + 50);
        assert_eq!(kb.concepts.len(), 3);
        assert_eq!(kb.literal_predicates.len(), 2);
    }

    #[test]
    fn literal_predicates_named_as_definitions() {
        let kb = KnowledgeBase::generate(&small_cfg());
        for &p in &kb.literal_predicates {
            let name = &kb.predicates[p as usize];
            assert!(
                name.contains("name") || name.contains("alias"),
                "literal predicate named {name}"
            );
        }
    }

    #[test]
    fn concepts_use_non_literal_predicates() {
        let kb = KnowledgeBase::generate(&small_cfg());
        for c in &kb.concepts {
            for &p in &c.predicates {
                assert!(!kb.literal_predicates.contains(&p));
            }
        }
    }

    #[test]
    fn binary_tensor_dedups() {
        let kb = KnowledgeBase::generate(&small_cfg());
        let t = kb.to_binary_tensor();
        assert!(t.nnz() <= kb.triples.len());
        assert!(t.entries().iter().all(|e| e.v == 1.0));
        assert_eq!(t.dims(), [100, 100, 12]);
    }

    #[test]
    fn deterministic() {
        let a = KnowledgeBase::generate(&small_cfg());
        let b = KnowledgeBase::generate(&small_cfg());
        assert_eq!(a.triples, b.triples);
    }

    #[test]
    fn presets_scale() {
        let kb1 = KnowledgeBase::freebase_music(1, 5);
        let kb2 = KnowledgeBase::freebase_music(2, 5);
        assert!(kb2.triples.len() > kb1.triples.len());
        assert!(kb2.subjects.len() > kb1.subjects.len());
        let nell = KnowledgeBase::nell(1, 5);
        assert!(nell.predicates.iter().any(|p| p == "plays"));
    }

    #[test]
    fn concept_blocks_dense_in_tensor() {
        // Triples inside a planted block must be far denser than outside.
        let kb = KnowledgeBase::generate(&small_cfg());
        let c = &kb.concepts[0];
        let in_block = kb
            .triples
            .iter()
            .filter(|(s, o, p)| {
                c.subjects.contains(s) && c.objects.contains(o) && c.predicates.contains(p)
            })
            .count();
        assert!(in_block >= 180, "in-block triples = {in_block}");
    }
}
