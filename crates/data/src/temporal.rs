//! Temporal (4-way) knowledge-base synthesis.
//!
//! The paper's opening example is a 4-way tensor — (source-ip, target-ip,
//! port-number, timestamp) — and its §II formulations are N-way. This
//! generator extends [`crate::kb`] with a time mode: each planted concept is
//! active in a contiguous time window, so the N-way decompositions can be
//! validated on recovering *when* a concept is active, not just who
//! participates.

use crate::kb::{KbConfig, KnowledgeBase};
use haten2_tensor::DynTensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A planted temporal concept: the base KB concept plus its active window.
#[derive(Debug, Clone)]
pub struct TemporalConcept {
    /// Index into the base knowledge base's `concepts`.
    pub concept: usize,
    /// Active time steps `[start, end)`.
    pub window: (u64, u64),
}

/// A 4-way temporal knowledge base.
#[derive(Debug, Clone)]
pub struct TemporalKb {
    /// The underlying (subject, object, predicate) knowledge base.
    pub base: KnowledgeBase,
    /// Number of time steps.
    pub n_time: u64,
    /// 4-way `(subject, object, predicate, time)` facts.
    pub quads: Vec<(u64, u64, u64, u64)>,
    /// Planted activity windows, one per base concept.
    pub windows: Vec<TemporalConcept>,
}

impl TemporalKb {
    /// Generate: each base-KB triple is stamped with times — concept
    /// triples inside their concept's window, noise uniformly.
    pub fn generate(cfg: &KbConfig, n_time: u64, seed: u64) -> TemporalKb {
        assert!(n_time > 0, "need at least one time step");
        let base = KnowledgeBase::generate(cfg);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7e4);

        // Assign each concept a window covering ~1/3 of the timeline.
        let span = (n_time / 3).max(1);
        let windows: Vec<TemporalConcept> = (0..base.concepts.len())
            .map(|c| {
                let start = rng.gen_range(0..n_time.saturating_sub(span).max(1));
                TemporalConcept {
                    concept: c,
                    window: (start, (start + span).min(n_time)),
                }
            })
            .collect();

        // Stamp triples: a triple matching a concept block gets a time in
        // that window; everything else is uniform.
        let quads = base
            .triples
            .iter()
            .map(|&(s, o, p)| {
                let owner = base.concepts.iter().position(|c| {
                    c.subjects.contains(&s) && c.objects.contains(&o) && c.predicates.contains(&p)
                });
                let t = match owner {
                    Some(c) => {
                        let (lo, hi) = windows[c].window;
                        rng.gen_range(lo..hi.max(lo + 1))
                    }
                    None => rng.gen_range(0..n_time),
                };
                (s, o, p, t)
            })
            .collect();

        TemporalKb {
            base,
            n_time,
            quads,
            windows,
        }
    }

    /// The 4-way binary tensor (duplicate quads collapsed).
    pub fn to_tensor(&self) -> DynTensor {
        let mut t = DynTensor::new(vec![
            self.base.subjects.len() as u64,
            self.base.objects.len() as u64,
            self.base.predicates.len() as u64,
            self.n_time,
        ]);
        for &(s, o, p, time) in &self.quads {
            t.push(&[s, o, p, time], 1.0)
                .expect("generated ids in range");
        }
        t.coalesce()
    }

    /// Fraction of a concept's quads that fall inside its planted window —
    /// a ground-truth check for temporal recovery.
    pub fn window_purity(&self, concept: usize) -> f64 {
        let c = &self.base.concepts[concept];
        let (lo, hi) = self.windows[concept].window;
        let (mut inside, mut total) = (0usize, 0usize);
        for &(s, o, p, t) in &self.quads {
            if c.subjects.contains(&s) && c.objects.contains(&o) && c.predicates.contains(&p) {
                total += 1;
                if t >= lo && t < hi {
                    inside += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            inside as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::Theme;

    fn cfg() -> KbConfig {
        KbConfig {
            n_subjects: 60,
            n_objects: 60,
            n_predicates: 10,
            n_concepts: 2,
            concept_entities: 8,
            concept_predicates: 2,
            triples_per_concept: 200,
            noise_triples: 60,
            literal_triples: 0,
            seed: 17,
            theme: Theme::Nell,
        }
    }

    #[test]
    fn quads_cover_all_triples_within_time_range() {
        let tkb = TemporalKb::generate(&cfg(), 12, 3);
        assert_eq!(tkb.quads.len(), tkb.base.triples.len());
        assert!(tkb.quads.iter().all(|&(_, _, _, t)| t < 12));
    }

    #[test]
    fn concept_quads_respect_windows() {
        let tkb = TemporalKb::generate(&cfg(), 12, 3);
        for c in 0..tkb.base.concepts.len() {
            let purity = tkb.window_purity(c);
            assert!(purity > 0.99, "concept {c} purity {purity}");
            let (lo, hi) = tkb.windows[c].window;
            assert!(lo < hi && hi <= 12);
        }
    }

    #[test]
    fn tensor_is_4way_and_binary() {
        let tkb = TemporalKb::generate(&cfg(), 8, 4);
        let t = tkb.to_tensor();
        assert_eq!(t.order(), 4);
        assert_eq!(t.dims()[3], 8);
        assert!((0..t.nnz()).all(|e| t.value(e) >= 1.0));
    }

    #[test]
    fn nway_parafac_recovers_temporal_window() {
        // End-to-end: decompose the 4-way tensor and check that some factor
        // column's time profile concentrates inside a planted window.
        let tkb = TemporalKb::generate(&cfg(), 12, 5);
        let x = tkb.to_tensor();
        let cluster =
            haten2_mapreduce::Cluster::new(haten2_mapreduce::ClusterConfig::with_machines(4));
        let res = haten2_core::nway::nway_parafac_als(&cluster, &x, 3, 10, 1e-6, 21).unwrap();
        let time_factor = &res.factors[3];
        let mut best_conc = 0.0f64;
        for r in 0..3 {
            for w in &tkb.windows {
                let (lo, hi) = w.window;
                let inside: f64 = (lo..hi).map(|t| time_factor.get(t as usize, r).abs()).sum();
                let total: f64 = (0..12).map(|t| time_factor.get(t as usize, r).abs()).sum();
                if total > 0.0 {
                    best_conc = best_conc.max(inside / total);
                }
            }
        }
        // A window spans 1/3 of the timeline; concentration well above that
        // means the time mode was recovered.
        assert!(best_conc > 0.7, "best window concentration {best_conc}");
    }

    #[test]
    fn deterministic() {
        let a = TemporalKb::generate(&cfg(), 10, 9);
        let b = TemporalKb::generate(&cfg(), 10, 9);
        assert_eq!(a.quads, b.quads);
    }
}
