//! Loading real (subject, predicate, object) triple dumps.
//!
//! The paper's inputs are RDF-style dumps (Freebase triples, NELL's
//! `(noun phrase 1, noun phrase 2, context)` rows). This module reads such
//! files — tab- or whitespace-separated string triples — builds the
//! id-mapped vocabularies, and hands back a [`KnowledgeBase`] that flows
//! into the same §IV-C preprocessing and discovery pipeline as the
//! synthetic stand-ins. Literal detection marks `name`/`alias`/`label`
//! predicates and quoted objects the way the paper's literal filter
//! expects.

use crate::kb::KnowledgeBase;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

/// Column order of a triple file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripleOrder {
    /// `subject predicate object` (RDF / N-Triples style, the Freebase way).
    Spo,
    /// `subject object predicate` (the paper's tensor-index order).
    Sop,
}

/// Errors from triple parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct TripleParseError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl std::fmt::Display for TripleParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TripleParseError {}

/// Interns strings to dense ids in first-seen order.
#[derive(Debug, Default)]
struct Vocab {
    ids: HashMap<String, u64>,
    names: Vec<String>,
}

impl Vocab {
    fn intern(&mut self, s: &str) -> u64 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = self.names.len() as u64;
        self.ids.insert(s.to_string(), id);
        self.names.push(s.to_string());
        id
    }
}

/// Parse a triple dump into a [`KnowledgeBase`].
///
/// * Fields are split on tabs when present, otherwise on runs of
///   whitespace (so NELL-style space-separated rows work).
/// * Blank lines and `#` comments are skipped; a trailing ` .` (N-Triples)
///   is tolerated.
/// * Predicates whose name contains `name`, `alias`, or `label`
///   (case-insensitive) are marked literal, as are predicates whose
///   objects are quoted strings — feeding the §IV-C literal filter.
pub fn parse_triples<R: Read>(
    r: R,
    order: TripleOrder,
) -> std::result::Result<KnowledgeBase, TripleParseError> {
    let reader = BufReader::new(r);
    let mut subjects = Vocab::default();
    let mut objects = Vocab::default();
    let mut predicates = Vocab::default();
    let mut triples: Vec<(u64, u64, u64)> = Vec::new();
    let mut quoted_object_preds: HashMap<u64, bool> = HashMap::new();

    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| TripleParseError {
            line: lineno + 1,
            message: format!("I/O: {e}"),
        })?;
        let mut trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if let Some(stripped) = trimmed.strip_suffix('.') {
            trimmed = stripped.trim_end();
        }
        let fields: Vec<&str> = if trimmed.contains('\t') {
            trimmed
                .split('\t')
                .map(str::trim)
                .filter(|f| !f.is_empty())
                .collect()
        } else {
            trimmed.split_whitespace().collect()
        };
        if fields.len() != 3 {
            return Err(TripleParseError {
                line: lineno + 1,
                message: format!("expected 3 fields, got {}", fields.len()),
            });
        }
        let (s, p, o) = match order {
            TripleOrder::Spo => (fields[0], fields[1], fields[2]),
            TripleOrder::Sop => (fields[0], fields[2], fields[1]),
        };
        let sid = subjects.intern(s);
        let oid = objects.intern(o);
        let pid = predicates.intern(p);
        let quoted = o.starts_with('"');
        let e = quoted_object_preds.entry(pid).or_insert(true);
        *e = *e && quoted;
        triples.push((sid, oid, pid));
    }

    // Literal predicates: definitional names, or all-quoted objects.
    let literal_predicates: Vec<u64> = predicates
        .names
        .iter()
        .enumerate()
        .filter(|(pid, name)| {
            // Definitional predicates end in name/alias/label (e.g.
            // `ns:type.object.name`, `rdfs:label`); a substring match would
            // wrongly catch `record-label.artist`, so compare the final
            // path segment only.
            let lower = name.to_ascii_lowercase();
            let last = lower.rsplit(['.', '/', ':', '#']).next().unwrap_or("");
            let by_name = matches!(last, "name" | "alias" | "label");
            let by_objects = quoted_object_preds
                .get(&(*pid as u64))
                .copied()
                .unwrap_or(false)
                && triples.iter().any(|&(_, _, p)| p == *pid as u64);
            by_name || by_objects
        })
        .map(|(pid, _)| pid as u64)
        .collect();

    Ok(KnowledgeBase {
        subjects: subjects.names,
        objects: objects.names,
        predicates: predicates.names,
        triples,
        concepts: Vec::new(), // no planted ground truth in real data
        literal_predicates,
    })
}

/// [`parse_triples`] from a file path.
pub fn load_triples<P: AsRef<Path>>(
    path: P,
    order: TripleOrder,
) -> std::result::Result<KnowledgeBase, TripleParseError> {
    let f = std::fs::File::open(&path).map_err(|e| TripleParseError {
        line: 0,
        message: format!("open {}: {e}", path.as_ref().display()),
    })?;
    parse_triples(f, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{preprocess, PreprocessConfig};

    const SAMPLE: &str = "\
# Freebase-style sample
John\tns:music.artist.track\tImagine
John\tns:type.object.name\t\"John Lennon\"
Paul\tns:music.artist.track\tYesterday
Paul\tns:music.artist.track\tImagine
John\tns:music.record-label.artist\tApple_Records
";

    #[test]
    fn parses_and_interns() {
        let kb = parse_triples(SAMPLE.as_bytes(), TripleOrder::Spo).unwrap();
        assert_eq!(kb.triples.len(), 5);
        assert_eq!(kb.subjects, vec!["John", "Paul"]);
        assert!(kb.objects.contains(&"Imagine".to_string()));
        assert_eq!(kb.predicates.len(), 3);
        // Repeated strings share ids.
        let imagine = kb.objects.iter().position(|o| o == "Imagine").unwrap() as u64;
        let count = kb.triples.iter().filter(|&&(_, o, _)| o == imagine).count();
        assert_eq!(count, 2);
    }

    #[test]
    fn literal_detection_by_name_and_quoting() {
        let kb = parse_triples(SAMPLE.as_bytes(), TripleOrder::Spo).unwrap();
        let name_pid = kb
            .predicates
            .iter()
            .position(|p| p == "ns:type.object.name")
            .unwrap() as u64;
        assert!(kb.literal_predicates.contains(&name_pid));
        // The track predicate is not literal.
        let track_pid = kb
            .predicates
            .iter()
            .position(|p| p == "ns:music.artist.track")
            .unwrap() as u64;
        assert!(!kb.literal_predicates.contains(&track_pid));
    }

    #[test]
    fn whitespace_and_ntriples_styles() {
        let text = "a plays b .\nc plays d\n";
        let kb = parse_triples(text.as_bytes(), TripleOrder::Spo).unwrap();
        assert_eq!(kb.triples.len(), 2);
        assert_eq!(kb.predicates, vec!["plays"]);
    }

    #[test]
    fn sop_order() {
        let text = "subj\tobj\tpred\n";
        let kb = parse_triples(text.as_bytes(), TripleOrder::Sop).unwrap();
        assert_eq!(kb.subjects, vec!["subj"]);
        assert_eq!(kb.objects, vec!["obj"]);
        assert_eq!(kb.predicates, vec!["pred"]);
    }

    #[test]
    fn malformed_rows_error_with_line() {
        let text = "good p o\nbad row with too many fields here\n";
        let err = parse_triples(text.as_bytes(), TripleOrder::Spo).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn flows_into_preprocessing() {
        let kb = parse_triples(SAMPLE.as_bytes(), TripleOrder::Spo).unwrap();
        let cfg = PreprocessConfig {
            min_predicate_count: 0,
            max_predicate_share: 1.0,
            ..Default::default()
        };
        let (tensor, report) = preprocess(&kb, &cfg);
        assert_eq!(report.literals_removed, 1);
        assert_eq!(tensor.nnz(), 4);
        assert_eq!(
            tensor.dims(),
            [
                kb.subjects.len() as u64,
                kb.objects.len() as u64,
                kb.predicates.len() as u64
            ]
        );
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("haten2_triples_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kb.tsv");
        std::fs::write(&path, SAMPLE).unwrap();
        let kb = load_triples(&path, TripleOrder::Spo).unwrap();
        assert_eq!(kb.triples.len(), 5);
        std::fs::remove_file(&path).ok();
        assert!(load_triples(dir.join("missing.tsv"), TripleOrder::Spo).is_err());
    }
}
