//! Property-based tests for workload generation and preprocessing.

use haten2_data::kb::{KbConfig, KnowledgeBase, Theme};
use haten2_data::preprocess::{preprocess, PreprocessConfig};
use haten2_data::random::{random_tensor, RandomTensorConfig};
use proptest::prelude::*;

fn kb_strategy() -> impl Strategy<Value = KnowledgeBase> {
    (
        20u64..120,
        20u64..120,
        6u64..20,
        1usize..4,
        4usize..12,
        20usize..150,
        0usize..80,
        0usize..60,
        any::<u64>(),
    )
        .prop_map(|(ns, no, np, nc, ce, tpc, noise, lit, seed)| {
            KnowledgeBase::generate(&KbConfig {
                n_subjects: ns,
                n_objects: no,
                n_predicates: np,
                n_concepts: nc,
                concept_entities: ce.min(ns as usize).min(no as usize),
                concept_predicates: 2,
                triples_per_concept: tpc,
                noise_triples: noise,
                literal_triples: lit,
                seed,
                theme: if seed % 2 == 0 {
                    Theme::Music
                } else {
                    Theme::Nell
                },
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_tensor_exact_nnz(i in 3u64..40, factor in 1u64..12, seed in any::<u64>()) {
        let nnz = (i * factor) as usize;
        let t = random_tensor(&RandomTensorConfig::cubic(i, nnz, seed));
        let capacity = (i * i * i) as usize;
        prop_assert_eq!(t.nnz(), nnz.min(capacity));
        // Entries within bounds and nonzero.
        for e in t.entries() {
            prop_assert!(e.i < i && e.j < i && e.k < i);
            prop_assert!(e.v != 0.0);
        }
    }

    #[test]
    fn kb_triples_in_range(kb in kb_strategy()) {
        let (ns, no, np) =
            (kb.subjects.len() as u64, kb.objects.len() as u64, kb.predicates.len() as u64);
        for &(s, o, p) in &kb.triples {
            prop_assert!(s < ns && o < no && p < np);
        }
    }

    #[test]
    fn preprocess_removes_all_literals(kb in kb_strategy()) {
        let (tensor, report) = preprocess(&kb, &PreprocessConfig::default());
        for e in tensor.entries() {
            prop_assert!(!kb.literal_predicates.contains(&e.k));
        }
        prop_assert!(report.output_nnz <= report.input_triples);
        let accounted = report.literals_removed + report.scarce_removed + report.frequent_removed;
        prop_assert!(accounted <= report.input_triples);
    }

    #[test]
    fn preprocess_weights_at_least_one(kb in kb_strategy()) {
        let (tensor, _) = preprocess(&kb, &PreprocessConfig::default());
        // 1 + log(α/links) ≥ 1 since links ≤ α.
        for e in tensor.entries() {
            prop_assert!(e.v >= 1.0 - 1e-12);
        }
    }

    #[test]
    fn preprocess_without_reweight_is_binary(kb in kb_strategy()) {
        let cfg = PreprocessConfig { reweight: false, ..Default::default() };
        let (tensor, _) = preprocess(&kb, &cfg);
        for e in tensor.entries() {
            prop_assert_eq!(e.v, 1.0);
        }
    }

    #[test]
    fn scarcest_predicates_filtered(kb in kb_strategy()) {
        use std::collections::HashMap;
        let cfg = PreprocessConfig { max_predicate_share: 1.0, ..Default::default() };
        let (tensor, _) = preprocess(&kb, &cfg);
        // Count non-literal triples per predicate in the input.
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for &(_, _, p) in &kb.triples {
            if !kb.literal_predicates.contains(&p) {
                *counts.entry(p).or_insert(0) += 1;
            }
        }
        // Any predicate surviving in the tensor must have appeared > 1 time.
        for e in tensor.entries() {
            prop_assert!(counts[&e.k] > 1, "predicate {} appeared once", e.k);
        }
    }
}
