//! `haten2-chaos` — run the chaos harness from the command line.
//!
//! ```text
//! haten2-chaos [--seeds N] [--seed-base S] [--machines M] [--sweeps T]
//! ```
//!
//! Runs all eight pipelines fault-free and under `N` randomized fault
//! schedules each, prints one row per run, and exits non-zero if any run
//! violates the fault-transparency invariant.

use haten2_chaos::{run_chaos, ChaosOptions, Status};

fn usage() -> ! {
    eprintln!("usage: haten2-chaos [--seeds N] [--seed-base S] [--machines M] [--sweeps T]");
    std::process::exit(2);
}

fn parse_args() -> ChaosOptions {
    let mut opts = ChaosOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |name: &str| -> u64 {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{name} needs an integer argument");
                usage()
            })
        };
        match flag.as_str() {
            "--seeds" => opts.seeds = take("--seeds") as usize,
            "--seed-base" => opts.seed_base = take("--seed-base"),
            "--machines" => opts.machines = (take("--machines") as usize).max(1),
            "--sweeps" => opts.sweeps = (take("--sweeps") as usize).max(1),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage()
            }
        }
    }
    opts
}

fn main() {
    let opts = parse_args();
    println!(
        "chaos: 8 pipelines x {} seeds (base {:#x}), {} machines, {} sweeps",
        opts.seeds, opts.seed_base, opts.machines, opts.sweeps
    );
    let report = run_chaos(&opts);

    println!(
        "{:<24} {:>10} {:<10} {:>6} {:>6} {:>7} {:>5} {:>6} {:>7} {:>12}",
        "pipeline",
        "seed",
        "status",
        "static",
        "races",
        "retries",
        "spec",
        "blist",
        "dfsrty",
        "recovery_s"
    );
    for o in &report.outcomes {
        let status = match &o.status {
            Status::Identical => "identical",
            Status::Exhausted(_) => "exhausted",
            Status::Diverged(_) => "DIVERGED",
        };
        let races = if !o.race_certified {
            "UNCERT".to_string()
        } else if o.dynamic_races > 0 {
            format!("RACE:{}", o.dynamic_races)
        } else {
            "0".to_string()
        };
        println!(
            "{:<24} {:>10} {:<10} {:>6} {:>6} {:>7} {:>5} {:>6} {:>7} {:>12.3}",
            o.pipeline,
            o.seed,
            status,
            if o.static_certified { "cert" } else { "UNCERT" },
            races,
            o.retries,
            o.speculative,
            o.blacklisted,
            o.dfs_retries,
            o.recovery_sim_time_s
        );
        if let Status::Diverged(why) = &o.status {
            println!("  !! {why}");
        }
    }

    let violations = report.violations().len();
    println!(
        "summary: {} runs, {} identical, {} exhausted, {} DIVERGED, {} task retries injected",
        report.outcomes.len(),
        report
            .outcomes
            .iter()
            .filter(|o| o.status == Status::Identical)
            .count(),
        report.exhausted(),
        violations,
        report.total_retries(),
    );
    if report.total_retries() == 0 {
        println!("warning: no retries were injected — the invariant was not exercised");
    }
    let cross = report.cross_validation_failures();
    if !cross.is_empty() {
        for o in &cross {
            println!(
                "  !! static/dynamic mismatch: {} (seed {}) recovered at runtime but \
                 was not statically certified",
                o.pipeline, o.seed
            );
        }
    }
    println!(
        "race detector: {} dynamic race(s) flagged, {} race cross-validation failure(s)",
        report.total_dynamic_races(),
        report.race_cross_validation_failures().len()
    );
    let race_cross = report.race_cross_validation_failures();
    for o in &race_cross {
        if o.dynamic_races > 0 {
            println!(
                "  !! race cross-validation: {} (seed {}) was certified race-free \
                 statically but the dynamic detector flagged {} race(s)",
                o.pipeline, o.seed, o.dynamic_races
            );
        } else {
            println!(
                "  !! race cross-validation: {} (seed {}) ran race-free dynamically \
                 but the static races pass refused to certify it",
                o.pipeline, o.seed
            );
        }
    }
    if violations > 0 || !cross.is_empty() || !race_cross.is_empty() {
        std::process::exit(1);
    }
}
