//! `haten2-restart` — kill-and-reexec durability scenario.
//!
//! ```text
//! haten2-restart [--dir DIR] [--decomp parafac|tucker|both]
//! ```
//!
//! For each selected decomposition the orchestrator runs the clean
//! reference in-process, then re-execs itself twice: a **victim** child
//! that persists the tensor to a durable block store, checkpoints, and
//! aborts mid-sweep; and a **resume** child that reopens the store in a
//! fresh process and finishes the run. Exits non-zero unless every
//! resumed model is bit-identical to its uninterrupted reference.
//!
//! The `--role` flag is the internal re-exec protocol; the harness sets
//! it when spawning children.

use haten2_chaos::restart;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!("usage: haten2-restart [--dir DIR] [--decomp parafac|tucker|both]");
    std::process::exit(2);
}

struct Args {
    role: Option<String>,
    dir: Option<PathBuf>,
    decomp: String,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        role: None,
        dir: None,
        decomp: "both".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs an argument");
                usage()
            })
        };
        match flag.as_str() {
            "--role" => parsed.role = Some(take("--role")),
            "--dir" => parsed.dir = Some(PathBuf::from(take("--dir"))),
            "--decomp" => parsed.decomp = take("--decomp"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage()
            }
        }
    }
    parsed
}

fn main() {
    let args = parse_args();
    let dir = args.dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("haten2-restart-{}", std::process::id()))
    });

    match args.role.as_deref() {
        Some("victim") => restart::run_victim(&dir, &args.decomp),
        Some("resume") => {
            let (fp, reloads) = restart::run_resume(&dir, &args.decomp);
            println!("{}", restart::format_resume_report(fp, reloads));
        }
        Some(other) => {
            eprintln!("unknown role: {other}");
            usage();
        }
        None => {
            let decomps: Vec<&str> = match args.decomp.as_str() {
                "both" => restart::DECOMPS.to_vec(),
                d @ ("parafac" | "tucker") => vec![d],
                other => {
                    eprintln!("unknown decomposition: {other}");
                    usage();
                }
            };
            let mut failed = false;
            for decomp in decomps {
                let scenario_dir = dir.join(decomp);
                let outcome = restart::drive_one(&scenario_dir, decomp);
                let verdict = if outcome.identical() {
                    "identical"
                } else {
                    failed = true;
                    "DIVERGED"
                };
                println!(
                    "{:<8} clean {:#018x} resumed {:#018x} reloads {:>3}  {}",
                    outcome.decomp, outcome.clean, outcome.resumed, outcome.reloads, verdict
                );
            }
            let _ = std::fs::remove_dir_all(&dir);
            if failed {
                eprintln!("kill-and-reexec scenario FAILED: resumed bits diverged");
                std::process::exit(1);
            }
            println!("kill-and-reexec: all resumed runs bit-identical across process restart");
        }
    }
}
