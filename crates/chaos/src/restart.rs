//! Kill-and-reexec scenario: crash a decomposition driver **as a real
//! process** and prove a freshly exec'd process resumes it bit-identically
//! from the durable block store.
//!
//! The in-crate crash-resume tests (`haten2_core::checkpoint`) simulate a
//! driver death by a [`FaultPlan::kill_at_job`] error return — the process
//! itself survives, so in-memory state could in principle leak into the
//! "resumed" run. This module closes that gap with three real processes:
//!
//! 1. **victim** — opens a [`DfsBackend::Durable`] cluster over a fresh
//!    store directory, persists the input tensor into the durable DFS
//!    ([`haten2_core::persist_tensor`]), and runs the checkpointed driver
//!    under a fault plan that kills a job inside sweep 2. When the typed
//!    retry-exhaustion error surfaces it calls [`std::process::abort`]:
//!    no destructors, no buffered flushes — whatever the block store
//!    fsynced is all the next process gets.
//! 2. **resume** — a *new* process (re-exec'd image) reopens the same
//!    store directory, asserts the tensor reloads bit-identically from
//!    the durable DFS, and resumes via `*_als_checkpointed`; the factor
//!    snapshot comes from the block store (`crate::store` datasets
//!    written before the sweep marker committed).
//! 3. **orchestrator** ([`drive`], the `haten2-restart` binary) — runs
//!    the clean decomposition in-process, spawns the two children via
//!    [`std::env::current_exe`], and compares fingerprints.
//!
//! The invariant is the chaos harness's, extended across an exec
//! boundary: *crash + restart must not change a single output bit.*

use crate::{chaos_tensor, fingerprint};
use haten2_core::{
    load_sweep_marker, load_tensor, parafac_als, parafac_als_checkpointed, persist_tensor,
    tucker_als, tucker_als_checkpointed, AlsOptions, Variant,
};
use haten2_mapreduce::{Cluster, ClusterConfig, DfsBackend, DurableConfig, FaultPlan};
use std::path::{Path, PathBuf};

/// Durable DFS dataset key the victim stores the input tensor under.
pub const TENSOR_KEY: &str = "restart/input";

/// PARAFAC rank / Tucker core size used by every phase.
const RANK: usize = 2;

/// Total sweeps; the victim dies during sweep 2, so the resume replays
/// the remaining `SWEEPS − 1`.
const SWEEPS: usize = 4;

/// The two pipelines the scenario certifies (one PARAFAC, one Tucker, as
/// the acceptance criteria require).
pub const DECOMPS: [&str; 2] = ["parafac", "tucker"];

/// Where the durable block store lives under the scenario directory.
pub fn store_dir(dir: &Path) -> PathBuf {
    dir.join("store")
}

/// Filesystem checkpoint prefix for one decomposition.
pub fn checkpoint_prefix(dir: &Path, decomp: &str) -> String {
    dir.join(format!("{decomp}-ck")).display().to_string()
}

fn base_opts(prefix: Option<String>) -> AlsOptions {
    AlsOptions {
        max_iters: SWEEPS,
        tol: 0.0,
        checkpoint_prefix: prefix,
        checkpoint_every: 1,
        ..AlsOptions::with_variant(Variant::Dri)
    }
}

fn durable_cluster(dir: &Path, plan: Option<FaultPlan>) -> Cluster {
    Cluster::new(ClusterConfig {
        dfs: DfsBackend::Durable(DurableConfig::new(store_dir(dir))),
        fault_plan: plan,
        ..ClusterConfig::with_machines(4)
    })
}

/// Model fingerprint: λ + factors (PARAFAC) or factors + core (Tucker).
/// Per-sweep traces (fits, core norms) are excluded — a resumed run only
/// has them for the replayed sweeps.
fn model_fingerprint(
    cluster: &Cluster,
    x: &haten2_tensor::CooTensor3,
    decomp: &str,
    opts: &AlsOptions,
    checkpointed: bool,
) -> haten2_core::Result<u64> {
    if decomp == "parafac" {
        let r = if checkpointed {
            parafac_als_checkpointed(cluster, x, RANK, opts)?
        } else {
            parafac_als(cluster, x, RANK, opts)?
        };
        let values = r
            .lambda
            .iter()
            .copied()
            .chain(r.factors.iter().flat_map(|f| f.data().iter().copied()));
        Ok(fingerprint(values))
    } else {
        let r = if checkpointed {
            tucker_als_checkpointed(cluster, x, [RANK; 3], opts)?
        } else {
            tucker_als(cluster, x, [RANK; 3], opts)?
        };
        let values = r
            .factors
            .iter()
            .flat_map(|f| f.data().iter().copied())
            .chain(r.core.data().iter().copied());
        Ok(fingerprint(values))
    }
}

/// The uninterrupted reference run, on a plain in-memory cluster.
pub fn clean_fingerprint(decomp: &str) -> u64 {
    let x = chaos_tensor();
    let cluster = Cluster::new(ClusterConfig::with_machines(4));
    model_fingerprint(&cluster, &x, decomp, &base_opts(None), false)
        .expect("fault-free reference run must succeed")
}

/// Jobs one sweep issues, so the victim's kill lands inside sweep 2.
fn jobs_per_sweep(decomp: &str) -> usize {
    let x = chaos_tensor();
    let probe = Cluster::new(ClusterConfig::with_machines(4));
    let opts = AlsOptions {
        max_iters: 1,
        ..base_opts(None)
    };
    model_fingerprint(&probe, &x, decomp, &opts, false).expect("probe run must succeed");
    probe.metrics().total_jobs()
}

/// Victim phase: persist the tensor durably, run until the scheduled kill
/// inside sweep 2 surfaces as a retry-exhaustion error, then die without
/// any cleanup. Never returns normally.
pub fn run_victim(dir: &Path, decomp: &str) -> ! {
    let x = chaos_tensor();
    let kill_at = jobs_per_sweep(decomp) + 1;
    let cluster = durable_cluster(dir, Some(FaultPlan::kill_at_job(kill_at)));
    persist_tensor(&cluster, TENSOR_KEY, &x).expect("tensor must persist to the durable DFS");
    let opts = base_opts(Some(checkpoint_prefix(dir, decomp)));
    let err = model_fingerprint(&cluster, &x, decomp, &opts, true)
        .expect_err("the fault plan must kill the run");
    eprintln!("victim[{decomp}]: dying after `{err}`");
    // Die like a kill -9: no Drop impls, no flushes. Only fsynced state
    // survives into the resume process.
    std::process::abort();
}

/// Resume phase, run in a fresh process: reopen the store, verify the
/// tensor survived the crash bit-identically, and finish the remaining
/// sweeps from the durable checkpoint. Returns the model fingerprint and
/// the number of datasets reloaded from segment files.
pub fn run_resume(dir: &Path, decomp: &str) -> (u64, usize) {
    let cluster = durable_cluster(dir, None);
    let survived = load_tensor(&cluster, TENSOR_KEY)
        .expect("durable tensor load must not error")
        .expect("the input tensor must survive the crash");
    let reference = chaos_tensor();
    assert_eq!(survived.dims(), reference.dims(), "tensor dims changed");
    assert_eq!(
        survived.entries(),
        reference.entries(),
        "tensor entries must survive the crash bit-identically"
    );

    let prefix = checkpoint_prefix(dir, decomp);
    let done = load_sweep_marker(&prefix)
        .expect("sweep marker must parse")
        .expect("the victim must have committed a sweep marker before dying");
    assert!(
        (1..SWEEPS).contains(&done),
        "victim died with {done} of {SWEEPS} sweeps marked — the kill \
         must land mid-run"
    );

    let opts = base_opts(Some(prefix));
    let fp = model_fingerprint(&cluster, &survived, decomp, &opts, true)
        .expect("the resumed run must succeed");
    let reloads = cluster.dfs().spill_stats().reload_events;
    (fp, reloads)
}

/// One child outcome the orchestrator records.
#[derive(Debug)]
pub struct RestartOutcome {
    /// Pipeline label (`parafac` / `tucker`).
    pub decomp: String,
    /// Fingerprint of the uninterrupted in-process run.
    pub clean: u64,
    /// Fingerprint the re-exec'd resume process reported.
    pub resumed: u64,
    /// Datasets the resume process reloaded from segment files.
    pub reloads: usize,
}

impl RestartOutcome {
    /// Did crash + restart preserve every output bit?
    pub fn identical(&self) -> bool {
        self.clean == self.resumed
    }
}

/// Spawn one child phase of this same executable and collect its output.
fn spawn_child(role: &str, dir: &Path, decomp: &str) -> std::process::Output {
    let exe = std::env::current_exe().expect("current_exe must resolve for re-exec");
    std::process::Command::new(exe)
        .args(["--role", role, "--decomp", decomp, "--dir"])
        .arg(dir)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {role} child: {e}"))
}

/// Orchestrate the full scenario for one decomposition: clean run
/// in-process, victim child (must die abnormally), resume child (must
/// print a fingerprint). Panics on protocol violations; bit-divergence is
/// reported in the returned outcome so callers can aggregate.
pub fn drive_one(dir: &Path, decomp: &str) -> RestartOutcome {
    let clean = clean_fingerprint(decomp);

    let victim = spawn_child("victim", dir, decomp);
    assert!(
        !victim.status.success(),
        "victim[{decomp}] must die by abort, got {:?}\nstderr:\n{}",
        victim.status,
        String::from_utf8_lossy(&victim.stderr)
    );

    let resume = spawn_child("resume", dir, decomp);
    assert!(
        resume.status.success(),
        "resume[{decomp}] failed with {:?}\nstdout:\n{}\nstderr:\n{}",
        resume.status,
        String::from_utf8_lossy(&resume.stdout),
        String::from_utf8_lossy(&resume.stderr)
    );
    let stdout = String::from_utf8_lossy(&resume.stdout);
    let (resumed, reloads) = parse_resume_report(&stdout)
        .unwrap_or_else(|| panic!("resume[{decomp}] printed no report:\n{stdout}"));

    RestartOutcome {
        decomp: decomp.to_string(),
        clean,
        resumed,
        reloads,
    }
}

/// Line the resume child prints; the orchestrator parses it back.
pub fn format_resume_report(fp: u64, reloads: usize) -> String {
    format!("resume-fingerprint {fp:#018x} reloads {reloads}")
}

/// Inverse of [`format_resume_report`]; `None` when no report line exists.
pub fn parse_resume_report(stdout: &str) -> Option<(u64, usize)> {
    let line = stdout
        .lines()
        .find(|l| l.starts_with("resume-fingerprint "))?;
    let mut parts = line.split_whitespace();
    let fp = parts
        .nth(1)?
        .strip_prefix("0x")
        .and_then(|h| u64::from_str_radix(h, 16).ok())?;
    let reloads = parts.nth(1)?.parse().ok()?;
    Some((fp, reloads))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resume_report_roundtrips() {
        let line = format_resume_report(0xdead_beef_0123_4567, 12);
        assert_eq!(
            parse_resume_report(&line),
            Some((0xdead_beef_0123_4567, 12))
        );
        assert_eq!(parse_resume_report("no report here"), None);
    }

    #[test]
    fn clean_fingerprints_are_deterministic_and_distinct() {
        let p = clean_fingerprint("parafac");
        assert_eq!(p, clean_fingerprint("parafac"));
        let t = clean_fingerprint("tucker");
        assert_ne!(p, t, "the two pipelines must not collide");
    }
}
