//! Chaos harness for the fault-injection subsystem.
//!
//! Runs all **eight** HaTen2 pipelines — {PARAFAC, Tucker} × {Naive, DNN,
//! DRN, DRI} — on a fixed small tensor, first fault-free and then under
//! randomized [`FaultPlan`] schedules, and checks the subsystem's core
//! invariant:
//!
//! > Any fault schedule that does not exhaust a retry budget must yield
//! > output **bit-identical** to the fault-free run.
//!
//! Outcomes are classified per (pipeline, seed):
//!
//! * `Identical` — the run completed and its fingerprint (FNV-1a over the
//!   raw `f64` bits of every factor, λ, and core entry) matches the
//!   fault-free fingerprint.
//! * `Exhausted` — a retry budget ran out (a typed engine error). Not a
//!   violation: losing a job after max attempts is correct Hadoop
//!   behaviour; the report records it separately.
//! * `Diverged` — the run completed but produced different bits, or
//!   failed with a non-fault error. **This is the bug the harness
//!   exists to catch.**
//!
//! Every faulty run is additionally replayed under
//! [`SchedulerMode::Sequential`]: the DAG scheduler interleaving jobs on
//! the shared pool must not change a single bit of output (or the typed
//! error) relative to one-job-at-a-time execution, even mid-fault-storm.
//! A mismatch between the two scheduler modes is reported as `Diverged`.
//!
//! The harness also aggregates the recovery counters, so callers can
//! assert the invariant was exercised (retries actually happened) rather
//! than vacuously true.
//!
//! Every cluster is built with the engine's `race-detect` feature
//! compiled in: a per-dataset last-writer/readers detector inside the
//! DFS flags any pair of unordered conflicting accesses during the
//! sweep. Its verdict is cross-validated against the static races pass
//! ([`haten2_analyze::race_certified`]) in both directions — see
//! [`ChaosReport::race_cross_validation_failures`].

pub mod restart;

use haten2_analyze::{certify, race_certified};
use haten2_core::{
    parafac_als, plan_for, recovery_for, tucker_als, AlsOptions, CoreError, Decomp, Variant,
};
use haten2_mapreduce::{Cluster, ClusterConfig, FaultPlan, MrError, RewritePolicy, SchedulerMode};
use haten2_tensor::{CooTensor3, Entry3};

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Number of randomized fault schedules per pipeline.
    pub seeds: usize,
    /// First fault seed; schedule `i` uses `seed_base + i`.
    pub seed_base: u64,
    /// Simulated machines per cluster.
    pub machines: usize,
    /// ALS sweeps per decomposition (kept small: 8 pipelines × seeds).
    pub sweeps: usize,
    /// Runtime rewrite policy for every cluster in the sweep (clean
    /// baseline and faulty runs alike). `Always` makes the sweep exercise
    /// the `heavy-key-split` two-phase aggregation under fault storms: the
    /// rewritten merge-final pipelines must stay bit-identical to their
    /// own fault-free runs and to the sequential replay.
    pub rewrite: RewritePolicy,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            seeds: 3,
            seed_base: 0xC0FFEE,
            machines: 4,
            sweeps: 2,
            rewrite: RewritePolicy::Off,
        }
    }
}

/// Outcome of one (pipeline, fault seed) run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Status {
    /// Output bit-identical to the fault-free run.
    Identical,
    /// A retry budget was exhausted (typed engine failure, message kept).
    Exhausted(String),
    /// Output differed from the fault-free run, or a non-fault error —
    /// an invariant violation.
    Diverged(String),
}

/// One row of the chaos report.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Pipeline label, e.g. `parafac/HaTen2-DRI`.
    pub pipeline: String,
    /// Fault seed this run used.
    pub seed: u64,
    /// Classified result.
    pub status: Status,
    /// Task retries (map + reduce) the schedule injected.
    pub retries: usize,
    /// Speculative backups launched.
    pub speculative: usize,
    /// Workers blacklisted.
    pub blacklisted: usize,
    /// DFS read retries endured.
    pub dfs_retries: usize,
    /// Simulated seconds spent on recovery (backoff + straggler delay).
    pub recovery_sim_time_s: f64,
    /// Did the static recoverability pass (`haten2_analyze::certify`)
    /// certify this pipeline's plan under its declared recovery spec?
    pub static_certified: bool,
    /// Did the static races pass (`haten2_analyze::race_certified`)
    /// certify this pipeline's batch program conflict-free?
    pub race_certified: bool,
    /// Races the dynamic detector flagged across the run's clusters
    /// (DAG + sequential replay). The static certificate claims this is
    /// zero; any nonzero count is a cross-validation failure.
    pub dynamic_races: usize,
}

/// Aggregated result of a chaos sweep.
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// One row per (pipeline, seed).
    pub outcomes: Vec<Outcome>,
}

impl ChaosReport {
    /// Rows that violated the fault-transparency invariant.
    pub fn violations(&self) -> Vec<&Outcome> {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.status, Status::Diverged(_)))
            .collect()
    }

    /// Rows that exhausted a retry budget (correct behaviour, reported).
    pub fn exhausted(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.status, Status::Exhausted(_)))
            .count()
    }

    /// Total task retries injected across every run — when this is 0 the
    /// invariant was never exercised.
    pub fn total_retries(&self) -> usize {
        self.outcomes.iter().map(|o| o.retries).sum()
    }

    /// True when no run violated the invariant.
    pub fn ok(&self) -> bool {
        self.violations().is_empty()
    }

    /// Static ⊆ dynamic cross-validation failures: runs the *runtime*
    /// recovered transparently (bit-identical output under faults) on a
    /// pipeline the *static* recoverability pass refused to certify. Each
    /// such row means the analyzer is under-approximating: a schedule the
    /// fault subsystem provably survives was rejected on paper.
    pub fn cross_validation_failures(&self) -> Vec<&Outcome> {
        self.outcomes
            .iter()
            .filter(|o| o.status == Status::Identical && !o.static_certified)
            .collect()
    }

    /// Static ⊆ dynamic cross-validation for the *race* certificates, in
    /// both directions: a pipeline the static races pass certified must
    /// never trip the dynamic detector (a flagged race disproves the
    /// certificate), and a run the detector finds race-free end-to-end on
    /// a pipeline the static pass refused to certify means the analyzer
    /// is under-approximating.
    pub fn race_cross_validation_failures(&self) -> Vec<&Outcome> {
        self.outcomes
            .iter()
            .filter(|o| {
                (o.race_certified && o.dynamic_races > 0)
                    || (!o.race_certified && o.dynamic_races == 0)
            })
            .collect()
    }

    /// Total dynamic races flagged across every run (must be zero).
    pub fn total_dynamic_races(&self) -> usize {
        self.outcomes.iter().map(|o| o.dynamic_races).sum()
    }
}

/// The fixed chaos tensor: 6×5×4, deterministic values, ~40% fill.
pub fn chaos_tensor() -> CooTensor3 {
    let mut entries = Vec::new();
    for i in 0..6u64 {
        for j in 0..5u64 {
            for k in 0..4u64 {
                if (i + 2 * j + 3 * k) % 3 == 0 {
                    let v = 1.0 + (i as f64) * 0.5 + (j as f64) * 0.25 + (k as f64) * 0.125;
                    entries.push(Entry3::new(i, j, k, v));
                }
            }
        }
    }
    CooTensor3::from_entries([6, 5, 4], entries).expect("fixed tensor is valid")
}

/// FNV-1a over the exact bit patterns of a stream of `f64`s: equal
/// fingerprints ⟺ bit-identical values (including signed zeros and NaN
/// payloads).
pub fn fingerprint(values: impl IntoIterator<Item = f64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in values {
        for b in v.to_bits().to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn cluster(
    machines: usize,
    plan: Option<FaultPlan>,
    scheduler: SchedulerMode,
    rewrite: RewritePolicy,
) -> Cluster {
    Cluster::new(ClusterConfig {
        fault_plan: plan,
        scheduler,
        rewrite,
        ..ClusterConfig::with_machines(machines)
    })
}

fn opts_for(variant: Variant, sweeps: usize) -> AlsOptions {
    AlsOptions {
        max_iters: sweeps,
        tol: 0.0,
        ..AlsOptions::with_variant(variant)
    }
}

/// Is this error an exhausted-retry-budget failure (correct under heavy
/// schedules) rather than a genuine divergence?
fn is_fault_exhaustion(err: &CoreError) -> bool {
    matches!(
        err,
        CoreError::MapReduce(MrError::TaskFailed { .. })
            | CoreError::MapReduce(MrError::DfsReadFailed { .. })
    )
}

/// Run one pipeline on `c`, returning its output fingerprint.
fn run_pipeline(
    c: &Cluster,
    x: &CooTensor3,
    decomp: &str,
    variant: Variant,
    sweeps: usize,
) -> Result<u64, CoreError> {
    let opts = opts_for(variant, sweeps);
    match decomp {
        "parafac" => {
            let r = parafac_als(c, x, 2, &opts)?;
            let values = r
                .lambda
                .iter()
                .copied()
                .chain(r.factors.iter().flat_map(|f| f.data().iter().copied()))
                .chain(r.fits.iter().copied());
            Ok(fingerprint(values))
        }
        _ => {
            let r = tucker_als(c, x, [2, 2, 2], &opts)?;
            let values = r
                .factors
                .iter()
                .flat_map(|f| f.data().iter().copied())
                .chain(r.core.data().iter().copied())
                .chain(r.core_norms.iter().copied());
            Ok(fingerprint(values))
        }
    }
}

/// Run the full chaos sweep: every pipeline fault-free once, then under
/// `opts.seeds` randomized schedules each.
pub fn run_chaos(opts: &ChaosOptions) -> ChaosReport {
    let x = chaos_tensor();
    let mut report = ChaosReport::default();

    for decomp in ["parafac", "tucker"] {
        for variant in Variant::ALL {
            let pipeline = format!("{decomp}/{}", variant.name());
            // Static verdict for the same (pipeline, sweeps) the dynamic
            // runs exercise, for the static ⊆ dynamic cross-validation.
            let d = if decomp == "parafac" {
                Decomp::Parafac
            } else {
                Decomp::Tucker
            };
            let static_certified = certify(
                &plan_for(d, variant),
                &recovery_for(d, variant, opts.sweeps),
            )
            .certified();
            // Static race verdict for the same pipeline, for the race
            // cross-validation against the dynamic detector.
            let statically_race_free = race_certified(d, variant);
            let clean = run_pipeline(
                &cluster(opts.machines, None, SchedulerMode::Dag, opts.rewrite),
                &x,
                decomp,
                variant,
                opts.sweeps,
            )
            .expect("fault-free pipeline must succeed");

            for i in 0..opts.seeds {
                let seed = opts.seed_base + i as u64;
                let c = cluster(
                    opts.machines,
                    Some(FaultPlan::seeded(seed)),
                    SchedulerMode::Dag,
                    opts.rewrite,
                );
                let dag = run_pipeline(&c, &x, decomp, variant, opts.sweeps);
                // Scheduler cross-check: the same fault schedule replayed
                // under sequential scheduling must agree bit-for-bit —
                // same fingerprint or same typed error.
                let seq_cluster = cluster(
                    opts.machines,
                    Some(FaultPlan::seeded(seed)),
                    SchedulerMode::Sequential,
                    opts.rewrite,
                );
                let seq = run_pipeline(&seq_cluster, &x, decomp, variant, opts.sweeps);
                let status = match (&dag, &seq) {
                    (Ok(a), Ok(b)) if a != b => Status::Diverged(format!(
                        "scheduler divergence: dag {a:#018x} vs sequential {b:#018x}"
                    )),
                    (Ok(_), Err(e)) => Status::Diverged(format!(
                        "scheduler divergence: sequential failed where dag succeeded: {e}"
                    )),
                    (Err(e), Ok(_)) => Status::Diverged(format!(
                        "scheduler divergence: dag failed where sequential succeeded: {e}"
                    )),
                    (Err(a), Err(b)) if a.to_string() != b.to_string() => Status::Diverged(
                        format!("scheduler divergence: dag error `{a}` vs sequential `{b}`"),
                    ),
                    _ => match dag {
                        Ok(fp) if fp == clean => Status::Identical,
                        Ok(_) => Status::Diverged("fingerprint mismatch".into()),
                        Err(e) if is_fault_exhaustion(&e) => Status::Exhausted(e.to_string()),
                        Err(e) => Status::Diverged(e.to_string()),
                    },
                };
                let m = c.metrics();
                report.outcomes.push(Outcome {
                    pipeline: pipeline.clone(),
                    seed,
                    status,
                    retries: m.total_task_retries(),
                    speculative: m.total_speculative_launched(),
                    blacklisted: m.total_workers_blacklisted(),
                    dfs_retries: m.total_dfs_read_retries(),
                    recovery_sim_time_s: m.total_recovery_sim_time_s(),
                    static_certified,
                    race_certified: statically_race_free,
                    dynamic_races: c.race_reports().len() + seq_cluster.race_reports().len(),
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_bit_exact() {
        assert_eq!(fingerprint([1.0, 2.0]), fingerprint([1.0, 2.0]));
        assert_ne!(fingerprint([1.0, 2.0]), fingerprint([2.0, 1.0]));
        // Signed zero differs in bits, so it must differ in fingerprint.
        assert_ne!(fingerprint([0.0]), fingerprint([-0.0]));
    }

    #[test]
    fn chaos_tensor_is_fixed() {
        let a = chaos_tensor();
        let b = chaos_tensor();
        assert_eq!(a.nnz(), b.nnz());
        assert_eq!(a.dims(), [6, 5, 4]);
        assert!(a.nnz() >= 30, "tensor too sparse for a meaningful run");
    }
}
