//! Chaos smoke test: a small randomized sweep over all eight pipelines
//! must uphold the fault-transparency invariant and actually inject work.

#![allow(clippy::unwrap_used)]

use haten2_chaos::{run_chaos, ChaosOptions, Status};

#[test]
fn all_eight_pipelines_are_fault_transparent() {
    let report = run_chaos(&ChaosOptions {
        seeds: 2,
        seed_base: 7,
        ..ChaosOptions::default()
    });
    // 2 decompositions × 4 variants × 2 seeds.
    assert_eq!(report.outcomes.len(), 16);
    let violations = report.violations();
    assert!(
        violations.is_empty(),
        "fault-transparency violations: {violations:?}"
    );
    // The invariant must not be vacuous: some schedule injected retries.
    assert!(
        report.total_retries() > 0,
        "no retries injected across 16 runs"
    );
    // Every pipeline label appears.
    for decomp in ["parafac", "tucker"] {
        for v in ["Naive", "DNN", "DRN", "DRI"] {
            let label = format!("{decomp}/HaTen2-{v}");
            assert!(
                report.outcomes.iter().any(|o| o.pipeline == label),
                "missing pipeline {label}"
            );
        }
    }
    // Static ⊆ dynamic: every schedule the runtime recovered from runs on
    // a plan the static recoverability pass certified — and on this tree
    // the static pass certifies all eight pipelines outright.
    assert!(
        report.cross_validation_failures().is_empty(),
        "runtime recovered on statically-uncertified plans: {:?}",
        report.cross_validation_failures()
    );
    for o in &report.outcomes {
        assert!(
            o.static_certified,
            "{} not statically certified",
            o.pipeline
        );
    }
}

#[test]
fn rewritten_plans_stay_fault_transparent() {
    use haten2_chaos::{chaos_tensor, fingerprint};
    use haten2_core::{parafac_als, AlsOptions, Variant};
    use haten2_mapreduce::{Cluster, ClusterConfig, RewritePolicy};

    // The full sweep with the heavy-key-split rewrite forced on: the four
    // merge-final pipelines submit split+mergeparts graphs, and every
    // faulty schedule must still reproduce the (rewritten) fault-free
    // bits, DAG and sequential alike.
    let report = run_chaos(&ChaosOptions {
        seeds: 1,
        seed_base: 11,
        rewrite: RewritePolicy::Always,
        ..ChaosOptions::default()
    });
    assert_eq!(report.outcomes.len(), 8);
    let violations = report.violations();
    assert!(
        violations.is_empty(),
        "rewritten-plan fault-transparency violations: {violations:?}"
    );

    // And the rewrite itself must be invisible in the bits: a fault-free
    // DRI ALS run with the rewritten plan fingerprints identically to the
    // unrewritten one.
    let x = chaos_tensor();
    let opts = AlsOptions {
        max_iters: 2,
        tol: 0.0,
        ..AlsOptions::with_variant(Variant::Dri)
    };
    let fp = |rewrite: RewritePolicy| {
        let c = Cluster::new(ClusterConfig {
            rewrite,
            ..ClusterConfig::with_machines(4)
        });
        let r = parafac_als(&c, &x, 2, &opts).unwrap();
        fingerprint(
            r.lambda
                .iter()
                .copied()
                .chain(r.factors.iter().flat_map(|f| f.data().iter().copied()))
                .chain(r.fits.iter().copied()),
        )
    };
    assert_eq!(
        fp(RewritePolicy::Off),
        fp(RewritePolicy::Always),
        "heavy-key-split changed the bits of a fault-free ALS run"
    );
}

#[test]
fn exhausted_runs_are_reported_not_failed() {
    // A brutal schedule: tiny retry budget, heavy crash rate. Some runs
    // will exhaust; none may diverge.
    let mut opts = ChaosOptions {
        seeds: 1,
        seed_base: 3,
        ..ChaosOptions::default()
    };
    opts.sweeps = 1;
    let report = run_chaos(&opts);
    for o in &report.outcomes {
        assert!(!matches!(o.status, Status::Diverged(_)), "diverged: {o:?}");
    }
}
