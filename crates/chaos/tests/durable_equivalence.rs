//! All eight HaTen2 pipelines must produce bit-identical output on the
//! durable block-store backend — both with an unlimited memory budget
//! (write-through, reads served resident) and with a zero budget (every
//! dataset spills immediately; every read decodes from segment files).
//! Durability may move bytes, never change them.
//!
//! The durable runs put the block store *in the dataflow*, as HaTen2 keeps
//! the tensor on HDFS: the input tensor is persisted to the durable DFS
//! and read back (under a zero budget that read decodes segment files
//! through the codec), and the decomposition runs on the reloaded copy.

#![allow(clippy::unwrap_used)]

use haten2_chaos::{chaos_tensor, fingerprint};
use haten2_core::{load_tensor, parafac_als, persist_tensor, tucker_als, AlsOptions, Variant};
use haten2_mapreduce::{Cluster, ClusterConfig, DfsBackend, DurableConfig};
use haten2_tensor::CooTensor3;
use std::path::Path;

fn run_fingerprint(cluster: &Cluster, x: &CooTensor3, decomp: &str, variant: Variant) -> u64 {
    let opts = AlsOptions {
        max_iters: 2,
        tol: 0.0,
        ..AlsOptions::with_variant(variant)
    };
    if decomp == "parafac" {
        let r = parafac_als(cluster, x, 2, &opts).unwrap();
        fingerprint(
            r.lambda
                .iter()
                .copied()
                .chain(r.factors.iter().flat_map(|f| f.data().iter().copied()))
                .chain(r.fits.iter().copied()),
        )
    } else {
        let r = tucker_als(cluster, x, [2, 2, 2], &opts).unwrap();
        fingerprint(
            r.factors
                .iter()
                .flat_map(|f| f.data().iter().copied())
                .chain(r.core.data().iter().copied())
                .chain(r.core_norms.iter().copied()),
        )
    }
}

fn durable_cluster(dir: &Path, budget: Option<usize>) -> Cluster {
    let mut cfg = DurableConfig::new(dir);
    if let Some(b) = budget {
        cfg = cfg.memory_budget(b);
    }
    Cluster::new(ClusterConfig {
        dfs: DfsBackend::Durable(cfg),
        ..ClusterConfig::with_machines(4)
    })
}

/// Persist the tensor into the cluster's durable DFS, read it back (the
/// HDFS round-trip), and decompose the reloaded copy.
fn run_via_durable_tensor(cluster: &Cluster, decomp: &str, variant: Variant) -> u64 {
    persist_tensor(cluster, "eq/input", &chaos_tensor()).unwrap();
    let x = load_tensor(cluster, "eq/input").unwrap().unwrap();
    run_fingerprint(cluster, &x, decomp, variant)
}

#[test]
fn all_eight_pipelines_bit_identical_on_durable_backend() {
    let base = std::env::temp_dir().join(format!("haten2-durable-eq-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let x = chaos_tensor();

    for decomp in ["parafac", "tucker"] {
        for variant in Variant::ALL {
            let mem = run_fingerprint(
                &Cluster::new(ClusterConfig::with_machines(4)),
                &x,
                decomp,
                variant,
            );

            // Unlimited budget: write-through durability, resident reads.
            let dir = base.join(format!("{decomp}-{}-unlimited", variant.name()));
            let unlimited = durable_cluster(&dir, None);
            let fp = run_via_durable_tensor(&unlimited, decomp, variant);
            assert_eq!(
                fp, mem,
                "{decomp}/{variant}: durable (unlimited budget) diverged from memory"
            );

            // Zero budget: the tensor spills on put and the read-back
            // decodes it from segment files through the codec; the
            // paranoid end of the spill spectrum.
            let dir = base.join(format!("{decomp}-{}-spill", variant.name()));
            let spilled = durable_cluster(&dir, Some(0));
            let fp = run_via_durable_tensor(&spilled, decomp, variant);
            assert_eq!(
                fp, mem,
                "{decomp}/{variant}: durable (forced spill) diverged from memory"
            );
            let stats = spilled.dfs().spill_stats();
            assert!(
                stats.spill_events > 0 && stats.reload_events > 0,
                "{decomp}/{variant}: zero budget must actually exercise the \
                 spill/reload path (got {stats:?})"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&base);
}
