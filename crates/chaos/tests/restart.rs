//! Kill-and-reexec durability test: a real process crash (abort, no
//! cleanup) followed by a real process restart must resume both a PARAFAC
//! and a Tucker pipeline bit-identically from the durable block store.
//!
//! The heavy lifting lives in `haten2_chaos::restart`; this test drives
//! the `haten2-restart` orchestrator binary, which re-execs itself for
//! the victim and resume phases so each phase is a separate OS process.

#![allow(clippy::unwrap_used)]

#[test]
fn kill_and_reexec_resumes_bit_identical() {
    let dir = std::env::temp_dir().join(format!("haten2-restart-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let exe = env!("CARGO_BIN_EXE_haten2-restart");
    let out = std::process::Command::new(exe)
        .arg("--dir")
        .arg(&dir)
        .output()
        .expect("haten2-restart must spawn");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "kill-and-reexec scenario failed ({:?})\nstdout:\n{stdout}\nstderr:\n{stderr}",
        out.status
    );
    // Both pipelines must have been certified, each by an actual restart.
    for decomp in ["parafac", "tucker"] {
        assert!(
            stdout
                .lines()
                .any(|l| l.starts_with(decomp) && l.ends_with("identical")),
            "no identical verdict for {decomp}:\n{stdout}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
