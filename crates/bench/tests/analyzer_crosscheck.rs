//! Analyzer ↔ runtime cross-check: the static plan predictions of
//! `haten2_core::plan` must match what the metered engine actually does.
//!
//! For random `(dims, rank, nnz)` in generic position (strictly positive
//! tensor values and factors, so no product cancels), every job the
//! runtime pipelines submit is compared against the expanded `JobGraph`:
//! same job names, and per job either *exactly* the predicted map-output
//! records and shuffle bytes (jobs marked `exact` — all of DRI) or at
//! most the predicted upper bound. This pins the paper-table verification
//! of `haten2-analyze` to the real engine: if a pipeline or a record
//! type drifts, the static table silently verifying the wrong thing is
//! impossible — this test fails instead.

// Test code: `unwrap` is the assertion (allowed by the workspace clippy
// policy only here).
#![allow(clippy::unwrap_used)]

use haten2_core::parafac::mttkrp;
use haten2_core::tucker::{project, ProjectOptions};
use haten2_core::{env_for, plan_for, recovery_for, Decomp, Variant};
use haten2_linalg::Mat;
use haten2_mapreduce::{Cluster, ClusterConfig, JobInstance};
use haten2_tensor::{CooTensor3, Entry3};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A random tensor in generic position: indices anywhere in `dims`,
/// values strictly positive (duplicates sum, so nothing cancels to zero).
fn generic_tensor(dims: [u64; 3], n: usize, rng: &mut StdRng) -> CooTensor3 {
    let entries = (0..n)
        .map(|_| {
            Entry3::new(
                rng.gen_range(0..dims[0]),
                rng.gen_range(0..dims[1]),
                rng.gen_range(0..dims[2]),
                rng.gen_range(0.5..2.0),
            )
        })
        .collect();
    CooTensor3::from_entries(dims, entries).unwrap()
}

/// A strictly positive `rows × cols` matrix.
fn generic_mat(rows: usize, cols: usize, rng: &mut StdRng) -> Mat {
    let data: Vec<Vec<f64>> = (0..rows)
        .map(|_| (0..cols).map(|_| rng.gen_range(0.5..2.0)).collect())
        .collect();
    Mat::from_rows(&data).unwrap()
}

/// Compare predicted instances against metered jobs: equal name multisets;
/// exact jobs match records and shuffle bytes exactly, bounded jobs never
/// exceed the prediction. (Sorted by name because the PARAFAC Naive/DNN
/// drivers interleave their per-column jobs.)
fn crosscheck(
    label: &str,
    mut predicted: Vec<JobInstance>,
    metered: &haten2_mapreduce::RunMetrics,
) -> Result<(), TestCaseError> {
    let mut actual: Vec<&haten2_mapreduce::JobMetrics> = metered.jobs.iter().collect();
    predicted.sort_by(|a, b| a.name.cmp(&b.name));
    actual.sort_by(|a, b| a.name.cmp(&b.name));
    prop_assert_eq!(
        predicted.iter().map(|p| p.name.clone()).collect::<Vec<_>>(),
        actual.iter().map(|j| j.name.clone()).collect::<Vec<_>>(),
        "{}: job names",
        label
    );
    for (p, j) in predicted.iter().zip(&actual) {
        if p.exact {
            prop_assert_eq!(
                p.records,
                j.map_output_records as u128,
                "{} / {}: records",
                label,
                &p.name
            );
            prop_assert_eq!(
                p.bytes,
                j.shuffle_bytes as u128,
                "{} / {}: shuffle bytes",
                label,
                &p.name
            );
        } else {
            prop_assert!(
                j.map_output_records as u128 <= p.records,
                "{} / {}: {} records exceed bound {}",
                label,
                &p.name,
                j.map_output_records,
                p.records
            );
            prop_assert!(
                j.shuffle_bytes as u128 <= p.bytes,
                "{} / {}: {} shuffle bytes exceed bound {}",
                label,
                &p.name,
                j.shuffle_bytes,
                p.bytes
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn tucker_predictions_match_metered_runs(
        di in 4u64..12, dj in 4u64..12, dk in 4u64..12,
        q in 1usize..5, r in 1usize..5,
        n in 10usize..60,
        machines in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dims = [di, dj, dk];
        let x = generic_tensor(dims, n, &mut rng);
        let bt = generic_mat(q, dj as usize, &mut rng);
        let ct = generic_mat(r, dk as usize, &mut rng);
        // Mode 0: canonicalization is the identity, so `dims` are already
        // the canonical (I, J, K) the plan's env expects.
        let env = env_for(dims, x.nnz(), q, r, machines);
        for variant in Variant::ALL {
            let cluster = Cluster::new(ClusterConfig::with_machines(machines));
            project(&cluster, variant, &x, 0, &bt, &ct, &ProjectOptions::default()).unwrap();
            let predicted = plan_for(Decomp::Tucker, variant).expand(&env);
            crosscheck(&format!("tucker {variant}"), predicted, &cluster.metrics())?;
        }
    }

    #[test]
    fn parafac_predictions_match_metered_runs(
        di in 4u64..12, dj in 4u64..12, dk in 4u64..12,
        rank in 1usize..5,
        n in 10usize..60,
        machines in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dims = [di, dj, dk];
        let x = generic_tensor(dims, n, &mut rng);
        let f1 = generic_mat(dj as usize, rank, &mut rng);
        let f2 = generic_mat(dk as usize, rank, &mut rng);
        let env = env_for(dims, x.nnz(), rank, rank, machines);
        for variant in Variant::ALL {
            let cluster = Cluster::new(ClusterConfig::with_machines(machines));
            mttkrp(&cluster, variant, &x, 0, &f1, &f2).unwrap();
            let predicted = plan_for(Decomp::Parafac, variant).expand(&env);
            crosscheck(&format!("parafac {variant}"), predicted, &cluster.metrics())?;
        }
    }

    #[test]
    fn metered_runs_respect_the_paper_claims(
        di in 4u64..12, dj in 4u64..12, dk in 4u64..12,
        q in 2usize..5, r in 2usize..5,
        n in 10usize..60,
        seed in any::<u64>(),
    ) {
        // End to end: the *claimed* table rows (not just the graphs) bound
        // the metered runs, closing the loop analyzer → plan → engine.
        let mut rng = StdRng::seed_from_u64(seed);
        let dims = [di, dj, dk];
        let x = generic_tensor(dims, n, &mut rng);
        let bt = generic_mat(q, dj as usize, &mut rng);
        let ct = generic_mat(r, dk as usize, &mut rng);
        let env = env_for(dims, x.nnz(), q, r, 4);
        for variant in Variant::ALL {
            let claim = haten2_analyze::paper_claim(Decomp::Tucker, variant);
            let graph = plan_for(Decomp::Tucker, variant);
            let cluster = Cluster::new(ClusterConfig::with_machines(4));
            project(&cluster, variant, &x, 0, &bt, &ct, &ProjectOptions::default()).unwrap();
            let m = cluster.metrics();
            prop_assert_eq!(
                m.total_jobs() as u128,
                claim.total_jobs.eval(&env),
                "tucker {}: job count vs table",
                variant
            );
            // The table's closed-form max-intermediate expression only
            // dominates outside the paper regime via the graph's `max`
            // over jobs (e.g. Naive's tv-c term can exceed nnz + I·J·K
            // when Q ≈ J); the metered run must respect the graph bound,
            // and claim ≡ graph bound on the regime grid is verified by
            // `haten2-analyze`.
            prop_assert!(
                (m.max_intermediate_records() as u128)
                    <= graph.max_intermediate_records().eval(&env),
                "tucker {}: max intermediate {} exceeds derived bound {}",
                variant,
                m.max_intermediate_records(),
                graph.max_intermediate_records().eval(&env)
            );
            // Recovery leg: the certified single-fault recovery bound must
            // dominate the metered run's largest intermediate — losing that
            // dataset costs at least re-materialising it. `env_for` pins a
            // single-fault budget, so `total` is comparable directly.
            let cert = haten2_analyze::certify(&graph, &recovery_for(Decomp::Tucker, variant, 0));
            prop_assert!(
                cert.certified(),
                "tucker {}: pipeline not statically recoverable: {:?}",
                variant,
                cert.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>()
            );
            prop_assert!(
                (m.max_intermediate_records() as u128) <= cert.bound.total.eval(&env),
                "tucker {}: metered max intermediate {} exceeds recovery bound {}",
                variant,
                m.max_intermediate_records(),
                cert.bound.total.eval(&env)
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Communication leg of the cross-check: the metered cluster's total
    /// shuffle bytes equal the symbolic `JobGraph::shuffle_bytes`
    /// prediction exactly for pipelines whose templates are all
    /// exact-marked (both DRN and DRI variants), never exceed it for the
    /// others, and **never fall below the instantiated MTTKRP lower
    /// bound** — the dynamic counterpart of the `## Communication
    /// certification` table in `ANALYSIS.md`.
    #[test]
    fn metered_shuffle_matches_symbolic_and_respects_lower_bound(
        di in 4u64..12, dj in 4u64..12, dk in 4u64..12,
        q in 1usize..5, r in 1usize..5,
        n in 10usize..60,
        machines in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dims = [di, dj, dk];
        let x = generic_tensor(dims, n, &mut rng);
        let bt = generic_mat(q, dj as usize, &mut rng);
        let ct = generic_mat(r, dk as usize, &mut rng);
        let f1 = generic_mat(dj as usize, r, &mut rng);
        let f2 = generic_mat(dk as usize, r, &mut rng);
        for decomp in Decomp::ALL {
            let env = match decomp {
                Decomp::Tucker => env_for(dims, x.nnz(), q, r, machines),
                Decomp::Parafac => env_for(dims, x.nnz(), r, r, machines),
            };
            for variant in Variant::ALL {
                let cluster = Cluster::new(ClusterConfig::with_machines(machines));
                match decomp {
                    Decomp::Tucker => {
                        project(&cluster, variant, &x, 0, &bt, &ct, &ProjectOptions::default())
                            .unwrap();
                    }
                    Decomp::Parafac => {
                        mttkrp(&cluster, variant, &x, 0, &f1, &f2).unwrap();
                    }
                }
                let graph = plan_for(decomp, variant);
                let metered: u128 = cluster
                    .metrics()
                    .jobs
                    .iter()
                    .map(|j| j.shuffle_bytes as u128)
                    .sum();
                let symbolic = graph.shuffle_bytes().eval(&env);
                if graph.shuffle_exact() {
                    prop_assert_eq!(
                        metered, symbolic,
                        "{}: metered total shuffle vs symbolic prediction",
                        &graph.name
                    );
                } else {
                    prop_assert!(
                        metered <= symbolic,
                        "{}: metered shuffle {} exceeds symbolic bound {}",
                        &graph.name, metered, symbolic
                    );
                }
                let bound = haten2_analyze::comm::applicable_bound(
                    &haten2_core::comm_for(decomp, variant),
                )
                .eval(&env);
                prop_assert!(
                    metered >= bound,
                    "{}: metered shuffle {} below the instantiated MTTKRP lower bound {}",
                    &graph.name, metered, bound
                );
            }
        }
    }
}

/// The DRN and DRI pipelines — the ones the communication table marks
/// *exact* and holds to metered equality above — are exactly the graphs
/// whose every template is exact-marked; the claimed closed forms agree
/// with the graphs everywhere on the regime grid (the static half the
/// proptest closes dynamically).
#[test]
fn exact_marked_pipelines_are_the_merge_variants() {
    for decomp in Decomp::ALL {
        for variant in Variant::ALL {
            let graph = plan_for(decomp, variant);
            let expect_exact = matches!(variant, Variant::Drn | Variant::Dri);
            assert_eq!(
                graph.shuffle_exact(),
                expect_exact,
                "{}: unexpected exactness",
                graph.name
            );
            let claim = haten2_analyze::comm::shuffle_claim(decomp, variant);
            let derived = graph.shuffle_bytes();
            for env in haten2_analyze::regime_envs() {
                assert_eq!(
                    derived.eval(&env),
                    claim.eval(&env),
                    "{}: derived shuffle diverges from the closed form",
                    graph.name
                );
            }
        }
    }
}

/// The scheduler's *measured* critical path — the longest dependency
/// chain the DAG scheduler actually executed, reported per batch in
/// [`haten2_mapreduce::BatchReport`] — equals the plan IR's *symbolic*
/// depth (`JobGraph::critical_path_jobs`), the number printed in
/// `ANALYSIS.md`'s "Critical path (jobs)" column. Each projection/MTTKRP
/// call submits exactly one batch, so the report is directly comparable.
#[test]
fn measured_critical_paths_match_symbolic_depths() {
    let mut rng = StdRng::seed_from_u64(7);
    let dims = [6, 5, 4];
    let x = generic_tensor(dims, 30, &mut rng);
    let bt = generic_mat(2, 5, &mut rng);
    let ct = generic_mat(2, 4, &mut rng);
    let f1 = generic_mat(5, 2, &mut rng);
    let f2 = generic_mat(4, 2, &mut rng);
    let env = env_for(dims, x.nnz(), 2, 2, 4);
    for variant in Variant::ALL {
        let cluster = Cluster::new(ClusterConfig::with_machines(4));
        project(
            &cluster,
            variant,
            &x,
            0,
            &bt,
            &ct,
            &ProjectOptions::default(),
        )
        .unwrap();
        let symbolic = plan_for(Decomp::Tucker, variant)
            .critical_path_jobs()
            .eval(&env);
        let reports = cluster.batch_reports();
        assert_eq!(reports.len(), 1, "tucker {variant}: one batch per call");
        assert_eq!(
            reports[0].critical_path_len as u128, symbolic,
            "tucker {variant}: measured critical path vs symbolic depth"
        );
        assert_eq!(
            reports[0].jobs,
            cluster.metrics().total_jobs(),
            "tucker {variant}: every job ran inside the batch"
        );

        let cluster = Cluster::new(ClusterConfig::with_machines(4));
        mttkrp(&cluster, variant, &x, 0, &f1, &f2).unwrap();
        let symbolic = plan_for(Decomp::Parafac, variant)
            .critical_path_jobs()
            .eval(&env);
        let reports = cluster.batch_reports();
        assert_eq!(reports.len(), 1, "parafac {variant}: one batch per call");
        assert_eq!(
            reports[0].critical_path_len as u128, symbolic,
            "parafac {variant}: measured critical path vs symbolic depth"
        );
        assert_eq!(
            reports[0].jobs,
            cluster.metrics().total_jobs(),
            "parafac {variant}: every job ran inside the batch"
        );
    }
}

#[test]
fn recovery_bounds_dominate_static_intermediates() {
    // Static-only closure of the same loop: on every regime env, the
    // worst single-fault recovery cost certified for a pipeline must be
    // at least the pipeline's own max-intermediate bound (re-deriving the
    // largest lost dataset re-emits at least its records), and the total
    // bound must scale linearly in the fault budget `k`.
    for decomp in [Decomp::Tucker, Decomp::Parafac] {
        for variant in Variant::ALL {
            let graph = plan_for(decomp, variant);
            let cert = haten2_analyze::certify(&graph, &recovery_for(decomp, variant, 0));
            assert!(cert.certified(), "{}: {:?}", graph.name, cert.violations);
            for env in haten2_analyze::regime_envs() {
                let worst = cert.bound.per_fault_worst.eval(&env);
                let max_inter = graph.max_intermediate_records().eval(&env);
                assert!(
                    worst >= max_inter,
                    "{}: per-fault recovery bound {worst} below max intermediate {max_inter}",
                    graph.name
                );
                for k in [0u64, 1, 2, 5] {
                    let faulty = haten2_mapreduce::Env { faults: k, ..env };
                    assert_eq!(
                        cert.bound.total.eval(&faulty),
                        (k as u128).saturating_mul(cert.bound.per_fault_worst.eval(&faulty)),
                        "{}: total bound is not k x per-fault worst at k={k}",
                        graph.name
                    );
                }
            }
        }
    }
}

#[test]
fn paper_table_verifies_statically() {
    // The bench harness depends on the verified table; fail fast here if
    // the static verification ever regresses.
    let report = haten2_analyze::verify_paper_table();
    assert!(
        report.ok(),
        "paper-table verification failed: {:?}",
        report
            .violations()
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
    );
}
