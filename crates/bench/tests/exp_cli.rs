//! Smoke tests for the `haten2-exp` experiment binary.

// Test code: `unwrap` is the assertion (allowed by the workspace clippy
// policy only here).
#![allow(clippy::unwrap_used)]

use std::process::Command;

fn exp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_haten2-exp"))
}

#[test]
fn table2_prints_method_matrix() {
    let out = exp().args(["table2"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("Table II"));
    assert!(text.contains("HaTen2-DRI"));
    assert!(text.contains("Yes"));
}

#[test]
fn tiny_cost_tables_run_fast_and_match() {
    let out = exp().args(["table3", "--tiny"]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("Table III"));
    // Measured and analytic job columns are printed for all variants.
    for v in ["HaTen2-Naive", "HaTen2-DNN", "HaTen2-DRN", "HaTen2-DRI"] {
        assert!(text.contains(v), "{v} missing");
    }
}

#[test]
fn unknown_experiment_is_rejected() {
    let out = exp().args(["figzz"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment"));
}

#[test]
fn csv_flag_writes_files() {
    let dir = std::env::temp_dir().join("haten2_exp_cli_csv");
    std::fs::remove_dir_all(&dir).ok();
    let out = exp().args(["table2", "--csv"]).arg(&dir).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let files: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
    assert_eq!(files.len(), 1);
    let content = std::fs::read_to_string(files[0].as_ref().unwrap().path()).unwrap();
    assert!(content.starts_with("Method,"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lemma3_ratios_parse_below_one() {
    let out = exp().args(["lemma3", "--tiny"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("Lemma 3"));
    // Ratio column values are in (0, 1].
    for line in text.lines().skip(3) {
        if let Some(last) = line.split_whitespace().last() {
            if let Ok(ratio) = last.parse::<f64>() {
                assert!(ratio > 0.0 && ratio <= 1.0 + 1e-9, "ratio {ratio}");
            }
        }
    }
}
