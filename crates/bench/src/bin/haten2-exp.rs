//! `haten2-exp` — regenerate any table or figure of the HaTen2 paper.
//!
//! ```text
//! haten2-exp <experiment> [--tiny]
//!
//! experiments:
//!   fig1a fig1b fig1c        Tucker data scalability (Fig. 1)
//!   fig7a fig7b fig7c        PARAFAC data scalability (Fig. 7)
//!   fig8                     machine scalability (Fig. 8)
//!   table2                   method/idea matrix (Table II)
//!   table3 table4            cost summaries, measured vs analytic
//!   table5                   dataset registry (Table V)
//!   table6 table7 table8     concept discovery on the KB stand-in
//!   nell                     supplementary NELL concept discovery
//!   lemma3                   nnz(X ×₂ B) estimate check
//!   ablation                 combiner & job-integration ablations
//!   skew                     uniform vs power-law reduce-side skew
//!   fig5                     per-job dataflow trace per variant (Figs. 5/6)
//!   all                      everything above, in order
//! ```
//!
//! `--tiny` shrinks the sweeps to seconds (useful for smoke tests); the
//! default sizes are the laptop-scale analogues documented in
//! EXPERIMENTS.md.

use haten2_bench::experiments::{self, SweepScale};
use haten2_bench::ExpTable;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let scale = if tiny {
        SweepScale::Tiny
    } else {
        SweepScale::Default
    };
    // Optional: --csv DIR writes each table as a CSV next to printing it.
    let csv_dir: Option<std::path::PathBuf> = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let which = args
        .iter()
        .enumerate()
        .filter(|&(i, a)| {
            !a.starts_with("--")
                && args
                    .get(i.wrapping_sub(1))
                    .is_none_or(|prev| prev != "--csv")
        })
        .map(|(_, a)| a.as_str())
        .next()
        .unwrap_or("all");

    let emit = |t: ExpTable| {
        println!("{t}");
        if let Some(dir) = &csv_dir {
            match t.save_csv(dir) {
                Ok(path) => println!("  (csv: {})", path.display()),
                Err(e) => eprintln!("  csv write failed: {e}"),
            }
        }
    };

    let known = [
        "fig1a", "fig1b", "fig1c", "fig7a", "fig7b", "fig7c", "fig8", "table2", "table3", "table4",
        "table5", "table6", "table7", "table8", "nell", "lemma3", "ablation", "skew", "fig5",
        "all",
    ];
    if !known.contains(&which) {
        eprintln!(
            "unknown experiment '{which}'; expected one of: {}",
            known.join(", ")
        );
        std::process::exit(2);
    }

    let run = |name: &str| which == "all" || which == name;
    let (kb_scale, dims_mid, rank) = if tiny { (1, 12u64, 3usize) } else { (2, 40, 5) };

    if run("table2") {
        emit(experiments::table2_methods());
    }
    if run("table5") {
        emit(experiments::table5_datasets(kb_scale));
    }
    if run("table3") {
        emit(experiments::table3_tucker_costs(
            dims_mid,
            (dims_mid * 10) as usize,
            rank,
            rank,
        ));
    }
    if run("table4") {
        emit(experiments::table4_parafac_costs(
            dims_mid,
            (dims_mid * 10) as usize,
            rank,
        ));
    }
    if run("lemma3") {
        let base = (dims_mid * 5) as usize;
        println!(
            "{}",
            experiments::lemma3_nnz_estimate(dims_mid * 5, rank, &[base, base * 3, base * 10])
        );
    }
    if run("ablation") {
        emit(experiments::ablation(
            dims_mid * 2,
            (dims_mid * 20) as usize,
            rank,
            rank,
        ));
    }
    if run("fig5") {
        emit(experiments::fig5_dataflow_trace(
            dims_mid,
            (dims_mid * 10) as usize,
            rank,
            rank,
        ));
    }
    if run("skew") {
        emit(experiments::skew_ablation(
            dims_mid * 8,
            (dims_mid * 80) as usize,
            rank,
        ));
    }
    if run("fig1a") {
        emit(experiments::fig1a_tucker_dims(scale));
    }
    if run("fig1b") {
        emit(experiments::fig1b_tucker_density(scale));
    }
    if run("fig1c") {
        emit(experiments::fig1c_tucker_core(scale));
    }
    if run("fig7a") {
        emit(experiments::fig7a_parafac_dims(scale));
    }
    if run("fig7b") {
        emit(experiments::fig7b_parafac_density(scale));
    }
    if run("fig7c") {
        emit(experiments::fig7c_parafac_rank(scale));
    }
    if run("fig8") {
        let machines: &[usize] = &[10, 20, 30, 40];
        emit(experiments::fig8_machine_scalability(kb_scale, machines));
    }
    if run("table6") {
        emit(experiments::table6_parafac_concepts(
            kb_scale,
            10.min(rank * 2),
            3,
        ));
    }
    if run("nell") {
        emit(experiments::table_nell_concepts(
            kb_scale,
            10.min(rank * 2),
            3,
        ));
    }
    if run("table7") {
        emit(experiments::table7_tucker_groups(kb_scale, rank, 4));
    }
    if run("table8") {
        emit(experiments::table8_tucker_concepts(kb_scale, rank, 3));
    }
}
