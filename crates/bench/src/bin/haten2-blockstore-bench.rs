//! `haten2-blockstore-bench` — out-of-core sweep over the durable block
//! store at the 10⁷-nnz scale.
//!
//! HaTen2 keeps the tensor on HDFS and every mode-update job re-reads it
//! from disk; memory only has to hold a job's working slice. This bench
//! reproduces that regime on the durable DFS backend: a 10⁷-nnz NELL
//! stand-in (power-law index popularity, KB-shaped dims) is persisted
//! into the block store under a memory budget far below the working set,
//! then a DNN-style sweep (one full-tensor scan per mode update, three
//! modes) runs with every scan fetched through [`haten2_mapreduce::Dfs`]
//! — so each job pays the reload-decode-spill cycle a real Hadoop job
//! pays for its HDFS input split.
//!
//! The same job sequence then runs on the in-memory backend and the two
//! output streams are asserted bit-identical, making the reported
//! slowdown a pure storage-stack price. Reported and cross-checked:
//!
//! * **spill volume** — [`haten2_mapreduce::SpillStats`]: resident drops
//!   and reload traffic forced by the budget;
//! * **read amplification** — durable raw bytes read for the tensor
//!   dataset over its unique raw size, cross-checked against the
//!   analyzer's symbolic floor (`passes · nnz ·`
//!   [`haten2_analyze::tensor_record_bytes`] — the `ANALYSIS.md`
//!   "Durable I/O floor" table);
//! * **wall-clock vs in-memory** — the out-of-core slowdown.
//!
//! ```text
//! haten2-blockstore-bench [--out PATH]   # default: BENCH_blockstore.json
//! haten2-blockstore-bench --smoke        # small gate run, no JSON
//! ```

use haten2_analyze::tensor_record_bytes;
use haten2_core::{persist_tensor, Ix4};
use haten2_data::random::{powerlaw_tensor, RandomTensorConfig};
use haten2_mapreduce::{
    run_job, Cluster, ClusterConfig, DfsBackend, DurableConfig, JobSpec, SpillStats,
};
use haten2_tensor::CooTensor3;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Full-scale workload: 10⁷ nonzeros, KB-shaped (two big entity modes, a
/// small predicate mode — the NELL profile scaled to one host).
const NNZ_FULL: usize = 10_000_000;
const DIMS_FULL: [u64; 3] = [2_000_000, 2_000_000, 400];
/// Power-law skew of the index popularity (1 ≈ Zipf, NELL-like).
const ALPHA: f64 = 1.0;
/// Memory budget for the durable backend: 64 MiB, ~6× below the ~400 MB
/// durable working set, so the tensor can never stay resident.
const BUDGET_FULL: usize = 64 << 20;
const SWEEPS_FULL: usize = 2;

/// Smoke-scale workload for the `scripts/check.sh --durability-smoke`
/// lane: same code path, seconds not minutes.
const NNZ_SMOKE: usize = 200_000;
const DIMS_SMOKE: [u64; 3] = [50_000, 50_000, 64];
const BUDGET_SMOKE: usize = 1 << 20;
const SWEEPS_SMOKE: usize = 1;

const MACHINES: usize = 4;
/// One scan of X per mode update, three modes — the HaTen2-DNN shape
/// (read amplification 3 per sweep; DRI's integrated job would be 1).
const MODES: usize = 3;
/// Reducer key space per mode job: factor rows hashed to partial-sum
/// groups, keeping reduce-group count bounded at any nnz.
const KEY_SPACE: u64 = 4_096;

const TENSOR_KEY: &str = "bench/x";

struct Workload {
    nnz: usize,
    dims: [u64; 3],
    budget: usize,
    sweeps: usize,
}

/// One mode-update job: scan the tensor dataset fetched from `dfs`, key
/// each entry by its mode-`m` index (hashed into [`KEY_SPACE`] groups),
/// sum per group — the shuffle profile of a factor-row partial-sum job.
/// Returns the reduced `(group, sum)` stream, deterministic and
/// bit-comparable across backends.
fn mode_update_job(
    cluster: &Cluster,
    sweep: usize,
    mode: usize,
) -> haten2_mapreduce::Result<Vec<(u64, f64)>> {
    let records = cluster
        .dfs()
        .get_required::<(Ix4, f64)>(&format!("mode-update-s{sweep}-m{mode}"), TENSOR_KEY)?;
    let out = run_job(
        cluster,
        JobSpec::named(format!("mode-update-s{sweep}-m{mode}")).with_map_emit_hint(1),
        &records,
        move |ix: &Ix4, v: &f64, emit| {
            let coord = match mode {
                0 => ix.0,
                1 => ix.1,
                _ => ix.2,
            };
            emit(coord % KEY_SPACE, *v);
        },
        |group, vals, emit| emit(*group, vals.iter().sum::<f64>()),
    )?;
    Ok(out)
}

/// Run `sweeps` DNN-style sweeps; returns the concatenated output stream
/// and the wall-clock of the sweep section (scans + jobs, persist
/// excluded).
fn run_sweeps(
    cluster: &Cluster,
    sweeps: usize,
) -> haten2_mapreduce::Result<(Vec<(u64, f64)>, f64)> {
    let t = Instant::now();
    let mut outputs = Vec::new();
    for sweep in 0..sweeps {
        for mode in 0..MODES {
            outputs.extend(mode_update_job(cluster, sweep, mode)?);
        }
    }
    Ok((outputs, t.elapsed().as_secs_f64()))
}

fn assert_bit_identical(durable: &[(u64, f64)], memory: &[(u64, f64)]) {
    assert_eq!(
        durable.len(),
        memory.len(),
        "output stream lengths diverged across backends"
    );
    for (d, m) in durable.iter().zip(memory) {
        assert_eq!(d.0, m.0, "output group diverged across backends");
        assert_eq!(
            d.1.to_bits(),
            m.1.to_bits(),
            "output value bits diverged across backends at group {}",
            d.0
        );
    }
}

fn generate(w: &Workload) -> CooTensor3 {
    let cfg = RandomTensorConfig {
        dims: w.dims,
        nnz: w.nnz,
        value_range: (0.5, 2.0),
        seed: 0x9e11,
    };
    powerlaw_tensor(&cfg, ALPHA)
}

fn store_dir() -> PathBuf {
    std::env::temp_dir().join(format!("haten2-blockstore-bench-{}", std::process::id()))
}

struct DurableRun {
    outputs: Vec<(u64, f64)>,
    persist_s: f64,
    sweep_s: f64,
    spill: SpillStats,
    tensor_bytes_written: u64,
    tensor_bytes_read: u64,
    stored_bytes_written: u64,
    stored_bytes_read: u64,
    live_bytes: usize,
    resident_bytes: usize,
}

fn run_durable(w: &Workload, x: &CooTensor3, dir: &Path) -> DurableRun {
    let cluster = Cluster::new(ClusterConfig {
        dfs: DfsBackend::Durable(DurableConfig::new(dir).memory_budget(w.budget)),
        ..ClusterConfig::with_machines(MACHINES)
    });
    let t = Instant::now();
    persist_tensor(&cluster, TENSOR_KEY, x).expect("persist tensor into the block store");
    let persist_s = t.elapsed().as_secs_f64();
    let (outputs, sweep_s) = run_sweeps(&cluster, w.sweeps).expect("durable sweep");
    let dfs = cluster.dfs();
    let spill = dfs.spill_stats();
    let io = dfs
        .durable_dataset_io()
        .expect("durable backend meters per-dataset I/O");
    let tensor_io = io
        .get(TENSOR_KEY)
        .copied()
        .expect("tensor dataset is metered");
    let stats = dfs.store_stats().expect("durable backend has store stats");
    DurableRun {
        outputs,
        persist_s,
        sweep_s,
        spill,
        tensor_bytes_written: tensor_io.bytes_written,
        tensor_bytes_read: tensor_io.bytes_read,
        stored_bytes_written: stats.stored_bytes_written,
        stored_bytes_read: stats.stored_bytes_read,
        live_bytes: dfs.live_bytes(),
        resident_bytes: dfs.resident_bytes(),
    }
}

fn run_memory(w: &Workload, x: &CooTensor3) -> (Vec<(u64, f64)>, f64) {
    let cluster = Cluster::new(ClusterConfig::with_machines(MACHINES));
    persist_tensor(&cluster, TENSOR_KEY, x).expect("persist tensor into the memory DFS");
    let (outputs, sweep_s) = run_sweeps(&cluster, w.sweeps).expect("in-memory sweep");
    (outputs, sweep_s)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let w = if smoke {
        Workload {
            nnz: NNZ_SMOKE,
            dims: DIMS_SMOKE,
            budget: BUDGET_SMOKE,
            sweeps: SWEEPS_SMOKE,
        }
    } else {
        Workload {
            nnz: NNZ_FULL,
            dims: DIMS_FULL,
            budget: BUDGET_FULL,
            sweeps: SWEEPS_FULL,
        }
    };
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_blockstore.json".to_string());

    let record_bytes = tensor_record_bytes();
    let tensor_raw_bytes = w.nnz as u64 * record_bytes;
    let passes = (w.sweeps * MODES) as u64;
    eprintln!(
        "blockstore bench: NELL stand-in {}x{}x{}, nnz {} (~{} MB durable), budget {} MiB, \
         {} sweeps x {MODES} scans",
        w.dims[0],
        w.dims[1],
        w.dims[2],
        w.nnz,
        tensor_raw_bytes >> 20,
        w.budget >> 20,
        w.sweeps
    );

    let t = Instant::now();
    let x = generate(&w);
    let gen_s = t.elapsed().as_secs_f64();
    assert_eq!(x.nnz(), w.nnz, "generator fell short of the target nnz");

    let dir = store_dir();
    let _ = std::fs::remove_dir_all(&dir);
    let durable = run_durable(&w, &x, &dir);
    let (mem_outputs, mem_sweep_s) = run_memory(&w, &x);
    let _ = std::fs::remove_dir_all(&dir);

    assert_bit_identical(&durable.outputs, &mem_outputs);

    // The budget is below the working set, so the tensor can never be
    // served resident: every scan must reload from segments, and the
    // dataset's metered reads must sit exactly on the analyzer's
    // passes × nnz × record_bytes floor.
    assert!(
        (w.budget as u64) < tensor_raw_bytes,
        "budget does not force spilling — not an out-of-core run"
    );
    assert!(
        durable.spill.spill_events > 0 && durable.spill.reload_events >= w.sweeps * MODES,
        "spill path not exercised: {:?}",
        durable.spill
    );
    assert!(
        durable.tensor_bytes_read >= passes * tensor_raw_bytes,
        "durable reads {} below the {passes}-pass floor {}",
        durable.tensor_bytes_read,
        passes * tensor_raw_bytes
    );
    let amplification = durable.tensor_bytes_read as f64 / tensor_raw_bytes as f64;
    let slowdown = durable.sweep_s / mem_sweep_s;
    // Fraction of all on-disk bytes shadowed by overwrites/deletes and
    // never reclaimed (the store appends, nothing garbage-collects):
    // observability for a future compaction pass, not a gate.
    let dead_bytes_ratio =
        durable.spill.dead_stored_bytes as f64 / (durable.stored_bytes_written.max(1)) as f64;

    eprintln!(
        "durable sweep {:.2}s vs in-memory {:.2}s ({slowdown:.2}x); \
         spill {} events / {} MB, reload {} events / {} MB; \
         read amplification {amplification:.2} (floor {passes})",
        durable.sweep_s,
        mem_sweep_s,
        durable.spill.spill_events,
        durable.spill.spilled_bytes >> 20,
        durable.spill.reload_events,
        durable.spill.reloaded_bytes >> 20,
    );

    if smoke {
        eprintln!("blockstore smoke: OK (outputs bit-identical across backends)");
        return;
    }

    let json = format!(
        "{{\n  \"benchmark\": \"blockstore-out-of-core\",\n  \"workload\": {{\n    \"dataset\": \"nell-standin-powerlaw\",\n    \"dims\": [{}, {}, {}],\n    \"nnz\": {},\n    \"alpha\": {ALPHA:.1},\n    \"record_bytes\": {record_bytes},\n    \"tensor_raw_bytes\": {tensor_raw_bytes},\n    \"generate_s\": {gen_s:.3}\n  }},\n  \"config\": {{\n    \"machines\": {MACHINES},\n    \"memory_budget_bytes\": {},\n    \"sweeps\": {},\n    \"scans_per_sweep\": {MODES},\n    \"modeled_pipeline\": \"dnn-style: one full-tensor scan per mode update (dri would be 1 per sweep)\"\n  }},\n  \"durable\": {{\n    \"persist_s\": {:.3},\n    \"sweep_wall_s\": {:.3},\n    \"spill_events\": {},\n    \"spilled_bytes\": {},\n    \"reload_events\": {},\n    \"reloaded_bytes\": {},\n    \"tensor_bytes_written\": {},\n    \"tensor_bytes_read\": {},\n    \"stored_bytes_written\": {},\n    \"stored_bytes_read\": {},\n    \"dead_stored_bytes\": {},\n    \"dead_bytes_ratio\": {dead_bytes_ratio:.4},\n    \"codec\": \"zero-rle\",\n    \"live_bytes\": {},\n    \"resident_bytes_after\": {}\n  }},\n  \"in_memory\": {{ \"sweep_wall_s\": {:.3} }},\n  \"read_amplification\": {{\n    \"measured\": {amplification:.3},\n    \"passes\": {passes},\n    \"floor_bytes_per_pass\": {tensor_raw_bytes},\n    \"cross_check\": \"tensor_bytes_read >= passes x nnz x record_bytes, the ANALYSIS.md durable I/O floor (asserted)\"\n  }},\n  \"slowdown_vs_in_memory\": {slowdown:.3},\n  \"outputs\": \"bit-identical across backends (asserted)\",\n  \"timing\": \"single rep; sweep wall-clock excludes generation and the initial persist\"\n}}\n",
        w.dims[0],
        w.dims[1],
        w.dims[2],
        w.nnz,
        w.budget,
        w.sweeps,
        durable.persist_s,
        durable.sweep_s,
        durable.spill.spill_events,
        durable.spill.spilled_bytes,
        durable.spill.reload_events,
        durable.spill.reloaded_bytes,
        durable.tensor_bytes_written,
        durable.tensor_bytes_read,
        durable.stored_bytes_written,
        durable.stored_bytes_read,
        durable.spill.dead_stored_bytes,
        durable.live_bytes,
        durable.resident_bytes,
        mem_sweep_s,
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
