//! `haten2-engine-bench` — microbenchmark of the MapReduce engine rework.
//!
//! Runs the same shuffle-heavy job mix on the pre-optimization executor
//! (`haten2_bench::seed_engine`, per-job thread spawning + SipHash
//! partitioning + per-record shuffle + full reduce-side sort) and on the
//! current pooled engine, then reports the wall-clock speedup:
//!
//! * **dri-projection** — an IMHP-shaped Tucker projection job: I = 10⁴,
//!   nnz = 10⁵, each entry emitted twice under factor-row keys; the job
//!   class whose shuffle dominates HaTen2-DRI iterations.
//! * **small-jobs** — 300 tiny word-count-style jobs, the per-job-overhead
//!   regime a full decomposition spends most of its job *count* in.
//! * **dag_speedup** — the Naive-Tucker projection sweep (`Q` independent
//!   Bind jobs, then `R` independent Mult jobs) run once under
//!   `SchedulerMode::Sequential` and once under `SchedulerMode::Dag` at
//!   8 threads. Outputs and per-job metrics are asserted bit-identical;
//!   the reported speedup is `sim_sequential_s / sim_makespan_s` from the
//!   scheduler's [`BatchReport`] — the simulated-cluster makespan ratio,
//!   deterministic and independent of host core count — and must be ≥ 2x.
//!
//! * **skew** — the same DRI MTTKRP on a uniform and on a power-law
//!   tensor of identical nnz, run with the runtime `heavy-key-split`
//!   rewrite forced on (`RewritePolicy::Always`) under the DAG scheduler's
//!   LPT dispatch. The power-law tensor inflates the heaviest reduce group
//!   ~18x (the straggler the rewrite targets); the gate is the *host
//!   wall-clock* makespan ratio skewed/uniform ≤ 1.2x, with the rewritten
//!   plan's output asserted bit-identical to the unrewritten Sequential
//!   oracle. (The simulated cost model charges the whole heavy group to
//!   one split job by design, so the win is only visible in host time.)
//!
//! ```text
//! haten2-engine-bench [--out PATH]   # default: BENCH_engine.json
//! haten2-engine-bench --dag-smoke    # dag_speedup equivalence+speedup only
//! haten2-engine-bench --perf-smoke   # CI gate: dag host speedup + overhead
//! haten2-engine-bench --skew-smoke   # CI gate: skew ratio + bit-identity
//! ```
//!
//! Both engines run the identical inputs; aggregate metrics are asserted
//! equal before timing is trusted. Wall times are the minimum of [`REPS`]
//! measured repetitions after one warm-up, minimizing scheduler noise;
//! the median and standard deviation across the measured reps are also
//! reported so noisy runs are visible in the JSON. The seed engine is
//! measured in its own blocked pass (comparable with the baselines of
//! earlier revisions); the pooled and no-op-fault mixes are interleaved
//! round-robin and their overhead ratio is the median of per-round paired
//! ratios, which cancels host load spikes. Engines that run on a
//! [`Cluster`] additionally report `bytes_allocated` — the cluster's
//! allocation-proxy high-water total (arena reservations plus spill
//! copies), a scheduler-noise-free measure of shuffle allocation traffic.

use haten2_bench::seed_engine::run_job_seed;
use haten2_core::tucker::{project, ProjectOptions};
use haten2_core::{parafac, Variant};
use haten2_data::random::{powerlaw_tensor, random_tensor, RandomTensorConfig};
use haten2_linalg::Mat;
use haten2_mapreduce::{
    run_job, BatchReport, Cluster, ClusterConfig, FaultPlan, JobMetrics, JobSpec, RewritePolicy,
    SchedulerMode,
};
use haten2_tensor::{CooTensor3, Entry3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const DIM_I: u64 = 10_000;
const NNZ: usize = 100_000;
const RANK: usize = 10;
const SMALL_JOBS: usize = 300;
const SMALL_RECORDS: usize = 200;
const REPS: usize = 9;

/// dag_speedup workload: Naive-Tucker sweep shape. `Q = R = DAG_RANK`
/// gives `2·DAG_RANK` jobs at critical-path depth 2, so the simulated
/// 8-thread makespan ratio approaches `DAG_RANK` — far above the asserted
/// 2x floor.
const DAG_DIM: u64 = 24;
const DAG_NNZ: usize = 4_000;
const DAG_RANK: usize = 8;
const DAG_THREADS: usize = 8;
const DAG_MACHINES: usize = 2;

type Entry = ((u64, u64, u64), f64);

fn projection_input(seed: u64) -> Vec<((), Entry)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..NNZ)
        .map(|_| {
            let ix = (
                rng.gen_range(0..DIM_I),
                rng.gen_range(0..DIM_I),
                rng.gen_range(0..DIM_I),
            );
            ((), (ix, rng.gen_range(0.5..2.0)))
        })
        .collect()
}

fn small_job_input(job: u64) -> Vec<(u64, u64)> {
    (0..SMALL_RECORDS as u64)
        .map(|i| (i, (i * 31 + job) % 17))
        .collect()
}

/// The IMHP-shaped mapper: each entry emitted once per joined mode, keyed
/// by (side, index) like the DRI Tucker projection job.
fn projection_mapper(_: &(), e: &Entry, emit: &mut dyn FnMut((u8, u64), Entry)) {
    let (ix, _) = e;
    emit((0, ix.1 % (RANK as u64 * 64)), *e);
    emit((1, ix.2 % (RANK as u64 * 64)), *e);
}

fn projection_reducer(key: &(u8, u64), vals: Vec<Entry>, emit: &mut dyn FnMut((u8, u64), f64)) {
    emit(*key, vals.iter().map(|(_, v)| v).sum());
}

fn small_mapper(k: &u64, v: &u64, emit: &mut dyn FnMut(u64, u64)) {
    emit(k % 13, *v);
}

fn small_reducer(k: &u64, vals: Vec<u64>, emit: &mut dyn FnMut(u64, u64)) {
    emit(*k, vals.iter().sum());
}

struct MixResult {
    projection_s: f64,
    small_jobs_s: f64,
    metrics_fingerprint: (usize, usize, usize, usize),
    /// (task retries, speculative launches, recovery sim-seconds) — all
    /// zero unless the config carries an injecting fault plan.
    recovery: (usize, usize, f64),
    /// Allocation-proxy bytes charged against the cluster over the mix
    /// (`None` for the seed engine, which runs without a [`Cluster`]).
    alloc_bytes: Option<usize>,
}

/// Spread statistics over the measured (post-warm-up) repetitions of one
/// mix. The headline time stays the minimum; these make run-to-run noise
/// visible without changing what is compared.
struct Spread {
    median_s: f64,
    stddev_s: f64,
}

fn spread_of(totals: &[f64]) -> Spread {
    let mut sorted = totals.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    let median_s = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    };
    let mean = totals.iter().sum::<f64>() / n as f64;
    let var = totals.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / n as f64;
    Spread {
        median_s,
        stddev_s: var.sqrt(),
    }
}

/// Render `Option<usize>` as a JSON number-or-null.
fn json_opt(v: Option<usize>) -> String {
    v.map_or_else(|| "null".to_string(), |b| b.to_string())
}

fn fingerprint(acc: &mut (usize, usize, usize, usize), m: &JobMetrics) {
    acc.0 += m.map_output_records;
    acc.1 += m.map_output_bytes;
    acc.2 += m.shuffle_bytes;
    acc.3 += m.reduce_groups;
}

fn run_seed_mix(cfg: &ClusterConfig) -> MixResult {
    let mut fp = (0, 0, 0, 0);
    let input = projection_input(7);
    let t = Instant::now();
    let (_, m) = run_job_seed(
        cfg,
        "dri-projection",
        None,
        &input,
        projection_mapper,
        projection_reducer,
    )
    .expect("projection job");
    let projection_s = t.elapsed().as_secs_f64();
    fingerprint(&mut fp, &m);

    let t = Instant::now();
    for j in 0..SMALL_JOBS {
        let input = small_job_input(j as u64);
        let (_, m) = run_job_seed(cfg, "small", None, &input, small_mapper, small_reducer)
            .expect("small job");
        fingerprint(&mut fp, &m);
    }
    let small_jobs_s = t.elapsed().as_secs_f64();
    MixResult {
        projection_s,
        small_jobs_s,
        metrics_fingerprint: fp,
        recovery: (0, 0, 0.0),
        alloc_bytes: None,
    }
}

fn run_pooled_mix(cfg: &ClusterConfig) -> MixResult {
    let mut fp = (0, 0, 0, 0);
    // One cluster for the whole mix: the pool is spawned once and reused,
    // exactly how decomposition drivers use the engine.
    let cluster = Cluster::new(cfg.clone());
    let input = projection_input(7);
    let t = Instant::now();
    run_job(
        &cluster,
        JobSpec::named("dri-projection").with_map_emit_hint(2),
        &input,
        projection_mapper,
        projection_reducer,
    )
    .expect("projection job");
    let projection_s = t.elapsed().as_secs_f64();
    fingerprint(&mut fp, &cluster.metrics().jobs[0]);

    let mark = cluster.jobs_run();
    let t = Instant::now();
    for j in 0..SMALL_JOBS {
        let input = small_job_input(j as u64);
        run_job(
            &cluster,
            JobSpec::named("small").with_map_emit_hint(1),
            &input,
            small_mapper,
            small_reducer,
        )
        .expect("small job");
    }
    let small_jobs_s = t.elapsed().as_secs_f64();
    for m in &cluster.metrics_since(mark).jobs {
        fingerprint(&mut fp, m);
    }
    let all = cluster.metrics();
    MixResult {
        projection_s,
        small_jobs_s,
        metrics_fingerprint: fp,
        recovery: (
            all.total_task_retries(),
            all.total_speculative_launched(),
            all.total_recovery_sim_time_s(),
        ),
        alloc_bytes: Some(cluster.alloc_proxy_bytes()),
    }
}

/// Run every mix once per round, back to back, for [`REPS`] measured
/// rounds after one warm-up round. Interleaving matters on shared hosts: a
/// transient load spike then inflates the same round of *every* mix
/// instead of poisoning one mix's entire sample, so ratios between mixes
/// (speedup, overhead) stay honest. Returns `(best, spread)` per mix, in
/// input order.
struct MixMeasurement {
    best: MixResult,
    spread: Spread,
    /// Per-round totals, index-aligned across the mixes of one
    /// `measure_interleaved` call — the basis for paired ratios.
    totals: Vec<f64>,
}

fn measure_interleaved(mut mixes: Vec<Box<dyn FnMut() -> MixResult + '_>>) -> Vec<MixMeasurement> {
    for m in &mut mixes {
        let _ = m();
    }
    let mut all: Vec<Vec<MixResult>> = (0..mixes.len()).map(|_| Vec::with_capacity(REPS)).collect();
    for _ in 0..REPS {
        for (i, m) in mixes.iter_mut().enumerate() {
            all[i].push(m());
        }
    }
    all.into_iter()
        .map(|runs| {
            for r in &runs[1..] {
                assert_eq!(
                    r.metrics_fingerprint, runs[0].metrics_fingerprint,
                    "nondeterministic metrics"
                );
                assert_eq!(
                    r.alloc_bytes, runs[0].alloc_bytes,
                    "nondeterministic allocation proxy"
                );
            }
            let totals: Vec<f64> = runs
                .iter()
                .map(|r| r.projection_s + r.small_jobs_s)
                .collect();
            let spread = spread_of(&totals);
            let best = runs
                .into_iter()
                .min_by(|a, b| {
                    (a.projection_s + a.small_jobs_s).total_cmp(&(b.projection_s + b.small_jobs_s))
                })
                .expect("at least one rep");
            MixMeasurement {
                best,
                spread,
                totals,
            }
        })
        .collect()
}

/// Median of the index-paired `num[i] / den[i]` ratios. Each pair ran back
/// to back in one interleaved round, so a host load spike inflates both
/// sides of its round and cancels in the ratio — far more robust on a
/// shared machine than dividing two independently-taken minima.
fn median_paired_ratio(num: &[f64], den: &[f64]) -> f64 {
    let ratios: Vec<f64> = num.iter().zip(den).map(|(n, d)| n / d).collect();
    spread_of(&ratios).median_s
}

// ---- dag_speedup: Naive-Tucker sweep, Sequential vs Dag -----------------

fn dag_tensor(nnz: usize) -> CooTensor3 {
    let mut rng = StdRng::seed_from_u64(42);
    let entries = (0..nnz)
        .map(|_| {
            Entry3::new(
                rng.gen_range(0..DAG_DIM),
                rng.gen_range(0..DAG_DIM),
                rng.gen_range(0..DAG_DIM),
                rng.gen_range(0.5..2.0),
            )
        })
        .collect();
    CooTensor3::from_entries([DAG_DIM; 3], entries).expect("valid dag tensor")
}

fn dag_factor(rows: usize, cols: usize, seed: u64) -> Mat {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<Vec<f64>> = (0..rows)
        .map(|_| (0..cols).map(|_| rng.gen_range(0.5..2.0)).collect())
        .collect();
    Mat::from_rows(&data).expect("valid factor")
}

struct SweepRun {
    out: CooTensor3,
    /// Per-job metrics with the host-time fields zeroed (the only fields
    /// allowed to differ between scheduler modes).
    jobs: Vec<JobMetrics>,
    report: BatchReport,
    wall_s: f64,
}

fn run_naive_sweep(mode: SchedulerMode, x: &CooTensor3, bt: &Mat, ct: &Mat) -> SweepRun {
    let cluster = Cluster::new(ClusterConfig {
        scheduler: mode,
        threads: DAG_THREADS,
        ..ClusterConfig::with_machines(DAG_MACHINES)
    });
    let t = Instant::now();
    let out = project(
        &cluster,
        Variant::Naive,
        x,
        0,
        bt,
        ct,
        &ProjectOptions::default(),
    )
    .expect("naive sweep");
    let wall_s = t.elapsed().as_secs_f64();
    let jobs = cluster
        .metrics()
        .jobs
        .into_iter()
        .map(|mut m| {
            m.wall_time_s = 0.0;
            m.started_s = 0.0;
            m.finished_s = 0.0;
            m
        })
        .collect();
    let reports = cluster.batch_reports();
    assert_eq!(reports.len(), 1, "dag_speedup: one batch per sweep");
    SweepRun {
        out,
        jobs,
        report: reports[0].clone(),
        wall_s,
    }
}

fn assert_bit_identical(a: &CooTensor3, b: &CooTensor3) {
    assert_eq!(a.dims(), b.dims(), "dag_speedup: output dims differ");
    assert_eq!(a.nnz(), b.nnz(), "dag_speedup: output nnz differs");
    for (ea, eb) in a.entries().iter().zip(b.entries()) {
        assert_eq!(
            (ea.i, ea.j, ea.k),
            (eb.i, eb.j, eb.k),
            "dag_speedup: output index differs"
        );
        assert_eq!(
            ea.v.to_bits(),
            eb.v.to_bits(),
            "dag_speedup: output value bits differ at ({}, {}, {})",
            ea.i,
            ea.j,
            ea.k
        );
    }
}

struct DagSpeedup {
    sequential_wall_s: f64,
    dag_wall_s: f64,
    host_speedup: f64,
    sim_sequential_s: f64,
    sim_makespan_s: f64,
    sim_speedup: f64,
    jobs: usize,
    critical_path_len: usize,
    /// Host concurrency/load observability from the DAG-mode run: peak
    /// in-flight jobs, per-worker busy seconds, heaviest reduce group.
    peak_concurrency: usize,
    worker_busy_s: Vec<f64>,
    heaviest_group_bytes: usize,
}

/// Run the Naive-Tucker sweep under both scheduler modes, assert the DAG
/// mode changes nothing — outputs bit-identical, per-job metrics equal
/// with host times zeroed, same batch structure and simulated schedule —
/// and return the speedup numbers. The asserted figure is the simulated
/// makespan ratio at [`DAG_THREADS`] threads; host wall times are
/// reported for reference but not asserted (this may run on one core).
fn run_dag_speedup(nnz: usize) -> DagSpeedup {
    let x = dag_tensor(nnz);
    let bt = dag_factor(DAG_RANK, DAG_DIM as usize, 1);
    let ct = dag_factor(DAG_RANK, DAG_DIM as usize, 2);

    let mut seq = run_naive_sweep(SchedulerMode::Sequential, &x, &bt, &ct);
    let mut dag = run_naive_sweep(SchedulerMode::Dag, &x, &bt, &ct);
    assert_bit_identical(&seq.out, &dag.out);
    assert_eq!(seq.jobs, dag.jobs, "dag_speedup: per-job metrics diverged");
    // The deterministic (non-host-time) batch fields must agree exactly;
    // wall_s / busy_s / critical_path_s / peak_concurrency are host
    // measurements and differ between modes by design.
    assert_eq!(
        (seq.report.jobs, seq.report.critical_path_len),
        (dag.report.jobs, dag.report.critical_path_len),
        "dag_speedup: batch structure diverged"
    );
    assert_eq!(
        (
            seq.report.sim_sequential_s.to_bits(),
            seq.report.sim_makespan_s.to_bits()
        ),
        (
            dag.report.sim_sequential_s.to_bits(),
            dag.report.sim_makespan_s.to_bits()
        ),
        "dag_speedup: simulated schedule diverged across modes"
    );
    for _ in 1..REPS {
        let s = run_naive_sweep(SchedulerMode::Sequential, &x, &bt, &ct);
        let d = run_naive_sweep(SchedulerMode::Dag, &x, &bt, &ct);
        assert_bit_identical(&seq.out, &s.out);
        assert_bit_identical(&seq.out, &d.out);
        assert_eq!(seq.jobs, d.jobs, "dag_speedup: nondeterministic metrics");
        if s.wall_s < seq.wall_s {
            seq.wall_s = s.wall_s;
        }
        if d.wall_s < dag.wall_s {
            dag.wall_s = d.wall_s;
        }
    }

    let sim_speedup = dag.report.sim_sequential_s / dag.report.sim_makespan_s;
    assert!(
        sim_speedup >= 2.0,
        "dag_speedup: simulated speedup {sim_speedup:.2}x below the 2x target \
         (sequential {:.6}s, makespan {:.6}s)",
        dag.report.sim_sequential_s,
        dag.report.sim_makespan_s
    );
    DagSpeedup {
        sequential_wall_s: seq.wall_s,
        dag_wall_s: dag.wall_s,
        host_speedup: seq.wall_s / dag.wall_s,
        sim_sequential_s: dag.report.sim_sequential_s,
        sim_makespan_s: dag.report.sim_makespan_s,
        sim_speedup,
        jobs: dag.report.jobs,
        critical_path_len: dag.report.critical_path_len,
        peak_concurrency: dag.report.peak_concurrency,
        worker_busy_s: dag.report.worker_busy_s.clone(),
        heaviest_group_bytes: dag.report.heaviest_group_bytes,
    }
}

// ---- skew: uniform vs power-law DRI MTTKRP under the runtime rewrite ----

/// skew workload shape: cubic I=200 tensors at equal nnz, DRI MTTKRP at
/// rank 8 on an 8-machine cluster — the regime where the power-law
/// tensor's heaviest reduce group inflates ~18x over uniform.
const SKEW_DIM: u64 = 200;
const SKEW_NNZ: usize = 50_000;
const SKEW_RANK: usize = 8;
const SKEW_MACHINES: usize = 8;

fn skew_cluster(rewrite: RewritePolicy, scheduler: SchedulerMode) -> Cluster {
    Cluster::new(ClusterConfig {
        scheduler,
        threads: DAG_THREADS,
        rewrite,
        ..ClusterConfig::with_machines(SKEW_MACHINES)
    })
}

fn mttkrp_bits(cluster: &Cluster, x: &CooTensor3, f1: &Mat, f2: &Mat) -> Vec<u64> {
    let m = parafac::mttkrp(cluster, Variant::Dri, x, 0, f1, f2).expect("skew: mttkrp");
    m.data().iter().map(|v| v.to_bits()).collect()
}

struct SkewBench {
    jobs: usize,
    uniform_wall_s: f64,
    skewed_wall_s: f64,
    /// Median of per-round paired skewed/uniform host makespan ratios.
    makespan_ratio: f64,
    uniform_heaviest_group_bytes: usize,
    skewed_heaviest_group_bytes: usize,
    peak_concurrency: usize,
    worker_busy_s: Vec<f64>,
}

/// Run the skew pair: assert the rewritten plan's bits against the
/// unrewritten Sequential oracle, then measure host wall-clock makespans
/// of the rewritten DRI MTTKRP on uniform vs power-law tensors of equal
/// nnz, interleaved round-robin so the paired ratio cancels host noise.
fn run_skew(nnz: usize) -> SkewBench {
    let cfg = RandomTensorConfig::cubic(SKEW_DIM, nnz, 0xab2);
    let uniform = random_tensor(&cfg);
    let skewed = powerlaw_tensor(&cfg, 1.0);
    let f1 = dag_factor(SKEW_DIM as usize, SKEW_RANK, 11);
    let f2 = dag_factor(SKEW_DIM as usize, SKEW_RANK, 12);

    // Bit-identity on the skewed tensor — the case the rewrite exists for:
    // rewritten plan on the DAG scheduler vs the unrewritten Sequential
    // oracle, compared as raw bits.
    let oracle = mttkrp_bits(
        &skew_cluster(RewritePolicy::Off, SchedulerMode::Sequential),
        &skewed,
        &f1,
        &f2,
    );
    let rewritten = skew_cluster(RewritePolicy::Always, SchedulerMode::Dag);
    let bits = mttkrp_bits(&rewritten, &skewed, &f1, &f2);
    assert_eq!(
        bits, oracle,
        "skew: heavy-key-split changed the MTTKRP bits"
    );
    let reports = rewritten.batch_reports();
    let report = reports.last().expect("skew: batch report");
    assert!(
        report.jobs > 2,
        "skew: the heavy-key-split rewrite did not fire ({} jobs)",
        report.jobs
    );

    // Host makespans, interleaved: one warm-up round, then REPS measured
    // rounds of (uniform, skewed) back to back on fresh clusters.
    let mut uni_totals = Vec::with_capacity(REPS);
    let mut skw_totals = Vec::with_capacity(REPS);
    let mut last_reports: Option<(BatchReport, BatchReport)> = None;
    for rep in 0..=REPS {
        let cu = skew_cluster(RewritePolicy::Always, SchedulerMode::Dag);
        let t = Instant::now();
        parafac::mttkrp(&cu, Variant::Dri, &uniform, 0, &f1, &f2).expect("skew: uniform mttkrp");
        let u = t.elapsed().as_secs_f64();
        let cs = skew_cluster(RewritePolicy::Always, SchedulerMode::Dag);
        let t = Instant::now();
        parafac::mttkrp(&cs, Variant::Dri, &skewed, 0, &f1, &f2).expect("skew: skewed mttkrp");
        let s = t.elapsed().as_secs_f64();
        if rep == 0 {
            continue;
        }
        uni_totals.push(u);
        skw_totals.push(s);
        last_reports = Some((
            cu.batch_reports().last().expect("uniform report").clone(),
            cs.batch_reports().last().expect("skewed report").clone(),
        ));
    }
    let (uni_report, skw_report) = last_reports.expect("at least one measured rep");
    SkewBench {
        jobs: skw_report.jobs,
        uniform_wall_s: spread_of(&uni_totals).median_s,
        skewed_wall_s: spread_of(&skw_totals).median_s,
        makespan_ratio: median_paired_ratio(&skw_totals, &uni_totals),
        uniform_heaviest_group_bytes: uni_report.heaviest_group_bytes,
        skewed_heaviest_group_bytes: skw_report.heaviest_group_bytes,
        peak_concurrency: skw_report.peak_concurrency,
        worker_busy_s: skw_report.worker_busy_s,
    }
}

/// Render a `&[f64]` as a JSON array with fixed precision.
fn json_f64_array(xs: &[f64]) -> String {
    let cells: Vec<String> = xs.iter().map(|x| format!("{x:.6}")).collect();
    format!("[{}]", cells.join(", "))
}

fn main() {
    // Measured builds must not carry the dynamic race detector: the chaos
    // harness turns the `race-detect` feature on for its own dependency
    // tree, and feature unification must never leak it into this binary's.
    assert!(
        !haten2_mapreduce::race_detector_compiled(),
        "engine bench built with the race-detect feature — timings would \
         include detector bookkeeping; run via `cargo run -p haten2-bench`"
    );
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--dag-smoke") {
        // Small-input smoke for scripts/check.sh: the full equivalence
        // assertions and the 2x target, without the seed-engine mix and
        // without touching BENCH_engine.json.
        let d = run_dag_speedup(DAG_NNZ / 5);
        eprintln!(
            "dag_speedup smoke: {} jobs, critical path {}, simulated speedup {:.2}x \
             (sequential {:.4}s vs makespan {:.4}s at {DAG_THREADS} threads); outputs bit-identical",
            d.jobs, d.critical_path_len, d.sim_speedup, d.sim_sequential_s, d.sim_makespan_s
        );
        return;
    }
    if args.iter().any(|a| a == "--perf-smoke") {
        // CI perf gate for scripts/check.sh: the DAG scheduler must not be
        // slower than Sequential on the host (whatever the core count),
        // and the fault-free overhead of the recovery machinery must stay
        // under 5%. Exits nonzero on regression instead of writing JSON.
        let cfg = ClusterConfig::default();
        let noop_cfg = ClusterConfig {
            fault_plan: Some(FaultPlan::noop()),
            ..cfg.clone()
        };
        let mut results = measure_interleaved(vec![
            Box::new(|| run_pooled_mix(&cfg)),
            Box::new(|| run_pooled_mix(&noop_cfg)),
        ]);
        let noop = results.pop().expect("noop mix measured");
        let pooled = results.pop().expect("pooled mix measured");
        assert_eq!(
            noop.best.metrics_fingerprint, pooled.best.metrics_fingerprint,
            "perf-smoke: a no-op fault plan changed the metrics"
        );
        let overhead_pct = (median_paired_ratio(&noop.totals, &pooled.totals) - 1.0) * 100.0;
        let d = run_dag_speedup(DAG_NNZ);
        eprintln!(
            "perf-smoke: dag host_wall_speedup {:.3}x (sequential {:.4}s vs dag {:.4}s), \
             fault-free overhead {overhead_pct:.2}%",
            d.host_speedup, d.sequential_wall_s, d.dag_wall_s
        );
        let mut failed = false;
        if d.host_speedup < 1.0 {
            eprintln!(
                "perf-smoke FAIL: dag host_wall_speedup {:.3}x < 1.0 — the DAG scheduler \
                 is slower than Sequential on this host",
                d.host_speedup
            );
            failed = true;
        }
        if overhead_pct > 5.0 {
            eprintln!("perf-smoke FAIL: fault-free recovery overhead {overhead_pct:.2}% > 5%");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("perf-smoke: OK");
        return;
    }
    if args.iter().any(|a| a == "--skew-smoke") {
        // CI skew gate for scripts/check.sh: the rewritten DRI MTTKRP's
        // host makespan on a power-law tensor must stay within 1.2x of the
        // uniform tensor at equal nnz, and the rewritten plan's output
        // must be bit-identical to the unrewritten Sequential oracle
        // (asserted inside run_skew). Smaller input than the JSON run;
        // exits nonzero on regression.
        let s = run_skew(SKEW_NNZ / 5);
        eprintln!(
            "skew smoke: makespan ratio {:.3}x (uniform {:.4}s vs power-law {:.4}s, medians of \
             {REPS} paired rounds); heaviest group {} vs {} bytes; {} jobs; outputs bit-identical",
            s.makespan_ratio,
            s.uniform_wall_s,
            s.skewed_wall_s,
            s.uniform_heaviest_group_bytes,
            s.skewed_heaviest_group_bytes,
            s.jobs
        );
        if s.makespan_ratio > 1.2 {
            eprintln!(
                "skew smoke FAIL: skewed/uniform makespan ratio {:.3}x > 1.2x — the \
                 heavy-key-split rewrite is not containing the straggler",
                s.makespan_ratio
            );
            std::process::exit(1);
        }
        eprintln!("skew-smoke: OK");
        return;
    }
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    let cfg = ClusterConfig::default();
    eprintln!(
        "engine bench: machines={} reducers={} threads={} (I={DIM_I}, nnz={NNZ}, {SMALL_JOBS} small jobs)",
        cfg.machines,
        cfg.num_reducers(),
        cfg.threads
    );

    // Fault-free overhead of the recovery machinery: the same mix with a
    // no-op FaultPlan installed. Schedule expansion and fault accounting
    // run on every job but inject nothing, so any wall-clock delta is the
    // price of *having* the subsystem.
    let noop_cfg = ClusterConfig {
        fault_plan: Some(FaultPlan::noop()),
        ..cfg.clone()
    };
    // The seed engine runs blocked (alone), keeping its minimum comparable
    // with the baselines recorded by earlier revisions of this file:
    // interleaving foreign engines was measured to depress both minima via
    // cache pollution. The pooled and no-op mixes are the *same* engine on
    // the same data, so they interleave without polluting each other and
    // their paired-per-round ratio isolates the fault-machinery overhead.
    let seed_m = measure_interleaved(vec![Box::new(|| run_seed_mix(&cfg))])
        .pop()
        .expect("seed mix measured");
    let mut results = measure_interleaved(vec![
        Box::new(|| run_pooled_mix(&cfg)),
        Box::new(|| run_pooled_mix(&noop_cfg)),
    ]);
    let noop_m = results.pop().expect("noop mix measured");
    let pooled_m = results.pop().expect("pooled mix measured");
    let (noop, noop_spread) = (noop_m.best, noop_m.spread);
    let (pooled, pooled_spread) = (pooled_m.best, pooled_m.spread);
    let (seed, seed_spread) = (seed_m.best, seed_m.spread);
    assert_eq!(
        seed.metrics_fingerprint, pooled.metrics_fingerprint,
        "engines disagree on aggregate metrics — do not trust this benchmark"
    );
    assert_eq!(
        noop.metrics_fingerprint, pooled.metrics_fingerprint,
        "a no-op fault plan changed the metrics"
    );
    assert_eq!(
        noop.recovery,
        (0, 0, 0.0),
        "a no-op fault plan injected recovery work"
    );

    let seed_total = seed.projection_s + seed.small_jobs_s;
    let pooled_total = pooled.projection_s + pooled.small_jobs_s;
    let noop_total = noop.projection_s + noop.small_jobs_s;
    // Speedup is the historical ratio of blocked minima; the overhead
    // ratio comes from paired per-round measurements of the interleaved
    // pooled/no-op pair (see `median_paired_ratio`).
    let speedup = seed_total / pooled_total;
    let fault_free_overhead_pct =
        (median_paired_ratio(&noop_m.totals, &pooled_m.totals) - 1.0) * 100.0;

    eprintln!("dag_speedup: Naive-Tucker sweep, Q=R={DAG_RANK}, {DAG_THREADS} threads");
    let dag = run_dag_speedup(DAG_NNZ);
    eprintln!(
        "skew: DRI MTTKRP uniform vs power-law, I={SKEW_DIM}, nnz={SKEW_NNZ}, \
         R={SKEW_RANK}, {SKEW_MACHINES} machines, rewrite forced on"
    );
    let skew = run_skew(SKEW_NNZ);

    let json = format!(
        "{{\n  \"benchmark\": \"mapreduce-engine\",\n  \"workload\": {{\n    \"dri_projection\": {{ \"dim_i\": {DIM_I}, \"nnz\": {NNZ}, \"emits_per_entry\": 2 }},\n    \"small_jobs\": {{ \"jobs\": {SMALL_JOBS}, \"records_per_job\": {SMALL_RECORDS} }}\n  }},\n  \"config\": {{ \"machines\": {}, \"reducers\": {}, \"threads\": {} }},\n  \"seed_engine\": {{ \"projection_s\": {:.6}, \"small_jobs_s\": {:.6}, \"total_s\": {:.6}, \"median_s\": {:.6}, \"stddev_s\": {:.6}, \"bytes_allocated\": {} }},\n  \"pooled_engine\": {{ \"projection_s\": {:.6}, \"small_jobs_s\": {:.6}, \"total_s\": {:.6}, \"median_s\": {:.6}, \"stddev_s\": {:.6}, \"bytes_allocated\": {} }},\n  \"noop_fault_plan\": {{ \"projection_s\": {:.6}, \"small_jobs_s\": {:.6}, \"total_s\": {:.6}, \"median_s\": {:.6}, \"stddev_s\": {:.6}, \"bytes_allocated\": {}, \"task_retries\": {}, \"speculative_launched\": {}, \"recovery_sim_time_s\": {:.6} }},\n  \"speedup\": {:.3},\n  \"fault_free_overhead_pct\": {:.3},\n  \"race_detector\": {{ \"compiled_in_bench\": false, \"disabled_overhead_pct\": 0.000, \"gate\": \"asserted off at startup; the race-detect feature is cfg'd out of measured builds, so the disabled detector's overhead is structurally zero (no residual hooks)\" }},\n  \"dag_speedup\": {{\n    \"workload\": \"naive-tucker-sweep\",\n    \"dims\": [{DAG_DIM}, {DAG_DIM}, {DAG_DIM}],\n    \"nnz\": {DAG_NNZ},\n    \"rank_q\": {DAG_RANK},\n    \"rank_r\": {DAG_RANK},\n    \"machines\": {DAG_MACHINES},\n    \"threads\": {DAG_THREADS},\n    \"jobs\": {},\n    \"critical_path_len\": {},\n    \"sim_sequential_s\": {:.6},\n    \"sim_makespan_s\": {:.6},\n    \"sim_speedup\": {:.3},\n    \"sequential_wall_s\": {:.6},\n    \"dag_wall_s\": {:.6},\n    \"host_wall_speedup\": {:.3},\n    \"peak_concurrency\": {},\n    \"worker_busy_s\": {},\n    \"heaviest_group_bytes\": {},\n    \"outputs\": \"bit-identical across scheduler modes (asserted)\"\n  }},\n  \"skew\": {{\n    \"workload\": \"parafac-dri-mttkrp\",\n    \"dims\": [{SKEW_DIM}, {SKEW_DIM}, {SKEW_DIM}],\n    \"nnz\": {SKEW_NNZ},\n    \"rank\": {SKEW_RANK},\n    \"machines\": {SKEW_MACHINES},\n    \"threads\": {DAG_THREADS},\n    \"rewrite\": \"heavy-key-split (RewritePolicy::Always), LPT dispatch\",\n    \"jobs\": {},\n    \"uniform_wall_s\": {:.6},\n    \"skewed_wall_s\": {:.6},\n    \"makespan_ratio\": {:.3},\n    \"uniform_heaviest_group_bytes\": {},\n    \"skewed_heaviest_group_bytes\": {},\n    \"group_inflation\": {:.1},\n    \"peak_concurrency\": {},\n    \"worker_busy_s\": {},\n    \"outputs\": \"bit-identical to the unrewritten Sequential oracle (asserted)\",\n    \"timing\": \"medians of {REPS} interleaved paired rounds; ratio is the median of per-round skewed/uniform pairs\"\n  }},\n  \"reps\": {REPS},\n  \"timing\": \"min of {REPS} reps after 1 warm-up round (seed blocked; pooled and no-op interleaved); speedup is the ratio of minima, overhead the median of per-round paired ratios; bytes_allocated is the cluster allocation-proxy high water (null where no cluster exists)\"\n}}\n",
        cfg.machines,
        cfg.num_reducers(),
        cfg.threads,
        seed.projection_s,
        seed.small_jobs_s,
        seed_total,
        seed_spread.median_s,
        seed_spread.stddev_s,
        json_opt(seed.alloc_bytes),
        pooled.projection_s,
        pooled.small_jobs_s,
        pooled_total,
        pooled_spread.median_s,
        pooled_spread.stddev_s,
        json_opt(pooled.alloc_bytes),
        noop.projection_s,
        noop.small_jobs_s,
        noop_total,
        noop_spread.median_s,
        noop_spread.stddev_s,
        json_opt(noop.alloc_bytes),
        noop.recovery.0,
        noop.recovery.1,
        noop.recovery.2,
        speedup,
        fault_free_overhead_pct,
        dag.jobs,
        dag.critical_path_len,
        dag.sim_sequential_s,
        dag.sim_makespan_s,
        dag.sim_speedup,
        dag.sequential_wall_s,
        dag.dag_wall_s,
        dag.host_speedup,
        dag.peak_concurrency,
        json_f64_array(&dag.worker_busy_s),
        dag.heaviest_group_bytes,
        skew.jobs,
        skew.uniform_wall_s,
        skew.skewed_wall_s,
        skew.makespan_ratio,
        skew.uniform_heaviest_group_bytes,
        skew.skewed_heaviest_group_bytes,
        skew.skewed_heaviest_group_bytes as f64 / skew.uniform_heaviest_group_bytes.max(1) as f64,
        skew.peak_concurrency,
        json_f64_array(&skew.worker_busy_s),
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    print!("{json}");
    eprintln!(
        "wrote {out_path}; speedup {speedup:.2}x; fault-free recovery overhead {fault_free_overhead_pct:.2}%; dag_speedup {:.2}x simulated; skew ratio {:.3}x",
        dag.sim_speedup, skew.makespan_ratio
    );
}
