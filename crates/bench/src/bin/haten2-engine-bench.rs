//! `haten2-engine-bench` — microbenchmark of the MapReduce engine rework.
//!
//! Runs the same shuffle-heavy job mix on the pre-optimization executor
//! (`haten2_bench::seed_engine`, per-job thread spawning + SipHash
//! partitioning + per-record shuffle + full reduce-side sort) and on the
//! current pooled engine, then reports the wall-clock speedup:
//!
//! * **dri-projection** — an IMHP-shaped Tucker projection job: I = 10⁴,
//!   nnz = 10⁵, each entry emitted twice under factor-row keys; the job
//!   class whose shuffle dominates HaTen2-DRI iterations.
//! * **small-jobs** — 300 tiny word-count-style jobs, the per-job-overhead
//!   regime a full decomposition spends most of its job *count* in.
//!
//! ```text
//! haten2-engine-bench [--out PATH]   # default: BENCH_engine.json
//! ```
//!
//! Both engines run the identical inputs; aggregate metrics are asserted
//! equal before timing is trusted. Wall times are the minimum of three
//! measured repetitions after one warm-up, minimizing scheduler noise.

use haten2_bench::seed_engine::run_job_seed;
use haten2_mapreduce::{run_job, Cluster, ClusterConfig, FaultPlan, JobMetrics, JobSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const DIM_I: u64 = 10_000;
const NNZ: usize = 100_000;
const RANK: usize = 10;
const SMALL_JOBS: usize = 300;
const SMALL_RECORDS: usize = 200;
const REPS: usize = 3;

type Entry = ((u64, u64, u64), f64);

fn projection_input(seed: u64) -> Vec<((), Entry)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..NNZ)
        .map(|_| {
            let ix = (
                rng.gen_range(0..DIM_I),
                rng.gen_range(0..DIM_I),
                rng.gen_range(0..DIM_I),
            );
            ((), (ix, rng.gen_range(0.5..2.0)))
        })
        .collect()
}

fn small_job_input(job: u64) -> Vec<(u64, u64)> {
    (0..SMALL_RECORDS as u64)
        .map(|i| (i, (i * 31 + job) % 17))
        .collect()
}

/// The IMHP-shaped mapper: each entry emitted once per joined mode, keyed
/// by (side, index) like the DRI Tucker projection job.
fn projection_mapper(_: &(), e: &Entry, emit: &mut dyn FnMut((u8, u64), Entry)) {
    let (ix, _) = e;
    emit((0, ix.1 % (RANK as u64 * 64)), *e);
    emit((1, ix.2 % (RANK as u64 * 64)), *e);
}

fn projection_reducer(key: &(u8, u64), vals: Vec<Entry>, emit: &mut dyn FnMut((u8, u64), f64)) {
    emit(*key, vals.iter().map(|(_, v)| v).sum());
}

fn small_mapper(k: &u64, v: &u64, emit: &mut dyn FnMut(u64, u64)) {
    emit(k % 13, *v);
}

fn small_reducer(k: &u64, vals: Vec<u64>, emit: &mut dyn FnMut(u64, u64)) {
    emit(*k, vals.iter().sum());
}

struct MixResult {
    projection_s: f64,
    small_jobs_s: f64,
    metrics_fingerprint: (usize, usize, usize, usize),
    /// (task retries, speculative launches, recovery sim-seconds) — all
    /// zero unless the config carries an injecting fault plan.
    recovery: (usize, usize, f64),
}

fn fingerprint(acc: &mut (usize, usize, usize, usize), m: &JobMetrics) {
    acc.0 += m.map_output_records;
    acc.1 += m.map_output_bytes;
    acc.2 += m.shuffle_bytes;
    acc.3 += m.reduce_groups;
}

fn run_seed_mix(cfg: &ClusterConfig) -> MixResult {
    let mut fp = (0, 0, 0, 0);
    let input = projection_input(7);
    let t = Instant::now();
    let (_, m) = run_job_seed(
        cfg,
        "dri-projection",
        None,
        &input,
        projection_mapper,
        projection_reducer,
    )
    .expect("projection job");
    let projection_s = t.elapsed().as_secs_f64();
    fingerprint(&mut fp, &m);

    let t = Instant::now();
    for j in 0..SMALL_JOBS {
        let input = small_job_input(j as u64);
        let (_, m) = run_job_seed(cfg, "small", None, &input, small_mapper, small_reducer)
            .expect("small job");
        fingerprint(&mut fp, &m);
    }
    let small_jobs_s = t.elapsed().as_secs_f64();
    MixResult {
        projection_s,
        small_jobs_s,
        metrics_fingerprint: fp,
        recovery: (0, 0, 0.0),
    }
}

fn run_pooled_mix(cfg: &ClusterConfig) -> MixResult {
    let mut fp = (0, 0, 0, 0);
    // One cluster for the whole mix: the pool is spawned once and reused,
    // exactly how decomposition drivers use the engine.
    let cluster = Cluster::new(cfg.clone());
    let input = projection_input(7);
    let t = Instant::now();
    run_job(
        &cluster,
        JobSpec::named("dri-projection").with_map_emit_hint(2),
        &input,
        projection_mapper,
        projection_reducer,
    )
    .expect("projection job");
    let projection_s = t.elapsed().as_secs_f64();
    fingerprint(&mut fp, &cluster.metrics().jobs[0]);

    let mark = cluster.jobs_run();
    let t = Instant::now();
    for j in 0..SMALL_JOBS {
        let input = small_job_input(j as u64);
        run_job(
            &cluster,
            JobSpec::named("small").with_map_emit_hint(1),
            &input,
            small_mapper,
            small_reducer,
        )
        .expect("small job");
    }
    let small_jobs_s = t.elapsed().as_secs_f64();
    for m in &cluster.metrics_since(mark).jobs {
        fingerprint(&mut fp, m);
    }
    let all = cluster.metrics();
    MixResult {
        projection_s,
        small_jobs_s,
        metrics_fingerprint: fp,
        recovery: (
            all.total_task_retries(),
            all.total_speculative_launched(),
            all.total_recovery_sim_time_s(),
        ),
    }
}

fn best_of<F: FnMut() -> MixResult>(mut f: F) -> MixResult {
    let warmup = f();
    let mut best = f();
    for _ in 1..REPS {
        let r = f();
        assert_eq!(
            r.metrics_fingerprint, best.metrics_fingerprint,
            "nondeterministic metrics"
        );
        if r.projection_s + r.small_jobs_s < best.projection_s + best.small_jobs_s {
            best = r;
        }
    }
    assert_eq!(warmup.metrics_fingerprint, best.metrics_fingerprint);
    best
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    let cfg = ClusterConfig::default();
    eprintln!(
        "engine bench: machines={} reducers={} threads={} (I={DIM_I}, nnz={NNZ}, {SMALL_JOBS} small jobs)",
        cfg.machines,
        cfg.num_reducers(),
        cfg.threads
    );

    let seed = best_of(|| run_seed_mix(&cfg));
    let pooled = best_of(|| run_pooled_mix(&cfg));
    assert_eq!(
        seed.metrics_fingerprint, pooled.metrics_fingerprint,
        "engines disagree on aggregate metrics — do not trust this benchmark"
    );

    // Fault-free overhead of the recovery machinery: the same mix with a
    // no-op FaultPlan installed. Schedule expansion and fault accounting
    // run on every job but inject nothing, so any wall-clock delta is the
    // price of *having* the subsystem.
    let noop_cfg = ClusterConfig {
        fault_plan: Some(FaultPlan::noop()),
        ..cfg.clone()
    };
    let noop = best_of(|| run_pooled_mix(&noop_cfg));
    assert_eq!(
        noop.metrics_fingerprint, pooled.metrics_fingerprint,
        "a no-op fault plan changed the metrics"
    );
    assert_eq!(
        noop.recovery,
        (0, 0, 0.0),
        "a no-op fault plan injected recovery work"
    );

    let seed_total = seed.projection_s + seed.small_jobs_s;
    let pooled_total = pooled.projection_s + pooled.small_jobs_s;
    let noop_total = noop.projection_s + noop.small_jobs_s;
    let speedup = seed_total / pooled_total;
    let fault_free_overhead_pct = (noop_total / pooled_total - 1.0) * 100.0;

    let json = format!(
        "{{\n  \"benchmark\": \"mapreduce-engine\",\n  \"workload\": {{\n    \"dri_projection\": {{ \"dim_i\": {DIM_I}, \"nnz\": {NNZ}, \"emits_per_entry\": 2 }},\n    \"small_jobs\": {{ \"jobs\": {SMALL_JOBS}, \"records_per_job\": {SMALL_RECORDS} }}\n  }},\n  \"config\": {{ \"machines\": {}, \"reducers\": {}, \"threads\": {} }},\n  \"seed_engine\": {{ \"projection_s\": {:.6}, \"small_jobs_s\": {:.6}, \"total_s\": {:.6} }},\n  \"pooled_engine\": {{ \"projection_s\": {:.6}, \"small_jobs_s\": {:.6}, \"total_s\": {:.6} }},\n  \"noop_fault_plan\": {{ \"projection_s\": {:.6}, \"small_jobs_s\": {:.6}, \"total_s\": {:.6}, \"task_retries\": {}, \"speculative_launched\": {}, \"recovery_sim_time_s\": {:.6} }},\n  \"speedup\": {:.3},\n  \"fault_free_overhead_pct\": {:.3},\n  \"reps\": {REPS},\n  \"timing\": \"min of {REPS} reps after 1 warm-up\"\n}}\n",
        cfg.machines,
        cfg.num_reducers(),
        cfg.threads,
        seed.projection_s,
        seed.small_jobs_s,
        seed_total,
        pooled.projection_s,
        pooled.small_jobs_s,
        pooled_total,
        noop.projection_s,
        noop.small_jobs_s,
        noop_total,
        noop.recovery.0,
        noop.recovery.1,
        noop.recovery.2,
        speedup,
        fault_free_overhead_pct,
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    print!("{json}");
    eprintln!(
        "wrote {out_path}; speedup {speedup:.2}x; fault-free recovery overhead {fault_free_overhead_pct:.2}%"
    );
}
