//! `haten2-engine-bench` — microbenchmark of the MapReduce engine rework.
//!
//! Runs the same shuffle-heavy job mix on the pre-optimization executor
//! (`haten2_bench::seed_engine`, per-job thread spawning + SipHash
//! partitioning + per-record shuffle + full reduce-side sort) and on the
//! current pooled engine, then reports the wall-clock speedup:
//!
//! * **dri-projection** — an IMHP-shaped Tucker projection job: I = 10⁴,
//!   nnz = 10⁵, each entry emitted twice under factor-row keys; the job
//!   class whose shuffle dominates HaTen2-DRI iterations.
//! * **small-jobs** — 300 tiny word-count-style jobs, the per-job-overhead
//!   regime a full decomposition spends most of its job *count* in.
//! * **dag_speedup** — the Naive-Tucker projection sweep (`Q` independent
//!   Bind jobs, then `R` independent Mult jobs) run once under
//!   `SchedulerMode::Sequential` and once under `SchedulerMode::Dag` at
//!   8 threads. Outputs and per-job metrics are asserted bit-identical;
//!   the reported speedup is `sim_sequential_s / sim_makespan_s` from the
//!   scheduler's [`BatchReport`] — the simulated-cluster makespan ratio,
//!   deterministic and independent of host core count — and must be ≥ 2x.
//!
//! ```text
//! haten2-engine-bench [--out PATH]   # default: BENCH_engine.json
//! haten2-engine-bench --dag-smoke    # dag_speedup equivalence+speedup only
//! ```
//!
//! Both engines run the identical inputs; aggregate metrics are asserted
//! equal before timing is trusted. Wall times are the minimum of three
//! measured repetitions after one warm-up, minimizing scheduler noise.

use haten2_bench::seed_engine::run_job_seed;
use haten2_core::tucker::{project, ProjectOptions};
use haten2_core::Variant;
use haten2_linalg::Mat;
use haten2_mapreduce::{
    run_job, BatchReport, Cluster, ClusterConfig, FaultPlan, JobMetrics, JobSpec, SchedulerMode,
};
use haten2_tensor::{CooTensor3, Entry3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const DIM_I: u64 = 10_000;
const NNZ: usize = 100_000;
const RANK: usize = 10;
const SMALL_JOBS: usize = 300;
const SMALL_RECORDS: usize = 200;
const REPS: usize = 3;

/// dag_speedup workload: Naive-Tucker sweep shape. `Q = R = DAG_RANK`
/// gives `2·DAG_RANK` jobs at critical-path depth 2, so the simulated
/// 8-thread makespan ratio approaches `DAG_RANK` — far above the asserted
/// 2x floor.
const DAG_DIM: u64 = 24;
const DAG_NNZ: usize = 4_000;
const DAG_RANK: usize = 8;
const DAG_THREADS: usize = 8;
const DAG_MACHINES: usize = 2;

type Entry = ((u64, u64, u64), f64);

fn projection_input(seed: u64) -> Vec<((), Entry)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..NNZ)
        .map(|_| {
            let ix = (
                rng.gen_range(0..DIM_I),
                rng.gen_range(0..DIM_I),
                rng.gen_range(0..DIM_I),
            );
            ((), (ix, rng.gen_range(0.5..2.0)))
        })
        .collect()
}

fn small_job_input(job: u64) -> Vec<(u64, u64)> {
    (0..SMALL_RECORDS as u64)
        .map(|i| (i, (i * 31 + job) % 17))
        .collect()
}

/// The IMHP-shaped mapper: each entry emitted once per joined mode, keyed
/// by (side, index) like the DRI Tucker projection job.
fn projection_mapper(_: &(), e: &Entry, emit: &mut dyn FnMut((u8, u64), Entry)) {
    let (ix, _) = e;
    emit((0, ix.1 % (RANK as u64 * 64)), *e);
    emit((1, ix.2 % (RANK as u64 * 64)), *e);
}

fn projection_reducer(key: &(u8, u64), vals: Vec<Entry>, emit: &mut dyn FnMut((u8, u64), f64)) {
    emit(*key, vals.iter().map(|(_, v)| v).sum());
}

fn small_mapper(k: &u64, v: &u64, emit: &mut dyn FnMut(u64, u64)) {
    emit(k % 13, *v);
}

fn small_reducer(k: &u64, vals: Vec<u64>, emit: &mut dyn FnMut(u64, u64)) {
    emit(*k, vals.iter().sum());
}

struct MixResult {
    projection_s: f64,
    small_jobs_s: f64,
    metrics_fingerprint: (usize, usize, usize, usize),
    /// (task retries, speculative launches, recovery sim-seconds) — all
    /// zero unless the config carries an injecting fault plan.
    recovery: (usize, usize, f64),
}

fn fingerprint(acc: &mut (usize, usize, usize, usize), m: &JobMetrics) {
    acc.0 += m.map_output_records;
    acc.1 += m.map_output_bytes;
    acc.2 += m.shuffle_bytes;
    acc.3 += m.reduce_groups;
}

fn run_seed_mix(cfg: &ClusterConfig) -> MixResult {
    let mut fp = (0, 0, 0, 0);
    let input = projection_input(7);
    let t = Instant::now();
    let (_, m) = run_job_seed(
        cfg,
        "dri-projection",
        None,
        &input,
        projection_mapper,
        projection_reducer,
    )
    .expect("projection job");
    let projection_s = t.elapsed().as_secs_f64();
    fingerprint(&mut fp, &m);

    let t = Instant::now();
    for j in 0..SMALL_JOBS {
        let input = small_job_input(j as u64);
        let (_, m) = run_job_seed(cfg, "small", None, &input, small_mapper, small_reducer)
            .expect("small job");
        fingerprint(&mut fp, &m);
    }
    let small_jobs_s = t.elapsed().as_secs_f64();
    MixResult {
        projection_s,
        small_jobs_s,
        metrics_fingerprint: fp,
        recovery: (0, 0, 0.0),
    }
}

fn run_pooled_mix(cfg: &ClusterConfig) -> MixResult {
    let mut fp = (0, 0, 0, 0);
    // One cluster for the whole mix: the pool is spawned once and reused,
    // exactly how decomposition drivers use the engine.
    let cluster = Cluster::new(cfg.clone());
    let input = projection_input(7);
    let t = Instant::now();
    run_job(
        &cluster,
        JobSpec::named("dri-projection").with_map_emit_hint(2),
        &input,
        projection_mapper,
        projection_reducer,
    )
    .expect("projection job");
    let projection_s = t.elapsed().as_secs_f64();
    fingerprint(&mut fp, &cluster.metrics().jobs[0]);

    let mark = cluster.jobs_run();
    let t = Instant::now();
    for j in 0..SMALL_JOBS {
        let input = small_job_input(j as u64);
        run_job(
            &cluster,
            JobSpec::named("small").with_map_emit_hint(1),
            &input,
            small_mapper,
            small_reducer,
        )
        .expect("small job");
    }
    let small_jobs_s = t.elapsed().as_secs_f64();
    for m in &cluster.metrics_since(mark).jobs {
        fingerprint(&mut fp, m);
    }
    let all = cluster.metrics();
    MixResult {
        projection_s,
        small_jobs_s,
        metrics_fingerprint: fp,
        recovery: (
            all.total_task_retries(),
            all.total_speculative_launched(),
            all.total_recovery_sim_time_s(),
        ),
    }
}

fn best_of<F: FnMut() -> MixResult>(mut f: F) -> MixResult {
    let warmup = f();
    let mut best = f();
    for _ in 1..REPS {
        let r = f();
        assert_eq!(
            r.metrics_fingerprint, best.metrics_fingerprint,
            "nondeterministic metrics"
        );
        if r.projection_s + r.small_jobs_s < best.projection_s + best.small_jobs_s {
            best = r;
        }
    }
    assert_eq!(warmup.metrics_fingerprint, best.metrics_fingerprint);
    best
}

// ---- dag_speedup: Naive-Tucker sweep, Sequential vs Dag -----------------

fn dag_tensor(nnz: usize) -> CooTensor3 {
    let mut rng = StdRng::seed_from_u64(42);
    let entries = (0..nnz)
        .map(|_| {
            Entry3::new(
                rng.gen_range(0..DAG_DIM),
                rng.gen_range(0..DAG_DIM),
                rng.gen_range(0..DAG_DIM),
                rng.gen_range(0.5..2.0),
            )
        })
        .collect();
    CooTensor3::from_entries([DAG_DIM; 3], entries).expect("valid dag tensor")
}

fn dag_factor(rows: usize, cols: usize, seed: u64) -> Mat {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<Vec<f64>> = (0..rows)
        .map(|_| (0..cols).map(|_| rng.gen_range(0.5..2.0)).collect())
        .collect();
    Mat::from_rows(&data).expect("valid factor")
}

struct SweepRun {
    out: CooTensor3,
    /// Per-job metrics with the host-time fields zeroed (the only fields
    /// allowed to differ between scheduler modes).
    jobs: Vec<JobMetrics>,
    report: BatchReport,
    wall_s: f64,
}

fn run_naive_sweep(mode: SchedulerMode, x: &CooTensor3, bt: &Mat, ct: &Mat) -> SweepRun {
    let cluster = Cluster::new(ClusterConfig {
        scheduler: mode,
        threads: DAG_THREADS,
        ..ClusterConfig::with_machines(DAG_MACHINES)
    });
    let t = Instant::now();
    let out = project(
        &cluster,
        Variant::Naive,
        x,
        0,
        bt,
        ct,
        &ProjectOptions::default(),
    )
    .expect("naive sweep");
    let wall_s = t.elapsed().as_secs_f64();
    let jobs = cluster
        .metrics()
        .jobs
        .into_iter()
        .map(|mut m| {
            m.wall_time_s = 0.0;
            m.started_s = 0.0;
            m.finished_s = 0.0;
            m
        })
        .collect();
    let reports = cluster.batch_reports();
    assert_eq!(reports.len(), 1, "dag_speedup: one batch per sweep");
    SweepRun {
        out,
        jobs,
        report: reports[0].clone(),
        wall_s,
    }
}

fn assert_bit_identical(a: &CooTensor3, b: &CooTensor3) {
    assert_eq!(a.dims(), b.dims(), "dag_speedup: output dims differ");
    assert_eq!(a.nnz(), b.nnz(), "dag_speedup: output nnz differs");
    for (ea, eb) in a.entries().iter().zip(b.entries()) {
        assert_eq!(
            (ea.i, ea.j, ea.k),
            (eb.i, eb.j, eb.k),
            "dag_speedup: output index differs"
        );
        assert_eq!(
            ea.v.to_bits(),
            eb.v.to_bits(),
            "dag_speedup: output value bits differ at ({}, {}, {})",
            ea.i,
            ea.j,
            ea.k
        );
    }
}

struct DagSpeedup {
    sequential_wall_s: f64,
    dag_wall_s: f64,
    host_speedup: f64,
    sim_sequential_s: f64,
    sim_makespan_s: f64,
    sim_speedup: f64,
    jobs: usize,
    critical_path_len: usize,
}

/// Run the Naive-Tucker sweep under both scheduler modes, assert the DAG
/// mode changes nothing — outputs bit-identical, per-job metrics equal
/// with host times zeroed, same batch structure and simulated schedule —
/// and return the speedup numbers. The asserted figure is the simulated
/// makespan ratio at [`DAG_THREADS`] threads; host wall times are
/// reported for reference but not asserted (this may run on one core).
fn run_dag_speedup(nnz: usize) -> DagSpeedup {
    let x = dag_tensor(nnz);
    let bt = dag_factor(DAG_RANK, DAG_DIM as usize, 1);
    let ct = dag_factor(DAG_RANK, DAG_DIM as usize, 2);

    let mut seq = run_naive_sweep(SchedulerMode::Sequential, &x, &bt, &ct);
    let mut dag = run_naive_sweep(SchedulerMode::Dag, &x, &bt, &ct);
    assert_bit_identical(&seq.out, &dag.out);
    assert_eq!(seq.jobs, dag.jobs, "dag_speedup: per-job metrics diverged");
    // The deterministic (non-host-time) batch fields must agree exactly;
    // wall_s / busy_s / critical_path_s / peak_concurrency are host
    // measurements and differ between modes by design.
    assert_eq!(
        (seq.report.jobs, seq.report.critical_path_len),
        (dag.report.jobs, dag.report.critical_path_len),
        "dag_speedup: batch structure diverged"
    );
    assert_eq!(
        (
            seq.report.sim_sequential_s.to_bits(),
            seq.report.sim_makespan_s.to_bits()
        ),
        (
            dag.report.sim_sequential_s.to_bits(),
            dag.report.sim_makespan_s.to_bits()
        ),
        "dag_speedup: simulated schedule diverged across modes"
    );
    for _ in 1..REPS {
        let s = run_naive_sweep(SchedulerMode::Sequential, &x, &bt, &ct);
        let d = run_naive_sweep(SchedulerMode::Dag, &x, &bt, &ct);
        assert_bit_identical(&seq.out, &s.out);
        assert_bit_identical(&seq.out, &d.out);
        assert_eq!(seq.jobs, d.jobs, "dag_speedup: nondeterministic metrics");
        if s.wall_s < seq.wall_s {
            seq.wall_s = s.wall_s;
        }
        if d.wall_s < dag.wall_s {
            dag.wall_s = d.wall_s;
        }
    }

    let sim_speedup = dag.report.sim_sequential_s / dag.report.sim_makespan_s;
    assert!(
        sim_speedup >= 2.0,
        "dag_speedup: simulated speedup {sim_speedup:.2}x below the 2x target \
         (sequential {:.6}s, makespan {:.6}s)",
        dag.report.sim_sequential_s,
        dag.report.sim_makespan_s
    );
    DagSpeedup {
        sequential_wall_s: seq.wall_s,
        dag_wall_s: dag.wall_s,
        host_speedup: seq.wall_s / dag.wall_s,
        sim_sequential_s: dag.report.sim_sequential_s,
        sim_makespan_s: dag.report.sim_makespan_s,
        sim_speedup,
        jobs: dag.report.jobs,
        critical_path_len: dag.report.critical_path_len,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--dag-smoke") {
        // Small-input smoke for scripts/check.sh: the full equivalence
        // assertions and the 2x target, without the seed-engine mix and
        // without touching BENCH_engine.json.
        let d = run_dag_speedup(DAG_NNZ / 5);
        eprintln!(
            "dag_speedup smoke: {} jobs, critical path {}, simulated speedup {:.2}x \
             (sequential {:.4}s vs makespan {:.4}s at {DAG_THREADS} threads); outputs bit-identical",
            d.jobs, d.critical_path_len, d.sim_speedup, d.sim_sequential_s, d.sim_makespan_s
        );
        return;
    }
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    let cfg = ClusterConfig::default();
    eprintln!(
        "engine bench: machines={} reducers={} threads={} (I={DIM_I}, nnz={NNZ}, {SMALL_JOBS} small jobs)",
        cfg.machines,
        cfg.num_reducers(),
        cfg.threads
    );

    let seed = best_of(|| run_seed_mix(&cfg));
    let pooled = best_of(|| run_pooled_mix(&cfg));
    assert_eq!(
        seed.metrics_fingerprint, pooled.metrics_fingerprint,
        "engines disagree on aggregate metrics — do not trust this benchmark"
    );

    // Fault-free overhead of the recovery machinery: the same mix with a
    // no-op FaultPlan installed. Schedule expansion and fault accounting
    // run on every job but inject nothing, so any wall-clock delta is the
    // price of *having* the subsystem.
    let noop_cfg = ClusterConfig {
        fault_plan: Some(FaultPlan::noop()),
        ..cfg.clone()
    };
    let noop = best_of(|| run_pooled_mix(&noop_cfg));
    assert_eq!(
        noop.metrics_fingerprint, pooled.metrics_fingerprint,
        "a no-op fault plan changed the metrics"
    );
    assert_eq!(
        noop.recovery,
        (0, 0, 0.0),
        "a no-op fault plan injected recovery work"
    );

    let seed_total = seed.projection_s + seed.small_jobs_s;
    let pooled_total = pooled.projection_s + pooled.small_jobs_s;
    let noop_total = noop.projection_s + noop.small_jobs_s;
    let speedup = seed_total / pooled_total;
    let fault_free_overhead_pct = (noop_total / pooled_total - 1.0) * 100.0;

    eprintln!("dag_speedup: Naive-Tucker sweep, Q=R={DAG_RANK}, {DAG_THREADS} threads");
    let dag = run_dag_speedup(DAG_NNZ);

    let json = format!(
        "{{\n  \"benchmark\": \"mapreduce-engine\",\n  \"workload\": {{\n    \"dri_projection\": {{ \"dim_i\": {DIM_I}, \"nnz\": {NNZ}, \"emits_per_entry\": 2 }},\n    \"small_jobs\": {{ \"jobs\": {SMALL_JOBS}, \"records_per_job\": {SMALL_RECORDS} }}\n  }},\n  \"config\": {{ \"machines\": {}, \"reducers\": {}, \"threads\": {} }},\n  \"seed_engine\": {{ \"projection_s\": {:.6}, \"small_jobs_s\": {:.6}, \"total_s\": {:.6} }},\n  \"pooled_engine\": {{ \"projection_s\": {:.6}, \"small_jobs_s\": {:.6}, \"total_s\": {:.6} }},\n  \"noop_fault_plan\": {{ \"projection_s\": {:.6}, \"small_jobs_s\": {:.6}, \"total_s\": {:.6}, \"task_retries\": {}, \"speculative_launched\": {}, \"recovery_sim_time_s\": {:.6} }},\n  \"speedup\": {:.3},\n  \"fault_free_overhead_pct\": {:.3},\n  \"dag_speedup\": {{\n    \"workload\": \"naive-tucker-sweep\",\n    \"dims\": [{DAG_DIM}, {DAG_DIM}, {DAG_DIM}],\n    \"nnz\": {DAG_NNZ},\n    \"rank_q\": {DAG_RANK},\n    \"rank_r\": {DAG_RANK},\n    \"machines\": {DAG_MACHINES},\n    \"threads\": {DAG_THREADS},\n    \"jobs\": {},\n    \"critical_path_len\": {},\n    \"sim_sequential_s\": {:.6},\n    \"sim_makespan_s\": {:.6},\n    \"sim_speedup\": {:.3},\n    \"sequential_wall_s\": {:.6},\n    \"dag_wall_s\": {:.6},\n    \"host_wall_speedup\": {:.3},\n    \"outputs\": \"bit-identical across scheduler modes (asserted)\"\n  }},\n  \"reps\": {REPS},\n  \"timing\": \"min of {REPS} reps after 1 warm-up\"\n}}\n",
        cfg.machines,
        cfg.num_reducers(),
        cfg.threads,
        seed.projection_s,
        seed.small_jobs_s,
        seed_total,
        pooled.projection_s,
        pooled.small_jobs_s,
        pooled_total,
        noop.projection_s,
        noop.small_jobs_s,
        noop_total,
        noop.recovery.0,
        noop.recovery.1,
        noop.recovery.2,
        speedup,
        fault_free_overhead_pct,
        dag.jobs,
        dag.critical_path_len,
        dag.sim_sequential_s,
        dag.sim_makespan_s,
        dag.sim_speedup,
        dag.sequential_wall_s,
        dag.dag_wall_s,
        dag.host_speedup,
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    print!("{json}");
    eprintln!(
        "wrote {out_path}; speedup {speedup:.2}x; fault-free recovery overhead {fault_free_overhead_pct:.2}%; dag_speedup {:.2}x simulated",
        dag.sim_speedup
    );
}
