//! A faithful replica of the pre-optimization MapReduce executor, kept as
//! the baseline for the engine microbenchmark (`haten2-engine-bench`).
//!
//! This reproduces the original engine's execution strategy exactly:
//!
//! * two batches of scoped threads spawned **per job** (one per phase),
//! * `DefaultHasher` (SipHash) partitioning per emitted record,
//! * a per-record serial shuffle loop sizing every record individually,
//! * a full reduce-side `sort_by` of each partition (no sorted runs),
//! * completion-order result collection (output order nondeterministic).
//!
//! The only mechanical differences from the seed source are dependency
//! substitutions forced by the offline build: `std::thread::scope` for
//! `crossbeam::thread::scope` and `std::sync::Mutex` for `parking_lot` —
//! both are behavior- and cost-equivalent here (the seed paid the same
//! per-job spawns). It takes a [`ClusterConfig`] and returns the metrics
//! instead of recording them on a cluster, so benchmarks can compare
//! counters between engines directly.

use haten2_mapreduce::{ClusterConfig, Combiner, CostModel, EstimateSize, JobMetrics, MrError};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

const FRAMING_BYTES: usize = 8;

struct MapTaskResult<KM, VM> {
    buckets: Vec<Vec<(KM, VM)>>,
    input_records: usize,
    input_bytes: usize,
    output_records: usize,
    output_bytes: usize,
    retried: bool,
}

fn partition_of<K: Hash>(key: &K, partitions: usize) -> usize {
    // Frozen seed engine, kept verbatim as the ablation baseline; its
    // partition placement is not asserted on.
    // lint:allow(no-default-hasher)
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % partitions
}

/// Execute one job with the seed engine's strategy. Returns the reduce
/// output (completion order) and the job's metrics.
#[allow(clippy::too_many_lines)]
pub fn run_job_seed<KI, VI, KM, VM, KO, VO, M, R>(
    cfg: &ClusterConfig,
    name: &str,
    combiner: Option<Combiner<'_, KM, VM>>,
    input: &[(KI, VI)],
    mapper: M,
    reducer: R,
) -> Result<(Vec<(KO, VO)>, JobMetrics), MrError>
where
    KI: Sync + EstimateSize,
    VI: Sync + EstimateSize,
    KM: Clone + Ord + Hash + Send + EstimateSize,
    VM: Send + EstimateSize,
    KO: Send + EstimateSize,
    VO: Send + EstimateSize,
    M: Fn(&KI, &VI, &mut dyn FnMut(KM, VM)) + Sync,
    R: Fn(&KM, Vec<VM>, &mut dyn FnMut(KO, VO)) + Sync,
{
    let started = Instant::now();
    let num_reducers = cfg.num_reducers();
    let num_map_tasks = cfg.machines.max(1);
    let threads = cfg.threads.max(1);

    // ---- Map phase: fresh scoped threads, results in completion order ----
    let split_len = input.len().div_ceil(num_map_tasks).max(1);
    let splits: Vec<&[(KI, VI)]> = input.chunks(split_len).collect();
    let actual_tasks = splits.len();

    let task_counter = AtomicUsize::new(0);
    let map_results: Mutex<Vec<MapTaskResult<KM, VM>>> = Mutex::new(Vec::new());

    let run_map_task = |task_id: usize| -> MapTaskResult<KM, VM> {
        let split = splits[task_id];
        let mut buckets: Vec<Vec<(KM, VM)>> = (0..num_reducers).map(|_| Vec::new()).collect();
        let mut output_records = 0usize;
        let mut output_bytes = 0usize;
        let mut input_bytes = 0usize;
        {
            // Per-emission sizing and SipHash partitioning.
            let mut emit = |k: KM, v: VM| {
                output_records += 1;
                output_bytes += k.est_bytes() + v.est_bytes() + FRAMING_BYTES;
                buckets[partition_of(&k, num_reducers)].push((k, v));
            };
            for (k, v) in split {
                input_bytes += k.est_bytes() + v.est_bytes() + FRAMING_BYTES;
                mapper(k, v, &mut emit);
            }
        }
        if let Some(combiner) = combiner {
            for bucket in &mut buckets {
                bucket.sort_by(|a, b| a.0.cmp(&b.0));
                let drained = std::mem::take(bucket);
                let mut it = drained.into_iter().peekable();
                while let Some((key, first)) = it.next() {
                    let mut vals = vec![first];
                    while it.peek().is_some_and(|(k, _)| *k == key) {
                        vals.push(it.next().expect("peeked").1);
                    }
                    for v in combiner(&key, vals) {
                        bucket.push((key.clone(), v));
                    }
                }
            }
        }
        MapTaskResult {
            buckets,
            input_records: split.len(),
            input_bytes,
            output_records,
            output_bytes,
            retried: false,
        }
    };

    // Frozen seed engine: per-job scoped threads are the very overhead
    // the WorkerPool ablation measures.
    // lint:allow(no-raw-threads)
    std::thread::scope(|s| {
        for _ in 0..threads.min(actual_tasks) {
            s.spawn(|| loop {
                let t = task_counter.fetch_add(1, Ordering::Relaxed);
                if t >= actual_tasks {
                    break;
                }
                let mut retried = false;
                if let Some(n) = cfg.fault_plan.as_ref().and_then(|p| p.fail_every_nth) {
                    if n > 0 && (t + 1).is_multiple_of(n) {
                        let wasted = run_map_task(t);
                        drop(wasted);
                        retried = true;
                    }
                }
                let mut result = run_map_task(t);
                result.retried = retried;
                map_results
                    .lock()
                    .expect("map results poisoned")
                    .push(result);
            });
        }
    });

    // ---- Shuffle: one record at a time, sized individually ---------------
    let mut metrics = JobMetrics {
        name: name.to_string(),
        ..Default::default()
    };
    let mut partitions: Vec<Vec<(KM, VM)>> = (0..num_reducers).map(|_| Vec::new()).collect();
    for r in map_results.into_inner().expect("map results poisoned") {
        metrics.map_input_records += r.input_records;
        metrics.map_input_bytes += r.input_bytes;
        metrics.map_output_records += r.output_records;
        metrics.map_output_bytes += r.output_bytes;
        metrics.task_retries += r.retried as usize;
        for (p, bucket) in r.buckets.into_iter().enumerate() {
            for (k, v) in bucket {
                metrics.shuffle_records += 1;
                metrics.shuffle_bytes += k.est_bytes() + v.est_bytes() + FRAMING_BYTES;
                partitions[p].push((k, v));
            }
        }
    }

    if let Some(cap) = cfg.cluster_capacity_bytes {
        if metrics.map_output_bytes > cap {
            return Err(MrError::ClusterCapacityExceeded {
                job: name.to_string(),
                intermediate_bytes: metrics.map_output_bytes,
                capacity_bytes: cap,
            });
        }
    }

    // ---- Reduce phase: fresh scoped threads, full sort per partition -----
    struct ReduceTaskResult<KO, VO> {
        output: Vec<(KO, VO)>,
        groups: usize,
        output_records: usize,
        output_bytes: usize,
        max_group_bytes: usize,
    }

    type PartitionCell<K, V> = Mutex<Option<Vec<(K, V)>>>;
    let partition_cells: Vec<PartitionCell<KM, VM>> = partitions
        .into_iter()
        .map(|p| Mutex::new(Some(p)))
        .collect();

    let part_counter = AtomicUsize::new(0);
    let reduce_results: Mutex<Vec<ReduceTaskResult<KO, VO>>> = Mutex::new(Vec::new());
    let failure: Mutex<Option<MrError>> = Mutex::new(None);
    let failed = AtomicBool::new(false);

    // Frozen seed engine: per-job scoped threads are the very overhead
    // the WorkerPool ablation measures.
    // lint:allow(no-raw-threads)
    std::thread::scope(|s| {
        for _ in 0..threads.min(num_reducers) {
            s.spawn(|| loop {
                if failed.load(Ordering::Relaxed) {
                    break;
                }
                let p = part_counter.fetch_add(1, Ordering::Relaxed);
                if p >= num_reducers {
                    break;
                }
                let mut records = partition_cells[p]
                    .lock()
                    .expect("partition cell poisoned")
                    .take()
                    .expect("partition visited once");
                records.sort_by(|a, b| a.0.cmp(&b.0));

                let mut out: Vec<(KO, VO)> = Vec::new();
                let mut groups = 0usize;
                let mut output_records = 0usize;
                let mut output_bytes = 0usize;
                let mut max_group_bytes = 0usize;

                let mut it = records.into_iter().peekable();
                while let Some((key, first)) = it.next() {
                    let mut group_bytes = key.est_bytes() + first.est_bytes() + FRAMING_BYTES;
                    let mut vals = vec![first];
                    while it.peek().is_some_and(|(k, _)| *k == key) {
                        let (_, v) = it.next().expect("peeked");
                        group_bytes += v.est_bytes() + FRAMING_BYTES;
                        vals.push(v);
                    }
                    if let Some(budget) = cfg.reducer_memory_bytes {
                        if group_bytes > budget {
                            *failure.lock().expect("failure slot poisoned") =
                                Some(MrError::ReducerOom {
                                    job: name.to_string(),
                                    group_bytes,
                                    budget_bytes: budget,
                                });
                            failed.store(true, Ordering::Relaxed);
                            return;
                        }
                    }
                    max_group_bytes = max_group_bytes.max(group_bytes);
                    groups += 1;
                    let mut emit = |k: KO, v: VO| {
                        output_records += 1;
                        output_bytes += k.est_bytes() + v.est_bytes() + FRAMING_BYTES;
                        out.push((k, v));
                    };
                    reducer(&key, vals, &mut emit);
                }
                reduce_results
                    .lock()
                    .expect("reduce results poisoned")
                    .push(ReduceTaskResult {
                        output: out,
                        groups,
                        output_records,
                        output_bytes,
                        max_group_bytes,
                    });
            });
        }
    });

    if let Some(err) = failure.into_inner().expect("failure slot poisoned") {
        return Err(err);
    }

    let mut output = Vec::new();
    for r in reduce_results
        .into_inner()
        .expect("reduce results poisoned")
    {
        metrics.reduce_groups += r.groups;
        metrics.reduce_output_records += r.output_records;
        metrics.reduce_output_bytes += r.output_bytes;
        metrics.max_group_bytes = metrics.max_group_bytes.max(r.max_group_bytes);
        output.extend(r.output);
    }

    metrics.wall_time_s = started.elapsed().as_secs_f64();
    metrics.sim_time_s = CostModel::job_time_s(cfg, &metrics);
    Ok((output, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_engine_word_count_agrees_with_pooled_engine() {
        let cfg = ClusterConfig::with_machines(4);
        let docs: Vec<(u64, String)> = (0..20)
            .map(|i| (i, format!("w{} w{} shared", i % 5, i % 3)))
            .collect();
        let mapper = |_: &u64, text: &String, emit: &mut dyn FnMut(String, u64)| {
            for w in text.split_whitespace() {
                emit(w.to_string(), 1);
            }
        };
        let reducer = |w: &String, ones: Vec<u64>, emit: &mut dyn FnMut(String, u64)| {
            emit(w.clone(), ones.iter().sum());
        };
        let (mut seed_out, seed_m) =
            run_job_seed(&cfg, "wc", None, &docs, mapper, reducer).unwrap();

        let cluster = haten2_mapreduce::Cluster::new(cfg);
        let mut pooled_out = haten2_mapreduce::run_job(
            &cluster,
            haten2_mapreduce::JobSpec::named("wc"),
            &docs,
            mapper,
            reducer,
        )
        .unwrap();
        let pooled_m = cluster.metrics().jobs[0].clone();

        seed_out.sort();
        pooled_out.sort();
        assert_eq!(seed_out, pooled_out);
        // Aggregate counters are partitioner-independent.
        assert_eq!(seed_m.map_output_records, pooled_m.map_output_records);
        assert_eq!(seed_m.map_output_bytes, pooled_m.map_output_bytes);
        assert_eq!(seed_m.shuffle_records, pooled_m.shuffle_records);
        assert_eq!(seed_m.shuffle_bytes, pooled_m.shuffle_bytes);
        assert_eq!(seed_m.reduce_groups, pooled_m.reduce_groups);
        assert_eq!(seed_m.max_group_bytes, pooled_m.max_group_bytes);
    }
}
