//! Experiment implementations, one per paper table/figure.

pub mod costs;
pub mod discovery;
pub mod machines;
pub mod scalability;

pub use costs::{
    ablation, fig5_dataflow_trace, lemma3_nnz_estimate, skew_ablation, table2_methods,
    table3_tucker_costs, table4_parafac_costs,
};
pub use discovery::{
    table5_datasets, table6_parafac_concepts, table7_tucker_groups, table8_tucker_concepts,
    table_nell_concepts,
};
pub use machines::fig8_machine_scalability;
pub use scalability::{
    fig1a_tucker_dims, fig1b_tucker_density, fig1c_tucker_core, fig7a_parafac_dims,
    fig7b_parafac_density, fig7c_parafac_rank, SweepScale,
};

use haten2_mapreduce::{Cluster, ClusterConfig};

/// Outcome of one experiment point.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Completed: simulated cluster seconds and actual wall seconds.
    Time {
        /// Simulated time on the configured cluster.
        sim_s: f64,
        /// Wall-clock seconds in this process.
        wall_s: f64,
    },
    /// Failed with (simulated) resource exhaustion — "o.o.m." in the paper.
    Oom(String),
    /// Not run (e.g. the paper omits the method at this point).
    Skipped,
}

impl Outcome {
    /// Render for a table cell: simulated seconds, `o.o.m.`, or `-`.
    pub fn cell(&self) -> String {
        match self {
            Outcome::Time { sim_s, .. } if *sim_s < 1.0 => format!("{sim_s:.3}"),
            Outcome::Time { sim_s, .. } => format!("{sim_s:.1}"),
            Outcome::Oom(_) => "o.o.m.".to_string(),
            Outcome::Skipped => "-".to_string(),
        }
    }

    /// Simulated seconds when completed.
    pub fn sim_s(&self) -> Option<f64> {
        match self {
            Outcome::Time { sim_s, .. } => Some(*sim_s),
            _ => None,
        }
    }

    /// True when the point hit the resource limit.
    pub fn is_oom(&self) -> bool {
        matches!(self, Outcome::Oom(_))
    }
}

/// Cluster configured like the experiments' scaled testbed: `machines`
/// machines and an aggregate intermediate-data capacity standing in for the
/// cluster's spill space.
pub fn experiment_cluster(machines: usize, capacity_bytes: usize) -> Cluster {
    Cluster::new(ClusterConfig {
        machines,
        cluster_capacity_bytes: Some(capacity_bytes),
        // Scaled-down cluster: with tensors ~10⁴× smaller than the paper's,
        // per-machine throughput shrinks by the same factor so the
        // data-dependent part of the running time stays visible next to the
        // fixed per-job overhead (the paper's Hadoop jobs moved GBs per job;
        // ours move MBs).
        map_bytes_per_s: 200.0e3,
        shuffle_bytes_per_s: 100.0e3,
        reduce_bytes_per_s: 200.0e3,
        ..ClusterConfig::default()
    })
}
