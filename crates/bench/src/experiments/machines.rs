//! Figure 8: machine scalability.
//!
//! The paper runs HaTen2-DRI on the NELL tensor with 10–40 machines and
//! plots the scale-up `T₁₀/T_M`, which grows near-linearly at first and
//! flattens as fixed per-job overheads dominate. The same curve emerges
//! here from the cluster cost model applied to the measured per-job work.

use crate::ExpTable;
use haten2_core::{parafac_als, tucker_als, AlsOptions, Variant};
use haten2_data::kb::KnowledgeBase;
use haten2_data::preprocess::{preprocess, PreprocessConfig};
use haten2_mapreduce::{Cluster, ClusterConfig};

/// Cluster for the machine-scalability experiment: like
/// [`super::experiment_cluster`] but with the per-job overhead scaled down
/// with the data (the paper's NELL jobs run for minutes, so overhead is a
/// minority cost at M=10 and only dominates as M grows — that mix is what
/// produces the near-linear-then-flattening curve).
fn fig8_cluster(machines: usize) -> Cluster {
    Cluster::new(ClusterConfig {
        machines,
        per_job_overhead_s: 2.0,
        map_bytes_per_s: 100.0e3,
        shuffle_bytes_per_s: 50.0e3,
        reduce_bytes_per_s: 100.0e3,
        ..ClusterConfig::default()
    })
}

/// Figure 8: scale-up `T₁₀/T_M` for HaTen2-Tucker-DRI and
/// HaTen2-PARAFAC-DRI on a scaled NELL stand-in, `M ∈ machines`.
pub fn fig8_machine_scalability(kb_scale: usize, machines: &[usize]) -> ExpTable {
    let kb = KnowledgeBase::nell(kb_scale.max(1), 0xf18);
    let (x, _) = preprocess(&kb, &PreprocessConfig::default());
    let core = 10.min(x.dims()[2] as usize).max(2);

    let mut t = ExpTable::new(
        "Fig 8: machine scalability (scale-up T10/TM)",
        &[
            "machines",
            "Tucker-DRI T10/TM",
            "PARAFAC-DRI T10/TM",
            "Tucker sim s",
            "PARAFAC sim s",
        ],
    );

    let mut tucker_times = Vec::new();
    let mut parafac_times = Vec::new();
    for &m in machines {
        let opts = AlsOptions {
            variant: Variant::Dri,
            max_iters: 2,
            tol: 0.0,
            seed: 7,
            use_combiner: false,
            distributed_fit: false,
            ..AlsOptions::default()
        };
        let cluster = fig8_cluster(m);
        tucker_als(&cluster, &x, [core, core, core], &opts).expect("tucker run");
        tucker_times.push(cluster.metrics().total_sim_time_s());

        let cluster = fig8_cluster(m);
        parafac_als(&cluster, &x, core, &opts).expect("parafac run");
        parafac_times.push(cluster.metrics().total_sim_time_s());
    }

    let t10_tucker = tucker_times[0];
    let t10_parafac = parafac_times[0];
    for (i, &m) in machines.iter().enumerate() {
        t.push_row(vec![
            m.to_string(),
            format!("{:.2}", t10_tucker / tucker_times[i]),
            format!("{:.2}", t10_parafac / parafac_times[i]),
            format!("{:.1}", tucker_times[i]),
            format!("{:.1}", parafac_times[i]),
        ]);
    }
    t.note(format!(
        "NELL stand-in: {:?} dims, {} nonzeros (paper: 26M x 26M x 48M, 144M)",
        x.dims(),
        x.nnz()
    ));
    t.note(
        "near-linear at first, flattening from fixed per-job overhead — the paper's Fig 8 shape",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_up_monotone_and_flattening() {
        let t = fig8_machine_scalability(1, &[10, 20, 40]);
        assert_eq!(t.rows.len(), 3);
        // Scale-up at M=10 is exactly 1.
        assert_eq!(t.cell(0, 1), "1.00");
        let s20: f64 = t.cell(1, 1).parse().unwrap();
        let s40: f64 = t.cell(2, 1).parse().unwrap();
        // More machines never slower…
        assert!(s20 >= 1.0 - 1e-9);
        assert!(s40 >= s20 - 1e-9);
        // …but sub-linear (flattening): T10/T40 < 4.
        assert!(s40 < 4.0, "scale-up {s40} should flatten below ideal 4x");
        // PARAFAC column behaves the same way.
        let p40: f64 = t.cell(2, 2).parse().unwrap();
        assert!((1.0..4.0).contains(&p40));
    }
}
