//! Cost-accounting experiments: Tables II, III, IV and the Lemma 3 check.
//!
//! Tables III and IV are the paper's analytic bounds on max intermediate
//! data and job counts per variant; here they are *measured* from the
//! engine's counters and printed side by side with the analytic formulas.

use super::experiment_cluster;
use crate::ExpTable;
use haten2_core::{parafac, tucker, Variant};
use haten2_data::random::{random_tensor, RandomTensorConfig};
use haten2_linalg::Mat;
use haten2_tensor::ops::ttm;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Table II: the method/idea matrix, generated from the variant metadata.
pub fn table2_methods() -> ExpTable {
    let mut t = ExpTable::new(
        "Table II: comparison of all methods",
        &[
            "Method",
            "Distributed?",
            "Decoupling (D)",
            "Remove deps (R)",
            "Integrate jobs (I)",
        ],
    );
    t.push_row(vec![
        "Tensor Toolbox".into(),
        "No".into(),
        "No".into(),
        "No".into(),
        "No".into(),
    ]);
    for v in Variant::ALL {
        let (d, r, i) = v.ideas();
        let yn = |b: bool| {
            if b {
                "Yes".to_string()
            } else {
                "No".to_string()
            }
        };
        t.push_row(vec![
            v.name().to_string(),
            "Yes".into(),
            yn(d),
            yn(r),
            yn(i),
        ]);
    }
    t
}

/// Table III: Tucker cost summary — measured max intermediate records and
/// job counts per variant, against the analytic formulas.
pub fn table3_tucker_costs(i_dim: u64, nnz: usize, q: usize, r: usize) -> ExpTable {
    let x = random_tensor(&RandomTensorConfig::cubic(i_dim, nnz, 0x7a3));
    let mut rng = StdRng::seed_from_u64(0x7a3);
    let u1 = Mat::random(q, i_dim as usize, &mut rng);
    let u2 = Mat::random(r, i_dim as usize, &mut rng);
    let n = x.nnz();
    let ijk = (i_dim as u128).pow(3);

    let analytic_inter = |v: Variant| -> String {
        match v {
            Variant::Naive => format!("nnz+IJK = {}", n as u128 + ijk),
            Variant::Dnn => format!("nnz*Q*R = {}", n * q * r),
            Variant::Drn | Variant::Dri => format!("nnz*(Q+R) = {}", n * (q + r)),
        }
    };
    let analytic_jobs = |v: Variant| tucker::expected_jobs(v, q, r);

    let mut t = ExpTable::new(
        format!("Table III: Tucker costs for X x2 Bt x3 Ct (nnz={n}, I={i_dim}, Q={q}, R={r})"),
        &[
            "Method",
            "measured max inter.",
            "analytic max inter.",
            "measured jobs",
            "analytic jobs",
        ],
    );
    for v in Variant::ALL {
        let cluster = experiment_cluster(4, usize::MAX >> 1);
        let outcome = tucker::project(
            &cluster,
            v,
            &x,
            0,
            &u1,
            &u2,
            &tucker::ProjectOptions::default(),
        );
        let m = cluster.metrics();
        let (inter, jobs) = match outcome {
            Ok(_) => (
                m.max_intermediate_records().to_string(),
                m.total_jobs().to_string(),
            ),
            Err(e) => (format!("o.o.m. ({e})"), "-".into()),
        };
        t.push_row(vec![
            v.name().to_string(),
            inter,
            analytic_inter(v),
            jobs,
            analytic_jobs(v).to_string(),
        ]);
    }
    t.note("measured max intermediate = largest per-job mapper output (records); matches the paper's accounting");
    t
}

/// Table IV: PARAFAC cost summary, measured vs analytic.
pub fn table4_parafac_costs(i_dim: u64, nnz: usize, r: usize) -> ExpTable {
    let x = random_tensor(&RandomTensorConfig::cubic(i_dim, nnz, 0x7a4));
    let mut rng = StdRng::seed_from_u64(0x7a4);
    let f1 = Mat::random(i_dim as usize, r, &mut rng);
    let f2 = Mat::random(i_dim as usize, r, &mut rng);
    let n = x.nnz();
    let ijk = (i_dim as u128).pow(3);

    let analytic_inter = |v: Variant| -> String {
        match v {
            Variant::Naive => format!("nnz+IJK = {}", n as u128 + ijk),
            Variant::Dnn => format!("nnz+J = {}", n + i_dim as usize),
            Variant::Drn | Variant::Dri => format!("2*nnz*R = {}", 2 * n * r),
        }
    };

    let mut t = ExpTable::new(
        format!("Table IV: PARAFAC costs for X(1) (C kr B) (nnz={n}, I={i_dim}, R={r})"),
        &[
            "Method",
            "measured max inter.",
            "analytic max inter.",
            "measured jobs",
            "analytic jobs",
        ],
    );
    for v in Variant::ALL {
        let cluster = experiment_cluster(4, usize::MAX >> 1);
        let outcome = parafac::mttkrp(&cluster, v, &x, 0, &f1, &f2);
        let m = cluster.metrics();
        let (inter, jobs) = match outcome {
            Ok(_) => (
                m.max_intermediate_records().to_string(),
                m.total_jobs().to_string(),
            ),
            Err(e) => (format!("o.o.m. ({e})"), "-".into()),
        };
        t.push_row(vec![
            v.name().to_string(),
            inter,
            analytic_inter(v),
            jobs,
            parafac::expected_jobs(v, r).to_string(),
        ]);
    }
    t
}

/// Lemma 3 (Appendix A): nnz(X ×₂ B) ≈ nnz(X)·Q for sparse X, dense B.
/// Sweeps density and reports measured vs estimated counts.
pub fn lemma3_nnz_estimate(i_dim: u64, q: usize, nnz_values: &[usize]) -> ExpTable {
    let mut t = ExpTable::new(
        format!("Lemma 3: nnz(X x2 B) vs nnz(X)*Q (I={i_dim}, Q={q})"),
        &[
            "nnz(X)",
            "measured nnz(X x2 B)",
            "estimate nnz(X)*Q",
            "ratio",
        ],
    );
    let mut rng = StdRng::seed_from_u64(0x1e3);
    let b = Mat::random(q, i_dim as usize, &mut rng);
    for &n in nnz_values {
        let x = random_tensor(&RandomTensorConfig::cubic(i_dim, n, 0x1e3 + n as u64));
        let y = ttm(&x, 1, &b).expect("ttm");
        let measured = y.nnz();
        let estimate = x.nnz() * q;
        t.push_row(vec![
            x.nnz().to_string(),
            measured.to_string(),
            estimate.to_string(),
            format!("{:.3}", measured as f64 / estimate as f64),
        ]);
    }
    t.note("first-order Taylor estimate; ratio < 1 only where fibers collide (high density)");
    t
}

/// Ablation: the design choices DESIGN.md calls out, measured.
///
/// * **Combiner** in the DNN Collapse jobs: shuffle records with vs
///   without map-side aggregation (result unchanged — checked in tests).
/// * **Job integration** (DRN → DRI): identical math, jobs and total
///   input-read bytes compared (the §III-B4 "read X once" claim).
pub fn ablation(i_dim: u64, nnz: usize, q: usize, r: usize) -> ExpTable {
    use haten2_core::als::AlsOptions;
    let x = random_tensor(&RandomTensorConfig::cubic(i_dim, nnz, 0xab1));
    let mut t = ExpTable::new(
        format!("Ablation (nnz={}, I={i_dim}, Q={q}, R={r})", x.nnz()),
        &[
            "configuration",
            "jobs",
            "shuffle records",
            "map input bytes",
            "sim s",
        ],
    );

    // Combiner on/off for a full Tucker-DNN projection.
    let mut rng = StdRng::seed_from_u64(0xab1);
    let u1 = Mat::random(q, i_dim as usize, &mut rng);
    let u2 = Mat::random(r, i_dim as usize, &mut rng);
    for (label, use_combiner) in [
        ("Tucker-DNN, no combiner", false),
        ("Tucker-DNN, with combiner", true),
    ] {
        let cluster = experiment_cluster(8, usize::MAX >> 1);
        tucker::project(
            &cluster,
            Variant::Dnn,
            &x,
            0,
            &u1,
            &u2,
            &tucker::ProjectOptions { use_combiner },
        )
        .expect("projection");
        let m = cluster.metrics();
        t.push_row(vec![
            label.to_string(),
            m.total_jobs().to_string(),
            m.jobs
                .iter()
                .map(|j| j.shuffle_records)
                .sum::<usize>()
                .to_string(),
            m.total_map_input_bytes().to_string(),
            format!("{:.1}", m.total_sim_time_s()),
        ]);
    }

    // DRN vs DRI for a full PARAFAC decomposition sweep: the job-count and
    // disk-read effect of IMHP integration.
    for variant in [Variant::Drn, Variant::Dri] {
        let cluster = experiment_cluster(8, usize::MAX >> 1);
        let opts = AlsOptions {
            variant,
            max_iters: 1,
            tol: 0.0,
            seed: 1,
            ..AlsOptions::default()
        };
        haten2_core::parafac_als(&cluster, &x, r, &opts).expect("parafac");
        let m = cluster.metrics();
        t.push_row(vec![
            format!("PARAFAC sweep, {}", variant.name()),
            m.total_jobs().to_string(),
            m.jobs
                .iter()
                .map(|j| j.shuffle_records)
                .sum::<usize>()
                .to_string(),
            m.total_map_input_bytes().to_string(),
            format!("{:.1}", m.total_sim_time_s()),
        ]);
    }
    t.note("combiner shrinks shuffle only; integration (DRI) shrinks jobs and input re-reads");
    t
}

/// Skew ablation: the paper's real tensors (Freebase, NELL) are heavily
/// skewed while its synthetic sweeps are uniform. This experiment runs the
/// same DRI MTTKRP on a uniform and on a power-law tensor of identical
/// nnz, exposing the reduce-side skew (heaviest key group) that the cost
/// model's skew term charges.
pub fn skew_ablation(i_dim: u64, nnz: usize, r: usize) -> ExpTable {
    use haten2_data::random::powerlaw_tensor;
    let cfg = RandomTensorConfig::cubic(i_dim, nnz, 0xab2);
    let uniform = random_tensor(&cfg);
    let skewed = powerlaw_tensor(&cfg, 1.0);
    let mut rng = StdRng::seed_from_u64(0xab2);
    let f1 = Mat::random(i_dim as usize, r, &mut rng);
    let f2 = Mat::random(i_dim as usize, r, &mut rng);

    let mut t = ExpTable::new(
        format!("Skew ablation: uniform vs power-law (I={i_dim}, nnz={nnz}, R={r})"),
        &[
            "workload",
            "heaviest slice nnz",
            "max reduce group bytes",
            "sim s",
        ],
    );
    for (label, x) in [("uniform", &uniform), ("power-law (α=1)", &skewed)] {
        let cluster = experiment_cluster(8, usize::MAX >> 1);
        parafac::mttkrp(&cluster, Variant::Dri, x, 0, &f1, &f2).expect("mttkrp");
        let m = cluster.metrics();
        let max_group = m.jobs.iter().map(|j| j.max_group_bytes).max().unwrap_or(0);
        let heaviest = x.heaviest_slice(0).expect("mode ok").map_or(0, |(_, c)| c);
        t.push_row(vec![
            label.to_string(),
            heaviest.to_string(),
            max_group.to_string(),
            format!("{:.1}", m.total_sim_time_s()),
        ]);
    }
    t.note("power-law index popularity concentrates one target-mode slice, inflating the largest reduce group — the straggler effect real KB tensors induce");
    t
}

/// Figures 5/6 analogue: the per-job dataflow trace of one Tucker
/// projection under each variant — job name, mapper-output records
/// (intermediate data), shuffle records, reduce groups — making the
/// paper's variant-comparison diagrams concrete with measured numbers.
pub fn fig5_dataflow_trace(i_dim: u64, nnz: usize, q: usize, r: usize) -> ExpTable {
    let x = random_tensor(&RandomTensorConfig::cubic(i_dim, nnz, 0xf05));
    let mut rng = StdRng::seed_from_u64(0xf05);
    let u1 = Mat::random(q, i_dim as usize, &mut rng);
    let u2 = Mat::random(r, i_dim as usize, &mut rng);

    let mut t = ExpTable::new(
        format!(
            "Fig 5/6 analogue: per-job dataflow of X x2 Bt x3 Ct (nnz={}, Q={q}, R={r})",
            x.nnz()
        ),
        &[
            "variant",
            "job",
            "map-out records",
            "shuffle records",
            "reduce groups",
        ],
    );
    for v in Variant::ALL {
        let cluster = experiment_cluster(4, usize::MAX >> 1);
        if tucker::project(
            &cluster,
            v,
            &x,
            0,
            &u1,
            &u2,
            &tucker::ProjectOptions::default(),
        )
        .is_err()
        {
            t.push_row(vec![
                v.name().into(),
                "o.o.m.".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        let m = cluster.metrics();
        // Collapse repeated per-column jobs into one row with a ×N count.
        let mut grouped: Vec<(String, usize, usize, usize, usize)> = Vec::new();
        for j in &m.jobs {
            let base = j
                .name
                .rfind(|c: char| c.is_ascii_digit())
                .map(|_| {
                    j.name
                        .trim_end_matches(|c: char| c.is_ascii_digit())
                        .to_string()
                })
                .unwrap_or_else(|| j.name.clone());
            match grouped.last_mut() {
                Some(g) if g.0 == base => {
                    g.1 += 1;
                    g.2 += j.map_output_records;
                    g.3 += j.shuffle_records;
                    g.4 += j.reduce_groups;
                }
                _ => {
                    grouped.push((
                        base,
                        1,
                        j.map_output_records,
                        j.shuffle_records,
                        j.reduce_groups,
                    ));
                }
            }
        }
        for (base, count, rec, shuf, groups) in grouped {
            let job = if count > 1 {
                format!("{base}* x{count}")
            } else {
                base
            };
            t.push_row(vec![
                v.name().to_string(),
                job,
                rec.to_string(),
                shuf.to_string(),
                groups.to_string(),
            ]);
        }
    }
    t.note("per-column jobs are folded into one row (x N); records are summed across the fold");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_trace_structure() {
        let t = fig5_dataflow_trace(12, 50, 2, 2);
        // DRI contributes exactly two rows (IMHP + CrossMerge).
        let dri_rows: Vec<_> = t.rows.iter().filter(|row| row[0] == "HaTen2-DRI").collect();
        assert_eq!(dri_rows.len(), 2);
        assert!(dri_rows[0][1].contains("imhp"));
        assert!(dri_rows[1][1].contains("crossmerge"));
        // Naive folds its per-column jobs.
        let naive_rows: Vec<_> = t
            .rows
            .iter()
            .filter(|row| row[0] == "HaTen2-Naive")
            .collect();
        assert!(naive_rows.iter().any(|row| row[1].contains("x")));
    }

    #[test]
    fn skew_ablation_shows_larger_groups() {
        let t = skew_ablation(300, 3000, 3);
        let uni: usize = t.rows[0][2].parse().unwrap();
        let skw: usize = t.rows[1][2].parse().unwrap();
        assert!(skw > uni, "skewed group {skw} should exceed uniform {uni}");
        let uni_t: f64 = t.rows[0][3].parse().unwrap();
        let skw_t: f64 = t.rows[1][3].parse().unwrap();
        assert!(
            skw_t >= uni_t,
            "skew must not be faster: {skw_t} vs {uni_t}"
        );
    }

    #[test]
    fn table2_structure() {
        let t = table2_methods();
        assert_eq!(t.rows.len(), 5);
        let dri = t.row_by_key("HaTen2-DRI").unwrap();
        assert_eq!(dri[2], "Yes");
        assert_eq!(dri[3], "Yes");
        assert_eq!(dri[4], "Yes");
        let naive = t.row_by_key("HaTen2-Naive").unwrap();
        assert_eq!(naive[2], "No");
    }

    #[test]
    fn table3_jobs_match_analytic_exactly() {
        let t = table3_tucker_costs(12, 40, 2, 3);
        for v in Variant::ALL {
            let row = t.row_by_key(v.name()).unwrap();
            assert_eq!(row[3], row[4], "{}: measured vs analytic jobs", v.name());
        }
    }

    #[test]
    fn table3_intermediate_matches_formulas() {
        let t = table3_tucker_costs(12, 40, 2, 3);
        // DNN measured max intermediate tracks nnz*Q*R: the final Collapse
        // job maps the fully expanded Y'. Fiber collisions shrink it below
        // the analytic estimate (the estimate is first-order, Lemma 3), so
        // assert the band rather than equality.
        let dnn = t.row_by_key("HaTen2-DNN").unwrap();
        let measured: usize = dnn[1].parse().unwrap();
        let analytic: usize = dnn[2].split(" = ").nth(1).unwrap().parse().unwrap();
        assert!(
            measured <= analytic && measured * 2 > analytic,
            "DNN measured {measured} vs analytic {analytic}"
        );
        // DRN/DRI merge job maps exactly nnz*(Q+R).
        for name in ["HaTen2-DRN", "HaTen2-DRI"] {
            let row = t.row_by_key(name).unwrap();
            let measured: usize = row[1].parse().unwrap();
            let analytic: usize = row[2].split(" = ").nth(1).unwrap().parse().unwrap();
            assert_eq!(measured, analytic, "{name}");
        }
        // Naive: nnz + IJK dominates (broadcast), measured >= IJK.
        let naive = t.row_by_key("HaTen2-Naive").unwrap();
        let measured: usize = naive[1].parse().unwrap();
        assert!(measured >= 12usize.pow(3));
    }

    #[test]
    fn table4_structure_and_jobs() {
        let t = table4_parafac_costs(10, 30, 2);
        for v in Variant::ALL {
            let row = t.row_by_key(v.name()).unwrap();
            assert_eq!(row[3], row[4], "{}", v.name());
        }
        // DRN/DRI merge maps exactly 2*nnz*R.
        for name in ["HaTen2-DRN", "HaTen2-DRI"] {
            let row = t.row_by_key(name).unwrap();
            let measured: usize = row[1].parse().unwrap();
            let analytic: usize = row[2].split(" = ").nth(1).unwrap().parse().unwrap();
            assert_eq!(measured, analytic, "{name}");
        }
    }

    #[test]
    fn lemma3_ratio_near_one_when_sparse() {
        let t = lemma3_nnz_estimate(60, 4, &[100, 300]);
        for r in 0..t.rows.len() {
            let ratio: f64 = t.cell(r, 3).parse().unwrap();
            assert!(ratio > 0.9 && ratio <= 1.0, "ratio {ratio}");
        }
    }
}
