//! Discovery experiments: Tables V–VIII.
//!
//! The paper decomposes the (preprocessed) Freebase-music tensor with
//! PARAFAC (rank 10) and Tucker (core 10×10×10) and reads concepts out of
//! the factors. Here the same pipeline runs on the synthetic Freebase-music
//! stand-in with planted concepts, so recovery is *checkable*: the top-k
//! members of the discovered groups are scored against the planted blocks.

use super::experiment_cluster;
use crate::ExpTable;
use haten2_core::{parafac_als, tucker_als, AlsOptions, Variant};
use haten2_data::datasets::TABLE_V;
use haten2_data::discovery::{
    factor_groups, parafac_concepts, recovery_precision, tucker_concepts,
};
use haten2_data::kb::KnowledgeBase;
use haten2_data::preprocess::{preprocess, PreprocessConfig};

/// Table V: dataset summary — paper scale vs generated stand-in.
pub fn table5_datasets(scale: usize) -> ExpTable {
    let mut t = ExpTable::new(
        "Table V: summary of tensor data",
        &["Dataset", "paper scale", "generated dims", "generated nnz"],
    );
    for spec in TABLE_V {
        let x = spec.generate(scale, 0x7a5);
        let d = x.dims();
        t.push_row(vec![
            spec.name().to_string(),
            spec.paper_scale().to_string(),
            format!("{} x {} x {}", d[0], d[1], d[2]),
            x.nnz().to_string(),
        ]);
    }
    t.note(format!(
        "generated at scale factor {scale}; see EXPERIMENTS.md for the mapping"
    ));
    t
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!(
            "{}…",
            &s[..s
                .char_indices()
                .take(n)
                .last()
                .map_or(0, |(i, c)| i + c.len_utf8())]
        )
    }
}

fn join_names(items: &[(String, f64)], k: usize) -> String {
    items
        .iter()
        .take(k)
        .map(|(n, _)| truncate(n, 28))
        .collect::<Vec<_>>()
        .join(" | ")
}

/// Shared setup: generate the Freebase-music stand-in, preprocess, return
/// `(kb, tensor)`.
fn freebase_setup(scale: usize) -> (KnowledgeBase, haten2_tensor::CooTensor3) {
    let kb = KnowledgeBase::freebase_music(scale.max(1), 0x7a6);
    let (x, _) = preprocess(&kb, &PreprocessConfig::default());
    (kb, x)
}

/// Table VI: concept discovery with HaTen2-PARAFAC on the Freebase-music
/// stand-in, plus recovery precision against the planted concepts.
pub fn table6_parafac_concepts(scale: usize, rank: usize, top_k: usize) -> ExpTable {
    let (kb, x) = freebase_setup(scale);
    kb_parafac_concepts(
        kb,
        x,
        rank,
        top_k,
        format!("Table VI: HaTen2-PARAFAC concepts on Freebase-music stand-in (rank {rank})"),
    )
}

/// Supplementary: the same concept-discovery pipeline on the NELL
/// stand-in (the paper defers its NELL discovery results to the
/// supplementary material).
pub fn table_nell_concepts(scale: usize, rank: usize, top_k: usize) -> ExpTable {
    let kb = KnowledgeBase::nell(scale.max(1), 0x7a7);
    let (x, _) = preprocess(&kb, &PreprocessConfig::default());
    kb_parafac_concepts(
        kb,
        x,
        rank,
        top_k,
        format!("Supplementary: HaTen2-PARAFAC concepts on NELL stand-in (rank {rank})"),
    )
}

fn kb_parafac_concepts(
    kb: KnowledgeBase,
    x: haten2_tensor::CooTensor3,
    rank: usize,
    top_k: usize,
    title: String,
) -> ExpTable {
    let cluster = experiment_cluster(8, usize::MAX >> 1);
    let opts = AlsOptions {
        max_iters: 15,
        tol: 1e-5,
        ..AlsOptions::with_variant(Variant::Dri)
    };
    let res = parafac_als(&cluster, &x, rank, &opts).expect("parafac on kb");
    let concepts = parafac_concepts(
        &res.factors,
        &res.lambda,
        top_k,
        &kb.subjects,
        &kb.objects,
        &kb.predicates,
    );

    let mut t = ExpTable::new(
        title,
        &[
            "Concept",
            "Subjects",
            "Objects",
            "Relations",
            "best planted match (P@k)",
        ],
    );
    for (n, c) in concepts.iter().take(kb.concepts.len().max(3)).enumerate() {
        // Score against every planted concept; report the best.
        let mut best = ("-".to_string(), 0.0f64);
        for planted in &kb.concepts {
            let names: Vec<String> = planted
                .subjects
                .iter()
                .map(|&s| kb.subjects[s as usize].clone())
                .collect();
            let p = recovery_precision(&c.subjects, &names);
            if p > best.1 {
                best = (planted.name.clone(), p);
            }
        }
        t.push_row(vec![
            format!("Concept{} (λ={:.2})", n + 1, c.weight),
            join_names(&c.subjects, 3),
            join_names(&c.objects, 3),
            join_names(&c.relations, 3),
            format!("{} ({:.2})", best.0, best.1),
        ]);
    }
    t.note(format!(
        "fit = {:.3}, planted concepts = {}",
        res.fit(),
        kb.concepts.len()
    ));
    t
}

/// Table VII: per-mode factor groups from HaTen2-Tucker.
pub fn table7_tucker_groups(scale: usize, core: usize, top_k: usize) -> ExpTable {
    let (kb, x) = freebase_setup(scale);
    let core_dims = clamp_core(core, &x);
    let cluster = experiment_cluster(8, usize::MAX >> 1);
    let opts = AlsOptions {
        max_iters: 10,
        tol: 1e-5,
        ..AlsOptions::with_variant(Variant::Dri)
    };
    let res = tucker_als(&cluster, &x, core_dims, &opts).expect("tucker on kb");

    let mut t = ExpTable::new(
        format!("Table VII: HaTen2-Tucker factor groups (core {core_dims:?})"),
        &["Mode", "Group", "Top members"],
    );
    let vocabs: [(&str, &Vec<String>); 3] = [
        ("Subject", &kb.subjects),
        ("Object", &kb.objects),
        ("Relation", &kb.predicates),
    ];
    for (mode, (label, names)) in vocabs.iter().enumerate() {
        let groups = factor_groups(&res.factors[mode], top_k, names);
        for g in groups.iter().take(3) {
            t.push_row(vec![
                label.to_string(),
                format!("{label}{}", g.column + 1),
                join_names(&g.members, 4),
            ]);
        }
    }
    t.note(format!("fit = {:.3}", res.fit));
    t
}

/// Table VIII: Tucker concepts — (subject, object, relation) group triples
/// ranked by core-tensor magnitude.
pub fn table8_tucker_concepts(scale: usize, core: usize, top_k: usize) -> ExpTable {
    let (kb, x) = freebase_setup(scale);
    let core_dims = clamp_core(core, &x);
    let cluster = experiment_cluster(8, usize::MAX >> 1);
    let opts = AlsOptions {
        max_iters: 10,
        tol: 1e-5,
        ..AlsOptions::with_variant(Variant::Dri)
    };
    let res = tucker_als(&cluster, &x, core_dims, &opts).expect("tucker on kb");
    let concepts = tucker_concepts(
        &res.core,
        &res.factors,
        top_k,
        3,
        &kb.subjects,
        &kb.objects,
        &kb.predicates,
    );

    let mut t = ExpTable::new(
        "Table VIII: HaTen2-Tucker concept discovery (core-driven group triples)",
        &[
            "Concept (S,O,R)",
            "core value",
            "Subjects",
            "Objects",
            "Relations",
        ],
    );
    for c in &concepts {
        t.push_row(vec![
            format!(
                "(S{},O{},R{})",
                c.groups.0 + 1,
                c.groups.1 + 1,
                c.groups.2 + 1
            ),
            format!("{:.2}", c.core_value),
            join_names(&c.subjects, 3),
            join_names(&c.objects, 3),
            join_names(&c.relations, 3),
        ]);
    }
    t.note("groups may repeat across concepts — Tucker's overlapping-group property (paper §IV-C)");
    t
}

fn clamp_core(core: usize, x: &haten2_tensor::CooTensor3) -> [usize; 3] {
    let d = x.dims();
    [
        core.min(d[0] as usize).max(1),
        core.min(d[1] as usize).max(1),
        core.min(d[2] as usize).max(1),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_lists_all_datasets() {
        let t = table5_datasets(1);
        assert_eq!(t.rows.len(), 3);
        assert!(t.row_by_key("Freebase-music").is_some());
        assert!(t.row_by_key("NELL").is_some());
        assert!(t.row_by_key("Random").is_some());
    }

    #[test]
    fn table6_discovers_planted_concepts() {
        let t = table6_parafac_concepts(1, 6, 5);
        assert!(t.rows.len() >= 3);
        // At least one concept should recover a planted block with
        // meaningful precision.
        let best: f64 = t
            .rows
            .iter()
            .filter_map(|r| {
                r[4].split('(')
                    .nth(1)
                    .and_then(|s| s.trim_end_matches(')').parse::<f64>().ok())
            })
            .fold(0.0, f64::max);
        assert!(best >= 0.6, "best planted-concept precision {best}");
    }

    #[test]
    fn table7_groups_all_modes() {
        let t = table7_tucker_groups(1, 4, 4);
        let modes: std::collections::HashSet<&str> = t.rows.iter().map(|r| r[0].as_str()).collect();
        assert!(modes.contains("Subject"));
        assert!(modes.contains("Object"));
        assert!(modes.contains("Relation"));
    }

    #[test]
    fn table8_concepts_ranked_by_core() {
        let t = table8_tucker_concepts(1, 4, 3);
        assert_eq!(t.rows.len(), 3);
        let v0: f64 = t.cell(0, 1).parse::<f64>().unwrap().abs();
        let v2: f64 = t.cell(2, 1).parse::<f64>().unwrap().abs();
        assert!(v0 >= v2);
    }
}
