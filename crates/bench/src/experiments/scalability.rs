//! Data-scalability experiments: Figures 1(a,b,c) and 7(a,b,c).
//!
//! Scale mapping (documented per figure in EXPERIMENTS.md): the paper runs
//! dimensionality 10³–10⁸ with 10·I nonzeros on a 40-machine Hadoop
//! cluster with terabytes of spill space; this reproduction runs a
//! geometrically spaced sweep at laptop scale with the cluster's aggregate
//! capacity and the single machine's memory budget scaled down by the same
//! factor, so the *crossover structure* — which method dies at which point,
//! and who is fastest — is preserved.

use super::{experiment_cluster, Outcome};
use crate::ExpTable;
use haten2_baseline::{parafac_als_baseline, tucker_als_baseline, BaselineError};
use haten2_core::{parafac_als, tucker_als, AlsOptions, Variant};
use haten2_data::random::{random_tensor, RandomTensorConfig};
use haten2_tensor::CooTensor3;

/// Scale of a sweep: `Tiny` for tests, `Default` for the laptop analogue of
/// the paper's sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepScale {
    /// Minutes-long laptop analogue of the paper sweep.
    Default,
    /// Seconds-long version for tests.
    Tiny,
}

/// Which decomposition a sweep exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Decomp {
    Tucker,
    Parafac,
}

struct SweepParams {
    /// Dimensionalities I (=J=K) for the dims sweep.
    dims: Vec<u64>,
    /// nnz = nnz_factor · I.
    nnz_factor: u64,
    /// Core size / rank.
    core: usize,
    machines: usize,
    capacity_bytes: usize,
    baseline_budget: usize,
    iters: usize,
    seed: u64,
}

impl SweepParams {
    fn dims_sweep(scale: SweepScale) -> Self {
        match scale {
            SweepScale::Default => SweepParams {
                dims: vec![50, 150, 500, 1500, 5000],
                nnz_factor: 10,
                core: 10,
                machines: 40,
                capacity_bytes: 64 << 20,
                baseline_budget: 8 << 20,
                iters: 2,
                seed: 0xf16,
            },
            SweepScale::Tiny => SweepParams {
                dims: vec![20, 60],
                nnz_factor: 10,
                core: 3,
                machines: 4,
                capacity_bytes: 2 << 20,
                baseline_budget: 256 << 10,
                iters: 1,
                seed: 0xf16,
            },
        }
    }

    fn density_sweep(scale: SweepScale) -> (Self, Vec<f64>) {
        match scale {
            SweepScale::Default => (
                SweepParams {
                    dims: vec![100],
                    nnz_factor: 0,
                    core: 10,
                    machines: 40,
                    capacity_bytes: 64 << 20,
                    baseline_budget: 4 << 20,
                    iters: 2,
                    seed: 0xf1b,
                },
                vec![1e-3, 3e-3, 1e-2, 3e-2],
            ),
            SweepScale::Tiny => (
                SweepParams {
                    dims: vec![30],
                    nnz_factor: 0,
                    core: 3,
                    machines: 4,
                    capacity_bytes: 2 << 20,
                    baseline_budget: 128 << 10,
                    iters: 1,
                    seed: 0xf1b,
                },
                vec![1e-2, 1e-1],
            ),
        }
    }

    fn core_sweep(scale: SweepScale) -> (Self, Vec<usize>) {
        match scale {
            SweepScale::Default => (
                SweepParams {
                    dims: vec![200],
                    nnz_factor: 10,
                    core: 0,
                    machines: 40,
                    capacity_bytes: 64 << 20,
                    baseline_budget: 2 << 20,
                    iters: 2,
                    seed: 0xf1c,
                },
                vec![4, 8, 16, 32],
            ),
            SweepScale::Tiny => (
                SweepParams {
                    dims: vec![30],
                    nnz_factor: 10,
                    core: 0,
                    machines: 4,
                    capacity_bytes: 2 << 20,
                    baseline_budget: 128 << 10,
                    iters: 1,
                    seed: 0xf1c,
                },
                vec![2, 4],
            ),
        }
    }
}

/// Run one HaTen2 point and report its outcome.
fn run_distributed(
    decomp: Decomp,
    variant: Variant,
    x: &CooTensor3,
    core: usize,
    p: &SweepParams,
) -> Outcome {
    let cluster = experiment_cluster(p.machines, p.capacity_bytes);
    let opts = AlsOptions {
        variant,
        max_iters: p.iters,
        tol: 0.0,
        seed: p.seed,
        ..AlsOptions::default()
    };
    let started = std::time::Instant::now();
    let result = match decomp {
        Decomp::Tucker => tucker_als(&cluster, x, [core, core, core], &opts).map(|_| ()),
        Decomp::Parafac => parafac_als(&cluster, x, core, &opts).map(|_| ()),
    };
    match result {
        Ok(()) => Outcome::Time {
            sim_s: cluster.metrics().total_sim_time_s(),
            wall_s: started.elapsed().as_secs_f64(),
        },
        Err(e) if e.is_oom() => Outcome::Oom(e.to_string()),
        Err(e) => Outcome::Oom(format!("failed: {e}")),
    }
}

/// Run one Tensor-Toolbox-baseline point.
fn run_baseline(decomp: Decomp, x: &CooTensor3, core: usize, p: &SweepParams) -> Outcome {
    let result = match decomp {
        Decomp::Tucker => tucker_als_baseline(
            x,
            [core, core, core],
            p.iters,
            0.0,
            p.seed,
            Some(p.baseline_budget),
        )
        .map(|r| r.wall_time_s),
        Decomp::Parafac => {
            parafac_als_baseline(x, core, p.iters, 0.0, p.seed, Some(p.baseline_budget))
                .map(|r| r.wall_time_s)
        }
    };
    match result {
        Ok(wall) => Outcome::Time {
            sim_s: wall,
            wall_s: wall,
        },
        Err(BaselineError::Oom { .. }) => Outcome::Oom("memory budget".into()),
        Err(e) => Outcome::Oom(format!("failed: {e}")),
    }
}

fn methods_header() -> Vec<&'static str> {
    vec![
        "point",
        "Tensor Toolbox",
        "HaTen2-Naive",
        "HaTen2-DNN",
        "HaTen2-DRN",
        "HaTen2-DRI",
    ]
}

fn dims_sweep(decomp: Decomp, scale: SweepScale, title: &str) -> ExpTable {
    let p = SweepParams::dims_sweep(scale);
    let mut t = ExpTable::new(title, &methods_header());
    for &i in &p.dims {
        let x = random_tensor(&RandomTensorConfig::cubic(
            i,
            (i * p.nnz_factor) as usize,
            p.seed,
        ));
        let mut row = vec![format!("I={i}")];
        row.push(run_baseline(decomp, &x, p.core, &p).cell());
        for variant in Variant::ALL {
            row.push(run_distributed(decomp, variant, &x, p.core, &p).cell());
        }
        t.push_row(row);
    }
    t.note("times: HaTen2 columns report simulated cluster seconds; Tensor Toolbox reports single-machine wall seconds");
    t.note(format!(
        "scaled analogue of the paper's 10^3..10^8 sweep: nnz = {}*I, {} machines, capacity {} MB, baseline budget {} MB",
        p.nnz_factor,
        p.machines,
        p.capacity_bytes >> 20,
        p.baseline_budget >> 20
    ));
    t
}

fn density_sweep(decomp: Decomp, scale: SweepScale, title: &str) -> ExpTable {
    let (p, densities) = SweepParams::density_sweep(scale);
    let i = p.dims[0];
    // The paper omits Naive here (it cannot process even the smallest point).
    let mut t = ExpTable::new(
        title,
        &[
            "density",
            "Tensor Toolbox",
            "HaTen2-DNN",
            "HaTen2-DRN",
            "HaTen2-DRI",
        ],
    );
    for &d in &densities {
        let x = random_tensor(&RandomTensorConfig::cubic_density(i, d, p.seed));
        let mut row = vec![format!("{d:.0e}")];
        row.push(run_baseline(decomp, &x, p.core, &p).cell());
        for variant in [Variant::Dnn, Variant::Drn, Variant::Dri] {
            row.push(run_distributed(decomp, variant, &x, p.core, &p).cell());
        }
        t.push_row(row);
    }
    t.note(format!(
        "dimensionality fixed at I={i}; HaTen2-Naive omitted as in the paper"
    ));
    t
}

fn core_sweep(decomp: Decomp, scale: SweepScale, title: &str) -> ExpTable {
    let (p, cores) = SweepParams::core_sweep(scale);
    let i = p.dims[0];
    let x = random_tensor(&RandomTensorConfig::cubic(
        i,
        (i * p.nnz_factor) as usize,
        p.seed,
    ));
    let mut t = ExpTable::new(
        title,
        &[
            "core/rank",
            "Tensor Toolbox",
            "HaTen2-DNN",
            "HaTen2-DRN",
            "HaTen2-DRI",
        ],
    );
    for &c in &cores {
        let mut row = vec![c.to_string()];
        row.push(run_baseline(decomp, &x, c, &p).cell());
        for variant in [Variant::Dnn, Variant::Drn, Variant::Dri] {
            row.push(run_distributed(decomp, variant, &x, c, &p).cell());
        }
        t.push_row(row);
    }
    t.note(format!("tensor fixed at I={i}, nnz={}", x.nnz()));
    t
}

/// Figure 1(a): Tucker running time vs dimensionality, all methods.
pub fn fig1a_tucker_dims(scale: SweepScale) -> ExpTable {
    dims_sweep(
        Decomp::Tucker,
        scale,
        "Fig 1(a): Tucker data scalability - nonzeros & dimensionality",
    )
}

/// Figure 1(b): Tucker running time vs density.
pub fn fig1b_tucker_density(scale: SweepScale) -> ExpTable {
    density_sweep(
        Decomp::Tucker,
        scale,
        "Fig 1(b): Tucker data scalability - density",
    )
}

/// Figure 1(c): Tucker running time vs core size.
pub fn fig1c_tucker_core(scale: SweepScale) -> ExpTable {
    core_sweep(
        Decomp::Tucker,
        scale,
        "Fig 1(c): Tucker data scalability - core tensor size",
    )
}

/// Figure 7(a): PARAFAC running time vs dimensionality, all methods.
pub fn fig7a_parafac_dims(scale: SweepScale) -> ExpTable {
    dims_sweep(
        Decomp::Parafac,
        scale,
        "Fig 7(a): PARAFAC data scalability - nonzeros & dimensionality",
    )
}

/// Figure 7(b): PARAFAC running time vs density.
pub fn fig7b_parafac_density(scale: SweepScale) -> ExpTable {
    density_sweep(
        Decomp::Parafac,
        scale,
        "Fig 7(b): PARAFAC data scalability - density",
    )
}

/// Figure 7(c): PARAFAC running time vs rank.
pub fn fig7c_parafac_rank(scale: SweepScale) -> ExpTable {
    core_sweep(
        Decomp::Parafac,
        scale,
        "Fig 7(c): PARAFAC data scalability - rank",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1a_tiny_has_expected_shape() {
        let t = fig1a_tucker_dims(SweepScale::Tiny);
        assert_eq!(t.rows.len(), 2);
        // At the smallest point everything completes.
        for c in 1..t.headers.len() {
            assert_ne!(t.cell(0, c), "", "col {c}");
        }
        // DRI completes everywhere.
        let dri_col = t.headers.iter().position(|h| h == "HaTen2-DRI").unwrap();
        for r in 0..t.rows.len() {
            assert_ne!(t.cell(r, dri_col), "o.o.m.");
        }
        // Naive dies at the larger point (broadcast exceeds capacity).
        let naive_col = t.headers.iter().position(|h| h == "HaTen2-Naive").unwrap();
        assert_eq!(t.cell(1, naive_col), "o.o.m.");
    }

    #[test]
    fn fig7a_tiny_runs_all_methods() {
        let t = fig7a_parafac_dims(SweepScale::Tiny);
        assert_eq!(t.headers.len(), 6);
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn fig1b_tiny_omits_naive() {
        let t = fig1b_tucker_density(SweepScale::Tiny);
        assert!(!t.headers.iter().any(|h| h.contains("Naive")));
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn fig1c_and_fig7c_sweep_core() {
        let t = fig1c_tucker_core(SweepScale::Tiny);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.cell(0, 0), "2");
        let t = fig7c_parafac_rank(SweepScale::Tiny);
        assert_eq!(t.cell(1, 0), "4");
    }
}
