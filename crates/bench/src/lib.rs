//! Experiment harness regenerating every table and figure of the HaTen2
//! paper's evaluation (§IV).
//!
//! Each experiment is a library function returning an [`ExpTable`] so that
//! the `haten2-exp` binary, the Criterion benches, and the integration
//! tests all run the same code. Scales are configurable: experiments
//! default to a laptop-sized analogue of the paper's cluster sweep (the
//! scale mapping is documented per experiment in `EXPERIMENTS.md`).
//!
//! | Paper item | Function |
//! |------------|----------|
//! | Fig. 1(a)  | [`experiments::fig1a_tucker_dims`] |
//! | Fig. 1(b)  | [`experiments::fig1b_tucker_density`] |
//! | Fig. 1(c)  | [`experiments::fig1c_tucker_core`] |
//! | Fig. 7(a)  | [`experiments::fig7a_parafac_dims`] |
//! | Fig. 7(b)  | [`experiments::fig7b_parafac_density`] |
//! | Fig. 7(c)  | [`experiments::fig7c_parafac_rank`] |
//! | Fig. 8     | [`experiments::fig8_machine_scalability`] |
//! | Table II   | [`experiments::table2_methods`] |
//! | Table III  | [`experiments::table3_tucker_costs`] |
//! | Table IV   | [`experiments::table4_parafac_costs`] |
//! | Table V    | [`experiments::table5_datasets`] |
//! | Table VI   | [`experiments::table6_parafac_concepts`] |
//! | Table VII  | [`experiments::table7_tucker_groups`] |
//! | Table VIII | [`experiments::table8_tucker_concepts`] |
//! | Lemma 3    | [`experiments::lemma3_nnz_estimate`] |

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod experiments;
pub mod seed_engine;
pub mod table;

pub use table::ExpTable;
