//! Plain-text result tables for experiment output.

/// A titled table of string cells, printed with aligned columns — the
/// "rows/series the paper reports" for each experiment.
#[derive(Debug, Clone)]
pub struct ExpTable {
    /// Table/figure title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each row should match `headers.len()`).
    pub rows: Vec<Vec<String>>,
    /// Free-form footnotes (scale mapping, o.o.m. explanations, …).
    pub notes: Vec<String>,
}

impl ExpTable {
    /// New empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        ExpTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Append a footnote.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Cell at (row, col); empty string when out of range.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .map_or("", String::as_str)
    }

    /// Find a row whose first cell equals `key`.
    pub fn row_by_key(&self, key: &str) -> Option<&[String]> {
        self.rows
            .iter()
            .find(|r| r.first().is_some_and(|c| c == key))
            .map(|r| r.as_slice())
    }

    /// Render as CSV (RFC-4180 quoting for cells containing commas, quotes
    /// or newlines). Notes become trailing `#`-prefixed comment lines.
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| field(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str("# ");
            out.push_str(n);
            out.push('\n');
        }
        out
    }

    /// A filesystem-safe slug of the title (for CSV filenames).
    pub fn slug(&self) -> String {
        self.title
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect::<String>()
            .split('_')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("_")
    }

    /// Write the CSV rendering to `dir/<slug>.csv`; returns the path.
    pub fn save_csv(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.slug()));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

impl std::fmt::Display for ExpTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate().take(cols) {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let write_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            for (c, cell) in cells.iter().enumerate().take(cols) {
                if c > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}", width = widths[c])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        for n in &self.notes {
            writeln!(f, "  * {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_prints() {
        let mut t = ExpTable::new("Demo", &["a", "bb"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["333".into(), "4".into()]);
        t.note("a note");
        let s = t.to_string();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("333"));
        assert!(s.contains("* a note"));
        assert_eq!(t.cell(0, 1), "2");
        assert_eq!(t.cell(9, 9), "");
    }

    #[test]
    fn row_by_key_finds() {
        let mut t = ExpTable::new("T", &["k", "v"]);
        t.push_row(vec!["x".into(), "1".into()]);
        t.push_row(vec!["y".into(), "2".into()]);
        assert_eq!(t.row_by_key("y").unwrap()[1], "2");
        assert!(t.row_by_key("z").is_none());
    }

    #[test]
    fn csv_rendering_and_quoting() {
        let mut t = ExpTable::new("Fig 1(a): Tucker", &["a", "b"]);
        t.push_row(vec!["plain".into(), "with,comma".into()]);
        t.push_row(vec!["with\"quote".into(), "2".into()]);
        t.note("scale note");
        let csv = t.to_csv();
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("plain,\"with,comma\"\n"));
        assert!(csv.contains("\"with\"\"quote\",2\n"));
        assert!(csv.contains("# scale note\n"));
    }

    #[test]
    fn slug_is_filesystem_safe() {
        let t = ExpTable::new("Fig 1(a): Tucker data / scalability!", &["x"]);
        let slug = t.slug();
        assert!(slug.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
        assert!(slug.contains("fig_1_a"));
    }

    #[test]
    fn save_csv_writes_file() {
        let dir = std::env::temp_dir().join("haten2_csv_test");
        let mut t = ExpTable::new("Demo CSV", &["x"]);
        t.push_row(vec!["1".into()]);
        let path = t.save_csv(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "x\n1\n");
        std::fs::remove_file(path).ok();
    }
}
