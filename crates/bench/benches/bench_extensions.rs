//! Criterion benches for the beyond-the-paper extensions: missing-value
//! EM-ALS, nonnegative multiplicative updates, compression-accelerated
//! PARAFAC, and the N-way kernels.

// Benchmark harness code: `unwrap` on setup is acceptable (workspace
// clippy policy allows it outside library code only via this opt-out).
#![allow(clippy::unwrap_used)]
#![allow(missing_docs)] // criterion_group! generates undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use haten2_core::nway::{nway_mttkrp, nway_parafac_als};
use haten2_core::{
    nonneg_parafac, parafac_als, parafac_missing, parafac_via_compression, AlsOptions, Variant,
};
use haten2_data::random::{random_tensor, RandomTensorConfig};
use haten2_linalg::Mat;
use haten2_mapreduce::{Cluster, ClusterConfig};
use haten2_tensor::DynTensor;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::time::Duration;

fn cluster() -> Cluster {
    Cluster::new(ClusterConfig {
        machines: 8,
        ..Default::default()
    })
}

fn opts(iters: usize) -> AlsOptions {
    AlsOptions {
        max_iters: iters,
        tol: 0.0,
        ..AlsOptions::with_variant(Variant::Dri)
    }
}

/// All PARAFAC flavors on the same input: the extension overhead is visible
/// as the ratio against plain ALS.
fn parafac_flavors(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions_parafac_flavors");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    let x = random_tensor(&RandomTensorConfig::cubic(60, 600, 61));
    g.bench_function("plain_als", |b| {
        b.iter(|| parafac_als(&cluster(), &x, 3, &opts(2)).unwrap())
    });
    g.bench_function("missing_em_als", |b| {
        b.iter(|| parafac_missing(&cluster(), &x, 3, &opts(2)).unwrap())
    });
    g.bench_function("nonneg_multiplicative", |b| {
        b.iter(|| nonneg_parafac(&cluster(), &x, 3, &opts(2)).unwrap())
    });
    g.bench_function("via_compression", |b| {
        b.iter(|| parafac_via_compression(&cluster(), &x, 3, [4, 4, 4], &opts(2)).unwrap())
    });
    g.finish();
}

/// N-way MTTKRP cost as order grows (3-, 4-, 5-way) at fixed nnz.
fn nway_order_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions_nway_order");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    let mut rng = StdRng::seed_from_u64(62);
    for order in [3usize, 4, 5] {
        let dims: Vec<u64> = vec![30; order];
        let mut t = DynTensor::new(dims.clone());
        for _ in 0..400 {
            let idx: Vec<u64> = dims.iter().map(|&d| rng.gen_range(0..d)).collect();
            t.push(&idx, rng.gen_range(0.5..1.5)).unwrap();
        }
        let t = t.coalesce();
        let factors: Vec<Mat> = dims
            .iter()
            .map(|&d| Mat::random(d as usize, 3, &mut rng))
            .collect();
        let refs: Vec<&Mat> = factors.iter().collect();
        g.bench_with_input(BenchmarkId::new("mttkrp_mode0", order), &order, |b, _| {
            b.iter(|| nway_mttkrp(&cluster(), &t, 0, &refs).unwrap())
        });
    }
    g.finish();
}

/// Full 4-way decomposition throughput.
fn nway_full_decomposition(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions_nway_parafac");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    let mut rng = StdRng::seed_from_u64(63);
    let dims = vec![25u64, 25, 25, 10];
    let mut t = DynTensor::new(dims.clone());
    for _ in 0..500 {
        let idx: Vec<u64> = dims.iter().map(|&d| rng.gen_range(0..d)).collect();
        t.push(&idx, rng.gen_range(0.5..1.5)).unwrap();
    }
    let t = t.coalesce();
    g.bench_function("4way_rank3_2sweeps", |b| {
        b.iter(|| nway_parafac_als(&cluster(), &t, 3, 2, 0.0, 7).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    parafac_flavors,
    nway_order_sweep,
    nway_full_decomposition
);
criterion_main!(benches);
