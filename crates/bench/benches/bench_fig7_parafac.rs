//! Criterion bench for Figure 7: the PARAFAC MTTKRP kernel
//! `Y ← X₍₁₎ (C ⊙ B)` per HaTen2 variant, across the three sweep axes.

// Benchmark harness code: `unwrap` on setup is acceptable (workspace
// clippy policy allows it outside library code only via this opt-out).
#![allow(clippy::unwrap_used)]
#![allow(missing_docs)] // criterion_group! generates undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use haten2_core::parafac::mttkrp;
use haten2_core::Variant;
use haten2_data::random::{random_tensor, RandomTensorConfig};
use haten2_linalg::Mat;
use haten2_mapreduce::{Cluster, ClusterConfig};
use rand::{rngs::StdRng, SeedableRng};
use std::time::Duration;

fn cluster() -> Cluster {
    Cluster::new(ClusterConfig {
        machines: 8,
        ..Default::default()
    })
}

fn factors(j: usize, k: usize, r: usize) -> (Mat, Mat) {
    let mut rng = StdRng::seed_from_u64(11);
    (Mat::random(j, r, &mut rng), Mat::random(k, r, &mut rng))
}

fn fig7a_dims(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7a_parafac_dims");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    for &i in &[30u64, 60, 120] {
        let x = random_tensor(&RandomTensorConfig::cubic(i, (i * 10) as usize, 12));
        let (f1, f2) = factors(i as usize, i as usize, 4);
        let variants: &[Variant] = if i <= 30 {
            &Variant::ALL
        } else {
            &[Variant::Dnn, Variant::Drn, Variant::Dri]
        };
        for &v in variants {
            g.bench_with_input(BenchmarkId::new(v.name(), i), &i, |b, _| {
                b.iter(|| mttkrp(&cluster(), v, &x, 0, &f1, &f2).unwrap())
            });
        }
    }
    g.finish();
}

fn fig7b_density(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7b_parafac_density");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    let i = 50u64;
    for &density in &[1e-3f64, 4e-3, 1.6e-2] {
        let x = random_tensor(&RandomTensorConfig::cubic_density(i, density, 13));
        let (f1, f2) = factors(i as usize, i as usize, 4);
        for v in [Variant::Dnn, Variant::Drn, Variant::Dri] {
            g.bench_with_input(
                BenchmarkId::new(v.name(), format!("{density:.0e}")),
                &density,
                |b, _| b.iter(|| mttkrp(&cluster(), v, &x, 0, &f1, &f2).unwrap()),
            );
        }
    }
    g.finish();
}

fn fig7c_rank(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7c_parafac_rank");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    let i = 60u64;
    let x = random_tensor(&RandomTensorConfig::cubic(i, (i * 10) as usize, 14));
    for &r in &[2usize, 4, 8] {
        let (f1, f2) = factors(i as usize, i as usize, r);
        for v in [Variant::Dnn, Variant::Drn, Variant::Dri] {
            g.bench_with_input(BenchmarkId::new(v.name(), r), &r, |b, _| {
                b.iter(|| mttkrp(&cluster(), v, &x, 0, &f1, &f2).unwrap())
            });
        }
    }
    g.finish();
}

criterion_group!(benches, fig7a_dims, fig7b_density, fig7c_rank);
criterion_main!(benches);
