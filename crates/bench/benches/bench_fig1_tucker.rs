//! Criterion bench for Figure 1: the Tucker projection kernel
//! `Y ← X ×₂ Bᵀ ×₃ Cᵀ` per HaTen2 variant, across the three sweep axes
//! (dimensionality, density, core size).

// Benchmark harness code: `unwrap` on setup is acceptable (workspace
// clippy policy allows it outside library code only via this opt-out).
#![allow(clippy::unwrap_used)]
#![allow(missing_docs)] // criterion_group! generates undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use haten2_core::tucker::{project, ProjectOptions};
use haten2_core::Variant;
use haten2_data::random::{random_tensor, RandomTensorConfig};
use haten2_linalg::Mat;
use haten2_mapreduce::{Cluster, ClusterConfig};
use rand::{rngs::StdRng, SeedableRng};
use std::time::Duration;

fn cluster() -> Cluster {
    Cluster::new(ClusterConfig {
        machines: 8,
        ..Default::default()
    })
}

fn factors(q: usize, r: usize, j: usize, k: usize) -> (Mat, Mat) {
    let mut rng = StdRng::seed_from_u64(1);
    (Mat::random(q, j, &mut rng), Mat::random(r, k, &mut rng))
}

fn fig1a_dims(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1a_tucker_dims");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    for &i in &[30u64, 60, 120] {
        let x = random_tensor(&RandomTensorConfig::cubic(i, (i * 10) as usize, 2));
        let (u1, u2) = factors(4, 4, i as usize, i as usize);
        // Naive only at the smallest point (it broadcasts IJK records).
        let variants: &[Variant] = if i <= 30 {
            &Variant::ALL
        } else {
            &[Variant::Dnn, Variant::Drn, Variant::Dri]
        };
        for &v in variants {
            g.bench_with_input(BenchmarkId::new(v.name(), i), &i, |b, _| {
                b.iter(|| {
                    project(&cluster(), v, &x, 0, &u1, &u2, &ProjectOptions::default()).unwrap()
                })
            });
        }
    }
    g.finish();
}

fn fig1b_density(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1b_tucker_density");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    let i = 50u64;
    for &density in &[1e-3f64, 4e-3, 1.6e-2] {
        let x = random_tensor(&RandomTensorConfig::cubic_density(i, density, 3));
        let (u1, u2) = factors(4, 4, i as usize, i as usize);
        for v in [Variant::Dnn, Variant::Drn, Variant::Dri] {
            g.bench_with_input(
                BenchmarkId::new(v.name(), format!("{density:.0e}")),
                &density,
                |b, _| {
                    b.iter(|| {
                        project(&cluster(), v, &x, 0, &u1, &u2, &ProjectOptions::default()).unwrap()
                    })
                },
            );
        }
    }
    g.finish();
}

fn fig1c_core(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1c_tucker_core");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    let i = 60u64;
    let x = random_tensor(&RandomTensorConfig::cubic(i, (i * 10) as usize, 4));
    for &core in &[2usize, 4, 8] {
        let (u1, u2) = factors(core, core, i as usize, i as usize);
        for v in [Variant::Dnn, Variant::Drn, Variant::Dri] {
            g.bench_with_input(BenchmarkId::new(v.name(), core), &core, |b, _| {
                b.iter(|| {
                    project(&cluster(), v, &x, 0, &u1, &u2, &ProjectOptions::default()).unwrap()
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, fig1a_dims, fig1b_density, fig1c_core);
criterion_main!(benches);
