//! Criterion bench for Figure 8: one full HaTen2-DRI decomposition sweep on
//! the NELL stand-in at varying (simulated) machine counts. Criterion
//! measures the engine's real wall time; the simulated scale-up series is
//! printed once at the end for the figure itself.

// Benchmark harness code: `unwrap` on setup is acceptable (workspace
// clippy policy allows it outside library code only via this opt-out).
#![allow(clippy::unwrap_used)]
#![allow(missing_docs)] // criterion_group! generates undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use haten2_core::{parafac_als, tucker_als, AlsOptions, Variant};
use haten2_data::kb::KnowledgeBase;
use haten2_data::preprocess::{preprocess, PreprocessConfig};
use haten2_mapreduce::{Cluster, ClusterConfig};
use std::time::Duration;

/// Scaled cluster model matching the fig8 experiment: per-job overhead and
/// throughput shrunk with the data so the overhead/data mix reproduces the
/// paper's regime (see `experiments::machines`).
fn fig8_cluster(machines: usize) -> Cluster {
    Cluster::new(ClusterConfig {
        machines,
        per_job_overhead_s: 2.0,
        map_bytes_per_s: 100.0e3,
        shuffle_bytes_per_s: 50.0e3,
        reduce_bytes_per_s: 100.0e3,
        ..ClusterConfig::default()
    })
}

fn fig8(c: &mut Criterion) {
    let kb = KnowledgeBase::nell(1, 0xf18);
    let (x, _) = preprocess(&kb, &PreprocessConfig::default());
    let opts = AlsOptions {
        max_iters: 1,
        tol: 0.0,
        ..AlsOptions::with_variant(Variant::Dri)
    };
    let core = 4usize;

    let mut g = c.benchmark_group("fig8_machine_scalability");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    let mut sim_times = Vec::new();
    for &m in &[10usize, 20, 40] {
        g.bench_with_input(BenchmarkId::new("tucker_dri", m), &m, |b, &m| {
            b.iter(|| {
                let cluster = Cluster::new(ClusterConfig::with_machines(m));
                tucker_als(&cluster, &x, [core, core, core], &opts).unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("parafac_dri", m), &m, |b, &m| {
            b.iter(|| {
                let cluster = Cluster::new(ClusterConfig::with_machines(m));
                parafac_als(&cluster, &x, core, &opts).unwrap()
            })
        });
        let cluster = fig8_cluster(m);
        tucker_als(&cluster, &x, [core, core, core], &opts).unwrap();
        sim_times.push((m, cluster.metrics().total_sim_time_s()));
    }
    g.finish();

    let t10 = sim_times[0].1;
    println!("\nFig 8 series (simulated scale-up T10/TM):");
    for (m, t) in sim_times {
        println!("  machines={m:>2}  T10/TM={:.2}  sim_s={t:.1}", t10 / t);
    }
}

criterion_group!(benches, fig8);
criterion_main!(benches);
