//! Criterion benches for the cost tables (III, IV), the dataset pipeline
//! (Table V), the discovery pipeline (Tables VI–VIII), and Lemma 3.

// Benchmark harness code: `unwrap` on setup is acceptable (workspace
// clippy policy allows it outside library code only via this opt-out).
#![allow(clippy::unwrap_used)]
#![allow(missing_docs)] // criterion_group! generates undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use haten2_core::parafac::mttkrp;
use haten2_core::tucker::{project, ProjectOptions};
use haten2_core::{parafac_als, AlsOptions, Variant};
use haten2_data::discovery::parafac_concepts;
use haten2_data::kb::KnowledgeBase;
use haten2_data::preprocess::{preprocess, PreprocessConfig};
use haten2_data::random::{random_tensor, RandomTensorConfig};
use haten2_linalg::Mat;
use haten2_mapreduce::{Cluster, ClusterConfig};
use haten2_tensor::ops::ttm;
use rand::{rngs::StdRng, SeedableRng};
use std::time::Duration;

fn cluster() -> Cluster {
    Cluster::new(ClusterConfig {
        machines: 8,
        ..Default::default()
    })
}

/// Table III: the Tucker projection per variant at a fixed operating point,
/// so the per-variant job-count/intermediate-data trade-off is visible as
/// wall time.
fn table3_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_tucker_kernel");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    let i = 40u64;
    let x = random_tensor(&RandomTensorConfig::cubic(i, 400, 31));
    let mut rng = StdRng::seed_from_u64(31);
    let u1 = Mat::random(4, i as usize, &mut rng);
    let u2 = Mat::random(4, i as usize, &mut rng);
    for v in Variant::ALL {
        g.bench_function(v.name(), |b| {
            b.iter(|| project(&cluster(), v, &x, 0, &u1, &u2, &ProjectOptions::default()).unwrap())
        });
    }
    g.finish();
}

/// Table IV: the PARAFAC MTTKRP per variant.
fn table4_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_parafac_kernel");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    let i = 40u64;
    let x = random_tensor(&RandomTensorConfig::cubic(i, 400, 32));
    let mut rng = StdRng::seed_from_u64(32);
    let f1 = Mat::random(i as usize, 4, &mut rng);
    let f2 = Mat::random(i as usize, 4, &mut rng);
    for v in Variant::ALL {
        g.bench_function(v.name(), |b| {
            b.iter(|| mttkrp(&cluster(), v, &x, 0, &f1, &f2).unwrap())
        });
    }
    g.finish();
}

/// Table V: generation + preprocessing throughput of the dataset pipeline.
fn table5_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("table5_dataset_pipeline");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    for &scale in &[1usize, 2] {
        g.bench_with_input(
            BenchmarkId::new("freebase_music", scale),
            &scale,
            |b, &s| {
                b.iter(|| {
                    let kb = KnowledgeBase::freebase_music(s, 33);
                    preprocess(&kb, &PreprocessConfig::default())
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("nell", scale), &scale, |b, &s| {
            b.iter(|| {
                let kb = KnowledgeBase::nell(s, 33);
                preprocess(&kb, &PreprocessConfig::default())
            })
        });
    }
    g.finish();
}

/// Tables VI–VIII: the end-to-end discovery pipeline (decompose + extract).
fn discovery_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("table6_8_discovery");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    let kb = KnowledgeBase::freebase_music(1, 34);
    let (x, _) = preprocess(&kb, &PreprocessConfig::default());
    g.bench_function("parafac_concepts_end_to_end", |b| {
        b.iter(|| {
            let cl = cluster();
            let opts = AlsOptions {
                max_iters: 3,
                tol: 0.0,
                ..AlsOptions::with_variant(Variant::Dri)
            };
            let res = parafac_als(&cl, &x, 4, &opts).unwrap();
            parafac_concepts(
                &res.factors,
                &res.lambda,
                3,
                &kb.subjects,
                &kb.objects,
                &kb.predicates,
            )
        })
    });
    g.finish();
}

/// Lemma 3: sparse ttm whose output size the lemma estimates.
fn lemma3_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("lemma3_ttm");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    let mut rng = StdRng::seed_from_u64(35);
    for &nnz in &[500usize, 2000] {
        let x = random_tensor(&RandomTensorConfig::cubic(100, nnz, 35));
        let b = Mat::random(8, 100, &mut rng);
        g.bench_with_input(BenchmarkId::new("ttm_mode1", nnz), &nnz, |bch, _| {
            bch.iter(|| ttm(&x, 1, &b).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    table3_kernels,
    table4_kernels,
    table5_pipeline,
    discovery_pipeline,
    lemma3_kernel
);
criterion_main!(benches);
