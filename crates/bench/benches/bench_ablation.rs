//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * combiner on/off in Collapse jobs (is DNN's win the decoupling or the
//!   map-side aggregation?),
//! * DRN vs DRI with identical math (isolates the job-integration effect),
//! * subspace iteration vs Gram-eigen SVD for the Tucker factor update.

// Benchmark harness code: `unwrap` on setup is acceptable (workspace
// clippy policy allows it outside library code only via this opt-out).
#![allow(clippy::unwrap_used)]
#![allow(missing_docs)] // criterion_group! generates undocumented items

use criterion::{criterion_group, criterion_main, Criterion};
use haten2_core::records::tensor_records;
use haten2_core::tucker::{project, ProjectOptions};
use haten2_core::Variant;
use haten2_data::random::{random_tensor, RandomTensorConfig};
use haten2_linalg::{leading_left_singular_vectors, sym_eigen, Mat, SubspaceOptions};
use haten2_mapreduce::{Cluster, ClusterConfig};
use haten2_tensor::ops::ttm;
use rand::{rngs::StdRng, SeedableRng};
use std::time::Duration;

fn cluster() -> Cluster {
    Cluster::new(ClusterConfig {
        machines: 8,
        ..Default::default()
    })
}

/// Combiner ablation: the Collapse job of DNN with and without map-side
/// aggregation.
fn ablation_combiner(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_collapse_combiner");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    let x = random_tensor(&RandomTensorConfig::cubic(60, 600, 41));
    let records = tensor_records(&x);
    // Expand to a 4-way-tagged load so the collapse has real work.
    let expanded: Vec<_> = (0..4u64)
        .flat_map(|q| {
            records
                .iter()
                .map(move |&((i, j, k, _), v)| ((i, j, k, q), v * (q + 1) as f64))
        })
        .collect();
    for (label, use_combiner) in [("no_combiner", false), ("with_combiner", true)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                haten2_core::ops::collapse_job(&cluster(), "ablate", &expanded, 1, use_combiner)
                    .unwrap()
            })
        });
    }
    g.finish();
}

/// Job-integration ablation: DRN (separate Hadamard jobs) vs DRI (fused
/// IMHP) computing the identical projection.
fn ablation_job_integration(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_drn_vs_dri");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    let i = 60u64;
    let x = random_tensor(&RandomTensorConfig::cubic(i, 600, 42));
    let mut rng = StdRng::seed_from_u64(42);
    let u1 = Mat::random(6, i as usize, &mut rng);
    let u2 = Mat::random(6, i as usize, &mut rng);
    for v in [Variant::Drn, Variant::Dri] {
        g.bench_function(v.name(), |b| {
            b.iter(|| project(&cluster(), v, &x, 0, &u1, &u2, &ProjectOptions::default()).unwrap())
        });
    }
    g.finish();
}

/// SVD-step ablation: leading left singular vectors of the matricized
/// projection via blocked subspace iteration vs via the dense Gram
/// eigendecomposition.
fn ablation_svd(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_svd_step");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    let i = 400u64;
    let x = random_tensor(&RandomTensorConfig::cubic(i, 4000, 43));
    let mut rng = StdRng::seed_from_u64(43);
    let u1 = Mat::random(6, i as usize, &mut rng);
    let u2 = Mat::random(6, i as usize, &mut rng);
    // Build the projected tensor once (this is about the SVD step only).
    let y = ttm(&ttm(&x, 1, &u1).unwrap(), 2, &u2).unwrap();
    let y_mat = y.matricize(0).unwrap();
    let p = 6usize;

    g.bench_function("subspace_iteration", |b| {
        b.iter(|| leading_left_singular_vectors(&y_mat, p, &SubspaceOptions::default()).unwrap())
    });
    g.bench_function("gram_eigen", |b| {
        b.iter(|| {
            // Dense route: G = YᵀY (36×36), eigendecompose, U = Y V Λ^{-1/2}.
            let gram = y_mat.gram_dense().unwrap();
            let e = sym_eigen(&gram).unwrap();
            let mut v_top = Mat::zeros(gram.rows(), p);
            for c in 0..p {
                for r in 0..gram.rows() {
                    v_top.set(r, c, e.vectors.get(r, c));
                }
            }
            use haten2_linalg::LinOp;
            y_mat.apply(&v_top).unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    ablation_combiner,
    ablation_job_integration,
    ablation_svd
);
criterion_main!(benches);
