//! In-memory PARAFAC-ALS baseline (Tensor Toolbox `cp_als` equivalent).

use crate::memory::{coo_bytes, mat_bytes, MemoryMeter};
use crate::{BaselineError, Result};
use haten2_linalg::{pinv, Mat};
use haten2_tensor::ops::mttkrp_dense;
use haten2_tensor::CooTensor3;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Result of [`parafac_als_baseline`].
#[derive(Debug, Clone)]
pub struct BaselineParafac {
    /// Column norms `λ`.
    pub lambda: Vec<f64>,
    /// Factor matrices with unit-norm columns.
    pub factors: [Mat; 3],
    /// Fit after each sweep.
    pub fits: Vec<f64>,
    /// Sweeps executed.
    pub iterations: usize,
    /// Peak estimated working set in bytes.
    pub peak_memory_bytes: usize,
    /// Wall time in seconds.
    pub wall_time_s: f64,
}

/// Single-machine PARAFAC-ALS with memory accounting.
///
/// Mathematically identical to `haten2_core::parafac_als` but executed
/// in-process, charging a [`MemoryMeter`] for the tensor, the factors, and
/// the per-sweep MTTKRP working set; exceeding `memory_budget` aborts with
/// [`BaselineError::Oom`].
pub fn parafac_als_baseline(
    x: &CooTensor3,
    rank: usize,
    max_iters: usize,
    tol: f64,
    seed: u64,
    memory_budget: Option<usize>,
) -> Result<BaselineParafac> {
    if rank == 0 {
        return Err(BaselineError::InvalidArgument(
            "rank must be positive".into(),
        ));
    }
    let started = std::time::Instant::now();
    let dims = x.dims();
    let mut meter = MemoryMeter::new(memory_budget);
    meter.charge(coo_bytes(x.nnz()), "input tensor")?;
    for (n, &d) in dims.iter().enumerate() {
        meter.charge(mat_bytes(d as usize, rank), &format!("factor matrix {n}"))?;
    }
    // MTTKRP working set: accumulator (Iₙ×R) plus the expanded per-nonzero
    // slice products (nnz×R) a sparse cp_als materializes per mode.
    let mttkrp_ws =
        mat_bytes(dims.iter().map(|&d| d as usize).max().unwrap_or(0), rank) + x.nnz() * rank * 8;
    meter.charge(mttkrp_ws, "MTTKRP working set")?;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut factors = [
        Mat::random(dims[0] as usize, rank, &mut rng),
        Mat::random(dims[1] as usize, rank, &mut rng),
        Mat::random(dims[2] as usize, rank, &mut rng),
    ];
    let mut lambda = vec![1.0; rank];
    let norm_x_sq = x.fro_norm_sq();
    let norm_x = norm_x_sq.sqrt();

    let mut fits = Vec::new();
    let mut iterations = 0;
    for _ in 0..max_iters {
        iterations += 1;
        let mut last_m: Option<Mat> = None;
        for mode in 0..3 {
            let others: Vec<usize> = (0..3).filter(|&m| m != mode).collect();
            let m = mttkrp_dense(x, mode, [&factors[0], &factors[1], &factors[2]])?;
            let g = factors[others[0]]
                .gram()
                .hadamard(&factors[others[1]].gram())?;
            factors[mode] = m.matmul(&pinv(&g)?)?;
            lambda = factors[mode].normalize_columns();
            if mode == 2 {
                last_m = Some(m);
            }
        }
        let m = last_m.expect("three modes swept");
        let c = &factors[2];
        let mut inner = 0.0;
        for k in 0..c.rows() {
            for (r, &l) in lambda.iter().enumerate() {
                inner += m.get(k, r) * c.get(k, r) * l;
            }
        }
        let g_all = factors[0]
            .gram()
            .hadamard(&factors[1].gram())?
            .hadamard(&factors[2].gram())?;
        let mut norm_model_sq = 0.0;
        for r in 0..rank {
            for s in 0..rank {
                norm_model_sq += lambda[r] * lambda[s] * g_all.get(r, s);
            }
        }
        let err_sq = (norm_x_sq + norm_model_sq - 2.0 * inner).max(0.0);
        let fit = if norm_x > 0.0 {
            1.0 - err_sq.sqrt() / norm_x
        } else {
            1.0
        };
        let prev = fits.last().copied();
        fits.push(fit);
        if let Some(p) = prev {
            if (fit - p).abs() < tol {
                break;
            }
        }
    }

    Ok(BaselineParafac {
        lambda,
        factors,
        fits,
        iterations,
        peak_memory_bytes: meter.peak_bytes(),
        wall_time_s: started.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use haten2_tensor::Entry3;
    use rand::Rng;

    fn sparse_random(dims: [u64; 3], nnz: usize, seed: u64) -> CooTensor3 {
        let mut rng = StdRng::seed_from_u64(seed);
        let entries = (0..nnz)
            .map(|_| {
                Entry3::new(
                    rng.gen_range(0..dims[0]),
                    rng.gen_range(0..dims[1]),
                    rng.gen_range(0..dims[2]),
                    rng.gen_range(0.5..2.0),
                )
            })
            .collect();
        CooTensor3::from_entries(dims, entries).unwrap()
    }

    #[test]
    fn fit_monotone_and_bounded() {
        let x = sparse_random([8, 7, 6], 50, 61);
        let res = parafac_als_baseline(&x, 3, 10, 0.0, 1, None).unwrap();
        for w in res.fits.windows(2) {
            assert!(w[1] >= w[0] - 1e-6);
        }
        assert!(res.fits.iter().all(|&f| f <= 1.0 + 1e-9));
        assert!(res.peak_memory_bytes > 0);
    }

    #[test]
    fn oom_on_small_budget() {
        let x = sparse_random([100, 100, 100], 2000, 62);
        let err = parafac_als_baseline(&x, 10, 5, 1e-4, 1, Some(10_000)).unwrap_err();
        assert!(matches!(err, BaselineError::Oom { .. }));
    }

    #[test]
    fn matches_distributed_result_same_seed() {
        // The baseline and haten2-core run the same math from the same seed,
        // so their fit trajectories must agree.
        let x = sparse_random([6, 5, 4], 25, 63);
        let base = parafac_als_baseline(&x, 2, 5, 0.0, 99, None).unwrap();
        let cluster =
            haten2_mapreduce::Cluster::new(haten2_mapreduce::ClusterConfig::with_machines(2));
        let opts = haten2_core::AlsOptions {
            variant: haten2_core::Variant::Dri,
            max_iters: 5,
            tol: 0.0,
            seed: 99,
            use_combiner: false,
            distributed_fit: false,
            ..haten2_core::AlsOptions::default()
        };
        let dist = haten2_core::parafac_als(&cluster, &x, 2, &opts).unwrap();
        for (a, b) in base.fits.iter().zip(&dist.fits) {
            assert!((a - b).abs() < 1e-8, "baseline {a} vs distributed {b}");
        }
    }

    #[test]
    fn rank_zero_rejected() {
        let x = sparse_random([3, 3, 3], 5, 64);
        assert!(parafac_als_baseline(&x, 0, 5, 1e-4, 1, None).is_err());
    }
}
