//! Memory accounting for the single-machine baseline.

use crate::{BaselineError, Result};

/// Tracks the estimated working set of the baseline against a budget.
///
/// `charge` adds an allocation, `release` removes one (for transient
/// working sets), and the peak is retained for reporting. With no budget
/// (`None`) the meter only observes.
#[derive(Debug, Clone)]
pub struct MemoryMeter {
    budget: Option<usize>,
    current: usize,
    peak: usize,
}

impl MemoryMeter {
    /// Meter with an optional budget in bytes.
    pub fn new(budget: Option<usize>) -> Self {
        MemoryMeter {
            budget,
            current: 0,
            peak: 0,
        }
    }

    /// Charge `bytes` for `what`; fails with [`BaselineError::Oom`] when the
    /// budget would be exceeded.
    pub fn charge(&mut self, bytes: usize, what: &str) -> Result<()> {
        let next = self.current.saturating_add(bytes);
        if let Some(budget) = self.budget {
            if next > budget {
                return Err(BaselineError::Oom {
                    needed_bytes: next,
                    budget_bytes: budget,
                    what: what.to_string(),
                });
            }
        }
        self.current = next;
        self.peak = self.peak.max(next);
        Ok(())
    }

    /// Release a previously charged allocation.
    pub fn release(&mut self, bytes: usize) {
        self.current = self.current.saturating_sub(bytes);
    }

    /// Current working set estimate.
    pub fn current_bytes(&self) -> usize {
        self.current
    }

    /// Peak working set estimate.
    pub fn peak_bytes(&self) -> usize {
        self.peak
    }
}

/// Bytes for an `n`-entry COO tensor, with the ~2× bookkeeping factor of a
/// Matlab `sptensor` (subs matrix of doubles + vals).
pub fn coo_bytes(nnz: usize) -> usize {
    nnz * 32 * 2
}

/// Bytes for a dense `rows × cols` double matrix.
pub fn mat_bytes(rows: usize, cols: usize) -> usize {
    rows * cols * 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_within_budget() {
        let mut m = MemoryMeter::new(Some(100));
        m.charge(60, "a").unwrap();
        m.charge(40, "b").unwrap();
        assert_eq!(m.current_bytes(), 100);
        assert_eq!(m.peak_bytes(), 100);
    }

    #[test]
    fn charge_over_budget_fails() {
        let mut m = MemoryMeter::new(Some(100));
        m.charge(60, "a").unwrap();
        let err = m.charge(50, "b").unwrap_err();
        assert!(matches!(
            err,
            BaselineError::Oom {
                needed_bytes: 110,
                budget_bytes: 100,
                ..
            }
        ));
        // Failed charge does not change state.
        assert_eq!(m.current_bytes(), 60);
    }

    #[test]
    fn release_frees_but_keeps_peak() {
        let mut m = MemoryMeter::new(Some(100));
        m.charge(80, "a").unwrap();
        m.release(50);
        assert_eq!(m.current_bytes(), 30);
        assert_eq!(m.peak_bytes(), 80);
        m.charge(60, "b").unwrap();
    }

    #[test]
    fn unbudgeted_meter_observes() {
        let mut m = MemoryMeter::new(None);
        m.charge(usize::MAX / 2, "huge").unwrap();
        assert!(m.peak_bytes() > 0);
    }

    #[test]
    fn size_helpers() {
        assert_eq!(coo_bytes(10), 640);
        assert_eq!(mat_bytes(3, 4), 96);
    }
}
