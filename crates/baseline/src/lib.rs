//! Single-machine baseline: an in-memory, MET-style implementation of
//! PARAFAC-ALS and Tucker-ALS.
//!
//! The paper compares HaTen2 against the Matlab Tensor Toolbox (with Kolda &
//! Sun's MET — Memory-Efficient Tucker) running on one machine of the
//! cluster. That comparator is reproduced here in Rust: the same ALS math as
//! `haten2-core`, but executed in-process with **explicit memory
//! accounting** against a configurable budget standing in for the paper's
//! 32 GB per machine. When the tensor, the factor matrices, or the
//! decomposition's working set exceed the budget, the run aborts with
//! [`BaselineError::Oom`] — the "o.o.m." entries of Figures 1 and 7.
//!
//! The memory model charges the dominant allocations of a Tensor
//! Toolbox-style sparse implementation:
//!
//! * the COO tensor itself (`nnz · 24` bytes of indices + value, plus
//!   Matlab's ~2× bookkeeping),
//! * each factor matrix (`Iₙ · R` doubles),
//! * PARAFAC: the MTTKRP accumulator and the Khatri–Rao slice working set
//!   (`nnz · R` doubles — MET-style, never the full `JK × R` product),
//! * Tucker: the semi-sparse projected tensor `Y = X ×₂ Bᵀ ×₃ Cᵀ`
//!   (`nnz · min(Q, R)` fibers of length `Q·R` in the worst case; we charge
//!   the Lemma 3 estimate `nnz · Q` entries after the first product).

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod memory;
pub mod parafac;
pub mod tucker;

pub use memory::MemoryMeter;
pub use parafac::{parafac_als_baseline, BaselineParafac};
pub use tucker::{tucker_als_baseline, tucker_als_baseline_met, BaselineTucker, MetMode};

/// Errors from the single-machine baseline.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// The working set exceeded the memory budget — the paper's "o.o.m.".
    Oom {
        /// Bytes the computation needed at its peak.
        needed_bytes: usize,
        /// Configured budget.
        budget_bytes: usize,
        /// Which allocation pushed it over.
        what: String,
    },
    /// Underlying tensor failure.
    Tensor(String),
    /// Underlying linear-algebra failure.
    Linalg(String),
    /// Invalid parameters.
    InvalidArgument(String),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Oom {
                needed_bytes,
                budget_bytes,
                what,
            } => write!(
                f,
                "out of memory allocating {what}: needs {needed_bytes} B, budget {budget_bytes} B"
            ),
            BaselineError::Tensor(m) => write!(f, "tensor: {m}"),
            BaselineError::Linalg(m) => write!(f, "linalg: {m}"),
            BaselineError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<haten2_tensor::TensorError> for BaselineError {
    fn from(e: haten2_tensor::TensorError) -> Self {
        BaselineError::Tensor(e.to_string())
    }
}

impl From<haten2_linalg::LinalgError> for BaselineError {
    fn from(e: haten2_linalg::LinalgError) -> Self {
        BaselineError::Linalg(e.to_string())
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, BaselineError>;
