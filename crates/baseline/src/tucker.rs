//! In-memory Tucker-ALS baseline (Tensor Toolbox `tucker_als` with MET).

use crate::memory::{coo_bytes, mat_bytes, MemoryMeter};
use crate::{BaselineError, Result};
use haten2_linalg::{leading_left_singular_vectors, thin_qr, Mat, SubspaceOptions};
use haten2_tensor::ops::ttm;
use haten2_tensor::{CooTensor3, DenseTensor3};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Result of [`tucker_als_baseline`].
#[derive(Debug, Clone)]
pub struct BaselineTucker {
    /// Core tensor.
    pub core: DenseTensor3,
    /// Orthonormal factor matrices.
    pub factors: [Mat; 3],
    /// `‖G‖` after each sweep.
    pub core_norms: Vec<f64>,
    /// Sweeps executed.
    pub iterations: usize,
    /// Fit `1 − ‖X − X̂‖/‖X‖`.
    pub fit: f64,
    /// Peak estimated working set in bytes.
    pub peak_memory_bytes: usize,
    /// Wall time in seconds.
    pub wall_time_s: f64,
}

/// How the baseline materializes the projected tensor
/// `Y = X ×ₘ₁ U₁ᵀ ×ₘ₂ U₂ᵀ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetMode {
    /// Materialize Y in full (`≈ nnz·Q` cells, Lemma 3) — the pre-MET
    /// Tensor Toolbox behaviour; dies earliest.
    #[default]
    Full,
    /// Kolda & Sun's MET: compute Y one target-mode slice at a time, so
    /// the working set is the *heaviest slice's* expansion instead of the
    /// whole tensor's. Trades memory for repeated passes (modelled in the
    /// charge; the arithmetic here is identical).
    SliceWise,
}

/// Single-machine Tucker-ALS (HOOI) with MET-style memory accounting.
///
/// The projected tensor `Y = X ×ₘ₁ U₁ᵀ ×ₘ₂ U₂ᵀ` is materialized sparsely
/// (its nonzero count is `≈ nnz·Q` after the first product — Lemma 3), and
/// that allocation is what blows the budget first at scale, matching where
/// the Tensor Toolbox dies in Figure 1. See [`tucker_als_baseline_met`] for
/// the slice-wise MET mode.
pub fn tucker_als_baseline(
    x: &CooTensor3,
    core_dims: [usize; 3],
    max_iters: usize,
    tol: f64,
    seed: u64,
    memory_budget: Option<usize>,
) -> Result<BaselineTucker> {
    tucker_als_baseline_met(
        x,
        core_dims,
        max_iters,
        tol,
        seed,
        memory_budget,
        MetMode::Full,
    )
}

/// [`tucker_als_baseline`] with an explicit [`MetMode`].
#[allow(clippy::too_many_arguments)]
pub fn tucker_als_baseline_met(
    x: &CooTensor3,
    core_dims: [usize; 3],
    max_iters: usize,
    tol: f64,
    seed: u64,
    memory_budget: Option<usize>,
    met_mode: MetMode,
) -> Result<BaselineTucker> {
    let dims = x.dims();
    for (n, (&cd, &d)) in core_dims.iter().zip(dims.iter()).enumerate() {
        if cd == 0 || cd as u64 > d {
            return Err(BaselineError::InvalidArgument(format!(
                "core dim {cd} invalid for mode {n} of size {d}"
            )));
        }
    }
    let started = std::time::Instant::now();
    let mut meter = MemoryMeter::new(memory_budget);
    meter.charge(coo_bytes(x.nnz()), "input tensor")?;
    for (n, &d) in dims.iter().enumerate() {
        meter.charge(
            mat_bytes(d as usize, core_dims[n]),
            &format!("factor matrix {n}"),
        )?;
    }
    // Projected tensor working set per Lemma 3: nnz·max(Q,R) entries in
    // Full mode; in MET SliceWise mode only the heaviest target-mode
    // slice's expansion is resident at a time.
    let q_max = core_dims.iter().copied().max().unwrap_or(1);
    let y_cells = match met_mode {
        MetMode::Full => x.nnz() * q_max,
        MetMode::SliceWise => {
            let heaviest = (0..3)
                .filter_map(|m| x.heaviest_slice(m).ok().flatten())
                .map(|(_, c)| c)
                .max()
                .unwrap_or(0);
            heaviest * q_max
        }
    };
    meter.charge(coo_bytes(y_cells), "projected tensor Y")?;

    let [p_dim, q_dim, r_dim] = core_dims;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut factors = [
        Mat::zeros(dims[0] as usize, p_dim),
        thin_qr(&Mat::random(dims[1] as usize, q_dim, &mut rng))?,
        thin_qr(&Mat::random(dims[2] as usize, r_dim, &mut rng))?,
    ];
    let norm_x_sq = x.fro_norm_sq();
    let norm_x = norm_x_sq.sqrt();

    let mut core = DenseTensor3::zeros(core_dims);
    let mut core_norms: Vec<f64> = Vec::new();
    let mut iterations = 0;
    for sweep in 0..max_iters {
        iterations += 1;
        let mut last_y: Option<CooTensor3> = None;
        for mode in 0..3 {
            let others: Vec<usize> = (0..3).filter(|&m| m != mode).collect();
            let u1 = factors[others[0]].transpose();
            let u2 = factors[others[1]].transpose();
            // Sequential sparse n-mode products (the MET path).
            let t = ttm(x, others[0], &u1)?;
            let y = ttm(&t, others[1], &u2)?;
            // Permute so the target mode leads, then extract singular vectors.
            let perm: [usize; 3] = match mode {
                0 => [0, 1, 2],
                1 => [1, 0, 2],
                _ => [2, 0, 1],
            };
            let y_canon = permute(&y, perm)?;
            let y_mat = y_canon.matricize(0)?;
            let sub_opts = SubspaceOptions {
                seed: seed ^ ((sweep as u64) << 8 | mode as u64),
                ..Default::default()
            };
            factors[mode] = leading_left_singular_vectors(&y_mat, core_dims[mode], &sub_opts)?;
            if mode == 2 {
                last_y = Some(y_canon);
            }
        }
        // Core from the final projection Y (canonical (k, p, q)).
        let y = last_y.expect("three modes swept");
        let c = &factors[2];
        core = DenseTensor3::zeros(core_dims);
        for e in y.entries() {
            let (k, p, q) = (e.i as usize, e.j as usize, e.k as usize);
            for r in 0..r_dim {
                core.add_at(p, q, r, e.v * c.get(k, r));
            }
        }
        let norm_g = core.fro_norm();
        let prev = core_norms.last().copied();
        core_norms.push(norm_g);
        if let Some(p) = prev {
            if (norm_g - p).abs() < tol * norm_x.max(1.0) {
                break;
            }
        }
    }

    let norm_g = core_norms.last().copied().unwrap_or(0.0);
    let err_sq = (norm_x_sq - norm_g * norm_g).max(0.0);
    let fit = if norm_x > 0.0 {
        1.0 - err_sq.sqrt() / norm_x
    } else {
        1.0
    };
    Ok(BaselineTucker {
        core,
        factors,
        core_norms,
        iterations,
        fit,
        peak_memory_bytes: meter.peak_bytes(),
        wall_time_s: started.elapsed().as_secs_f64(),
    })
}

/// Permute a sparse tensor's modes: output mode `p` takes input mode
/// `perm[p]`.
fn permute(t: &CooTensor3, perm: [usize; 3]) -> Result<CooTensor3> {
    let d = t.dims();
    let dims = [d[perm[0]], d[perm[1]], d[perm[2]]];
    let entries = t
        .entries()
        .iter()
        .map(|e| {
            haten2_tensor::Entry3::new(e.index(perm[0]), e.index(perm[1]), e.index(perm[2]), e.v)
        })
        .collect();
    Ok(CooTensor3::from_entries(dims, entries)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use haten2_tensor::Entry3;
    use rand::Rng;

    fn sparse_random(dims: [u64; 3], nnz: usize, seed: u64) -> CooTensor3 {
        let mut rng = StdRng::seed_from_u64(seed);
        let entries = (0..nnz)
            .map(|_| {
                Entry3::new(
                    rng.gen_range(0..dims[0]),
                    rng.gen_range(0..dims[1]),
                    rng.gen_range(0..dims[2]),
                    rng.gen_range(0.5..2.0),
                )
            })
            .collect();
        CooTensor3::from_entries(dims, entries).unwrap()
    }

    #[test]
    fn core_norm_monotone() {
        let x = sparse_random([8, 7, 6], 50, 71);
        let res = tucker_als_baseline(&x, [2, 2, 2], 8, 0.0, 1, None).unwrap();
        for w in res.core_norms.windows(2) {
            assert!(w[1] >= w[0] - 1e-6, "{:?}", res.core_norms);
        }
        for f in &res.factors {
            assert!(f.gram().approx_eq(&Mat::identity(f.cols()), 1e-8));
        }
    }

    #[test]
    fn matches_distributed_same_seed() {
        let x = sparse_random([6, 5, 5], 30, 72);
        let base = tucker_als_baseline(&x, [2, 2, 2], 4, 0.0, 5, None).unwrap();
        let cluster =
            haten2_mapreduce::Cluster::new(haten2_mapreduce::ClusterConfig::with_machines(2));
        let opts = haten2_core::AlsOptions {
            variant: haten2_core::Variant::Dri,
            max_iters: 4,
            tol: 0.0,
            seed: 5,
            use_combiner: false,
            distributed_fit: false,
            ..haten2_core::AlsOptions::default()
        };
        let dist = haten2_core::tucker_als(&cluster, &x, [2, 2, 2], &opts).unwrap();
        for (a, b) in base.core_norms.iter().zip(&dist.core_norms) {
            assert!((a - b).abs() < 1e-8, "baseline {a} vs distributed {b}");
        }
    }

    #[test]
    fn met_slicewise_survives_where_full_dies() {
        // Budget tuned between the two modes' working sets: Full charges
        // nnz·Q cells, SliceWise only the heaviest slice's expansion.
        let x = sparse_random([60, 60, 60], 1200, 75);
        let q = 5;
        let full_needs = crate::memory::coo_bytes(x.nnz() * q);
        let budget = full_needs / 2 + crate::memory::coo_bytes(x.nnz());
        let full = tucker_als_baseline_met(&x, [q, q, q], 2, 0.0, 1, Some(budget), MetMode::Full);
        assert!(
            matches!(full, Err(BaselineError::Oom { .. })),
            "Full should o.o.m."
        );
        let met =
            tucker_als_baseline_met(&x, [q, q, q], 2, 0.0, 1, Some(budget), MetMode::SliceWise)
                .unwrap();
        assert!(met.fit.is_finite());
    }

    #[test]
    fn met_modes_compute_identical_results() {
        let x = sparse_random([8, 7, 6], 40, 76);
        let full = tucker_als_baseline_met(&x, [2, 2, 2], 3, 0.0, 9, None, MetMode::Full).unwrap();
        let met =
            tucker_als_baseline_met(&x, [2, 2, 2], 3, 0.0, 9, None, MetMode::SliceWise).unwrap();
        for (a, b) in full.core_norms.iter().zip(&met.core_norms) {
            assert!((a - b).abs() < 1e-12);
        }
        // SliceWise's accounted peak is no larger.
        assert!(met.peak_memory_bytes <= full.peak_memory_bytes);
    }

    #[test]
    fn oom_on_small_budget() {
        let x = sparse_random([50, 50, 50], 1000, 73);
        let err = tucker_als_baseline(&x, [5, 5, 5], 3, 1e-4, 1, Some(20_000)).unwrap_err();
        assert!(matches!(err, BaselineError::Oom { .. }));
    }

    #[test]
    fn invalid_core_rejected() {
        let x = sparse_random([4, 4, 4], 10, 74);
        assert!(tucker_als_baseline(&x, [0, 2, 2], 3, 1e-4, 1, None).is_err());
        assert!(tucker_als_baseline(&x, [5, 2, 2], 3, 1e-4, 1, None).is_err());
    }
}
