//! The known-bad corpus: one fixture per lint and UDF-purity rule, each
//! tripping its rule exactly once — so a rule that stops firing (or
//! starts double-reporting) fails here, not in review.

#![allow(clippy::unwrap_used)]

use haten2_srcscan::effects::{check_effects, EFFECT_RULES};
use haten2_srcscan::{scan_udf_purity, PURITY_RULES};
use std::path::PathBuf;
use xtask::{lint_file, RULES};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Fixtures exercised through the source linter (`lint_file`).
const LINT_FIXTURES: &[(&str, &str)] = &[
    ("no_raw_threads.rs", "no-raw-threads"),
    ("no_default_hasher.rs", "no-default-hasher"),
    ("no_unwrap.rs", "no-unwrap"),
    ("no_debug_macros.rs", "no-debug-macros"),
    ("no_direct_run_job_dfs.rs", "no-direct-run-job-dfs"),
    ("shared_backoff.rs", "shared-backoff"),
    ("no_per_record_alloc.rs", "no-per-record-alloc"),
    ("no_direct_fs.rs", "no-direct-fs"),
    ("no_uncertified_rewrite.rs", "no-uncertified-rewrite"),
    ("undocumented_unsafe.rs", "undocumented-unsafe"),
];

/// Fixtures exercised through the UDF-purity scanner.
const PURITY_FIXTURES: &[(&str, &str)] = &[
    ("no_unordered_iteration.rs", "no-unordered-iteration"),
    ("no_wall_clock.rs", "no-wall-clock"),
    ("no_thread_id.rs", "no-thread-id"),
    (
        "unannotated_float_reduction.rs",
        "unannotated-float-reduction",
    ),
];

/// Fixtures exercised through the effect-inference race rules.
const EFFECT_FIXTURES: &[(&str, &str)] = &[
    ("undeclared_effect.rs", "undeclared-effect"),
    ("unordered_conflict.rs", "unordered-conflict"),
    ("over_declared_read.rs", "over-declared-read"),
];

/// `.plan` fixtures exercised through the communication/rewrite passes
/// (`haten2_analyze::fixture`).
const PLAN_FIXTURES: &[(&str, &str)] = &[
    ("shuffle_mismatch.plan", "shuffle-mismatch"),
    ("comm_bound_exceeded.plan", "comm-bound-exceeded"),
    ("rewrite_volume_inflation.plan", "rewrite-volume-inflation"),
    ("rewrite_dataflow_broken.plan", "rewrite-dataflow-broken"),
];

#[test]
fn each_lint_fixture_fires_its_rule_exactly_once() {
    for (file, rule) in LINT_FIXTURES {
        let path = fixture(file);
        let mut findings = Vec::new();
        lint_file(&path, file, true, &mut findings);
        let fired: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
        assert_eq!(
            findings.len(),
            1,
            "{file}: expected 1 finding, got {fired:?}"
        );
        assert_eq!(findings[0].rule, *rule, "{file}: fired {fired:?}");
    }
}

#[test]
fn each_purity_fixture_fires_its_rule_exactly_once() {
    for (file, rule) in PURITY_FIXTURES {
        let path = fixture(file);
        let raw = std::fs::read_to_string(&path).unwrap();
        // No site is commutative-associative here, so float folds must flag.
        let (findings, _) = scan_udf_purity(&path, &raw, &|_| false);
        let fired: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
        assert_eq!(
            findings.len(),
            1,
            "{file}: expected 1 finding, got {fired:?}"
        );
        assert_eq!(findings[0].rule, *rule, "{file}: fired {fired:?}");
    }
}

#[test]
fn each_effect_fixture_fires_its_rule_exactly_once() {
    for (file, rule) in EFFECT_FIXTURES {
        let path = fixture(file);
        let raw = std::fs::read_to_string(&path).unwrap();
        let (findings, sites) = check_effects(&path, &raw);
        assert!(sites.len() >= 2, "{file}: expected a multi-job batch");
        let fired: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
        assert_eq!(
            findings.len(),
            1,
            "{file}: expected 1 finding, got {fired:?}"
        );
        assert_eq!(findings[0].rule, *rule, "{file}: fired {fired:?}");
    }
}

#[test]
fn each_plan_fixture_fires_its_rule_exactly_once() {
    for (file, rule) in PLAN_FIXTURES {
        let path = fixture(file);
        let fx = haten2_analyze::load_plan_fixture(&path).unwrap_or_else(|e| panic!("{file}: {e}"));
        assert_eq!(
            fx.expects,
            vec![rule.to_string()],
            "{file}: fixture's own 'expect' disagrees with the corpus table"
        );
        let violations = haten2_analyze::run_plan_fixture(&fx);
        let fired: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
        assert_eq!(
            violations.len(),
            1,
            "{file}: expected 1 violation, got {fired:?}"
        );
        assert_eq!(violations[0].kind(), *rule, "{file}: fired {fired:?}");
    }
}

#[test]
fn effect_findings_name_the_racing_pair_and_dataset() {
    // The unordered-conflict diagnostic must carry enough to act on:
    // both job names and the shared dataset.
    let path = fixture("unordered_conflict.rs");
    let raw = std::fs::read_to_string(&path).unwrap();
    let (findings, _) = check_effects(&path, &raw);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].job, "left");
    assert_eq!(findings[0].other.as_deref(), Some("right"));
    assert_eq!(findings[0].dataset, "t");
}

#[test]
fn purity_fixtures_go_quiet_when_the_site_is_annotated() {
    // The float-fold fixture is legal once the plan declares the reducer
    // commutative-associative — exactly the contract the generated
    // property tests then enforce.
    let path = fixture("unannotated_float_reduction.rs");
    let raw = std::fs::read_to_string(&path).unwrap();
    let (findings, reducers) = scan_udf_purity(&path, &raw, &|_| true);
    assert!(findings.is_empty(), "{findings:?}");
    assert!(reducers.iter().any(|r| r.has_float_reduction));
}

#[test]
fn every_rule_has_a_fixture() {
    let lint_covered: Vec<&str> = LINT_FIXTURES.iter().map(|(_, r)| *r).collect();
    for rule in RULES {
        assert!(
            lint_covered.contains(&rule.id),
            "lint rule '{}' has no known-bad fixture",
            rule.id
        );
    }
    assert!(lint_covered.contains(&"undocumented-unsafe"));
    let purity_covered: Vec<&str> = PURITY_FIXTURES.iter().map(|(_, r)| *r).collect();
    for (id, _) in PURITY_RULES {
        assert!(
            purity_covered.contains(id),
            "purity rule '{id}' has no known-bad fixture"
        );
    }
    let effect_covered: Vec<&str> = EFFECT_FIXTURES.iter().map(|(_, r)| *r).collect();
    for (id, _) in EFFECT_RULES {
        assert!(
            effect_covered.contains(id),
            "effect rule '{id}' has no known-bad fixture"
        );
    }
    let plan_covered: Vec<&str> = PLAN_FIXTURES.iter().map(|(_, r)| *r).collect();
    for (id, _) in haten2_analyze::COMM_RULES
        .iter()
        .chain(haten2_analyze::REWRITE_RULES)
    {
        assert!(
            plan_covered.contains(id),
            "communication/rewrite rule '{id}' has no known-bad fixture"
        );
    }
    for (file, _) in LINT_FIXTURES
        .iter()
        .chain(PURITY_FIXTURES)
        .chain(EFFECT_FIXTURES)
        .chain(PLAN_FIXTURES)
    {
        assert!(fixture(file).exists(), "missing fixture {file}");
    }
}
