//! Known-bad fixture: a reducer that reads the wall clock, so re-executed
//! attempts emit different records. Must trip `no-wall-clock` exactly
//! once.

pub fn bad(c: &Cluster, input: &[(u64, f64)]) {
    run_job(
        c,
        JobSpec::named("fixture-wall-clock"),
        input,
        |k, v, emit| emit(k, v),
        |k, _vals, emit| {
            let stamp = std::time::SystemTime::now();
            drop(stamp);
            emit(k, 0.0);
        },
    );
}
