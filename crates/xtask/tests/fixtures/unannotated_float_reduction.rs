//! Known-bad fixture: a reducer that folds floats with `+=` at a site the
//! plan metadata does not declare commutative-associative, so value
//! arrival order changes the rounding. Must trip
//! `unannotated-float-reduction` exactly once.

pub fn bad(c: &Cluster, input: &[(u64, f64)]) {
    run_job(
        c,
        JobSpec::named("fixture-float-fold"),
        input,
        |k, v, emit| emit(k, v),
        |k, vals, emit| {
            let mut s = 0.0f64;
            for v in vals {
                s += v;
            }
            emit(k, s);
        },
    );
}
