//! Known-bad fixture: a submit closure consumes a handle whose dataset
//! the job never declares as a read. Must trip `undeclared-effect`
//! exactly once (the secondary unordered-conflict is suppressed — this
//! fixture pins the declaration/body divergence rule specifically).

pub fn bad(c: &Cluster, input: &[(u64, f64)]) -> Result<()> {
    let mut batch = Batch::new();
    let t = batch.submit(
        "producer",
        vec!["x".into()],
        vec!["t".into()],
        move |ctx| scale(ctx, "producer", input, 2.0),
    )?;
    // lint:allow(unordered-conflict)
    batch.submit(
        "consumer",
        vec!["x".into()],
        vec!["y".into()],
        move |ctx| {
            let upstream = ctx.get(&t)?;
            scale(ctx, "consumer", upstream, 0.5)
        },
    )?;
    batch.run(c)
}
