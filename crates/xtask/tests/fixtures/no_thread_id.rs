//! Known-bad fixture: a reducer whose output depends on which worker
//! thread ran it, so speculative execution races produce different bits.
//! Must trip `no-thread-id` exactly once.

pub fn bad(c: &Cluster, input: &[(u64, f64)]) {
    run_job(
        c,
        JobSpec::named("fixture-thread-id"),
        input,
        |k, v, emit| emit(k, v),
        |k, _vals, emit| {
            let worker = std::thread::current();
            drop(worker);
            emit(k, 0.0);
        },
    );
}
