//! Known-bad fixture: raw thread spawn outside the WorkerPool.
//! Must trip `no-raw-threads` exactly once.

pub fn bad() {
    let handle = std::thread::spawn(|| 42);
    drop(handle);
}
