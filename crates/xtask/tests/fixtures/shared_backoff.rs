//! Known-bad fixture: ad-hoc retry backoff arithmetic outside
//! `RetryPolicy::backoff_s`. Must trip `shared-backoff` exactly once.

pub fn bad(attempt: u32) -> u64 {
    let backoff_ms = 100u64 << attempt; backoff_ms
}
