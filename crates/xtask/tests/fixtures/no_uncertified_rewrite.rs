//! Known-bad fixture: a pipeline applying the heavy-key-split plan
//! transform directly instead of going through the runtime certification
//! gate (haten2_core::certified_rewrite_for). Must trip
//! `no-uncertified-rewrite` exactly once.

pub fn bad(cluster: &Cluster, graph: &JobGraph) -> Result<JobGraph> {
    // Submits a rewritten graph the analyzer never certified.
    let rewritten = haten2_mapreduce::rewrite::heavy_key_split(graph);
    cluster.validate(&rewritten)?;
    Ok(rewritten)
}
