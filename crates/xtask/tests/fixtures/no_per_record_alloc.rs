//! Known-bad fixture: a hot-path emit buffer pushing owned `(key, value)`
//! tuples record by record instead of staging them through the columnar
//! arena buffers. Must trip `no-per-record-alloc` exactly once.

pub fn bad(buckets: &mut Vec<Vec<(u64, f64)>>, p: usize, k: u64, v: f64) {
    buckets[p].push((k, v));
}
