//! Known-bad fixture: an `unsafe` block with no justifying comment.
//! Must trip `undocumented-unsafe` exactly once.

pub fn bad(p: *const u8) -> u8 {
    unsafe { *p }
}
