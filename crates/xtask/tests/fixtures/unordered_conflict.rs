//! Known-bad fixture: one job declares a write to `t` while a sibling's
//! body reads `t` straight off the DFS without declaring it — so no
//! declared edge orders the pair and the DAG scheduler may race them.
//! Must trip `unordered-conflict` exactly once (the undeclared-effect
//! side of the same divergence is suppressed — this fixture pins the
//! pairwise ordering rule specifically).

pub fn bad(c: &Cluster, input: &[(u64, f64)]) -> Result<()> {
    let mut batch = Batch::new();
    batch.submit(
        "left",
        vec!["x".into()],
        vec!["t".into()],
        move |ctx| scale(ctx, "left", input, 2.0),
    )?;
    // lint:allow(undeclared-effect)
    batch.submit(
        "right",
        vec!["x".into()],
        vec!["y".into()],
        move |ctx| {
            let stale = ctx.dfs.get("t")?;
            scale(ctx, "right", &stale, 3.0)
        },
    )?;
    batch.run(c)
}
