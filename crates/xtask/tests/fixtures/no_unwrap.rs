//! Known-bad fixture: panicking shortcut in library code.
//! Must trip `no-unwrap` exactly once.

pub fn bad(xs: &[f64]) -> f64 {
    *xs.first().unwrap()
}
