//! Known-bad fixture: a reducer that iterates a `HashMap` accumulator
//! straight into its emits, so output order depends on hash-seed state.
//! Must trip `no-unordered-iteration` exactly once.

pub fn bad(c: &Cluster, input: &[(u64, f64)]) {
    run_job(
        c,
        JobSpec::named("fixture-unordered"),
        input,
        |k, v, emit| emit(k, v),
        |_k, vals, emit| {
            let mut acc: HashMap<u64, f64> = HashMap::new();
            for v in vals {
                acc.insert(v as u64, v);
            }
            for (k2, v2) in acc {
                emit(k2, v2);
            }
        },
    );
}
