//! Known-bad fixture: a driver bypassing the DAG scheduler and running a
//! DFS-backed job directly. Must trip `no-direct-run-job-dfs` exactly
//! once.

pub fn bad(cluster: &Cluster, dfs: &Dfs, input: &str) -> Result<usize> {
    run_job_dfs(cluster, dfs, JobSpec::named("rogue"), input, "out", mapper, reducer)
}
