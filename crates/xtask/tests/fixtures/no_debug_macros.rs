//! Known-bad fixture: debugging leftover.
//! Must trip `no-debug-macros` exactly once.

pub fn bad(x: u64) -> u64 {
    dbg!(x)
}
