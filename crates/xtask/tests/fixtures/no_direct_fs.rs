//! Fixture: direct filesystem access in engine library code must trip
//! `no-direct-fs` — durable state belongs behind `haten2-blockstore`.

pub fn leak_state_past_the_blockstore(path: &str) -> std::io::Result<()> {
    std::fs::write(path, b"not crash-atomic, never fsynced")
}
