//! Known-bad fixture: a job declares a read of an intermediate dataset
//! another batch job produces, but its body never consumes it — a
//! phantom dependency that serializes the schedule for nothing. Must
//! trip `over-declared-read` exactly once (the body's real reads resolve,
//! so the rule is judged).

pub fn bad(c: &Cluster, input: &[(u64, f64)]) -> Result<()> {
    let mut batch = Batch::new();
    batch.submit(
        "producer",
        vec!["x".into()],
        vec!["t".into()],
        move |ctx| scale(ctx, "producer", input, 2.0),
    )?;
    let u = batch.submit(
        "aux",
        vec!["x".into()],
        vec!["u".into()],
        move |ctx| scale(ctx, "aux", input, 3.0),
    )?;
    batch.submit(
        "consumer",
        vec!["t".into(), "u".into()],
        vec!["y".into()],
        move |ctx| {
            let aux = ctx.get(&u)?;
            scale(ctx, "consumer", aux, 0.5)
        },
    )?;
    batch.run(c)
}
