//! Known-bad fixture: toolchain-dependent hasher in partitioning code.
//! Must trip `no-default-hasher` exactly once.

pub fn bad(key: u64, partitions: usize) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % partitions
}
