//! Workspace automation tasks. Currently one: `cargo xtask lint`, the
//! source-level pass of the static analysis harness (the plan-level passes
//! live in `haten2-analyze`).
//!
//! The linter is a plain text scan — deliberately dependency-free — that
//! enforces workspace invariants clippy cannot express:
//!
//! * **no-raw-threads** — thread primitives (`thread::spawn`,
//!   `thread::scope`, `thread::Builder`) are forbidden in library sources
//!   outside `crates/mapreduce/src/pool.rs`: all parallelism must go
//!   through the persistent [`WorkerPool`] so the engine's cost accounting
//!   sees it.
//! * **no-default-hasher** — `DefaultHasher` is banned in library sources:
//!   partitioning must use the engine's explicit, stable partitioner so
//!   shuffle placement is reproducible across runs and toolchains.
//! * **no-unwrap** — `.unwrap()` is banned in library (non-test) sources;
//!   library errors must propagate (`clippy::unwrap_used` backs this rule
//!   at the semantic level, this pass catches it even in code clippy skips).
//! * **undocumented-unsafe** — every `unsafe` token must have a `SAFETY:`
//!   comment within the preceding lines.
//! * **no-debug-macros** — `dbg!(` and `todo!(` are banned everywhere,
//!   including tests.
//! * **shared-backoff** — retry backoff arithmetic is banned in library
//!   sources outside `crates/mapreduce/src/fault.rs`: every retry site
//!   must charge delays through the one `RetryPolicy::backoff_s` helper so
//!   the engine and the reference executor account recovery identically.
//!
//! Suppress a finding with `// lint:allow(<rule>) — <reason>` on the same
//! or the preceding line. `shims/` (vendored stand-ins), `crates/xtask`
//! (this linter's own pattern strings), and `crates/bench/src/seed_engine.rs`
//! exemptions are listed where they occur.

#![forbid(unsafe_code)]

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Where a rule applies.
#[derive(Clone, Copy, PartialEq)]
enum Scope {
    /// Only library sources (`src/` trees), outside `#[cfg(test)]` regions.
    LibraryCode,
    /// Every scanned file, tests and benches included.
    Everywhere,
}

/// One lint rule: substring patterns plus scope and rationale.
struct Rule {
    id: &'static str,
    patterns: &'static [&'static str],
    scope: Scope,
    message: &'static str,
    /// Files (workspace-relative) exempt from this rule.
    exempt: &'static [&'static str],
}

const RULES: &[Rule] = &[
    Rule {
        id: "no-raw-threads",
        patterns: &["thread::spawn", "thread::scope", "thread::Builder"],
        scope: Scope::LibraryCode,
        message: "raw thread primitives are reserved for the WorkerPool; route parallelism \
                  through haten2_mapreduce::WorkerPool so cost accounting sees it",
        exempt: &["crates/mapreduce/src/pool.rs"],
    },
    Rule {
        id: "no-default-hasher",
        patterns: &["DefaultHasher"],
        scope: Scope::LibraryCode,
        message: "DefaultHasher is not stable across toolchains; use the engine's explicit \
                  partitioner for reproducible shuffle placement",
        exempt: &[],
    },
    Rule {
        id: "no-unwrap",
        patterns: &[".unwrap()"],
        scope: Scope::LibraryCode,
        message: "library code must propagate errors, not panic; return a Result or use \
                  expect with an invariant message",
        exempt: &[],
    },
    Rule {
        id: "no-debug-macros",
        patterns: &["dbg!(", "todo!("],
        scope: Scope::Everywhere,
        message: "debugging leftovers must not land",
        exempt: &[],
    },
    Rule {
        id: "shared-backoff",
        patterns: &[
            "backoff_base",
            "backoff_factor",
            "backoff_ms",
            "retry_delay",
        ],
        scope: Scope::LibraryCode,
        message: "retry sites must charge delays through RetryPolicy::backoff_s \
                  (crates/mapreduce/src/fault.rs), not ad-hoc backoff arithmetic, so \
                  recovery time stays identical across executors",
        exempt: &["crates/mapreduce/src/fault.rs"],
    },
];

/// One finding.
struct Finding {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// True when `hay[idx..]` starts a standalone `unsafe` token (not part of a
/// longer identifier like `unsafe_code`).
fn is_unsafe_token(hay: &str, idx: usize) -> bool {
    let bytes = hay.as_bytes();
    let before_ok = idx == 0 || !(bytes[idx - 1].is_ascii_alphanumeric() || bytes[idx - 1] == b'_');
    let after = idx + "unsafe".len();
    let after_ok =
        after >= bytes.len() || !(bytes[after].is_ascii_alphanumeric() || bytes[after] == b'_');
    before_ok && after_ok
}

/// Strip a line down to its code part: cut at a `//` comment start (crude —
/// ignores `//` inside string literals, which only ever produces false
/// negatives for this linter).
fn code_part(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

fn is_suppressed(lines: &[&str], idx: usize, rule: &str) -> bool {
    let marker = format!("lint:allow({rule})");
    lines[idx].contains(&marker) || (idx > 0 && lines[idx - 1].contains(&marker))
}

fn lint_file(path: &Path, rel: &str, is_library: bool, findings: &mut Vec<Finding>) {
    let Ok(text) = std::fs::read_to_string(path) else {
        findings.push(Finding {
            file: path.to_path_buf(),
            line: 0,
            rule: "io",
            message: "unreadable source file".to_string(),
        });
        return;
    };
    let lines: Vec<&str> = text.lines().collect();

    // Library files conventionally end with `#[cfg(test)] mod tests`; the
    // library-scoped rules stop applying there (tests may unwrap).
    let test_region_start = lines
        .iter()
        .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
        .unwrap_or(lines.len());

    for (i, raw) in lines.iter().enumerate() {
        let code = code_part(raw);
        for rule in RULES {
            if rule.scope == Scope::LibraryCode && (!is_library || i >= test_region_start) {
                continue;
            }
            if rule.exempt.contains(&rel) {
                continue;
            }
            if rule.patterns.iter().any(|p| code.contains(p)) && !is_suppressed(&lines, i, rule.id)
            {
                findings.push(Finding {
                    file: path.to_path_buf(),
                    line: i + 1,
                    rule: rule.id,
                    message: rule.message.to_string(),
                });
            }
        }
        // undocumented-unsafe: every real `unsafe` token needs a SAFETY:
        // comment within the preceding lines (or on the line itself).
        if is_library {
            let mut search = 0;
            while let Some(off) = code[search..].find("unsafe") {
                let idx = search + off;
                if is_unsafe_token(code, idx) {
                    let lookback = 25usize;
                    let from = i.saturating_sub(lookback);
                    let documented = lines[from..=i].iter().any(|l| l.contains("SAFETY"))
                        || is_suppressed(&lines, i, "undocumented-unsafe");
                    if !documented {
                        findings.push(Finding {
                            file: path.to_path_buf(),
                            line: i + 1,
                            rule: "undocumented-unsafe",
                            message: "unsafe without a SAFETY: comment in the preceding lines"
                                .to_string(),
                        });
                    }
                }
                search = idx + "unsafe".len();
            }
        }
    }
}

/// Recursively collect `.rs` files under `dir`.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn workspace_root() -> PathBuf {
    // cargo runs xtask with CWD = workspace root (the alias lives in
    // .cargo/config.toml there); CARGO_MANIFEST_DIR is the fallback when
    // invoked directly.
    let manifest = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_default();
    let from_manifest = Path::new(&manifest).join("../..");
    if Path::new("Cargo.toml").exists() {
        PathBuf::from(".")
    } else {
        from_manifest
    }
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    // Library sources: crates/*/src plus the root crate's src/.
    // Excluded from the walk entirely: shims/ (vendored API stand-ins,
    // not this project's code) and crates/xtask (this linter's own
    // pattern strings would self-match).
    let mut scanned_dirs = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            if entry.path().file_name().is_some_and(|n| n == "xtask") {
                continue;
            }
            for sub in ["src", "tests", "benches"] {
                scanned_dirs.push(entry.path().join(sub));
            }
        }
    }
    for sub in ["src", "tests", "examples"] {
        scanned_dirs.push(root.join(sub));
    }
    for dir in &scanned_dirs {
        rs_files(dir, &mut files);
    }
    files.sort();

    let mut findings = Vec::new();
    let mut count = 0usize;
    for file in &files {
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let is_library = {
            let components: Vec<&str> = rel.split('/').collect();
            components.contains(&"src")
        };
        lint_file(file, &rel, is_library, &mut findings);
        count += 1;
    }

    if findings.is_empty() {
        println!("xtask lint: {count} files clean");
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            eprintln!("{f}");
        }
        eprintln!("xtask lint: {} finding(s) in {count} files", findings.len());
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        _ => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::from(2)
        }
    }
}
