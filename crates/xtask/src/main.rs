//! `cargo xtask` — workspace automation CLI.
//!
//! * `cargo xtask lint` — run the source-level lint pass (see the library
//!   docs for the rule set). Exits non-zero on any finding.
//! * `cargo xtask lint --list-allows` — print every `lint:allow(...)`
//!   suppression in the workspace with its justification; exits non-zero
//!   if any suppression is reasonless.
//! * `cargo xtask analyze [--write]` — the unified static-analysis gate:
//!   source lint, paper-table + recoverability + determinism verification,
//!   the `ANALYSIS.md` staleness check (`--write` refreshes the file
//!   instead of failing), the rejection demo, and a JSON-output smoke
//!   check.

#![forbid(unsafe_code)]

use std::path::Path;
use std::process::{Command, ExitCode};
use xtask::{collect_allows, run_lint};

fn lint() -> ExitCode {
    let root = haten2_srcscan::workspace_root();
    let (findings, count) = run_lint(&root);
    if findings.is_empty() {
        println!("xtask lint: {count} files clean");
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            eprintln!("{f}");
        }
        eprintln!("xtask lint: {} finding(s) in {count} files", findings.len());
        ExitCode::FAILURE
    }
}

fn list_allows() -> ExitCode {
    let root = haten2_srcscan::workspace_root();
    let allows = collect_allows(&root);
    println!(
        "xtask lint: {} suppression(s) in the workspace",
        allows.len()
    );
    let mut reasonless = 0usize;
    for a in &allows {
        println!("  {a}");
        if a.reason.is_empty() {
            reasonless += 1;
        }
    }
    if reasonless > 0 {
        eprintln!("xtask lint: {reasonless} suppression(s) without a justification");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Run the analyzer binary with `args`, returning (success, stdout).
fn run_analyzer(root: &Path, args: &[&str]) -> (bool, String) {
    let mut cmd = Command::new("cargo");
    cmd.current_dir(root)
        .args(["run", "-q", "-p", "haten2-analyze", "--release", "--"])
        .args(args);
    match cmd.output() {
        Ok(out) => {
            if !out.status.success() {
                eprint!("{}", String::from_utf8_lossy(&out.stderr));
            }
            (
                out.status.success(),
                String::from_utf8_lossy(&out.stdout).into_owned(),
            )
        }
        Err(e) => {
            eprintln!("failed to spawn cargo: {e}");
            (false, String::new())
        }
    }
}

fn analyze(write: bool) -> ExitCode {
    let root = haten2_srcscan::workspace_root();
    let mut ok = true;

    println!("==> xtask analyze: source lint");
    let (findings, count) = run_lint(&root);
    if findings.is_empty() {
        println!("    {count} files clean");
    } else {
        for f in &findings {
            eprintln!("{f}");
        }
        ok = false;
    }

    println!("==> xtask analyze: paper table + recoverability + determinism");
    let (verified, report) = run_analyzer(&root, &["--verify-paper-table"]);
    ok &= verified;

    // Staleness gate: the committed ANALYSIS.md must match what the
    // analyzer derives from the current plans and sources.
    let analysis = root.join("ANALYSIS.md");
    if verified {
        let committed = std::fs::read_to_string(&analysis).unwrap_or_default();
        if committed != report {
            if write {
                match std::fs::write(&analysis, &report) {
                    Ok(()) => println!("    ANALYSIS.md refreshed"),
                    Err(e) => {
                        eprintln!("    cannot write ANALYSIS.md: {e}");
                        ok = false;
                    }
                }
            } else {
                eprintln!(
                    "    ANALYSIS.md is stale: regenerate with `cargo xtask analyze --write`"
                );
                ok = false;
            }
        } else {
            println!("    ANALYSIS.md is current");
        }
    }

    println!("==> xtask analyze: rejection demo");
    let (rejected, _) = run_analyzer(&root, &["--reject-demo"]);
    ok &= rejected;

    println!("==> xtask analyze: determinism scan");
    let (det, det_out) = run_analyzer(&root, &["--determinism"]);
    print!("{det_out}");
    ok &= det;

    println!("==> xtask analyze: JSON output smoke");
    let (json_ok, json) = run_analyzer(&root, &["--format", "json", "--verify-paper-table"]);
    if json_ok && json.trim_start().starts_with("{\"ok\":true") {
        println!("    json report well-formed");
    } else {
        eprintln!(
            "    unexpected json output: {}",
            &json[..json.len().min(120)]
        );
        ok = false;
    }

    if ok {
        println!("xtask analyze: all static passes green");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask analyze: FAILED");
        ExitCode::FAILURE
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo xtask <lint [--list-allows] | analyze [--write]>\n\
         \n\
         lint                run the source-level lint pass\n\
         lint --list-allows  print every lint:allow suppression with its reason\n\
         analyze             full static-analysis gate (lint, paper table,\n\
         \x20                   recoverability, determinism, ANALYSIS.md staleness,\n\
         \x20                   rejection demo, JSON smoke)\n\
         analyze --write     same, but refresh ANALYSIS.md instead of failing"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => match args.get(1).map(String::as_str) {
            None => lint(),
            Some("--list-allows") => list_allows(),
            Some(_) => usage(),
        },
        Some("analyze") => match args.get(1).map(String::as_str) {
            None => analyze(false),
            Some("--write") => analyze(true),
            Some(_) => usage(),
        },
        _ => usage(),
    }
}
