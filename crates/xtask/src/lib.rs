//! Workspace automation library behind `cargo xtask`.
//!
//! The source-level lint pass of the static analysis harness lives here
//! (the plan-level passes live in `haten2-analyze`); text scanning is
//! shared with the analyzer's determinism pass via `haten2-srcscan`, so
//! both see the same comment/string-blanked view of each file.
//!
//! The linter enforces workspace invariants clippy cannot express:
//!
//! * **no-raw-threads** — thread primitives (`thread::spawn`,
//!   `thread::scope`, `thread::Builder`) are forbidden in library sources
//!   outside `crates/mapreduce/src/pool.rs`: all parallelism must go
//!   through the persistent `WorkerPool` so the engine's cost accounting
//!   sees it.
//! * **no-default-hasher** — `DefaultHasher` is banned in library sources:
//!   partitioning must use the engine's explicit, stable partitioner so
//!   shuffle placement is reproducible across runs and toolchains.
//! * **no-unwrap** — `.unwrap()` is banned in library (non-test) sources;
//!   library errors must propagate (`clippy::unwrap_used` backs this rule
//!   at the semantic level, this pass catches it even in code clippy skips).
//! * **undocumented-unsafe** — every `unsafe` token must have a `SAFETY:`
//!   comment within the preceding lines.
//! * **no-debug-macros** — `dbg!(` and `todo!(` are banned everywhere,
//!   including tests.
//! * **no-direct-run-job-dfs** — calling `run_job_dfs` /
//!   `run_job_dfs_recovering` directly is banned in library sources
//!   outside the `crates/mapreduce` pipeline module that defines them:
//!   driver crates must submit work through the DAG scheduler's `Batch`,
//!   which validates declared reads/writes against the plan and commits
//!   results in submission order.
//! * **shared-backoff** — retry backoff arithmetic is banned in library
//!   sources outside `crates/mapreduce/src/fault.rs`: every retry site
//!   must charge delays through the one `RetryPolicy::backoff_s` helper so
//!   the engine and the reference executor account recovery identically.
//! * **no-per-record-alloc** — pushing owned `(key, value)` tuples record
//!   by record (`.push((`) is banned in the engine's hot data path
//!   (`crates/mapreduce/src/job.rs`): map emit, shuffle, and reduce
//!   staging must go through the columnar arena buffers of
//!   `crates/mapreduce/src/arena.rs`, which keep keys and values in
//!   contiguous per-column storage. This rule is scoped via `applies_to` —
//!   tuple pushes are fine elsewhere (the sequential reference executor
//!   deliberately stays row-major).
//! * **no-direct-fs** — direct filesystem calls (`std::fs`, `File::open`,
//!   `File::create`, `OpenOptions`) are banned in the engine and driver
//!   library sources (`crates/mapreduce/src`, `crates/core/src`, scoped via
//!   `applies_under`): durable state must go through `haten2-blockstore`
//!   (`localfs` for atomic small files, `BlockStore` for segment data) so
//!   fsync discipline and crash atomicity stay uniform. Only
//!   `crates/blockstore` may touch the filesystem directly.
//! * **no-uncertified-rewrite** — applying the `heavy_key_split` plan
//!   transform directly is banned in library sources outside the transform
//!   itself, the runtime certification gate
//!   (`haten2_core::certified_rewrite_for`), and the analyzer's certifier:
//!   a pipeline that rewrites its own `JobGraph` ad hoc would submit a
//!   graph `cargo xtask analyze` never certified, breaking the
//!   executed-graph-equals-certified-graph invariant.
//!
//! Suppress a finding with `// lint:allow(<rule>) — <reason>` on the same
//! or the preceding line; `cargo xtask lint --list-allows` prints every
//! suppression with its justification (and fails on reasonless ones).
//! `shims/` (vendored stand-ins) and `crates/xtask` (this linter's own
//! pattern strings) are excluded from the walk.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

use haten2_srcscan::{is_suppressed, rs_files, SourceText};
use std::fmt;
use std::path::{Path, PathBuf};

/// Where a rule applies.
#[derive(Clone, Copy, PartialEq)]
pub enum Scope {
    /// Only library sources (`src/` trees), outside `#[cfg(test)]` regions.
    LibraryCode,
    /// Every scanned file, tests and benches included.
    Everywhere,
}

/// One lint rule: substring patterns plus scope and rationale.
pub struct Rule {
    /// Rule id, as used in `lint:allow(<id>)`.
    pub id: &'static str,
    /// Substring patterns that trigger the rule (matched on the
    /// comment/string-blanked code view).
    pub patterns: &'static [&'static str],
    /// Where the rule applies.
    pub scope: Scope,
    /// Rationale shown with each finding.
    pub message: &'static str,
    /// Files (workspace-relative) exempt from this rule.
    pub exempt: &'static [&'static str],
    /// When non-empty, the rule fires *only* in these files
    /// (workspace-relative) — the inverse of `exempt`, for rules whose
    /// pattern is legitimate everywhere except a few guarded hot paths.
    pub applies_to: &'static [&'static str],
    /// When non-empty, the rule fires only in files whose
    /// workspace-relative path starts with one of these prefixes —
    /// directory-level scoping for rules that guard a subsystem boundary
    /// rather than a single file.
    pub applies_under: &'static [&'static str],
}

/// The workspace lint rules (see the crate docs for rationale).
pub const RULES: &[Rule] = &[
    Rule {
        id: "no-raw-threads",
        patterns: &["thread::spawn", "thread::scope", "thread::Builder"],
        scope: Scope::LibraryCode,
        message: "raw thread primitives are reserved for the WorkerPool; route parallelism \
                  through haten2_mapreduce::WorkerPool so cost accounting sees it",
        exempt: &["crates/mapreduce/src/pool.rs"],
        applies_to: &[],
        applies_under: &[],
    },
    Rule {
        id: "no-default-hasher",
        patterns: &["DefaultHasher"],
        scope: Scope::LibraryCode,
        message: "DefaultHasher is not stable across toolchains; use the engine's explicit \
                  partitioner for reproducible shuffle placement",
        exempt: &[],
        applies_to: &[],
        applies_under: &[],
    },
    Rule {
        id: "no-unwrap",
        patterns: &[".unwrap()"],
        scope: Scope::LibraryCode,
        message: "library code must propagate errors, not panic; return a Result or use \
                  expect with an invariant message",
        exempt: &[],
        applies_to: &[],
        applies_under: &[],
    },
    Rule {
        id: "no-debug-macros",
        patterns: &["dbg!(", "todo!("],
        scope: Scope::Everywhere,
        message: "debugging leftovers must not land",
        exempt: &[],
        applies_to: &[],
        applies_under: &[],
    },
    Rule {
        id: "no-direct-run-job-dfs",
        patterns: &["run_job_dfs"],
        scope: Scope::LibraryCode,
        message: "driver code must submit DFS-backed jobs through the scheduler \
                  (haten2_mapreduce::Batch) so dependency validation and the \
                  deterministic commit order apply; direct run_job_dfs calls are \
                  reserved for the pipeline helpers in crates/mapreduce",
        exempt: &[
            "crates/mapreduce/src/pipeline.rs",
            "crates/mapreduce/src/lib.rs",
        ],
        applies_to: &[],
        applies_under: &[],
    },
    Rule {
        id: "shared-backoff",
        patterns: &[
            "backoff_base",
            "backoff_factor",
            "backoff_ms",
            "retry_delay",
        ],
        scope: Scope::LibraryCode,
        message: "retry sites must charge delays through RetryPolicy::backoff_s \
                  (crates/mapreduce/src/fault.rs), not ad-hoc backoff arithmetic, so \
                  recovery time stays identical across executors",
        exempt: &["crates/mapreduce/src/fault.rs"],
        applies_to: &[],
        applies_under: &[],
    },
    Rule {
        id: "no-per-record-alloc",
        patterns: &[".push(("],
        scope: Scope::LibraryCode,
        message: "the engine's map-emit/shuffle/reduce hot paths must not push owned \
                  (key, value) tuples record by record; stage records through the \
                  columnar arena buffers (crates/mapreduce/src/arena.rs) so keys and \
                  values stay in contiguous per-column storage",
        exempt: &[],
        applies_to: &["crates/mapreduce/src/job.rs", "no_per_record_alloc.rs"],
        applies_under: &[],
    },
    Rule {
        id: "no-direct-fs",
        patterns: &["std::fs", "File::open", "File::create", "OpenOptions"],
        scope: Scope::LibraryCode,
        message: "durable state must go through haten2-blockstore (localfs::write_atomic \
                  / BlockStore) so fsync discipline and crash atomicity stay uniform; \
                  direct filesystem calls are reserved for crates/blockstore",
        exempt: &[],
        applies_to: &[],
        applies_under: &["crates/mapreduce/src", "crates/core/src", "no_direct_fs.rs"],
    },
    Rule {
        id: "no-uncertified-rewrite",
        patterns: &["heavy_key_split("],
        scope: Scope::LibraryCode,
        message: "runtime plan rewrites must go through \
                  haten2_core::certified_rewrite_for, which only rewrites graphs \
                  listed in CERTIFIED_REWRITES (each row re-certified by the \
                  analyzer's coverage test); applying heavy_key_split directly \
                  would submit a JobGraph `cargo xtask analyze` never certified",
        exempt: &[
            "crates/mapreduce/src/rewrite.rs",
            "crates/core/src/plan.rs",
            "crates/analyze/src/rewrite.rs",
        ],
        applies_to: &[],
        applies_under: &[],
    },
];

/// One finding.
pub struct Finding {
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// Rule id.
    pub rule: &'static str,
    /// Rationale.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// True when `hay[idx..]` starts a standalone `unsafe` token (not part of a
/// longer identifier like `unsafe_code`).
fn is_unsafe_token(hay: &str, idx: usize) -> bool {
    let bytes = hay.as_bytes();
    let before_ok = idx == 0 || !(bytes[idx - 1].is_ascii_alphanumeric() || bytes[idx - 1] == b'_');
    let after = idx + "unsafe".len();
    let after_ok =
        after >= bytes.len() || !(bytes[after].is_ascii_alphanumeric() || bytes[after] == b'_');
    before_ok && after_ok
}

/// Lint one file. `rel` is its workspace-relative path (for exemptions);
/// `is_library` applies the `LibraryCode`-scoped rules.
pub fn lint_file(path: &Path, rel: &str, is_library: bool, findings: &mut Vec<Finding>) {
    let Ok(text) = std::fs::read_to_string(path) else {
        findings.push(Finding {
            file: path.to_path_buf(),
            line: 0,
            rule: "io",
            message: "unreadable source file".to_string(),
        });
        return;
    };
    // The code view blanks comments and string contents byte-for-byte, so
    // line numbers agree with the raw text and pattern strings in prose or
    // literals cannot trigger rules.
    let st = SourceText::parse(&text);
    let raw_lines: Vec<&str> = text.lines().collect();
    let code_lines: Vec<&str> = st.code.lines().collect();

    // Library files conventionally end with `#[cfg(test)] mod tests`; the
    // library-scoped rules stop applying there (tests may unwrap).
    let test_region_start = raw_lines
        .iter()
        .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
        .unwrap_or(raw_lines.len());

    for (i, code) in code_lines.iter().enumerate() {
        for rule in RULES {
            if rule.scope == Scope::LibraryCode && (!is_library || i >= test_region_start) {
                continue;
            }
            if rule.exempt.contains(&rel) {
                continue;
            }
            if !rule.applies_to.is_empty() && !rule.applies_to.contains(&rel) {
                continue;
            }
            if !rule.applies_under.is_empty()
                && !rule.applies_under.iter().any(|p| rel.starts_with(p))
            {
                continue;
            }
            if rule.patterns.iter().any(|p| code.contains(p))
                && !is_suppressed(&raw_lines, i, rule.id)
            {
                findings.push(Finding {
                    file: path.to_path_buf(),
                    line: i + 1,
                    rule: rule.id,
                    message: rule.message.to_string(),
                });
            }
        }
        // undocumented-unsafe: every real `unsafe` token needs a SAFETY:
        // comment within the preceding lines (or on the line itself). The
        // token is looked up in the code view (comments don't count), the
        // SAFETY marker in the raw text (it *is* a comment).
        if is_library {
            let mut search = 0;
            while let Some(off) = code[search..].find("unsafe") {
                let idx = search + off;
                if is_unsafe_token(code, idx) {
                    let lookback = 25usize;
                    let from = i.saturating_sub(lookback);
                    let documented = raw_lines[from..=i].iter().any(|l| l.contains("SAFETY"))
                        || is_suppressed(&raw_lines, i, "undocumented-unsafe");
                    if !documented {
                        findings.push(Finding {
                            file: path.to_path_buf(),
                            line: i + 1,
                            rule: "undocumented-unsafe",
                            message: "unsafe without a SAFETY: comment in the preceding lines"
                                .to_string(),
                        });
                    }
                }
                search = idx + "unsafe".len();
            }
        }
    }
}

/// Every source file the lint pass covers, with its workspace-relative
/// path and whether it counts as library code. Excluded from the walk
/// entirely: `shims/` (vendored API stand-ins, not this project's code)
/// and `crates/xtask` (this linter's own pattern strings would
/// self-match).
pub fn workspace_files(root: &Path) -> Vec<(PathBuf, String, bool)> {
    let mut files = Vec::new();
    let mut scanned_dirs = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            if entry.path().file_name().is_some_and(|n| n == "xtask") {
                continue;
            }
            for sub in ["src", "tests", "benches"] {
                scanned_dirs.push(entry.path().join(sub));
            }
        }
    }
    for sub in ["src", "tests", "examples"] {
        scanned_dirs.push(root.join(sub));
    }
    for dir in &scanned_dirs {
        rs_files(dir, &mut files);
    }
    files.sort();
    files
        .into_iter()
        .map(|file| {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let is_library = rel.split('/').any(|c| c == "src");
            (file, rel, is_library)
        })
        .collect()
}

/// Run the lint pass over the workspace. Returns the findings and the
/// number of files scanned.
pub fn run_lint(root: &Path) -> (Vec<Finding>, usize) {
    let mut findings = Vec::new();
    let files = workspace_files(root);
    let count = files.len();
    for (file, rel, is_library) in &files {
        lint_file(file, rel, *is_library, &mut findings);
    }
    (findings, count)
}

/// One `lint:allow` suppression site.
pub struct Allow {
    /// File the suppression is in.
    pub file: PathBuf,
    /// 1-based line of the marker.
    pub line: usize,
    /// Suppressed rule id.
    pub rule: String,
    /// Justification (empty = reasonless, which `--list-allows` rejects).
    pub reason: String,
}

impl fmt::Display for Allow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: allow({}) — {}",
            self.file.display(),
            self.line,
            self.rule,
            if self.reason.is_empty() {
                "NO REASON GIVEN"
            } else {
                &self.reason
            }
        )
    }
}

/// Justification for an allow marker: text after the `)` on the marker
/// line, or — when the marker line carries none — the contiguous comment
/// block immediately above it.
fn allow_reason(raw_lines: &[&str], idx: usize, after: &str) -> String {
    let inline = after
        .trim_start()
        .trim_start_matches(['—', '-', ':'])
        .trim()
        .to_string();
    if !inline.is_empty() {
        return inline;
    }
    // Walk the comment block upward, skipping the marker line itself.
    let mut parts = Vec::new();
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = raw_lines[i].trim_start();
        if let Some(c) = t.strip_prefix("//") {
            let c = c.trim_start_matches(['/', '!']).trim();
            if c.contains("lint:allow(") {
                break;
            }
            parts.push(c.to_string());
        } else {
            break;
        }
    }
    parts.reverse();
    parts.join(" ")
}

/// Collect every `lint:allow(...)` suppression in the lint pass's file
/// set, with its justification. Marker text inside string literals (the
/// scanner's own format strings, raw-string test fixtures) is ignored, as
/// are documentation placeholders like `lint:allow(<rule>)`.
pub fn collect_allows(root: &Path) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (file, _, _) in workspace_files(root) {
        let Ok(text) = std::fs::read_to_string(&file) else {
            continue;
        };
        let st = SourceText::parse(&text);
        let raw_lines: Vec<&str> = text.lines().collect();
        let mut offset = 0usize;
        for (i, line) in raw_lines.iter().enumerate() {
            let mut search = 0usize;
            while let Some(off) = line[search..].find("lint:allow(") {
                let at = search + off;
                search = at + "lint:allow(".len();
                let abs = offset + at;
                if st.strings.iter().any(|&(s, e)| s <= abs && abs < e) {
                    continue;
                }
                let rest = &line[search..];
                let Some(close) = rest.find(')') else {
                    continue;
                };
                let rule = rest[..close].trim().to_string();
                // Placeholders in prose/docs, not real suppressions.
                if rule.is_empty() || rule.contains(['<', '{', ' ']) {
                    continue;
                }
                allows.push(Allow {
                    file: file.clone(),
                    line: i + 1,
                    rule,
                    reason: allow_reason(&raw_lines, i, &rest[close + 1..]),
                });
            }
            offset += line.len() + 1;
        }
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_tree_is_clean() {
        let (findings, count) = run_lint(&haten2_srcscan::workspace_root());
        assert!(count > 20, "walk found only {count} files");
        let msgs: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
        assert!(findings.is_empty(), "lint findings: {msgs:#?}");
    }

    #[test]
    fn every_allow_in_the_tree_is_justified() {
        let allows = collect_allows(&haten2_srcscan::workspace_root());
        // The known exemption surface: the frozen seed engine's hasher and
        // scoped threads. Growing this list is a review event.
        assert!(
            allows.len() >= 3,
            "expected the seed-engine allows, found {}",
            allows.len()
        );
        for a in &allows {
            assert!(
                !a.reason.is_empty(),
                "reasonless suppression at {}:{} ({})",
                a.file.display(),
                a.line,
                a.rule
            );
        }
    }

    #[test]
    fn patterns_in_strings_and_comments_do_not_fire() {
        let dir = std::env::temp_dir().join("xtask-lint-selftest");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("strings.rs");
        std::fs::write(
            &path,
            "// thread::spawn in a comment\npub fn f() -> &'static str { \"thread::spawn\" }\n",
        )
        .unwrap();
        let mut findings = Vec::new();
        lint_file(&path, "strings.rs", true, &mut findings);
        assert!(
            findings.is_empty(),
            "{:?}",
            findings.iter().map(|f| f.to_string()).collect::<Vec<_>>()
        );
        let _ = std::fs::remove_file(&path);
    }
}
