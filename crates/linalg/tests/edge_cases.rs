//! Edge-case tests for the linear-algebra kernels: degenerate shapes,
//! repeated eigenvalues, near-singularity, and boundary subspace sizes.

// Test code: `unwrap` is the assertion (allowed by the workspace clippy
// policy only here).
#![allow(clippy::unwrap_used)]

use haten2_linalg::{
    householder_qr, leading_left_singular_vectors, pinv, solve_spd, svd_small, sym_eigen, thin_qr,
    Mat, SubspaceOptions,
};

#[test]
fn one_by_one_everything() {
    let a = Mat::from_rows(&[vec![4.0]]).unwrap();
    let qr = householder_qr(&a).unwrap();
    assert!((qr.q.get(0, 0).abs() - 1.0).abs() < 1e-12);
    let e = sym_eigen(&a).unwrap();
    assert!((e.values[0] - 4.0).abs() < 1e-12);
    let s = svd_small(&a).unwrap();
    assert!((s.s[0] - 4.0).abs() < 1e-12);
    let p = pinv(&a).unwrap();
    assert!((p.get(0, 0) - 0.25).abs() < 1e-12);
    assert_eq!(solve_spd(&a, &[8.0]).unwrap(), vec![2.0]);
}

#[test]
fn repeated_eigenvalues_still_orthonormal() {
    // 2·I has a doubly-degenerate eigenvalue; any orthonormal basis works.
    let a = {
        let mut m = Mat::identity(4);
        m.scale_inplace(2.0);
        m
    };
    let e = sym_eigen(&a).unwrap();
    assert!(e.values.iter().all(|&v| (v - 2.0).abs() < 1e-12));
    assert!(e.vectors.gram().approx_eq(&Mat::identity(4), 1e-10));
}

#[test]
fn qr_of_zero_matrix() {
    let a = Mat::zeros(4, 2);
    let qr = householder_qr(&a).unwrap();
    // R must be zero; QR must reconstruct the zero matrix.
    assert!(qr.r.approx_eq(&Mat::zeros(2, 2), 1e-15));
    assert!(qr.q.matmul(&qr.r).unwrap().approx_eq(&a, 1e-15));
}

#[test]
fn svd_of_row_and_column_vectors() {
    let col = Mat::from_rows(&[vec![3.0], vec![4.0]]).unwrap();
    let s = svd_small(&col).unwrap();
    assert!((s.s[0] - 5.0).abs() < 1e-10);
    let row = col.transpose();
    let s = svd_small(&row).unwrap();
    assert!((s.s[0] - 5.0).abs() < 1e-10);
}

#[test]
fn pinv_of_near_singular_is_bounded() {
    // Condition number ~1e14: the rank cutoff must clamp the inverse.
    let a = Mat::from_rows(&[vec![1.0, 0.0], vec![0.0, 1e-14]]).unwrap();
    let p = pinv(&a).unwrap();
    // The tiny singular value is treated as zero: no 1e14 blow-up.
    assert!(p.max_abs() < 1e13, "pinv exploded: {}", p.max_abs());
    // First Penrose condition still holds on the well-conditioned part.
    let apa = a.matmul(&p).unwrap().matmul(&a).unwrap();
    assert!((apa.get(0, 0) - 1.0).abs() < 1e-10);
}

#[test]
fn subspace_full_width_p_equals_n() {
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(1);
    let a = Mat::random(10, 4, &mut rng);
    let u = leading_left_singular_vectors(&a, 4, &SubspaceOptions::default()).unwrap();
    assert_eq!(u.shape(), (10, 4));
    assert!(u.gram().approx_eq(&Mat::identity(4), 1e-8));
}

#[test]
fn subspace_on_rank_deficient_operator() {
    // Rank-1 matrix, ask for 1 vector: must recover the range direction.
    let mut a = Mat::zeros(6, 3);
    for i in 0..6 {
        for j in 0..3 {
            a.set(i, j, (i + 1) as f64 * (j + 1) as f64);
        }
    }
    let u = leading_left_singular_vectors(&a, 1, &SubspaceOptions::default()).unwrap();
    // The range of a rank-1 matrix is spanned by its first column direction.
    let mut col = a.col(0);
    haten2_linalg::vecops::normalize(&mut col);
    let dot: f64 = (0..6).map(|i| u.get(i, 0) * col[i]).sum();
    assert!((dot.abs() - 1.0).abs() < 1e-8, "dot = {dot}");
}

#[test]
fn thin_qr_of_orthonormal_input_is_stable() {
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(2);
    let q0 = thin_qr(&Mat::random(12, 3, &mut rng)).unwrap();
    let q1 = thin_qr(&q0).unwrap();
    // Re-orthonormalizing an orthonormal block keeps the subspace: |Q0ᵀQ1|
    // has singular values 1.
    let c = q0.transpose().matmul(&q1).unwrap();
    let s = svd_small(&c).unwrap();
    assert!(s.s.iter().all(|&v| (v - 1.0).abs() < 1e-9));
}

#[test]
fn solve_spd_1e_scale_invariance() {
    // Scaling the system must scale the solution linearly.
    let a = Mat::from_rows(&[vec![2.0, 0.5], vec![0.5, 3.0]]).unwrap();
    let x1 = solve_spd(&a, &[1.0, 1.0]).unwrap();
    let x2 = solve_spd(&a, &[10.0, 10.0]).unwrap();
    for (a, b) in x1.iter().zip(&x2) {
        assert!((10.0 * a - b).abs() < 1e-10);
    }
}

#[test]
fn normalize_columns_handles_tiny_values() {
    // 1e-150 squares to 1e-300 — near the underflow edge but representable.
    let mut m = Mat::from_rows(&[vec![1e-150], vec![1e-150]]).unwrap();
    let norms = m.normalize_columns();
    assert!(norms[0] > 0.0);
    let n: f64 = (0..2).map(|i| m.get(i, 0).powi(2)).sum::<f64>().sqrt();
    assert!((n - 1.0).abs() < 1e-9);
    // Below the underflow edge the squared norm vanishes: the column is
    // left untouched (documented zero-column behaviour), not NaN-ed.
    let mut z = Mat::from_rows(&[vec![1e-300]]).unwrap();
    let zn = z.normalize_columns();
    assert_eq!(zn[0], 0.0);
    assert_eq!(z.get(0, 0), 1e-300);
    assert!(z.get(0, 0).is_finite());
}
