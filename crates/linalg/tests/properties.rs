//! Property-based tests for the linear-algebra kernels.

// Test code: `unwrap` is the assertion (allowed by the workspace clippy
// policy only here).
#![allow(clippy::unwrap_used)]

use haten2_linalg::{householder_qr, pinv, svd_small, sym_eigen, Mat};
use proptest::prelude::*;

/// Strategy: a rows×cols matrix with entries in [-10, 10].
fn mat_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Mat> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Mat::from_vec(rows, cols, data).unwrap())
}

fn dims() -> impl Strategy<Value = (usize, usize)> {
    (1usize..8, 1usize..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_associative((m, n) in dims(), k in 1usize..6, p in 1usize..6, seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Mat::random(m, n, &mut rng);
        let b = Mat::random(n, k, &mut rng);
        let c = Mat::random(k, p, &mut rng);
        let lhs = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let rhs = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-6 * (1.0 + lhs.max_abs())));
    }

    #[test]
    fn transpose_involution(a in dims().prop_flat_map(|(m, n)| mat_strategy(m, n))) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_reverses_matmul((m, n) in dims(), k in 1usize..6, seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Mat::random(m, n, &mut rng);
        let b = Mat::random(n, k, &mut rng);
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-9 * (1.0 + lhs.max_abs())));
    }

    #[test]
    fn qr_reconstructs(m in 2usize..12, n in 1usize..6, seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        prop_assume!(m >= n);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Mat::random(m, n, &mut rng);
        let qr = householder_qr(&a).unwrap();
        let recon = qr.q.matmul(&qr.r).unwrap();
        prop_assert!(recon.approx_eq(&a, 1e-8));
        // Q orthonormal.
        prop_assert!(qr.q.gram().approx_eq(&Mat::identity(n), 1e-8));
        // R upper triangular.
        for i in 0..n {
            for j in 0..i {
                prop_assert!(qr.r.get(i, j).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn sym_eigen_reconstructs(n in 1usize..8, seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let b = Mat::random(n, n, &mut rng);
        let a = b.add(&b.transpose()).unwrap();
        let e = sym_eigen(&a).unwrap();
        let mut d = Mat::zeros(n, n);
        for i in 0..n { d.set(i, i, e.values[i]); }
        let recon = e.vectors.matmul(&d).unwrap().matmul(&e.vectors.transpose()).unwrap();
        prop_assert!(recon.approx_eq(&a, 1e-7 * (1.0 + a.max_abs())));
    }

    #[test]
    fn svd_values_match_gram_eigenvalues(m in 2usize..10, n in 1usize..6, seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Mat::random(m, n, &mut rng);
        let svd = svd_small(&a).unwrap();
        let e = sym_eigen(&a.gram()).unwrap();
        let k = n.min(m);
        for i in 0..k {
            let sv2 = svd.s[i] * svd.s[i];
            prop_assert!((sv2 - e.values[i].max(0.0)).abs() < 1e-6 * (1.0 + e.values[0].abs()));
        }
    }

    #[test]
    fn pinv_penrose_1(m in 1usize..8, n in 1usize..8, seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Mat::random(m, n, &mut rng);
        let p = pinv(&a).unwrap();
        // A A† A = A (first Penrose condition).
        let apa = a.matmul(&p).unwrap().matmul(&a).unwrap();
        prop_assert!(apa.approx_eq(&a, 1e-6 * (1.0 + a.max_abs())));
    }

    #[test]
    fn normalize_columns_makes_unit_norms(m in 1usize..10, n in 1usize..6, seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = Mat::random(m, n, &mut rng);
        let norms = a.normalize_columns();
        for (j, &nj) in norms.iter().enumerate() {
            if nj > 0.0 {
                let cn: f64 = (0..m).map(|i| a.get(i, j).powi(2)).sum::<f64>().sqrt();
                prop_assert!((cn - 1.0).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn khatri_rao_shape_and_values(i in 1usize..5, j in 1usize..5, r in 1usize..4, seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Mat::random(i, r, &mut rng);
        let b = Mat::random(j, r, &mut rng);
        let kr = a.khatri_rao(&b).unwrap();
        prop_assert_eq!(kr.shape(), (i * j, r));
        for ii in 0..i {
            for jj in 0..j {
                for rr in 0..r {
                    let expect = a.get(ii, rr) * b.get(jj, rr);
                    prop_assert!((kr.get(ii * j + jj, rr) - expect).abs() < 1e-15);
                }
            }
        }
    }
}
