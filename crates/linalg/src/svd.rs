//! Singular value decomposition for small/medium matrices.
//!
//! Built on the Gram-matrix eigendecomposition: for `a ∈ ℝ^{m×n}` with small
//! `min(m, n)`, eigendecompose the smaller Gram matrix and recover the other
//! side's singular vectors by multiplication. Accuracy degrades as σ²
//! squares the condition number, which is acceptable here — HaTen2 only
//! needs singular vectors of well-separated leading subspaces and the
//! pseudoinverse of tiny Gram matrices with an explicit rank cutoff.

use crate::eigen::sym_eigen;
use crate::{Mat, Result};

/// Thin SVD: `a = u * diag(s) * vᵀ` with `u ∈ ℝ^{m×k}`, `v ∈ ℝ^{n×k}`,
/// `k = min(m, n)`, singular values descending.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (columns).
    pub u: Mat,
    /// Singular values, descending.
    pub s: Vec<f64>,
    /// Right singular vectors (columns).
    pub v: Mat,
}

/// Thin SVD via eigendecomposition of the smaller Gram matrix.
pub fn svd_small(a: &Mat) -> Result<Svd> {
    let (m, n) = a.shape();
    let k = m.min(n);
    if k == 0 {
        return Ok(Svd {
            u: Mat::zeros(m, 0),
            s: vec![],
            v: Mat::zeros(n, 0),
        });
    }
    if n <= m {
        // Eigendecompose AᵀA (n×n).
        let g = a.gram();
        let e = sym_eigen(&g)?;
        let s: Vec<f64> = e.values.iter().map(|&l| l.max(0.0).sqrt()).collect();
        let v = e.vectors; // n×n
                           // U = A V Σ⁻¹ for nonzero σ; zero columns for null directions.
        let av = a.matmul(&v)?;
        let mut u = Mat::zeros(m, n);
        for (j, &sj) in s.iter().enumerate() {
            if sj > 0.0 {
                let inv = 1.0 / sj;
                for i in 0..m {
                    u.set(i, j, av.get(i, j) * inv);
                }
            }
        }
        Ok(Svd { u, s, v })
    } else {
        // m < n: decompose the transpose and swap U and V.
        let t = svd_small(&a.transpose())?;
        Ok(Svd {
            u: t.v,
            s: t.s,
            v: t.u,
        })
    }
}

impl Svd {
    /// Reconstruct `u * diag(s) * vᵀ`.
    pub fn reconstruct(&self) -> Result<Mat> {
        let k = self.s.len();
        let mut us = self.u.clone();
        for j in 0..k {
            for i in 0..us.rows() {
                let v = us.get(i, j) * self.s[j];
                us.set(i, j, v);
            }
        }
        us.matmul(&self.v.transpose())
    }

    /// Numerical rank with relative tolerance `rtol` (relative to the
    /// largest singular value).
    pub fn rank(&self, rtol: f64) -> usize {
        let smax = self.s.first().copied().unwrap_or(0.0);
        if smax == 0.0 {
            return 0;
        }
        self.s.iter().filter(|&&s| s > rtol * smax).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn svd_reconstructs_tall() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = Mat::random(7, 3, &mut rng);
        let svd = svd_small(&a).unwrap();
        assert!(svd.reconstruct().unwrap().approx_eq(&a, 1e-8));
        for w in svd.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn svd_reconstructs_wide() {
        let mut rng = StdRng::seed_from_u64(12);
        let a = Mat::random(3, 9, &mut rng);
        let svd = svd_small(&a).unwrap();
        assert_eq!(svd.u.shape(), (3, 3));
        assert_eq!(svd.v.shape(), (9, 3));
        assert!(svd.reconstruct().unwrap().approx_eq(&a, 1e-8));
    }

    #[test]
    fn singular_values_of_diagonal() {
        let a = Mat::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0], vec![0.0, 0.0]]).unwrap();
        let svd = svd_small(&a).unwrap();
        assert!((svd.s[0] - 4.0).abs() < 1e-10);
        assert!((svd.s[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn rank_of_rank_one() {
        // Outer product -> rank 1.
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let svd = svd_small(&a).unwrap();
        assert_eq!(svd.rank(1e-9), 1);
    }

    #[test]
    fn left_vectors_orthonormal_on_nonnull_space() {
        let mut rng = StdRng::seed_from_u64(13);
        let a = Mat::random(10, 4, &mut rng);
        let svd = svd_small(&a).unwrap();
        assert!(svd.u.gram().approx_eq(&Mat::identity(4), 1e-8));
    }

    #[test]
    fn zero_matrix() {
        let a = Mat::zeros(3, 2);
        let svd = svd_small(&a).unwrap();
        assert!(svd.s.iter().all(|&s| s == 0.0));
        assert_eq!(svd.rank(1e-12), 0);
    }

    #[test]
    fn empty_dims() {
        let a = Mat::zeros(0, 3);
        let svd = svd_small(&a).unwrap();
        assert!(svd.s.is_empty());
    }
}
