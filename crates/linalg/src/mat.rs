//! Row-major dense matrix type and core operations.

use crate::{LinalgError, Result};
use rand::Rng;

/// A dense, row-major `rows × cols` matrix of `f64`.
///
/// This is the workhorse type for factor matrices (`A ∈ ℝ^{I×R}`), Gram
/// matrices, and core-tensor matricizations. It deliberately exposes its
/// backing storage (`data`) for hot loops elsewhere in the workspace.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Create a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build from a row-major data vector. `data.len()` must equal
    /// `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch(format!(
                "from_vec: {} elements for a {rows}x{cols} matrix",
                data.len()
            )));
        }
        Ok(Mat { rows, cols, data })
    }

    /// Build from nested rows; all rows must have equal length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(LinalgError::DimensionMismatch(
                    "from_rows: ragged rows".to_string(),
                ));
            }
            data.extend_from_slice(row);
        }
        Ok(Mat {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Matrix with i.i.d. entries drawn uniformly from `(0, 1)`.
    ///
    /// This matches the random initialization of the factor matrices in
    /// PARAFAC-ALS / Tucker-ALS.
    pub fn random<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let data = (0..rows * cols).map(|_| rng.gen::<f64>()).collect();
        Mat { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Set element `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Add `v` to element `(i, j)`.
    #[inline]
    pub fn add_at(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] += v;
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Backing row-major storage.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable backing row-major storage.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }

    /// Dense matrix product `self * other`.
    pub fn matmul(&self, other: &Mat) -> Result<Mat> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch(format!(
                "matmul: {}x{} * {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Mat::zeros(self.rows, other.cols);
        // i-k-j loop order: stream through `other`'s rows, cache friendly for
        // row-major storage.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow.iter()) {
                    *o += aik * b;
                }
            }
        }
        Ok(out)
    }

    /// Gram matrix `selfᵀ * self` (`cols × cols`), exploiting symmetry.
    pub fn gram(&self) -> Mat {
        let n = self.cols;
        let mut g = Mat::zeros(n, n);
        for i in 0..self.rows {
            let row = self.row(i);
            for (a, &ra) in row.iter().enumerate() {
                if ra == 0.0 {
                    continue;
                }
                for (b, &rb) in row.iter().enumerate().skip(a) {
                    g.data[a * n + b] += ra * rb;
                }
            }
        }
        for a in 0..n {
            for b in 0..a {
                g.data[a * n + b] = g.data[b * n + a];
            }
        }
        g
    }

    /// Matrix–vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch(format!(
                "matvec: {}x{} * len-{}",
                self.rows,
                self.cols,
                x.len()
            )));
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Mat) -> Result<Mat> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch(format!(
                "hadamard: {:?} vs {:?}",
                self.shape(),
                other.shape()
            )));
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Ok(Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Mat) -> Result<Mat> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch(format!(
                "add: {:?} vs {:?}",
                self.shape(),
                other.shape()
            )));
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Elementwise difference `self - other`.
    pub fn sub(&self, other: &Mat) -> Result<Mat> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch(format!(
                "sub: {:?} vs {:?}",
                self.shape(),
                other.shape()
            )));
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Multiply every element by `s` in place.
    pub fn scale_inplace(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Khatri–Rao product (column-wise Kronecker): for `self ∈ ℝ^{I×R}` and
    /// `other ∈ ℝ^{J×R}`, the result is `ℝ^{IJ×R}` with
    /// `result[(i*J + j), r] = self[i,r] * other[j,r]`.
    ///
    /// HaTen2 avoids ever materializing this (it is the "intermediate data
    /// explosion" of PARAFAC); the dense version lives here as the reference
    /// semantics for tests.
    pub fn khatri_rao(&self, other: &Mat) -> Result<Mat> {
        if self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch(format!(
                "khatri_rao: {} vs {} columns",
                self.cols, other.cols
            )));
        }
        let (i_dim, j_dim, r_dim) = (self.rows, other.rows, self.cols);
        let mut out = Mat::zeros(i_dim * j_dim, r_dim);
        for i in 0..i_dim {
            for j in 0..j_dim {
                let dst = i * j_dim + j;
                for r in 0..r_dim {
                    out.set(dst, r, self.get(i, r) * other.get(j, r));
                }
            }
        }
        Ok(out)
    }

    /// Kronecker product: `self ∈ ℝ^{m×n}`, `other ∈ ℝ^{p×q}` →
    /// `ℝ^{mp×nq}`.
    pub fn kronecker(&self, other: &Mat) -> Mat {
        let (m, n) = self.shape();
        let (p, q) = other.shape();
        let mut out = Mat::zeros(m * p, n * q);
        for i in 0..m {
            for j in 0..n {
                let a = self.get(i, j);
                if a == 0.0 {
                    continue;
                }
                for k in 0..p {
                    for l in 0..q {
                        out.set(i * p + k, j * q + l, a * other.get(k, l));
                    }
                }
            }
        }
        out
    }

    /// Normalize each column to unit 2-norm; returns the original norms
    /// (the `λ` vector of PARAFAC-ALS). Zero columns are left untouched and
    /// report norm 0.
    pub fn normalize_columns(&mut self) -> Vec<f64> {
        let mut norms = vec![0.0; self.cols];
        #[allow(clippy::needless_range_loop)]
        for j in 0..self.cols {
            let mut s = 0.0;
            for i in 0..self.rows {
                let v = self.get(i, j);
                s += v * v;
            }
            let n = s.sqrt();
            norms[j] = n;
            if n > 0.0 {
                for i in 0..self.rows {
                    let v = self.get(i, j) / n;
                    self.set(i, j, v);
                }
            }
        }
        norms
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// True when every corresponding element differs by at most `tol`.
    pub fn approx_eq(&self, other: &Mat, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl std::fmt::Display for Mat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:10.4}", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Mat::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.data().iter().all(|&v| v == 0.0));
        let i = Mat::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert_eq!(i.get(2, 2), 1.0);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Mat::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Mat::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Mat::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
    }

    #[test]
    fn matmul_known_values() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Mat::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::DimensionMismatch(_))
        ));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Mat::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        assert!(g.approx_eq(&explicit, 1e-12));
    }

    #[test]
    fn matvec_known() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn hadamard_and_add_sub() {
        let a = Mat::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let b = Mat::from_rows(&[vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.hadamard(&b).unwrap().row(0), &[3.0, 8.0]);
        assert_eq!(a.add(&b).unwrap().row(0), &[4.0, 6.0]);
        assert_eq!(b.sub(&a).unwrap().row(0), &[2.0, 2.0]);
    }

    #[test]
    fn khatri_rao_known() {
        // A = [1;2] (2x1), B = [3;4] (2x1) -> A ⊙ B = [3;4;6;8]
        let a = Mat::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let b = Mat::from_rows(&[vec![3.0], vec![4.0]]).unwrap();
        let kr = a.khatri_rao(&b).unwrap();
        assert_eq!(kr.shape(), (4, 1));
        assert_eq!(kr.col(0), vec![3.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn kronecker_known() {
        let a = Mat::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let b = Mat::from_rows(&[vec![0.0, 3.0], vec![4.0, 5.0]]).unwrap();
        let k = a.kronecker(&b);
        assert_eq!(k.shape(), (2, 4));
        assert_eq!(k.row(0), &[0.0, 3.0, 0.0, 6.0]);
        assert_eq!(k.row(1), &[4.0, 5.0, 8.0, 10.0]);
    }

    #[test]
    fn khatri_rao_equals_kronecker_columns() {
        // For single columns, Khatri-Rao and Kronecker coincide.
        let a = Mat::from_rows(&[vec![1.0], vec![-2.0], vec![0.5]]).unwrap();
        let b = Mat::from_rows(&[vec![2.0], vec![3.0]]).unwrap();
        let kr = a.khatri_rao(&b).unwrap();
        let kron = a.kronecker(&b);
        assert!(kr.approx_eq(&kron, 1e-15));
    }

    #[test]
    fn normalize_columns_returns_norms() {
        let mut a = Mat::from_rows(&[vec![3.0, 0.0], vec![4.0, 0.0]]).unwrap();
        let norms = a.normalize_columns();
        assert!((norms[0] - 5.0).abs() < 1e-12);
        assert_eq!(norms[1], 0.0);
        assert!((a.get(0, 0) - 0.6).abs() < 1e-12);
        assert!((a.get(1, 0) - 0.8).abs() < 1e-12);
        // Zero column untouched
        assert_eq!(a.get(0, 1), 0.0);
    }

    #[test]
    fn fro_norm_known() {
        let a = Mat::from_rows(&[vec![3.0, 4.0]]).unwrap();
        assert!((a.fro_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn random_in_unit_interval() {
        let mut rng = rand::rngs::mock::StepRng::new(0, 1 << 40);
        let m = Mat::random(4, 4, &mut rng);
        assert!(m.data().iter().all(|&v| (0.0..1.0).contains(&v)));
    }
}
