//! Leading left singular vectors via blocked subspace (orthogonal) iteration.
//!
//! Tucker-ALS (Algorithm 2 of the paper) needs the `P` leading left singular
//! vectors of a tall matricized tensor `Y₍₁₎ ∈ ℝ^{I×QR}` where `I` can be in
//! the millions but `P`, `Q`, `R` are small. Forming `Y Yᵀ` (I×I) is the
//! intermediate-data explosion this paper is about avoiding, so we extract
//! the subspace by iterating `U ← orth(Y (Yᵀ U))`, which only ever touches
//! the operator through tall-matrix products. The operator is abstracted as
//! [`LinOp`] so callers can plug in sparse matricized tensors without
//! densifying them.

use crate::qr::thin_qr;
use crate::vecops::max_abs_diff;
use crate::{LinalgError, Mat, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An abstract `m × n` linear operator supporting products with blocks of
/// vectors. Implemented by dense [`Mat`] here and by sparse matricized
/// tensors in `haten2-tensor`.
pub trait LinOp {
    /// Row count `m`.
    fn nrows(&self) -> usize;
    /// Column count `n`.
    fn ncols(&self) -> usize;
    /// `self * x` for a block `x ∈ ℝ^{n×k}` → `ℝ^{m×k}`.
    fn apply(&self, x: &Mat) -> Result<Mat>;
    /// `selfᵀ * x` for a block `x ∈ ℝ^{m×k}` → `ℝ^{n×k}`.
    fn apply_transpose(&self, x: &Mat) -> Result<Mat>;
}

impl LinOp for Mat {
    fn nrows(&self) -> usize {
        self.rows()
    }
    fn ncols(&self) -> usize {
        self.cols()
    }
    fn apply(&self, x: &Mat) -> Result<Mat> {
        self.matmul(x)
    }
    fn apply_transpose(&self, x: &Mat) -> Result<Mat> {
        // (AᵀX) computed without materializing Aᵀ: (XᵀA)ᵀ.
        Ok(x.transpose().matmul(self)?.transpose())
    }
}

/// Options for [`leading_left_singular_vectors`].
#[derive(Debug, Clone)]
pub struct SubspaceOptions {
    /// Maximum number of iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the change of the projected subspace
    /// (max-abs difference of `|UᵀU_prev|` from identity).
    pub tol: f64,
    /// RNG seed for the random start block.
    pub seed: u64,
}

impl Default for SubspaceOptions {
    fn default() -> Self {
        SubspaceOptions {
            max_iter: 200,
            tol: 1e-10,
            seed: 0x5eed,
        }
    }
}

/// Compute the `p` leading left singular vectors of an operator `a` as an
/// `m × p` matrix with orthonormal columns.
///
/// Subspace iteration: start from a random orthonormal block `U₀`, repeat
/// `U ← orth(A (Aᵀ U))` until the subspace stabilizes. Convergence is
/// geometric in `(σ_{p+1}/σ_p)²`; clusters at the cutoff converge slowly but
/// the returned block still spans an invariant subspace to within `tol` of
/// the best one, which is all ALS needs.
pub fn leading_left_singular_vectors<O: LinOp + ?Sized>(
    a: &O,
    p: usize,
    opts: &SubspaceOptions,
) -> Result<Mat> {
    let (m, n) = (a.nrows(), a.ncols());
    if p == 0 {
        return Ok(Mat::zeros(m, 0));
    }
    if p > m || p > n {
        return Err(LinalgError::InvalidArgument(format!(
            "requested {p} singular vectors of a {m}x{n} operator"
        )));
    }

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut u = thin_qr(&Mat::random(m, p, &mut rng))?;

    let mut last_proj: Option<Vec<f64>> = None;
    for iter in 0..opts.max_iter {
        let w = a.apply_transpose(&u)?; // n×p
        let au = a.apply(&w)?; // m×p : A Aᵀ U
        let next = thin_qr(&au)?;

        // Convergence test: |UᵀU_next| should converge to a fixed rotation;
        // track the diagonal magnitudes of the cross-projection.
        let cross = u.transpose().matmul(&next)?;
        let proj: Vec<f64> = (0..p).map(|j| cross.get(j, j).abs()).collect();
        u = next;
        if let Some(prev) = &last_proj {
            let delta = max_abs_diff(prev, &proj);
            let near_identity = proj.iter().all(|&d| (d - 1.0).abs() < opts.tol.max(1e-12));
            if near_identity || (delta < opts.tol && iter > 2) {
                return Ok(u);
            }
        }
        last_proj = Some(proj);
    }
    // Subspace iteration always returns its best iterate: ALS is tolerant to
    // slightly-unconverged subspaces (it re-solves every sweep), so a hard
    // error here would be worse than the approximation.
    Ok(u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svd::svd_small;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// Subspace angle check: columns of `u` span the same space as `v`.
    fn same_subspace(u: &Mat, v: &Mat, tol: f64) -> bool {
        // ‖UᵀV‖ singular values all ≈ 1.
        let c = u.transpose().matmul(v).unwrap();
        let svd = svd_small(&c).unwrap();
        svd.s.iter().all(|&s| (s - 1.0).abs() < tol)
    }

    #[test]
    fn recovers_leading_subspace_of_random_tall_matrix() {
        let mut rng = StdRng::seed_from_u64(99);
        // Build a matrix with a strong rank-3 signal plus noise.
        let u_true = thin_qr(&Mat::random(50, 3, &mut rng)).unwrap();
        let v_true = thin_qr(&Mat::random(8, 3, &mut rng)).unwrap();
        let mut a = Mat::zeros(50, 8);
        let sig = [100.0, 50.0, 25.0];
        for (k, &s) in sig.iter().enumerate() {
            for i in 0..50 {
                for j in 0..8 {
                    a.add_at(i, j, s * u_true.get(i, k) * v_true.get(j, k));
                }
            }
        }
        // Small noise.
        for i in 0..50 {
            for j in 0..8 {
                a.add_at(i, j, 0.01 * rng.gen::<f64>());
            }
        }
        let u = leading_left_singular_vectors(&a, 3, &SubspaceOptions::default()).unwrap();
        assert!(same_subspace(&u, &u_true, 1e-3));
    }

    #[test]
    fn matches_svd_small_on_dense() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Mat::random(20, 6, &mut rng);
        let svd = svd_small(&a).unwrap();
        let mut u_ref = Mat::zeros(20, 2);
        for j in 0..2 {
            for i in 0..20 {
                u_ref.set(i, j, svd.u.get(i, j));
            }
        }
        let u = leading_left_singular_vectors(&a, 2, &SubspaceOptions::default()).unwrap();
        assert!(same_subspace(&u, &u_ref, 1e-6));
    }

    #[test]
    fn orthonormal_output() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Mat::random(30, 10, &mut rng);
        let u = leading_left_singular_vectors(&a, 4, &SubspaceOptions::default()).unwrap();
        assert!(u.gram().approx_eq(&Mat::identity(4), 1e-9));
    }

    #[test]
    fn p_zero_is_empty() {
        let a = Mat::identity(4);
        let u = leading_left_singular_vectors(&a, 0, &SubspaceOptions::default()).unwrap();
        assert_eq!(u.shape(), (4, 0));
    }

    #[test]
    fn rejects_oversized_p() {
        let a = Mat::identity(3);
        assert!(leading_left_singular_vectors(&a, 4, &SubspaceOptions::default()).is_err());
    }
}
