//! Moore–Penrose pseudoinverse and SPD solves.
//!
//! PARAFAC-ALS (Algorithm 1 of the paper) updates each factor as
//! `A ← MTTKRP · (CᵀC * BᵀB)†`. The Hadamard Gram product is a small
//! symmetric positive semi-definite `R×R` matrix, so the pseudoinverse is
//! computed from its eigendecomposition with a relative rank cutoff.

use crate::eigen::sym_eigen;
use crate::svd::svd_small;
use crate::{LinalgError, Mat, Result};

/// Moore–Penrose pseudoinverse.
///
/// For square symmetric matrices uses the symmetric eigendecomposition;
/// otherwise falls back to the small SVD. Singular values below
/// `1e-12 · σ_max` are treated as zero.
pub fn pinv(a: &Mat) -> Result<Mat> {
    const RTOL: f64 = 1e-12;
    let (m, n) = a.shape();
    if m == n && is_symmetric(a, 1e-10) {
        let e = sym_eigen(a)?;
        let lmax = e.values.iter().fold(0.0_f64, |acc, v| acc.max(v.abs()));
        let mut d = Mat::zeros(n, n);
        for i in 0..n {
            let l = e.values[i];
            if l.abs() > RTOL * lmax && lmax > 0.0 {
                d.set(i, i, 1.0 / l);
            }
        }
        return e.vectors.matmul(&d)?.matmul(&e.vectors.transpose());
    }
    let svd = svd_small(a)?;
    let smax = svd.s.first().copied().unwrap_or(0.0);
    let k = svd.s.len();
    // A† = V Σ† Uᵀ
    let mut vs = svd.v.clone();
    for j in 0..k {
        let inv = if smax > 0.0 && svd.s[j] > RTOL * smax {
            1.0 / svd.s[j]
        } else {
            0.0
        };
        for i in 0..vs.rows() {
            let v = vs.get(i, j) * inv;
            vs.set(i, j, v);
        }
    }
    vs.matmul(&svd.u.transpose())
}

/// Solve `a x = b` for symmetric positive-definite `a` via Cholesky.
///
/// Returns [`LinalgError::Singular`] when a pivot collapses (matrix not
/// positive definite to working precision).
pub fn solve_spd(a: &Mat, b: &[f64]) -> Result<Vec<f64>> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::DimensionMismatch(format!(
            "solve_spd: matrix is {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch(format!(
            "solve_spd: rhs has length {} for n={n}",
            b.len()
        )));
    }
    // Cholesky: a = L Lᵀ (lower triangular L, row-major).
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut s = a.get(i, j);
            for k in 0..j {
                s -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if s <= 0.0 {
                    return Err(LinalgError::Singular);
                }
                l[i * n + j] = s.sqrt();
            } else {
                l[i * n + j] = s / l[j * n + j];
            }
        }
    }
    // Forward solve L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l[i * n + k] * y[k];
        }
        y[i] = s / l[i * n + i];
    }
    // Back solve Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for k in (i + 1)..n {
            s -= l[k * n + i] * x[k];
        }
        x[i] = s / l[i * n + i];
    }
    Ok(x)
}

fn is_symmetric(a: &Mat, tol: f64) -> bool {
    let n = a.rows();
    let scale = a.max_abs().max(1.0);
    for i in 0..n {
        for j in (i + 1)..n {
            if (a.get(i, j) - a.get(j, i)).abs() > tol * scale {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn pinv_of_invertible_is_inverse() {
        let a = Mat::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let p = pinv(&a).unwrap();
        let prod = a.matmul(&p).unwrap();
        assert!(prod.approx_eq(&Mat::identity(2), 1e-10));
    }

    #[test]
    fn pinv_penrose_conditions_rank_deficient() {
        // Rank-1 symmetric PSD matrix.
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        let p = pinv(&a).unwrap();
        // A A† A = A
        let apa = a.matmul(&p).unwrap().matmul(&a).unwrap();
        assert!(apa.approx_eq(&a, 1e-9));
        // A† A A† = A†
        let pap = p.matmul(&a).unwrap().matmul(&p).unwrap();
        assert!(pap.approx_eq(&p, 1e-9));
    }

    #[test]
    fn pinv_rectangular() {
        let mut rng = StdRng::seed_from_u64(21);
        let a = Mat::random(6, 3, &mut rng);
        let p = pinv(&a).unwrap();
        assert_eq!(p.shape(), (3, 6));
        // A† A ≈ I (full column rank, so left inverse).
        let pa = p.matmul(&a).unwrap();
        assert!(pa.approx_eq(&Mat::identity(3), 1e-8));
    }

    #[test]
    fn solve_spd_known_system() {
        let a = Mat::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]).unwrap();
        // x = [1, 2] -> b = [6, 7]
        let x = solve_spd(&a, &[6.0, 7.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_spd_rejects_indefinite() {
        let a = Mat::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        assert!(matches!(
            solve_spd(&a, &[1.0, 1.0]),
            Err(LinalgError::Singular)
        ));
    }

    #[test]
    fn solve_spd_dim_checks() {
        let a = Mat::zeros(2, 3);
        assert!(solve_spd(&a, &[1.0, 1.0]).is_err());
        let a = Mat::identity(2);
        assert!(solve_spd(&a, &[1.0]).is_err());
    }

    #[test]
    fn pinv_zero_matrix_is_zero() {
        let a = Mat::zeros(3, 3);
        let p = pinv(&a).unwrap();
        assert!(p.approx_eq(&Mat::zeros(3, 3), 1e-15));
    }
}
