//! Small vector helpers shared across the workspace.

/// Dot product of two equal-length slices.
///
/// Panics in debug builds when lengths differ; in release the shorter length
/// wins (zip semantics), which is never exercised by callers in this
/// workspace.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scale a vector in place.
#[inline]
pub fn scale(a: &mut [f64], s: f64) {
    for v in a {
        *v *= s;
    }
}

/// Normalize to unit 2-norm, returning the prior norm. A zero vector is left
/// untouched.
pub fn normalize(a: &mut [f64]) -> f64 {
    let n = norm2(a);
    if n > 0.0 {
        scale(a, 1.0 / n);
    }
    n
}

/// Maximum absolute difference between two slices.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .fold(0.0_f64, |m, (x, y)| m.max((x - y).abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn axpy_updates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut v = vec![0.0, 0.0];
        assert_eq!(normalize(&mut v), 0.0);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn normalize_unit() {
        let mut v = vec![3.0, 4.0];
        let n = normalize(&mut v);
        assert!((n - 5.0).abs() < 1e-12);
        assert!((norm2(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_abs_diff_works() {
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[2.0, 3.0]), 2.0);
    }
}
