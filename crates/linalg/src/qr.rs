//! Householder QR decomposition.
//!
//! Used by the subspace iteration in Tucker-ALS to re-orthonormalize the
//! iterate block, and as a general building block. Only the *thin* form
//! (`Q ∈ ℝ^{m×n}`, `R ∈ ℝ^{n×n}` for `m ≥ n`) is ever needed here.

use crate::{LinalgError, Mat, Result};

/// Result of a QR decomposition: `a = q * r` with `q` having orthonormal
/// columns and `r` upper-triangular.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Orthonormal factor (thin: `m × n`).
    pub q: Mat,
    /// Upper-triangular factor (`n × n`).
    pub r: Mat,
}

/// Thin QR via Householder reflections. Requires `m ≥ n`.
pub fn householder_qr(a: &Mat) -> Result<Qr> {
    let (m, n) = a.shape();
    if m < n {
        return Err(LinalgError::InvalidArgument(format!(
            "householder_qr requires rows >= cols, got {m}x{n}"
        )));
    }
    // Work on a copy that will become R (in its top n×n block).
    let mut r = a.clone();
    // Store Householder vectors to apply to the identity later.
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(n);

    for k in 0..n {
        // Build the Householder vector for column k, rows k..m.
        let mut v: Vec<f64> = (k..m).map(|i| r.get(i, k)).collect();
        let alpha = {
            let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if v[0] >= 0.0 {
                -norm
            } else {
                norm
            }
        };
        if alpha == 0.0 {
            // Column already zero below the diagonal; nothing to reflect.
            vs.push(vec![0.0; m - k]);
            continue;
        }
        v[0] -= alpha;
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 == 0.0 {
            vs.push(vec![0.0; m - k]);
            continue;
        }
        // Apply H = I - 2 v vᵀ / (vᵀv) to R[k.., k..].
        for j in k..n {
            let mut s = 0.0;
            for (t, vi) in v.iter().enumerate() {
                s += vi * r.get(k + t, j);
            }
            let f = 2.0 * s / vnorm2;
            for (t, vi) in v.iter().enumerate() {
                let cur = r.get(k + t, j);
                r.set(k + t, j, cur - f * vi);
            }
        }
        vs.push(v);
    }

    // Accumulate Q = H_0 H_1 ... H_{n-1} applied to the thin identity.
    let mut q = Mat::zeros(m, n);
    for j in 0..n {
        q.set(j, j, 1.0);
    }
    for k in (0..n).rev() {
        let v = &vs[k];
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 == 0.0 {
            continue;
        }
        for j in 0..n {
            let mut s = 0.0;
            for (t, vi) in v.iter().enumerate() {
                s += vi * q.get(k + t, j);
            }
            let f = 2.0 * s / vnorm2;
            for (t, vi) in v.iter().enumerate() {
                let cur = q.get(k + t, j);
                q.set(k + t, j, cur - f * vi);
            }
        }
    }

    // Zero R's strictly-lower part and truncate to n×n.
    let mut r_out = Mat::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            r_out.set(i, j, r.get(i, j));
        }
    }
    Ok(Qr { q, r: r_out })
}

/// Convenience wrapper returning only the orthonormal factor.
pub fn thin_qr(a: &Mat) -> Result<Mat> {
    Ok(householder_qr(a)?.q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn assert_orthonormal(q: &Mat, tol: f64) {
        let g = q.gram();
        let id = Mat::identity(q.cols());
        assert!(g.approx_eq(&id, tol), "QᵀQ not identity:\n{g}");
    }

    #[test]
    fn qr_reconstructs_input() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Mat::random(8, 4, &mut rng);
        let Qr { q, r } = householder_qr(&a).unwrap();
        assert_orthonormal(&q, 1e-10);
        let qr = q.matmul(&r).unwrap();
        assert!(qr.approx_eq(&a, 1e-10));
    }

    #[test]
    fn qr_square_matrix() {
        let a = Mat::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let Qr { q, r } = householder_qr(&a).unwrap();
        assert_orthonormal(&q, 1e-12);
        assert!(q.matmul(&r).unwrap().approx_eq(&a, 1e-12));
        // R upper triangular
        assert_eq!(r.get(1, 0), 0.0);
    }

    #[test]
    fn qr_rank_deficient_still_orthonormal_r_reconstructs() {
        // Second column is 2x the first.
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let Qr { q, r } = householder_qr(&a).unwrap();
        let qr = q.matmul(&r).unwrap();
        assert!(qr.approx_eq(&a, 1e-10));
    }

    #[test]
    fn qr_rejects_wide_matrices() {
        let a = Mat::zeros(2, 3);
        assert!(householder_qr(&a).is_err());
    }

    #[test]
    fn qr_identity_is_identity() {
        let a = Mat::identity(3);
        let Qr { q, r } = householder_qr(&a).unwrap();
        // Q and R equal identity up to sign conventions; QR must reconstruct.
        assert!(q.matmul(&r).unwrap().approx_eq(&a, 1e-12));
        assert_orthonormal(&q, 1e-12);
    }
}
