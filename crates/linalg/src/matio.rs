//! Text I/O for dense matrices (factor matrices on disk).
//!
//! Format: one row per line, whitespace-separated values; `#` comments and
//! blank lines are skipped. This is what the `haten2` CLI writes for the
//! factor matrices of a decomposition, mirroring how the Hadoop
//! implementation left its factors on HDFS as text part-files.

use crate::{LinalgError, Mat, Result};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Write a matrix as whitespace-separated rows.
pub fn write_mat<W: Write>(m: &Mat, w: W) -> Result<()> {
    let mut w = BufWriter::new(w);
    for i in 0..m.rows() {
        let row = m.row(i);
        for (j, v) in row.iter().enumerate() {
            if j > 0 {
                write!(w, " ").map_err(io_err)?;
            }
            write!(w, "{v}").map_err(io_err)?;
        }
        writeln!(w).map_err(io_err)?;
    }
    w.flush().map_err(io_err)
}

/// Read a matrix from whitespace-separated rows; all rows must have equal
/// length.
pub fn read_mat<R: Read>(r: R) -> Result<Mat> {
    let reader = BufReader::new(r);
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(io_err)?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let row: std::result::Result<Vec<f64>, _> =
            trimmed.split_whitespace().map(str::parse).collect();
        let row =
            row.map_err(|e| LinalgError::InvalidArgument(format!("line {}: {e}", lineno + 1)))?;
        rows.push(row);
    }
    Mat::from_rows(&rows)
}

/// Save a matrix to a file path.
pub fn save_mat<P: AsRef<Path>>(m: &Mat, path: P) -> Result<()> {
    let f = std::fs::File::create(path).map_err(io_err)?;
    write_mat(m, f)
}

/// Load a matrix from a file path.
pub fn load_mat<P: AsRef<Path>>(path: P) -> Result<Mat> {
    let f = std::fs::File::open(path).map_err(io_err)?;
    read_mat(f)
}

fn io_err(e: std::io::Error) -> LinalgError {
    LinalgError::InvalidArgument(format!("I/O: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let m = Mat::from_rows(&[vec![1.5, -2.0, 3.0], vec![0.0, 4.25, -0.5]]).unwrap();
        let mut buf = Vec::new();
        write_mat(&m, &mut buf).unwrap();
        let back = read_mat(&buf[..]).unwrap();
        assert!(back.approx_eq(&m, 0.0));
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# factor matrix\n\n1 2\n3 4\n";
        let m = read_mat(text.as_bytes()).unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn rejects_ragged_and_garbage() {
        assert!(read_mat("1 2\n3\n".as_bytes()).is_err());
        assert!(read_mat("1 x\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_input_is_empty_matrix() {
        let m = read_mat("".as_bytes()).unwrap();
        assert_eq!(m.shape(), (0, 0));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("haten2_matio_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.mat");
        let m = Mat::identity(3);
        save_mat(&m, &path).unwrap();
        let back = load_mat(&path).unwrap();
        assert!(back.approx_eq(&m, 0.0));
        std::fs::remove_file(&path).ok();
    }
}
