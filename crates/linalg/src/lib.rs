//! Hand-rolled dense linear algebra for the HaTen2 reproduction.
//!
//! The HaTen2 paper (ICDE 2015) relies on a handful of dense kernels that run
//! on the "driver" side of the distributed decomposition:
//!
//! * small dense matrix products and Gram matrices (`BᵀB`, `CᵀC`),
//! * the Moore–Penrose pseudoinverse of the `R×R` Hadamard-product Gram
//!   matrix in PARAFAC-ALS (Algorithm 1, lines 3/5/7),
//! * the `P` leading left singular vectors of the matricized intermediate
//!   tensor in Tucker-ALS (Algorithm 2, lines 4/6/8),
//! * column normalization and Frobenius norms.
//!
//! Everything here is implemented from scratch (no external linear-algebra
//! crates): Householder QR, a cyclic Jacobi symmetric eigensolver, an SVD for
//! small/medium matrices built on the Gram-matrix eigendecomposition, and a
//! blocked subspace (orthogonal) iteration that extracts leading singular
//! vectors of tall sparse-multipliable operators without ever forming the
//! full Gram matrix.
//!
//! Conventions: all matrices are row-major [`Mat`] with `f64` entries.
//! Dimensions follow the paper's notation where practical (`I×R` factors,
//! `R×R` Gram matrices).

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod eigen;
pub mod mat;
pub mod matio;
pub mod pinv;
pub mod qr;
pub mod subspace;
pub mod svd;
pub mod vecops;

pub use eigen::{sym_eigen, SymEigen};
pub use mat::Mat;
pub use matio::{load_mat, read_mat, save_mat, write_mat};
pub use pinv::{pinv, solve_spd};
pub use qr::{householder_qr, thin_qr, Qr};
pub use subspace::{leading_left_singular_vectors, LinOp, SubspaceOptions};
pub use svd::{svd_small, Svd};

/// Error type for linear-algebra routines.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand dimensions are incompatible (message describes the mismatch).
    DimensionMismatch(String),
    /// An iterative routine failed to converge within its iteration budget.
    NonConvergence {
        /// Name of the routine that failed.
        routine: &'static str,
        /// Number of iterations performed.
        iterations: usize,
    },
    /// The input matrix is singular (or numerically so) where an invertible
    /// matrix was required.
    Singular,
    /// An argument was out of the accepted domain (e.g. requesting more
    /// singular vectors than the matrix has columns).
    InvalidArgument(String),
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            LinalgError::NonConvergence {
                routine,
                iterations,
            } => {
                write!(
                    f,
                    "{routine} failed to converge after {iterations} iterations"
                )
            }
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias for linear-algebra results.
pub type Result<T> = std::result::Result<T, LinalgError>;
