//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! The Jacobi method is slow (O(n³) per sweep) but extremely robust and
//! simple, which makes it the right tool for the small symmetric matrices
//! HaTen2 needs: the `R×R` Hadamard Gram matrix `CᵀC * BᵀB` of PARAFAC-ALS
//! (R ≤ 80 in the paper's sweeps) and the `(QR)×(QR)` Gram matrices behind
//! small SVDs. Large-I singular vectors never come through here — they use
//! [`crate::subspace`] instead.

use crate::{LinalgError, Mat, Result};

/// Eigendecomposition of a symmetric matrix: `a = v * diag(values) * vᵀ`.
///
/// Eigenvalues are sorted in *descending* order; `vectors` holds the
/// corresponding eigenvectors as columns.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Matrix whose columns are the eigenvectors (same order as `values`).
    pub vectors: Mat,
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
///
/// `a` must be square; symmetry is assumed (only the given entries are read
/// symmetrically — pass a truly symmetric matrix). Converges when the
/// off-diagonal Frobenius mass falls below `1e-14 * ‖a‖`.
pub fn sym_eigen(a: &Mat) -> Result<SymEigen> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::DimensionMismatch(format!(
            "sym_eigen: matrix is {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    if n == 0 {
        return Ok(SymEigen {
            values: vec![],
            vectors: Mat::zeros(0, 0),
        });
    }

    let mut m = a.clone();
    let mut v = Mat::identity(n);
    let scale = a.fro_norm().max(1e-300);
    let tol = 1e-14 * scale;
    let max_sweeps = 64;

    for sweep in 0..max_sweeps {
        // Off-diagonal mass.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m.get(i, j) * m.get(i, j);
            }
        }
        if off.sqrt() <= tol {
            return Ok(sorted(m, v, n));
        }
        if sweep == max_sweeps - 1 {
            break;
        }

        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                // Rotation angle (Golub & Van Loan 8.4).
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Update rows/columns p and q of M.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    Err(LinalgError::NonConvergence {
        routine: "sym_eigen",
        iterations: 64,
    })
}

fn sorted(m: Mat, v: Mat, n: usize) -> SymEigen {
    let mut idx: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    idx.sort_by(|&a, &b| diag[b].total_cmp(&diag[a]));
    let values: Vec<f64> = idx.iter().map(|&i| diag[i]).collect();
    let mut vectors = Mat::zeros(n, n);
    for (newcol, &oldcol) in idx.iter().enumerate() {
        for r in 0..n {
            vectors.set(r, newcol, v.get(r, oldcol));
        }
    }
    SymEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn reconstruct(e: &SymEigen) -> Mat {
        let n = e.values.len();
        let mut d = Mat::zeros(n, n);
        for i in 0..n {
            d.set(i, i, e.values[i]);
        }
        e.vectors
            .matmul(&d)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap()
    }

    #[test]
    fn diagonal_matrix_eigenvalues_sorted() {
        let mut a = Mat::zeros(3, 3);
        a.set(0, 0, 1.0);
        a.set(1, 1, 5.0);
        a.set(2, 2, 3.0);
        let e = sym_eigen(&a).unwrap();
        assert_eq!(e.values, vec![5.0, 3.0, 1.0]);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] -> eigenvalues 3 and 1.
        let a = Mat::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let e = sym_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        assert!(reconstruct(&e).approx_eq(&a, 1e-12));
    }

    #[test]
    fn random_symmetric_reconstructs() {
        let mut rng = StdRng::seed_from_u64(42);
        let b = Mat::random(6, 6, &mut rng);
        let a = b.add(&b.transpose()).unwrap();
        let e = sym_eigen(&a).unwrap();
        assert!(reconstruct(&e).approx_eq(&a, 1e-9));
        // Eigenvectors orthonormal.
        assert!(e.vectors.gram().approx_eq(&Mat::identity(6), 1e-10));
        // Sorted descending.
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn psd_gram_has_nonnegative_eigenvalues() {
        let mut rng = StdRng::seed_from_u64(3);
        let b = Mat::random(10, 4, &mut rng);
        let g = b.gram();
        let e = sym_eigen(&g).unwrap();
        assert!(e.values.iter().all(|&v| v > -1e-10));
    }

    #[test]
    fn rejects_rectangular() {
        assert!(sym_eigen(&Mat::zeros(2, 3)).is_err());
    }

    #[test]
    fn empty_matrix_ok() {
        let e = sym_eigen(&Mat::zeros(0, 0)).unwrap();
        assert!(e.values.is_empty());
    }
}
