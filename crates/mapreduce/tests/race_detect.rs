//! Mutation property tests for the two-sided race certification.
//!
//! Each case builds a *valid* writer/reader batch program, derives its
//! static effect model, and checks the baseline is clean on both sides:
//! the effect rules (`haten2_srcscan::effects::check_model`) find
//! nothing, and a real run with the `race-detect` feature's dynamic
//! detector flags nothing. Then one of three mutations is applied — drop
//! a declared read, rename a declared write shard, swap two declared
//! dependencies — and the same program must be rejected on both sides:
//! the static pass names the racing pair, and, with the static gate
//! bypassed (`JobCtx::get_raced`), the dynamic detector flags the same
//! unordered conflicting access at runtime.

#![cfg(feature = "race-detect")]
// Test code: `unwrap` is the assertion.
#![allow(clippy::unwrap_used)]

use haten2_mapreduce::{
    run_job, Batch, Cluster, ClusterConfig, JobCtx, JobSpec, RaceReport, SchedulerMode,
};
use haten2_srcscan::effects::{check_model, EffectModel};
use proptest::prelude::*;

/// Fixed source records every writer maps over.
static INPUT: &[(u64, f64)] = &[(1, 1.0), (2, 2.0), (3, 3.0)];

/// Run one real MapReduce job inside a submitted closure (the scheduler
/// rejects submitted jobs that finish without running one).
fn scale(ctx: &JobCtx<'_>, name: &str, input: &[(u64, f64)], factor: f64) -> Vec<(u64, f64)> {
    #[allow(clippy::expect_used)]
    run_job(
        ctx,
        JobSpec::named(name),
        input,
        move |k, v: &f64, emit| emit(*k, v * factor),
        |k, vs, emit| emit(*k, vs.iter().sum::<f64>()),
    )
    .expect("in-memory job cannot fail")
}

/// One seeded defect in an otherwise valid batch program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mutation {
    /// Reader `r` drops its declared read but still consumes the handle.
    DropRead(usize),
    /// Writer `w` declares `u#w` while readers still consume its handle.
    RenameWrite(usize),
    /// Readers `a` and `b` exchange declared reads, handles unswapped.
    SwapReads(usize, usize),
}

/// Declared read set of reader `r` under `mutation` (the body always
/// consumes the handle of writer `r % writers`).
fn declared_reads(r: usize, writers: usize, mutation: Option<Mutation>) -> Vec<String> {
    match mutation {
        Some(Mutation::DropRead(t)) if t == r => Vec::new(),
        Some(Mutation::SwapReads(a, b)) if r == a => vec![format!("d#{}", b % writers)],
        Some(Mutation::SwapReads(a, b)) if r == b => vec![format!("d#{}", a % writers)],
        _ => vec![format!("d#{}", r % writers)],
    }
}

/// Declared write set of writer `w` under `mutation`.
fn declared_writes(w: usize, mutation: Option<Mutation>) -> Vec<String> {
    match mutation {
        Some(Mutation::RenameWrite(t)) if t == w => vec![format!("u#{w}")],
        _ => vec![format!("d#{w}")],
    }
}

/// The static mirror of the program: one effect model per job in
/// submission order. A reader's inferred read is its producer's declared
/// write set — exactly what a handle read reports to the detector.
fn static_models(writers: usize, readers: usize, mutation: Option<Mutation>) -> Vec<EffectModel> {
    let mut models = Vec::new();
    for w in 0..writers {
        models.push(EffectModel {
            name: format!("w{w}"),
            declared_reads: vec!["x".to_string()],
            declared_writes: declared_writes(w, mutation),
            ..EffectModel::default()
        });
    }
    for r in 0..readers {
        models.push(EffectModel {
            name: format!("r{r}"),
            declared_reads: declared_reads(r, writers, mutation),
            declared_writes: vec![format!("y#{r}")],
            inferred_reads: declared_writes(r % writers, mutation),
            ..EffectModel::default()
        });
    }
    models
}

/// Run the program for real on a sequential cluster, bypassing the
/// static dependency gate (`get_raced`), and return what the dynamic
/// detector flagged.
fn run_program(writers: usize, readers: usize, mutation: Option<Mutation>) -> Vec<RaceReport> {
    let c = Cluster::new(ClusterConfig {
        scheduler: SchedulerMode::Sequential,
        ..ClusterConfig::with_machines(2)
    });
    let mut batch = Batch::new();
    let mut handles = Vec::new();
    for w in 0..writers {
        handles.push(
            batch
                .submit(
                    format!("w{w}"),
                    vec!["x".to_string()],
                    declared_writes(w, mutation),
                    move |ctx: &JobCtx<'_>| Ok(scale(ctx, &format!("w{w}"), INPUT, (w + 1) as f64)),
                )
                .unwrap(),
        );
    }
    for r in 0..readers {
        let h = handles[r % writers].clone();
        batch
            .submit(
                format!("r{r}"),
                declared_reads(r, writers, mutation),
                vec![format!("y#{r}")],
                move |ctx: &JobCtx<'_>| {
                    let upstream = ctx.get_raced(&h)?.clone();
                    Ok(scale(ctx, &format!("r{r}"), &upstream, 0.5))
                },
            )
            .unwrap();
    }
    batch.run(&c).unwrap();
    c.race_reports()
}

fn has_static_conflict(models: &[EffectModel], first: &str, second: &str, dataset: &str) -> bool {
    check_model(models).iter().any(|f| {
        f.rule == "unordered-conflict"
            && f.job == first
            && f.other.as_deref() == Some(second)
            && f.dataset == dataset
    })
}

fn has_dynamic_race(reports: &[RaceReport], first: &str, second: &str, dataset: &str) -> bool {
    reports
        .iter()
        .any(|r| r.first_job == first && r.second_job == second && r.dataset == dataset)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A well-declared program is clean on both sides: no effect-rule
    /// finding, no dynamic race — even though every reader goes through
    /// the unchecked `get_raced` path.
    #[test]
    fn valid_programs_are_clean_on_both_sides(
        writers in 2usize..5,
        readers in 2usize..6,
    ) {
        let models = static_models(writers, readers, None);
        prop_assert!(check_model(&models).is_empty());
        let reports = run_program(writers, readers, None);
        prop_assert!(reports.is_empty(), "dynamic detector flagged a valid program: {reports:?}");
    }

    /// Dropping a declared read is caught statically (unordered conflict
    /// naming writer, reader, and shard) and dynamically (same pair, same
    /// dataset) once the static gate is bypassed.
    #[test]
    fn dropped_read_is_caught_statically_and_dynamically(
        writers in 2usize..5,
        readers in 2usize..6,
        pick in 0usize..16,
    ) {
        let t = pick % readers;
        let mutation = Some(Mutation::DropRead(t));
        let writer = format!("w{}", t % writers);
        let reader = format!("r{t}");
        let dataset = format!("d#{}", t % writers);

        let models = static_models(writers, readers, mutation);
        prop_assert!(
            has_static_conflict(&models, &writer, &reader, &dataset),
            "static pass missed the race: {:?}", check_model(&models)
        );
        let reports = run_program(writers, readers, mutation);
        prop_assert!(
            has_dynamic_race(&reports, &writer, &reader, &dataset),
            "dynamic detector missed the race: {reports:?}"
        );
    }

    /// Renaming a declared write shard strands every reader of the old
    /// handle: the handle read now targets a dataset outside the reader's
    /// declared set, unordered with its producer.
    #[test]
    fn renamed_write_shard_is_caught_statically_and_dynamically(
        writers in 2usize..5,
        readers in 2usize..6,
        pick in 0usize..16,
    ) {
        // Target a writer that has at least one reader.
        let t = pick % writers.min(readers);
        let mutation = Some(Mutation::RenameWrite(t));
        let writer = format!("w{t}");
        let reader = format!("r{t}");
        let dataset = format!("u#{t}");

        let models = static_models(writers, readers, mutation);
        prop_assert!(
            has_static_conflict(&models, &writer, &reader, &dataset),
            "static pass missed the race: {:?}", check_model(&models)
        );
        let reports = run_program(writers, readers, mutation);
        prop_assert!(
            has_dynamic_race(&reports, &writer, &reader, &dataset),
            "dynamic detector missed the race: {reports:?}"
        );
    }

    /// Swapping two declared dependencies races *both* readers against
    /// their real producers.
    #[test]
    fn swapped_deps_are_caught_statically_and_dynamically(
        writers in 2usize..5,
        readers in 2usize..6,
        pick in 0usize..16,
    ) {
        let a = pick % readers;
        // A second reader whose producer differs from a's: exists because
        // writers ≥ 2 and readers ≥ 2 cover at least producers 0 and 1.
        let b = (0..readers).find(|r| r % writers != a % writers).unwrap();
        let mutation = Some(Mutation::SwapReads(a, b));

        let models = static_models(writers, readers, mutation);
        let reports = run_program(writers, readers, mutation);
        for r in [a, b] {
            let writer = format!("w{}", r % writers);
            let reader = format!("r{r}");
            let dataset = format!("d#{}", r % writers);
            prop_assert!(
                has_static_conflict(&models, &writer, &reader, &dataset),
                "static pass missed reader {reader}: {:?}", check_model(&models)
            );
            prop_assert!(
                has_dynamic_race(&reports, &writer, &reader, &dataset),
                "dynamic detector missed reader {reader}: {reports:?}"
            );
        }
    }
}
