//! Property-based tests for the MapReduce engine: results and accounting
//! must be invariant to cluster geometry, and the counters must obey
//! conservation laws.

// Test code: `unwrap` is the assertion (allowed by the workspace clippy
// policy only here).
#![allow(clippy::unwrap_used)]

use haten2_mapreduce::{run_job, Cluster, ClusterConfig, FaultPlan, JobSpec};
use proptest::prelude::*;

fn sum_by_key(cluster: &Cluster, input: &[(u64, u64)], modulo: u64) -> Vec<(u64, u64)> {
    let mut out = run_job(
        cluster,
        JobSpec::named("sum-by-key"),
        input,
        move |k, v: &u64, emit| emit(k % modulo, *v),
        |k, vals, emit| emit(*k, vals.iter().sum::<u64>()),
    )
    .unwrap();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn results_invariant_to_geometry(
        input in proptest::collection::vec((0u64..1000, 0u64..100), 0..200),
        machines in 1usize..12,
        threads in 1usize..6,
        modulo in 1u64..20,
    ) {
        let reference = sum_by_key(&Cluster::new(ClusterConfig::with_machines(1)), &input, modulo);
        let cfg = ClusterConfig { threads, ..ClusterConfig::with_machines(machines) };
        let got = sum_by_key(&Cluster::new(cfg), &input, modulo);
        prop_assert_eq!(got, reference);
    }

    #[test]
    fn total_value_mass_conserved(
        input in proptest::collection::vec((0u64..1000, 0u64..100), 0..200),
        machines in 1usize..8,
        modulo in 1u64..20,
    ) {
        let cluster = Cluster::new(ClusterConfig::with_machines(machines));
        let out = sum_by_key(&cluster, &input, modulo);
        let in_sum: u64 = input.iter().map(|(_, v)| v).sum();
        let out_sum: u64 = out.iter().map(|(_, v)| v).sum();
        prop_assert_eq!(in_sum, out_sum);
    }

    #[test]
    fn counters_conserved_without_combiner(
        input in proptest::collection::vec((0u64..1000, 0u64..100), 0..150),
        machines in 1usize..8,
    ) {
        let cluster = Cluster::new(ClusterConfig::with_machines(machines));
        run_job(
            &cluster,
            JobSpec::named("count"),
            &input,
            |k, v: &u64, emit| emit(k % 7, *v),
            |k, vals, emit| emit(*k, vals.len() as u64),
        )
        .unwrap();
        let m = cluster.metrics();
        let job = &m.jobs[0];
        prop_assert_eq!(job.map_input_records, input.len());
        // Without a combiner, everything emitted is shuffled.
        prop_assert_eq!(job.shuffle_records, job.map_output_records);
        prop_assert_eq!(job.shuffle_bytes, job.map_output_bytes);
        // Reduce groups = distinct keys.
        let distinct: std::collections::HashSet<u64> =
            input.iter().map(|(k, _)| k % 7).collect();
        prop_assert_eq!(job.reduce_groups, distinct.len());
    }

    #[test]
    fn combiner_never_changes_result(
        input in proptest::collection::vec((0u64..50, 0u64..100), 0..150),
        machines in 1usize..8,
    ) {
        let combiner = |_: &u64, vals: Vec<u64>| vec![vals.iter().sum::<u64>()];
        let run = |with: bool| {
            let cluster = Cluster::new(ClusterConfig::with_machines(machines));
            let spec = if with {
                JobSpec::named("c").with_combiner(&combiner)
            } else {
                JobSpec::named("c")
            };
            let mut out = run_job(
                &cluster,
                spec,
                &input,
                |k, v: &u64, emit| emit(k % 5, *v),
                |k, vals, emit| emit(*k, vals.iter().sum::<u64>()),
            )
            .unwrap();
            out.sort();
            (out, cluster.metrics().jobs[0].shuffle_records)
        };
        let (plain, plain_shuffle) = run(false);
        let (combined, combined_shuffle) = run(true);
        prop_assert_eq!(plain, combined);
        prop_assert!(combined_shuffle <= plain_shuffle);
    }

    #[test]
    fn failure_injection_transparent(
        input in proptest::collection::vec((0u64..100, 1u64..10), 1..100),
        nth in 1usize..5,
    ) {
        let cfg = ClusterConfig {
            fault_plan: Some(FaultPlan::fail_every_nth(nth)),
            ..ClusterConfig::with_machines(6)
        };
        let cluster = Cluster::new(cfg);
        let out = sum_by_key(&cluster, &input, 4);
        let reference = sum_by_key(&Cluster::new(ClusterConfig::with_machines(6)), &input, 4);
        prop_assert_eq!(out, reference);
    }

    #[test]
    fn sim_time_monotone_in_machines(
        input in proptest::collection::vec((0u64..1000, 0u64..100), 50..200),
    ) {
        let mut last = f64::INFINITY;
        for machines in [5usize, 10, 20] {
            let cluster = Cluster::new(ClusterConfig::with_machines(machines));
            sum_by_key(&cluster, &input, 13);
            let t = cluster.metrics().jobs[0].sim_time_s;
            prop_assert!(t <= last + 1e-9);
            last = t;
        }
    }
}
