//! Property tests: the durable block-store backend must be
//! observationally equivalent to the in-memory backend — same data, same
//! typed errors, same capacity arithmetic — for every input we can throw
//! at it. Durability may change *where* bytes live, never behaviour.

#![allow(clippy::unwrap_used)]

use haten2_mapreduce::{
    run_job_dfs, Cluster, ClusterConfig, Dfs, DfsBackend, DurableConfig, JobSpec, MrError,
};
use proptest::prelude::*;
use std::path::PathBuf;

fn tmp_dir(tag: u64) -> PathBuf {
    std::env::temp_dir().join(format!("haten2-backend-eq-{tag}-{}", std::process::id()))
}

/// A fresh durable Dfs under `dir`; caller removes the dir.
fn durable_dfs(dir: &PathBuf, capacity: Option<usize>, budget: Option<usize>) -> Dfs {
    let mut cfg = DurableConfig::new(dir);
    if let Some(b) = budget {
        cfg = cfg.memory_budget(b);
    }
    Dfs::durable(&cfg, capacity).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `SpillCapacityExceeded` fires on the same puts with the same
    /// fields on both backends, and accepted puts leave identical
    /// `live_bytes` — capacity accounting is backend-independent.
    #[test]
    fn spill_capacity_error_is_backend_independent(
        sizes in proptest::collection::vec(0usize..200, 1..8),
        capacity in 1usize..4000,
        tag in 0u64..1_000_000,
    ) {
        let dir = tmp_dir(tag);
        let _ = std::fs::remove_dir_all(&dir);
        let mem = Dfs::with_capacity(Some(capacity));
        let dur = durable_dfs(&dir, Some(capacity), None);
        for (id, n) in sizes.iter().enumerate() {
            let name = format!("ds-{id}");
            let records: Vec<u64> = (0..*n as u64).collect();
            let a = mem.put(&name, records.clone());
            let b = dur.put(&name, records);
            match (a, b) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
                (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
                (a, b) => prop_assert!(false, "backends disagree: {:?} vs {:?}", a, b),
            }
            prop_assert_eq!(mem.live_bytes(), dur.live_bytes());
            prop_assert_eq!(mem.contains(&name), dur.contains(&name));
        }
        drop(dur);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `ReducerOom` fires identically on clusters over either backend:
    /// same typed error, or same output bits.
    #[test]
    fn reducer_oom_is_backend_independent(
        input in proptest::collection::vec((0u64..6, 0u64..100), 1..60),
        budget in 1usize..2000,
        tag in 0u64..1_000_000,
    ) {
        let dir = tmp_dir(tag.wrapping_add(7_000_000));
        let _ = std::fs::remove_dir_all(&dir);
        let run = |cluster: &Cluster| -> Result<Vec<(u64, u64)>, MrError> {
            cluster.dfs().put("in", input.clone())?;
            run_job_dfs(
                cluster,
                cluster.dfs(),
                JobSpec::named("sum"),
                "in",
                "out",
                |k: &u64, v: &u64, emit| emit(*k, *v),
                |k, vals, emit| emit(*k, vals.iter().sum::<u64>()),
            )?;
            let mut out = cluster.dfs().get::<(u64, u64)>("out").unwrap().to_vec();
            out.sort();
            Ok(out)
        };
        let mem_cluster = Cluster::new(ClusterConfig {
            reducer_memory_bytes: Some(budget),
            ..ClusterConfig::with_machines(3)
        });
        let dur_cluster = Cluster::new(ClusterConfig {
            reducer_memory_bytes: Some(budget),
            dfs: DfsBackend::Durable(DurableConfig::new(&dir)),
            ..ClusterConfig::with_machines(3)
        });
        match (run(&mem_cluster), run(&dur_cluster)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(ea), Err(eb)) => {
                prop_assert!(matches!(ea, MrError::ReducerOom { .. }), "unexpected: {ea:?}");
                prop_assert_eq!(ea, eb);
            }
            (a, b) => prop_assert!(false, "backends disagree: {:?} vs {:?}", a, b),
        }
        drop(dur_cluster);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Forced spilling (zero memory budget) never changes a single bit:
    /// every get decodes from segment files yet equals the memory copy.
    #[test]
    fn forced_spill_roundtrip_is_bit_exact(
        records in proptest::collection::vec((0u64..1000, -1.0e9f64..1.0e9), 0..120),
        tag in 0u64..1_000_000,
    ) {
        let dir = tmp_dir(tag.wrapping_add(14_000_000));
        let _ = std::fs::remove_dir_all(&dir);
        let mem = Dfs::new();
        let dur = durable_dfs(&dir, None, Some(0));
        mem.put("r", records.clone()).unwrap();
        dur.put("r", records).unwrap();
        let a = mem.get::<(u64, f64)>("r").unwrap();
        let b = dur.get::<(u64, f64)>("r").unwrap();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert_eq!(x.0, y.0);
            prop_assert_eq!(x.1.to_bits(), y.1.to_bits());
        }
        if !a.is_empty() {
            prop_assert!(dur.spill_stats().reload_events >= 1);
        }
        drop(dur);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
