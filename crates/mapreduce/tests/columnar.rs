//! Property tests for the columnar shuffle and streaming reduce path.
//!
//! The SoA arena, the counts-driven k-way merge, and the streaming
//! [`run_job_streaming`] boundary are all invisible refactors: for random
//! jobs — including heavily skewed key distributions and degenerate
//! zero-record shapes — the engine must return the *same output in the
//! same order* as the sequential reference executor, and record the same
//! [`JobMetrics`] (every field except the host-time ones). The streaming
//! and `Vec`-signature boundaries must also agree with each other, even
//! when a streaming reducer stops early and leaves values undrained.

use haten2_mapreduce::{
    run_job, run_job_reference, run_job_reference_streaming, run_job_streaming, Cluster,
    ClusterConfig, JobMetrics, JobSpec,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// Uniform word-count corpus: small vocabulary so keys collide across
/// map tasks and partitions.
fn corpus() -> impl Strategy<Value = Vec<(u64, Vec<u64>)>> {
    vec((0u64..1000, vec(0u64..25, 0..10)), 0..50)
}

/// Power-law-skewed corpus: words are log2-bucketed uniform draws, so
/// word `k` appears with probability ~2^-k — a few huge groups and a
/// long tail of singletons, the shape that stresses group sizing and the
/// per-run prefix counts of the merge.
fn skewed_corpus() -> impl Strategy<Value = Vec<(u64, Vec<u64>)>> {
    let zipfish = (1u64..=1 << 20).prop_map(|x| u64::from(63 - x.leading_zeros()));
    vec((0u64..1000, vec(zipfish, 0..12)), 0..50)
}

fn config(machines: usize, threads: usize, reducers: usize) -> ClusterConfig {
    ClusterConfig {
        machines,
        threads,
        reducers: Some(reducers),
        ..ClusterConfig::default()
    }
}

fn geometry() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..=16, 1usize..=16, 1usize..=8)
}

/// Non-host-time metrics of the first (only) job run on a cluster.
fn job_metrics(c: &Cluster) -> JobMetrics {
    let mut m = c.metrics().jobs.first().cloned().unwrap_or_default();
    m.wall_time_s = 0.0;
    m.started_s = 0.0;
    m.finished_s = 0.0;
    m
}

fn wc_mapper(_id: &u64, words: &Vec<u64>, emit: &mut dyn FnMut(u64, u64)) {
    for &w in words {
        emit(w, 1);
    }
}

/// Streaming engine vs streaming reference on one input; returns outputs
/// and scrubbed metrics from both sides.
type StreamOutcome = (
    haten2_mapreduce::Result<Vec<(u64, u64)>>,
    haten2_mapreduce::Result<Vec<(u64, u64)>>,
    JobMetrics,
    JobMetrics,
);

fn run_streaming_both(cfg: ClusterConfig, input: &[(u64, Vec<u64>)]) -> StreamOutcome {
    let reducer = |word: &u64,
                   vals: &mut haten2_mapreduce::GroupValues<'_, u64, u64>,
                   emit: &mut dyn FnMut(u64, u64)| {
        emit(*word, vals.sum());
    };
    let engine_cluster = Cluster::new(cfg.clone());
    let engine = run_job_streaming(
        &engine_cluster,
        JobSpec::named("wc"),
        input,
        wc_mapper,
        reducer,
    );
    let reference_cluster = Cluster::new(cfg);
    let reference = run_job_reference_streaming(
        &reference_cluster,
        JobSpec::named("wc"),
        input,
        wc_mapper,
        reducer,
    );
    (
        engine,
        reference,
        job_metrics(&engine_cluster),
        job_metrics(&reference_cluster),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The streaming boundary is observably identical to the sequential
    /// streaming reference: outputs bit-identical and in the same order,
    /// metrics identical except host time.
    #[test]
    fn streaming_engine_matches_streaming_reference(
        input in corpus(),
        (machines, threads, reducers) in geometry(),
    ) {
        let (engine, reference, em, rm) =
            run_streaming_both(config(machines, threads, reducers), &input);
        prop_assert_eq!(engine, reference);
        prop_assert_eq!(em, rm);
    }

    /// Same equivalence under power-law key skew: a handful of giant
    /// groups spanning every run plus a tail of one-value groups.
    #[test]
    fn streaming_equivalence_under_power_law_skew(
        input in skewed_corpus(),
        (machines, threads, reducers) in geometry(),
    ) {
        let (engine, reference, em, rm) =
            run_streaming_both(config(machines, threads, reducers), &input);
        prop_assert_eq!(engine, reference);
        prop_assert_eq!(em, rm);
    }

    /// The `Vec`-signature and streaming boundaries run the same shuffle
    /// and merge, so their outputs must be bit-identical (metrics differ
    /// only in the documented `bytes_allocated` materialization charge).
    #[test]
    fn vec_and_streaming_boundaries_agree(
        input in skewed_corpus(),
        (machines, threads, reducers) in geometry(),
    ) {
        let cfg = config(machines, threads, reducers);
        let classic = run_job(
            &Cluster::new(cfg.clone()),
            JobSpec::named("wc"),
            &input,
            wc_mapper,
            |word: &u64, ones: Vec<u64>, emit: &mut dyn FnMut(u64, u64)| {
                emit(*word, ones.iter().sum());
            },
        );
        let streaming = run_job_streaming(
            &Cluster::new(cfg),
            JobSpec::named("wc"),
            &input,
            wc_mapper,
            |word: &u64,
             vals: &mut haten2_mapreduce::GroupValues<'_, u64, u64>,
             emit: &mut dyn FnMut(u64, u64)| {
                emit(*word, vals.sum());
            },
        );
        prop_assert_eq!(classic, streaming);
    }

    /// A streaming reducer that stops early leaves its group's remainder
    /// to the engine's drain; the next group must start clean, exactly as
    /// in the reference.
    #[test]
    fn early_stopping_streaming_reducer_drains_cleanly(
        input in skewed_corpus(),
        (machines, threads, reducers) in geometry(),
    ) {
        let reducer = |word: &u64,
                       vals: &mut haten2_mapreduce::GroupValues<'_, u64, u64>,
                       emit: &mut dyn FnMut(u64, u64)| {
            // Consume at most two values, then bail mid-group.
            emit(*word, vals.take(2).sum());
        };
        let cfg = config(machines, threads, reducers);
        let engine_cluster = Cluster::new(cfg.clone());
        let engine = run_job_streaming(
            &engine_cluster, JobSpec::named("wc"), &input, wc_mapper, reducer,
        );
        let reference_cluster = Cluster::new(cfg);
        let reference = run_job_reference_streaming(
            &reference_cluster, JobSpec::named("wc"), &input, wc_mapper, reducer,
        );
        prop_assert_eq!(engine, reference);
        prop_assert_eq!(job_metrics(&engine_cluster), job_metrics(&reference_cluster));
    }

    /// Zero-record shapes: empty input, a mapper that drops everything,
    /// and a reducer that emits nothing all round-trip identically.
    #[test]
    fn zero_record_cases_are_identical(
        (machines, threads, reducers) in geometry(),
        input in corpus(),
    ) {
        let cfg = config(machines, threads, reducers);

        // Empty input.
        let empty: Vec<(u64, Vec<u64>)> = Vec::new();
        let (engine, reference, em, rm) = run_streaming_both(cfg.clone(), &empty);
        prop_assert_eq!(engine, reference);
        prop_assert_eq!(em, rm);

        // Mapper emits nothing: every map task produces an empty bucket
        // row, so the shuffle moves zero runs.
        let silent_map = |_id: &u64, _w: &Vec<u64>, _emit: &mut dyn FnMut(u64, u64)| {};
        let reducer = |word: &u64,
                       vals: &mut haten2_mapreduce::GroupValues<'_, u64, u64>,
                       emit: &mut dyn FnMut(u64, u64)| {
            emit(*word, vals.sum());
        };
        let ec = Cluster::new(cfg.clone());
        let engine = run_job_streaming(&ec, JobSpec::named("wc"), &input, silent_map, reducer);
        let rc = Cluster::new(cfg.clone());
        let reference =
            run_job_reference_streaming(&rc, JobSpec::named("wc"), &input, silent_map, reducer);
        prop_assert_eq!(engine.as_deref(), Ok(&[][..]));
        prop_assert_eq!(engine, reference);
        prop_assert_eq!(job_metrics(&ec), job_metrics(&rc));

        // Reducer emits nothing: groups are sized, streamed, and drained,
        // but the output buffer stays empty.
        let silent_reduce = |_w: &u64,
                             _vals: &mut haten2_mapreduce::GroupValues<'_, u64, u64>,
                             _emit: &mut dyn FnMut(u64, u64)| {};
        let ec = Cluster::new(cfg.clone());
        let engine =
            run_job_streaming(&ec, JobSpec::named("wc"), &input, wc_mapper, silent_reduce);
        let rc = Cluster::new(cfg);
        let reference = run_job_reference_streaming(
            &rc, JobSpec::named("wc"), &input, wc_mapper, silent_reduce,
        );
        prop_assert_eq!(engine.as_deref(), Ok(&[][..]));
        prop_assert_eq!(engine, reference);
        prop_assert_eq!(job_metrics(&ec), job_metrics(&rc));
    }

    /// The `Vec`-signature engine still matches the `Vec`-signature
    /// reference under skew (guards the materializing boundary the same
    /// way `equivalence.rs` does for uniform keys).
    #[test]
    fn vec_engine_matches_vec_reference_under_skew(
        input in skewed_corpus(),
        (machines, threads, reducers) in geometry(),
    ) {
        let reducer = |word: &u64, ones: Vec<u64>, emit: &mut dyn FnMut(u64, u64)| {
            emit(*word, ones.iter().sum());
        };
        let cfg = config(machines, threads, reducers);
        let ec = Cluster::new(cfg.clone());
        let engine = run_job(&ec, JobSpec::named("wc"), &input, wc_mapper, reducer);
        let rc = Cluster::new(cfg);
        let reference = run_job_reference(&rc, JobSpec::named("wc"), &input, wc_mapper, reducer);
        prop_assert_eq!(engine, reference);
        prop_assert_eq!(job_metrics(&ec), job_metrics(&rc));
    }
}
