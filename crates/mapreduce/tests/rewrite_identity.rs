//! Property tests: the `heavy-key-split` rewrite is bit-identical at the
//! engine level.
//!
//! The runtime pipelines replace a single comm-assoc merge job with `M`
//! per-hash-slice split jobs plus a `mergeparts` reassembly pass
//! (`haten2_mapreduce::rewrite::heavy_key_split`). Splitting is by *whole
//! key group* — each split filters on [`key_slice`], the same FNV-1a
//! assignment the shuffle partitioner uses — so every reduce group is
//! still folded in one piece, in the same value order the unrewritten job
//! would see. These tests pin the resulting guarantee where it actually
//! matters: for random inputs, cluster geometries, scheduler modes, and
//! fault plans, the rewritten pipeline's output must equal the unrewritten
//! pipeline's **bit for bit** (`f64::to_bits`), with the Sequential
//! unrewritten run as the cross-mode oracle.

#![allow(clippy::unwrap_used)]

use haten2_mapreduce::{
    key_slice, run_job, Batch, Cluster, ClusterConfig, FaultPlan, JobSpec, SchedulerMode,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// Skewed-ish corpus: a small key space (collisions guaranteed) with
/// values whose running sum is order-sensitive in the last bits (scaled by
/// 0.1, not exactly representable), so any reordering of a reduce group's
/// value stream shows up in `to_bits`.
fn corpus() -> impl Strategy<Value = Vec<(u64, f64)>> {
    vec((0u64..40, -1000i32..1000), 1..120).prop_map(|xs| {
        xs.into_iter()
            .map(|(k, v)| (k, f64::from(v) * 0.1))
            .collect()
    })
}

fn config(machines: usize, threads: usize, scheduler: SchedulerMode) -> ClusterConfig {
    ClusterConfig {
        machines,
        threads,
        scheduler,
        ..ClusterConfig::default()
    }
}

/// The shared merge fold: a running sum plus a count per key, emitted in
/// that order. Order-sensitive in the sum's low bits by construction.
fn merge_reduce(k: &u64, vals: Vec<f64>, emit: &mut dyn FnMut(u64, f64)) {
    let mut acc = 0.0f64;
    let mut n = 0u64;
    for v in vals {
        acc += v;
        n += 1;
    }
    emit(*k, acc);
    emit(*k, n as f64);
}

/// Run the merge pipeline — unrewritten (one comm-assoc merge job) or
/// rewritten (`slices` split jobs + mergeparts) — and return the final
/// output with values as raw bits.
fn run_pipeline(
    cfg: ClusterConfig,
    input: &[(u64, f64)],
    rewritten: bool,
    slices: usize,
) -> haten2_mapreduce::Result<Vec<(u64, u64)>> {
    let cluster = Cluster::new(cfg);
    let mut batch = Batch::new();
    let y = if rewritten {
        let mut split_parts = Vec::with_capacity(slices);
        for s in 0..slices {
            let name = format!("ri-merge-split{s}");
            let split_h = batch.submit(
                name.clone(),
                vec!["t".into()],
                vec![format!("y__part#{s}")],
                move |ctx| {
                    run_job(
                        ctx,
                        JobSpec::named(&name),
                        input,
                        |k: &u64, v: &f64, emit| {
                            if key_slice(k, slices) == s {
                                emit(*k, *v);
                            }
                        },
                        merge_reduce,
                    )
                },
            )?;
            batch.set_cost_hint(&split_h, (s + 1) as f64);
            split_parts.push(split_h);
        }
        batch.submit(
            "ri-merge-mergeparts",
            vec!["y__part".into()],
            vec!["y".into()],
            {
                let split_parts = split_parts.clone();
                move |ctx| {
                    let mut all: Vec<(u64, f64)> = Vec::new();
                    for ph in &split_parts {
                        all.extend(ctx.get(ph)?.iter().copied());
                    }
                    run_job(
                        ctx,
                        JobSpec::named("ri-merge-mergeparts"),
                        &all,
                        |k: &u64, v: &f64, emit| emit(*k, (*k, *v)),
                        |_k, vals: Vec<(u64, f64)>, emit| {
                            for (k, v) in vals {
                                emit(k, v);
                            }
                        },
                    )
                }
            },
        )?
    } else {
        batch.submit("ri-merge", vec!["t".into()], vec!["y".into()], move |ctx| {
            run_job(
                ctx,
                JobSpec::named("ri-merge"),
                input,
                |k: &u64, v: &f64, emit| emit(*k, *v),
                merge_reduce,
            )
        })?
    };
    batch.run(&cluster)?;
    Ok(y.take()?
        .into_iter()
        .map(|(k, v)| (k, v.to_bits()))
        .collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rewritten_is_bit_identical_in_both_scheduler_modes(
        input in corpus(),
        machines in 1usize..=8,
        threads in 1usize..=8,
        slices in 1usize..=6,
    ) {
        for scheduler in [SchedulerMode::Sequential, SchedulerMode::Dag] {
            let base = run_pipeline(config(machines, threads, scheduler), &input, false, slices)
                .unwrap();
            let split = run_pipeline(config(machines, threads, scheduler), &input, true, slices)
                .unwrap();
            prop_assert_eq!(&split, &base, "{scheduler:?}");
        }
    }

    #[test]
    fn rewritten_dag_matches_the_sequential_oracle(
        input in corpus(),
        machines in 1usize..=8,
        threads in 2usize..=8,
        slices in 2usize..=6,
    ) {
        // Sequential + unrewritten is the bit-identity oracle the engine
        // documents; the rewritten plan on the DAG scheduler (the actual
        // production combination) must reproduce it exactly.
        let oracle =
            run_pipeline(config(machines, 1, SchedulerMode::Sequential), &input, false, slices)
                .unwrap();
        let dag = run_pipeline(config(machines, threads, SchedulerMode::Dag), &input, true, slices)
            .unwrap();
        prop_assert_eq!(&dag, &oracle);
    }

    #[test]
    fn rewritten_is_bit_identical_under_fault_injection(
        input in corpus(),
        machines in 1usize..=8,
        threads in 1usize..=8,
        slices in 1usize..=6,
        every_nth in 1usize..4,
    ) {
        for scheduler in [SchedulerMode::Sequential, SchedulerMode::Dag] {
            let mut cfg = config(machines, threads, scheduler);
            cfg.fault_plan = Some(FaultPlan::fail_every_nth(every_nth));
            let base = run_pipeline(cfg.clone(), &input, false, slices).unwrap();
            let split = run_pipeline(cfg, &input, true, slices).unwrap();
            prop_assert_eq!(&split, &base, "{scheduler:?} fail_every_nth({every_nth})");
        }
    }
}
