//! `SymExpr` edge cases: deep nesting, saturation and overflow detection
//! near `u64::MAX`, and a proptest hunt for false positives in the
//! extensional-equivalence check the analyzer's cost pass relies on.

// Test code: `unwrap` is the assertion (allowed by the workspace clippy
// policy only here).
#![allow(clippy::unwrap_used)]

use haten2_mapreduce::{Env, SymExpr};
use proptest::prelude::*;

fn env(nnz: u64, dims: [u64; 3], q: u64, r: u64, faults: u64) -> Env {
    Env {
        nnz,
        dim_i: dims[0],
        dim_j: dims[1],
        dim_k: dims[2],
        rank_q: q,
        rank_r: r,
        machines: 10,
        faults,
        // Varies with the other knobs so `Mr`-dependent expressions are
        // distinguishable on the probe grid (coprime-ish, never zero).
        reducer_memory: 8 * (q + r) + nnz % 97,
    }
}

/// A small, deliberately diverse probe grid (coprime sizes, degenerate
/// ones, a huge row) — the shape of net the cost pass casts.
fn probe_grid() -> Vec<Env> {
    vec![
        env(1, [1, 1, 1], 1, 1, 1),
        env(2, [3, 5, 7], 2, 3, 1),
        env(97, [11, 13, 17], 5, 7, 2),
        env(1_000, [19, 23, 29], 4, 9, 3),
        env(1_000_000, [101, 103, 107], 6, 8, 1),
        env(5, [500, 1, 400], 1, 12, 4),
        env(1 << 40, [1 << 10, 1 << 11, 1 << 12], 16, 32, 2),
    ]
}

/// splitmix64 — deterministic pseudo-random stream for expression
/// generation (the proptest shim supplies the seeds).
fn splitmix(s: &mut u64) -> u64 {
    *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *s;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A random expression of bounded depth over all seven classic variables.
/// Division-free: the grid-equivalence net below is calibrated for the
/// `(+, ·, max)` fragment the cost pass uses; [`gen_expr_div`] adds `/`
/// and the `M`/`Mr` atoms for the communication-pass fragment.
fn gen_expr(s: &mut u64, depth: usize) -> SymExpr {
    let roll = splitmix(s);
    if depth == 0 || roll.is_multiple_of(4) {
        match splitmix(s) % 8 {
            0 => SymExpr::c(splitmix(s) % 60),
            1 => SymExpr::nnz(),
            2 => SymExpr::dim_i(),
            3 => SymExpr::dim_j(),
            4 => SymExpr::dim_k(),
            5 => SymExpr::rank_q(),
            6 => SymExpr::rank_r(),
            _ => SymExpr::faults(),
        }
    } else {
        let a = gen_expr(s, depth - 1);
        let b = gen_expr(s, depth - 1);
        match roll % 3 {
            0 => a + b,
            1 => a * b,
            _ => SymExpr::max(a, b),
        }
    }
}

/// A random expression over all variables and all four operators,
/// division included — the fragment the communication pass's gap ratios
/// live in.
fn gen_expr_div(s: &mut u64, depth: usize) -> SymExpr {
    let roll = splitmix(s);
    if depth == 0 || roll.is_multiple_of(4) {
        match splitmix(s) % 10 {
            0 => SymExpr::c(splitmix(s) % 60),
            1 => SymExpr::nnz(),
            2 => SymExpr::dim_i(),
            3 => SymExpr::dim_j(),
            4 => SymExpr::dim_k(),
            5 => SymExpr::rank_q(),
            6 => SymExpr::rank_r(),
            7 => SymExpr::machines(),
            8 => SymExpr::reducer_memory(),
            _ => SymExpr::faults(),
        }
    } else {
        let a = gen_expr_div(s, depth - 1);
        let b = gen_expr_div(s, depth - 1);
        match roll % 4 {
            0 => a + b,
            1 => a * b,
            2 => a / b,
            _ => SymExpr::max(a, b),
        }
    }
}

/// A random environment with values across several orders of magnitude.
fn gen_env(s: &mut u64) -> Env {
    let mut pick = |max: u64| 1 + splitmix(s) % max;
    let mut e = env(
        pick(1 << 34),
        [pick(4096), pick(4096), pick(4096)],
        pick(64),
        pick(64),
        pick(8),
    );
    e.reducer_memory = pick(1 << 24);
    e
}

#[test]
fn deep_left_nested_sum_evaluates_and_prints() {
    // A 2000-deep left fold: linear recursion in eval, eval_checked, and
    // Display must all survive it.
    let depth = 2000u64;
    let mut e = SymExpr::c(0);
    for _ in 0..depth {
        e = e + SymExpr::c(1);
    }
    let probe = env(1, [1, 1, 1], 1, 1, 1);
    assert_eq!(e.eval(&probe), depth as u128);
    assert_eq!(e.eval_checked(&probe), Some(depth as u128));
    let printed = e.to_string();
    assert!(printed.len() >= 2 * depth as usize - 1);
}

#[test]
fn deep_mul_chain_saturates_instead_of_wrapping() {
    // 2^1 multiplied 200 times = 2^200 > u128::MAX: eval must pin to the
    // ceiling, eval_checked must refuse.
    let mut e = SymExpr::c(2);
    for _ in 0..200 {
        e = e * SymExpr::c(2);
    }
    let probe = env(1, [1, 1, 1], 1, 1, 1);
    assert_eq!(e.eval(&probe), u128::MAX);
    assert_eq!(e.eval_checked(&probe), None);
}

#[test]
fn overflow_detection_near_u64_max() {
    let huge = env(u64::MAX, [u64::MAX, 1, 1], 1, 1, 1);
    // nnz² = (2^64 − 1)² < 2^128: still representable, both agree.
    let sq = SymExpr::nnz() * SymExpr::nnz();
    assert_eq!(sq.eval_checked(&huge), Some((u64::MAX as u128).pow(2)));
    assert_eq!(sq.eval(&huge), (u64::MAX as u128).pow(2));
    // nnz²·I overflows u128: saturating eval pins, checked eval refuses.
    let cube = sq.clone() * SymExpr::dim_i();
    assert_eq!(cube.eval(&huge), u128::MAX);
    assert_eq!(cube.eval_checked(&huge), None);
    // Addition at the brink: MAX + MAX fits in u128 comfortably.
    let sum = SymExpr::nnz() + SymExpr::nnz();
    assert_eq!(sum.eval_checked(&huge), Some(2 * u64::MAX as u128));
    // max() never overflows on its own.
    let m = SymExpr::max(sq, SymExpr::nnz());
    assert_eq!(m.eval_checked(&huge), Some((u64::MAX as u128).pow(2)));
}

#[test]
fn zero_denominator_saturates_and_checked_eval_refuses() {
    // faults = 0 in this env, so any ratio over `k` divides by zero: the
    // saturating eval pins to the ceiling (an unbounded gap compares above
    // everything), the checked eval refuses.
    let degenerate = env(1_000, [10, 10, 10], 2, 3, 0);
    let ratio = SymExpr::nnz() / SymExpr::faults();
    assert_eq!(ratio.eval(&degenerate), u128::MAX);
    assert_eq!(ratio.eval_checked(&degenerate), None);
    // Saturation keeps max() monotone: the unbounded ratio dominates.
    let m = SymExpr::max(ratio, SymExpr::nnz());
    assert_eq!(m.eval(&degenerate), u128::MAX);
    // A zero *numerator* is fine: 0 / x = 0.
    let zero_num = SymExpr::c(0) / SymExpr::nnz();
    assert_eq!(zero_num.eval(&degenerate), 0);
    assert_eq!(zero_num.eval_checked(&degenerate), Some(0));
}

#[test]
fn equiv_on_distinguishes_reducer_memory_ratios_on_the_grid() {
    let grid = probe_grid();
    // The memory-dependent bound shape of the communication pass.
    let bound = SymExpr::nnz() * SymExpr::rank_r() * SymExpr::c(8) / SymExpr::reducer_memory();
    // Halving the memory budget is NOT extensionally equal…
    let halved = SymExpr::nnz() * SymExpr::rank_r() * SymExpr::c(8)
        / (SymExpr::reducer_memory() * SymExpr::c(2));
    assert!(!bound.equiv_on(&halved, &grid));
    // …and dropping `Mr` entirely is caught too (the grid varies it).
    let constant_mem = SymExpr::nnz() * SymExpr::rank_r() * SymExpr::c(8) / SymExpr::c(1 << 20);
    assert!(!bound.equiv_on(&constant_mem, &grid));
    // Whereas a commuted but equal numerator passes.
    let commuted = SymExpr::rank_r() * SymExpr::nnz() * SymExpr::c(8) / SymExpr::reducer_memory();
    assert!(bound.equiv_on(&commuted, &grid));
}

#[test]
fn floor_division_is_left_associative_not_regroupable() {
    // (a / b) / c == a / (b·c) for positive integers, but a / (b / c)
    // differs — the probe grid must not call them equivalent.
    let a = SymExpr::nnz();
    let b = SymExpr::rank_q();
    let c = SymExpr::rank_r();
    let grid = probe_grid();
    let left = a.clone() / b.clone() / c.clone();
    let grouped = a.clone() / (b.clone() * c.clone());
    assert!(left.equiv_on(&grouped, &grid));
    let right = a / (b / c);
    assert!(!left.equiv_on(&right, &grid));
}

#[test]
fn saturated_comparisons_stay_monotone() {
    // Saturation maps "too big" to the top instead of wrapping past a
    // smaller value — the property the recovery pass's argmax relies on.
    let huge = env(u64::MAX, [u64::MAX, u64::MAX, 1], 1, 1, 1);
    let overflowing = SymExpr::nnz() * SymExpr::nnz() * SymExpr::dim_i();
    let small = SymExpr::nnz();
    assert!(overflowing.eval(&huge) >= small.eval(&huge));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// False-positive hunt: any pair of random expressions the probe grid
    /// calls equivalent must agree on a fresh stream of random
    /// environments too. A failure here means `equiv_on`'s sample is too
    /// weak a net for the cost pass.
    #[test]
    fn grid_equivalence_implies_agreement_on_random_envs(seed in any::<u64>()) {
        let mut s = seed;
        let a = gen_expr(&mut s, 3);
        let b = gen_expr(&mut s, 3);
        let grid = probe_grid();
        if a.equiv_on(&b, &grid) {
            for _ in 0..64 {
                let e = gen_env(&mut s);
                prop_assert_eq!(
                    a.eval(&e), b.eval(&e),
                    "grid-equivalent expressions diverge: {} vs {}", a, b
                );
            }
        }
    }

    /// Ground-truth algebraic identities must always pass the grid — the
    /// check may not produce false *negatives* on genuinely equal terms.
    #[test]
    fn algebraic_identities_are_equivalent_on_the_grid(seed in any::<u64>()) {
        let mut s = seed;
        let a = gen_expr(&mut s, 2);
        let b = gen_expr(&mut s, 2);
        let grid = probe_grid();
        prop_assert!((a.clone() + b.clone()).equiv_on(&(b.clone() + a.clone()), &grid));
        prop_assert!((a.clone() * b.clone()).equiv_on(&(b.clone() * a.clone()), &grid));
        prop_assert!(SymExpr::max(a.clone(), a.clone()).equiv_on(&a, &grid));
        prop_assert!(
            SymExpr::max(a.clone(), b.clone()).equiv_on(&SymExpr::max(b, a), &grid)
        );
    }

    /// Whenever the checked evaluator accepts an expression (no overflow,
    /// no zero denominator anywhere), the saturating evaluator must agree
    /// exactly — saturation only ever changes *rejected* evaluations.
    /// Exercised over the division-inclusive fragment.
    #[test]
    fn checked_eval_agrees_with_saturating_eval(seed in any::<u64>()) {
        let mut s = seed;
        let x = gen_expr_div(&mut s, 4);
        for _ in 0..32 {
            let e = gen_env(&mut s);
            if let Some(v) = x.eval_checked(&e) {
                prop_assert_eq!(v, x.eval(&e), "checked/saturating divergence on {}", x);
            }
        }
    }

    /// Division identities: `(a·b) / b = a` exactly (integers), and a
    /// quotient never exceeds its dividend for divisors ≥ 1 — the
    /// monotonicity gap ratios rely on. Guarded by the checked evaluator
    /// so saturation can't mask a wrap.
    #[test]
    fn quotient_identities_hold_without_saturation(seed in any::<u64>()) {
        let mut s = seed;
        let a = gen_expr(&mut s, 2);
        let b = gen_expr(&mut s, 2);
        let recover = (a.clone() * b.clone()) / b.clone();
        let quotient = a.clone() / b.clone();
        for _ in 0..16 {
            let e = gen_env(&mut s);
            let bv = b.eval_checked(&e);
            if bv.is_some_and(|v| v > 0) {
                if let (Some(rec), Some(av)) = (recover.eval_checked(&e), a.eval_checked(&e)) {
                    prop_assert_eq!(rec, av, "(a·b)/b ≠ a for a = {}, b = {}", a, b);
                    if let Some(qv) = quotient.eval_checked(&e) {
                        prop_assert!(qv <= av, "a/b > a for a = {}, b = {}", a, b);
                    }
                }
            }
        }
    }

    /// `Display` → `parse` round trip over the full fragment: the parsed
    /// expression evaluates identically everywhere probed (the property
    /// the analyzer's plan-fixture loader depends on).
    #[test]
    fn parse_round_trips_eval_on_random_expressions(seed in any::<u64>()) {
        let mut s = seed;
        let x = gen_expr_div(&mut s, 3);
        let text = x.to_string();
        let parsed = SymExpr::parse(&text);
        prop_assert!(parsed.is_some(), "Display output failed to parse: {}", text);
        if let Some(p) = parsed {
            for e in probe_grid() {
                prop_assert_eq!(p.eval(&e), x.eval(&e), "round trip diverges on {}", text);
            }
            for _ in 0..8 {
                let e = gen_env(&mut s);
                prop_assert_eq!(p.eval(&e), x.eval(&e), "round trip diverges on {}", text);
            }
        }
    }

    /// Distributivity holds exactly wherever nothing saturates.
    #[test]
    fn distributivity_holds_without_saturation(seed in any::<u64>()) {
        let mut s = seed;
        let a = gen_expr(&mut s, 2);
        let b = gen_expr(&mut s, 2);
        let c = gen_expr(&mut s, 2);
        let lhs = a.clone() * (b.clone() + c.clone());
        let rhs = a.clone() * b + a * c;
        for _ in 0..16 {
            let e = gen_env(&mut s);
            if let (Some(l), Some(r)) = (lhs.eval_checked(&e), rhs.eval_checked(&e)) {
                prop_assert_eq!(l, r);
            }
        }
    }
}
