//! Property tests: the pooled engine is observably identical to the
//! sequential reference executor.
//!
//! For random word-count-style jobs — arbitrary inputs, machine counts,
//! thread counts, reducer counts, with and without a combiner —
//! [`run_job`] must return the *same output in the same order* as
//! [`run_job_reference`], and record the same [`JobMetrics`] (every field
//! except `wall_time_s`, which measures host time). Failure behavior is
//! held to the same standard: capacity errors are always bit-identical,
//! and reducer OOM errors are bit-identical in the deterministic
//! single-thread case and same-variant under concurrency (an engine worker
//! may abort a partition the reference would have failed first).

use haten2_mapreduce::{
    run_job, run_job_reference, Cluster, ClusterConfig, FaultPlan, JobMetrics, JobSpec, MrError,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// A word-count-shaped corpus: each record is a document (id, word list)
/// over a small vocabulary, so key collisions across map tasks are common.
fn corpus() -> impl Strategy<Value = Vec<(u64, Vec<u64>)>> {
    vec((0u64..1000, vec(0u64..25, 0..10)), 0..50)
}

/// Cluster geometry the ISSUE calls out: machines and threads in 1–16.
fn geometry() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..=16, 1usize..=16, 1usize..=8)
}

fn config(machines: usize, threads: usize, reducers: usize) -> ClusterConfig {
    ClusterConfig {
        machines,
        threads,
        reducers: Some(reducers),
        ..ClusterConfig::default()
    }
}

/// Run the same job on both executors and return their results plus the
/// metrics each recorded.
type RunOutcome = (
    haten2_mapreduce::Result<Vec<(u64, u64)>>,
    haten2_mapreduce::Result<Vec<(u64, u64)>>,
    JobMetrics,
    JobMetrics,
);

fn run_both(cfg: ClusterConfig, input: &[(u64, Vec<u64>)], with_combiner: bool) -> RunOutcome {
    let combiner: haten2_mapreduce::Combiner<'_, u64, u64> =
        &|_k, vals| vec![vals.into_iter().sum()];
    let spec = |name: &str| {
        let s = JobSpec::named(name);
        if with_combiner {
            s.with_combiner(combiner)
        } else {
            s
        }
    };
    let mapper = |_id: &u64, words: &Vec<u64>, emit: &mut dyn FnMut(u64, u64)| {
        for &w in words {
            emit(w, 1);
        }
    };
    let reducer = |word: &u64, ones: Vec<u64>, emit: &mut dyn FnMut(u64, u64)| {
        emit(*word, ones.iter().sum());
    };

    let engine_cluster = Cluster::new(cfg.clone());
    let engine = run_job(&engine_cluster, spec("wc"), input, mapper, reducer);
    let reference_cluster = Cluster::new(cfg);
    let reference = run_job_reference(&reference_cluster, spec("wc"), input, mapper, reducer);

    let take_metrics = |c: &Cluster| {
        let mut m = c.metrics().jobs.first().cloned().unwrap_or_default();
        // Host-time fields: the only ones allowed to differ.
        m.wall_time_s = 0.0;
        m.started_s = 0.0;
        m.finished_s = 0.0;
        m
    };
    (
        engine,
        reference,
        take_metrics(&engine_cluster),
        take_metrics(&reference_cluster),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engine_matches_reference_without_combiner(
        input in corpus(),
        (machines, threads, reducers) in geometry(),
    ) {
        let (engine, reference, em, rm) =
            run_both(config(machines, threads, reducers), &input, false);
        prop_assert_eq!(engine, reference);
        prop_assert_eq!(em, rm);
    }

    #[test]
    fn engine_matches_reference_with_combiner(
        input in corpus(),
        (machines, threads, reducers) in geometry(),
    ) {
        let (engine, reference, em, rm) =
            run_both(config(machines, threads, reducers), &input, true);
        prop_assert_eq!(engine, reference);
        prop_assert_eq!(em, rm);
    }

    #[test]
    fn engine_matches_reference_with_failure_injection(
        input in corpus(),
        (machines, threads, reducers) in geometry(),
        every_nth in 1usize..4,
    ) {
        let mut cfg = config(machines, threads, reducers);
        cfg.fault_plan = Some(FaultPlan::fail_every_nth(every_nth));
        let (engine, reference, em, rm) = run_both(cfg, &input, false);
        prop_assert_eq!(engine, reference);
        prop_assert_eq!(em, rm);
    }

    #[test]
    fn reducer_oom_identical_when_single_threaded(
        input in corpus(),
        (machines, _, reducers) in geometry(),
        budget in 1usize..64,
    ) {
        let mut cfg = config(machines, 1, reducers);
        cfg.reducer_memory_bytes = Some(budget);
        let (engine, reference, _, _) = run_both(cfg, &input, false);
        // Sequential engine == sequential reference: both scan partitions
        // in order, so even the error payload (which group overflowed)
        // must agree.
        prop_assert_eq!(engine, reference);
    }

    #[test]
    fn reducer_oom_same_variant_when_parallel(
        input in corpus(),
        (machines, threads, reducers) in geometry(),
        budget in 1usize..64,
    ) {
        let mut cfg = config(machines, threads, reducers);
        cfg.reducer_memory_bytes = Some(budget);
        let (engine, reference, _, _) = run_both(cfg, &input, false);
        match (&engine, &reference) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            // Concurrent reducers may surface a different partition's OOM
            // than the sequential scan, but never a different failure kind
            // and never success where the reference fails.
            (Err(MrError::ReducerOom { job: ja, budget_bytes: ba, .. }),
             Err(MrError::ReducerOom { job: jb, budget_bytes: bb, .. })) => {
                prop_assert_eq!(ja, jb);
                prop_assert_eq!(ba, bb);
            }
            (a, b) => prop_assert!(false, "engine {a:?} vs reference {b:?}"),
        }
    }

    #[test]
    fn capacity_errors_always_identical(
        input in corpus(),
        (machines, threads, reducers) in geometry(),
        capacity in 1usize..512,
    ) {
        let mut cfg = config(machines, threads, reducers);
        cfg.cluster_capacity_bytes = Some(capacity);
        let (engine, reference, _, _) = run_both(cfg, &input, false);
        // Capacity is checked on the aggregated map-output total, which is
        // thread-independent, so the full error payload must match.
        prop_assert_eq!(engine, reference);
    }
}
