//! Integration tests for the MapReduce engine.

// Test code: `unwrap` is the assertion (allowed by the workspace clippy
// policy only here).
#![allow(clippy::unwrap_used)]

use haten2_mapreduce::{run_job, Cluster, ClusterConfig, FaultPlan, JobSpec, MrError};

/// Classic word count over (doc_id, text) records.
fn word_count(cluster: &Cluster, docs: &[(u64, String)]) -> Vec<(String, u64)> {
    run_job(
        cluster,
        JobSpec::named("word-count"),
        docs,
        |_, text: &String, emit| {
            for w in text.split_whitespace() {
                emit(w.to_string(), 1u64);
            }
        },
        |word, counts, emit| {
            emit(word.clone(), counts.iter().sum::<u64>());
        },
    )
    .unwrap()
}

fn docs() -> Vec<(u64, String)> {
    vec![
        (0, "tensor tensor decomposition".to_string()),
        (1, "tensor mapreduce".to_string()),
        (2, "decomposition at scale scale scale".to_string()),
    ]
}

#[test]
fn word_count_correct() {
    let cluster = Cluster::with_defaults();
    let mut out = word_count(&cluster, &docs());
    out.sort();
    assert_eq!(
        out,
        vec![
            ("at".to_string(), 1),
            ("decomposition".to_string(), 2),
            ("mapreduce".to_string(), 1),
            ("scale".to_string(), 3),
            ("tensor".to_string(), 3),
        ]
    );
}

#[test]
fn results_independent_of_machine_count() {
    let mut reference: Option<Vec<(String, u64)>> = None;
    for machines in [1, 3, 7, 40] {
        let cluster = Cluster::new(ClusterConfig::with_machines(machines));
        let mut out = word_count(&cluster, &docs());
        out.sort();
        match &reference {
            None => reference = Some(out),
            Some(r) => assert_eq!(&out, r, "machines={machines}"),
        }
    }
}

#[test]
fn results_independent_of_thread_count() {
    let mut reference: Option<Vec<(String, u64)>> = None;
    for threads in [1, 2, 8] {
        let cfg = ClusterConfig {
            threads,
            ..ClusterConfig::with_machines(6)
        };
        let cluster = Cluster::new(cfg);
        let mut out = word_count(&cluster, &docs());
        out.sort();
        match &reference {
            None => reference = Some(out),
            Some(r) => assert_eq!(&out, r, "threads={threads}"),
        }
    }
}

#[test]
fn metrics_count_intermediate_records() {
    let cluster = Cluster::with_defaults();
    word_count(&cluster, &docs());
    let m = cluster.metrics();
    assert_eq!(m.total_jobs(), 1);
    let job = &m.jobs[0];
    assert_eq!(job.name, "word-count");
    assert_eq!(job.map_input_records, 3);
    // 10 words in total -> 10 intermediate records (no combiner).
    assert_eq!(job.map_output_records, 10);
    assert_eq!(job.shuffle_records, 10);
    assert_eq!(job.reduce_groups, 5);
    assert_eq!(job.reduce_output_records, 5);
    assert!(job.map_output_bytes > 0);
    assert!(job.sim_time_s >= cluster.config().per_job_overhead_s);
}

#[test]
fn combiner_shrinks_shuffle_but_not_result() {
    // One map task (1 machine) so the combiner sees all duplicates.
    let cfg = ClusterConfig::with_machines(1);
    let cluster = Cluster::new(cfg);
    let combine = |_k: &String, vals: Vec<u64>| vec![vals.iter().sum::<u64>()];
    let mut out = run_job(
        &cluster,
        JobSpec::named("wc-combined").with_combiner(&combine),
        &docs(),
        |_, text: &String, emit| {
            for w in text.split_whitespace() {
                emit(w.to_string(), 1u64);
            }
        },
        |word, counts, emit| emit(word.clone(), counts.iter().sum::<u64>()),
    )
    .unwrap();
    out.sort();
    let m = cluster.metrics();
    let job = &m.jobs[0];
    // Intermediate records unchanged (pre-combine accounting)…
    assert_eq!(job.map_output_records, 10);
    // …but shuffle shrinks to one record per distinct word.
    assert_eq!(job.shuffle_records, 5);
    assert_eq!(out.iter().map(|(_, c)| *c).sum::<u64>(), 10);
}

#[test]
fn reducer_oom_triggers() {
    // Budget below the bytes of a key group with many values.
    let cfg = ClusterConfig {
        reducer_memory_bytes: Some(64),
        ..ClusterConfig::with_machines(2)
    };
    let cluster = Cluster::new(cfg);
    let input: Vec<(u64, u64)> = (0..100).map(|i| (i, i)).collect();
    let result = run_job(
        &cluster,
        JobSpec::named("broadcast-ish"),
        &input,
        // Every record keyed identically -> one giant group.
        |_, v: &u64, emit| emit(0u64, *v),
        |_, vals, emit| emit(0u64, vals.len() as u64),
    );
    match result {
        Err(MrError::ReducerOom {
            job,
            group_bytes,
            budget_bytes,
        }) => {
            assert_eq!(job, "broadcast-ish");
            assert!(group_bytes > budget_bytes);
        }
        other => panic!("expected ReducerOom, got {other:?}"),
    }
}

#[test]
fn cluster_capacity_exceeded_triggers() {
    let cfg = ClusterConfig {
        cluster_capacity_bytes: Some(100),
        ..ClusterConfig::with_machines(2)
    };
    let cluster = Cluster::new(cfg);
    let input: Vec<(u64, u64)> = (0..50).map(|i| (i, i)).collect();
    let result = run_job(
        &cluster,
        JobSpec::named("fat"),
        &input,
        |k, v: &u64, emit| emit(*k, *v),
        |k, vals, emit| emit(*k, vals.len() as u64),
    );
    assert!(matches!(
        result,
        Err(MrError::ClusterCapacityExceeded { .. })
    ));
}

#[test]
fn failure_injection_is_transparent() {
    let cfg = ClusterConfig {
        fault_plan: Some(FaultPlan::fail_every_nth(2)),
        ..ClusterConfig::with_machines(8)
    };
    let cluster = Cluster::new(cfg);
    let input: Vec<(u64, u64)> = (0..64).map(|i| (i, 1)).collect();
    let out = run_job(
        &cluster,
        JobSpec::named("retry"),
        &input,
        |k, v: &u64, emit| emit(k % 4, *v),
        |k, vals, emit| emit(*k, vals.iter().sum::<u64>()),
    )
    .unwrap();
    let total: u64 = out.iter().map(|(_, v)| v).sum();
    assert_eq!(total, 64, "retries must not duplicate or drop records");
    let m = cluster.metrics();
    assert!(
        m.jobs[0].task_retries > 0,
        "injected failures must be recorded"
    );
}

#[test]
fn empty_input_produces_empty_output() {
    let cluster = Cluster::with_defaults();
    let input: Vec<(u64, u64)> = vec![];
    let out = run_job(
        &cluster,
        JobSpec::named("empty"),
        &input,
        |k, v: &u64, emit| emit(*k, *v),
        |k, vals, emit| emit(*k, vals.len() as u64),
    )
    .unwrap();
    assert!(out.is_empty());
    let m = cluster.metrics();
    assert_eq!(m.jobs[0].map_input_records, 0);
    assert_eq!(m.jobs[0].reduce_groups, 0);
}

#[test]
fn grouping_collects_all_values_of_a_key() {
    let cluster = Cluster::new(ClusterConfig::with_machines(5));
    // Values scattered across many map tasks must regroup by key.
    let input: Vec<(u64, u64)> = (0..1000).map(|i| (i, i % 7)).collect();
    let out = run_job(
        &cluster,
        JobSpec::named("group"),
        &input,
        |_, v: &u64, emit| emit(*v, 1u64),
        |k, vals, emit| emit(*k, vals.len() as u64),
    )
    .unwrap();
    let mut out = out;
    out.sort();
    assert_eq!(out.len(), 7);
    let total: u64 = out.iter().map(|(_, c)| c).sum();
    assert_eq!(total, 1000);
    for (k, c) in out {
        // 1000 records over 7 residues: 143 for k<6, 142 for k=6.
        let expect = if k < 6 { 143 } else { 142 };
        assert_eq!(c, expect, "k={k}");
    }
}

#[test]
fn sim_time_decreases_with_more_machines_but_flattens() {
    // The Fig. 8 shape: speedup grows sub-linearly due to per-job overhead.
    let input: Vec<(u64, u64)> = (0..20_000).map(|i| (i, i)).collect();
    let mut times = Vec::new();
    for machines in [10, 20, 30, 40] {
        let cluster = Cluster::new(ClusterConfig::with_machines(machines));
        run_job(
            &cluster,
            JobSpec::named("scale"),
            &input,
            |k, v: &u64, emit| emit(k % 97, *v),
            |k, vals, emit| emit(*k, vals.iter().sum::<u64>()),
        )
        .unwrap();
        times.push(cluster.metrics().jobs[0].sim_time_s);
    }
    for w in times.windows(2) {
        assert!(
            w[1] <= w[0] + 1e-12,
            "more machines must not be slower: {times:?}"
        );
    }
    let speedup_total = times[0] / times[3];
    assert!(
        speedup_total < 4.0,
        "fixed overhead must cap the speedup: {times:?}"
    );
}

#[test]
fn metrics_since_attributes_jobs() {
    let cluster = Cluster::with_defaults();
    word_count(&cluster, &docs());
    let mark = cluster.jobs_run();
    word_count(&cluster, &docs());
    let since = cluster.metrics_since(mark);
    assert_eq!(since.total_jobs(), 1);
    assert_eq!(cluster.metrics().total_jobs(), 2);
}
