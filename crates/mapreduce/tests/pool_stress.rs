//! Stress tests for the `WorkerPool` lifetime-erasure invariant.
//!
//! `WorkerPool::broadcast` transmutes the borrowed task closure to
//! `&'static` before queueing it (see the SAFETY comment in
//! `src/pool.rs`); the argument is that no dispatched use of the closure
//! survives the call. These tests hammer that argument from every angle
//! the engine exercises in production — pool reuse across thousands of
//! jobs, maximum thread counts, oversubscribed broadcasts, nesting,
//! borrowed stack state that is dropped immediately after each call, and
//! panics racing real work — so that a regression shows up as a crash,
//! a hang, or a miscount here rather than as silent memory corruption in
//! a decomposition.

#![allow(clippy::unwrap_used)] // test code: unwrap is the assertion

use haten2_mapreduce::{run_job, Cluster, ClusterConfig, JobSpec, WorkerPool};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The largest pool the engine itself will create (ClusterConfig caps
/// `threads` at 16, and the pool holds `threads - 1` workers).
const MAX_WORKERS: usize = 16;

#[test]
fn reuse_across_thousands_of_broadcasts_at_max_threads() {
    let pool = WorkerPool::new(MAX_WORKERS);
    for round in 0..2_000 {
        // Fresh stack-borrowed state every round: if any closure from a
        // previous broadcast were still alive, it would read freed data.
        let data: Vec<u64> = (0..64).map(|i| i + round).collect();
        let next = AtomicUsize::new(0);
        let total = AtomicUsize::new(0);
        let executors = 1 + (round as usize % (MAX_WORKERS + 8));
        pool.broadcast(executors, &|_| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= data.len() {
                break;
            }
            total.fetch_add(data[i] as usize, Ordering::Relaxed);
        });
        let want: u64 = data.iter().sum();
        assert_eq!(total.load(Ordering::Relaxed) as u64, want, "round {round}");
    }
}

#[test]
fn oversubscribed_broadcasts_run_every_executor() {
    let pool = WorkerPool::new(MAX_WORKERS);
    // Far more executors than workers: the caller must run the tail
    // itself while workers drain the head.
    for executors in [MAX_WORKERS + 1, 4 * MAX_WORKERS, 257] {
        let hits = AtomicUsize::new(0);
        pool.broadcast(executors, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), executors);
    }
}

#[test]
fn deep_nesting_reuses_the_same_pool() {
    let pool = WorkerPool::new(MAX_WORKERS);
    let leaves = AtomicUsize::new(0);
    pool.broadcast(4, &|_| {
        pool.broadcast(4, &|_| {
            pool.broadcast(4, &|_| {
                leaves.fetch_add(1, Ordering::Relaxed);
            });
        });
    });
    assert_eq!(leaves.load(Ordering::Relaxed), 64);
}

#[test]
fn panics_interleaved_with_work_leave_pool_usable() {
    let pool = WorkerPool::new(MAX_WORKERS);
    for round in 0..200 {
        let data: Vec<u64> = (0..32).collect();
        let sum = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(MAX_WORKERS + 1, &|i| {
                // One executor panics while the rest still read `data`;
                // broadcast must not unwind until they all finish.
                if i == round % (MAX_WORKERS + 1) {
                    panic!("injected panic {round}");
                }
                sum.fetch_add(data.iter().sum::<u64>() as usize, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err(), "round {round} should panic");
        // The next round reuses the pool; a poisoned or wedged pool
        // would hang or crash here.
    }
    let hits = AtomicUsize::new(0);
    pool.broadcast(MAX_WORKERS, &|_| {
        hits.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(hits.load(Ordering::Relaxed), MAX_WORKERS);
}

#[test]
fn cluster_runs_many_jobs_on_one_pool_at_max_threads() {
    // End-to-end: the persistent pool owned by a Cluster survives a long
    // sequence of real jobs at the maximum thread count, with results
    // identical to the single-threaded configuration.
    let cfg = ClusterConfig {
        threads: MAX_WORKERS + 1,
        ..ClusterConfig::with_machines(8)
    };
    let cluster = Cluster::new(cfg);
    let reference = Cluster::new(ClusterConfig {
        threads: 1,
        ..ClusterConfig::with_machines(8)
    });
    let input: Vec<(u64, u64)> = (0..500).map(|i| (i, i * i % 97)).collect();
    for job in 0..300 {
        let modulo = 1 + job % 13;
        let run = |cluster: &Cluster| {
            run_job(
                cluster,
                JobSpec::named(format!("stress-{job}")),
                &input,
                move |k, v: &u64, emit| emit(k % modulo, *v),
                |k, vals, emit| emit(*k, vals.iter().sum::<u64>()),
            )
            .unwrap()
        };
        assert_eq!(run(&cluster), run(&reference), "job {job}");
    }
    assert_eq!(cluster.metrics().total_jobs(), 300);
}
