//! Fault-injection and scheduler-equivalence properties.
//!
//! Four layers of guarantees:
//!
//! 1. **Executor equivalence under faults** — for random [`FaultPlan`]s
//!    (including exhausting ones), the pooled engine and the sequential
//!    reference executor produce the same output, the same error, and the
//!    same [`JobMetrics`] (recovery counters included).
//! 2. **Fault transparency** — any plan that does not exhaust a retry
//!    budget yields output identical to the fault-free run.
//! 3. **End-to-end transparency for the paper's pipelines** — both DRI
//!    decompositions (PARAFAC and Tucker) produce bit-identical factors
//!    under a seeded fault schedule, and exhausted budgets surface the
//!    typed [`MrError::TaskFailed`] naming the failing task.
//! 4. **Scheduler equivalence** — concurrent (DAG) execution of all eight
//!    Tucker/PARAFAC pipelines is bit-identical to sequential scheduling:
//!    same outputs (or same typed error), same per-job metrics with the
//!    host-time fields zeroed, and same batch structure — including under
//!    randomized [`FaultPlan`] schedules, because fault schedules are
//!    keyed by submission index rather than completion order.

use haten2_core::{parafac_als, tucker_als, AlsOptions, Variant};
use haten2_mapreduce::{
    run_job, run_job_reference, Cluster, ClusterConfig, FaultPlan, JobMetrics, JobSpec, MrError,
    RetryPolicy, SchedulerMode,
};
use haten2_tensor::{CooTensor3, Entry3};
use proptest::collection::vec;
use proptest::prelude::*;

fn corpus() -> impl Strategy<Value = Vec<(u64, Vec<u64>)>> {
    vec((0u64..1000, vec(0u64..25, 0..10)), 0..50)
}

/// Random fault plans, spanning gentle to brutal (exhaustion possible).
fn fault_plan() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        0.0f64..0.6,
        0.0f64..0.6,
        0.0f64..0.4,
        0.0f64..0.5,
        2.0f64..8.0,
        any::<bool>(),
        2usize..10,
        0usize..4,
    )
        .prop_map(
            |(
                seed,
                map_fail_p,
                reduce_fail_p,
                worker_crash_p,
                straggle_p,
                straggle_factor_max,
                speculation,
                max_attempts,
                blacklist_after,
            )| FaultPlan {
                seed,
                map_fail_p,
                reduce_fail_p,
                worker_crash_p,
                straggle_p,
                straggle_factor_max,
                speculation,
                retry: RetryPolicy {
                    max_attempts,
                    ..RetryPolicy::default()
                },
                blacklist_after,
                ..FaultPlan::default()
            },
        )
}

fn config(machines: usize, threads: usize, plan: Option<FaultPlan>) -> ClusterConfig {
    ClusterConfig {
        machines,
        threads,
        reducers: Some(4),
        fault_plan: plan,
        ..ClusterConfig::default()
    }
}

fn word_count(
    cfg: ClusterConfig,
    input: &[(u64, Vec<u64>)],
    reference: bool,
) -> (haten2_mapreduce::Result<Vec<(u64, u64)>>, JobMetrics) {
    let mapper = |_id: &u64, words: &Vec<u64>, emit: &mut dyn FnMut(u64, u64)| {
        for &w in words {
            emit(w, 1);
        }
    };
    let reducer = |word: &u64, ones: Vec<u64>, emit: &mut dyn FnMut(u64, u64)| {
        emit(*word, ones.iter().sum());
    };
    let cluster = Cluster::new(cfg);
    let out = if reference {
        run_job_reference(&cluster, JobSpec::named("wc"), input, mapper, reducer)
    } else {
        run_job(&cluster, JobSpec::named("wc"), input, mapper, reducer)
    };
    let mut m = cluster.metrics().jobs.first().cloned().unwrap_or_default();
    m.wall_time_s = 0.0;
    m.started_s = 0.0;
    m.finished_s = 0.0;
    (out, m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Engine ≡ reference for arbitrary fault plans: same output or same
    /// error, and identical metrics including every recovery counter.
    #[test]
    fn executors_identical_under_random_faults(
        input in corpus(),
        plan in fault_plan(),
        machines in 1usize..10,
        threads in 1usize..8,
    ) {
        let (engine, em) = word_count(config(machines, threads, Some(plan.clone())), &input, false);
        let (oracle, rm) = word_count(config(machines, 1, Some(plan)), &input, true);
        prop_assert_eq!(engine, oracle);
        prop_assert_eq!(em, rm);
    }

    /// Any non-exhausting schedule is invisible in the output.
    #[test]
    fn non_exhausting_faults_are_transparent(
        input in corpus(),
        plan in fault_plan(),
        machines in 1usize..10,
    ) {
        let (faulty, fm) = word_count(config(machines, 4, Some(plan)), &input, false);
        if let Ok(out) = faulty {
            let (clean, _) = word_count(config(machines, 4, None), &input, false);
            prop_assert_eq!(out, clean.expect("fault-free run cannot fail"));
            // Recovery work, if any, must be visible in the metrics.
            if fm.task_retries + fm.reduce_task_retries > 0 {
                prop_assert!(fm.recovery_sim_time_s > 0.0);
            }
        }
    }
}

/// An exhausted retry budget surfaces [`MrError::TaskFailed`] naming the
/// failing task instead of panicking or silently dropping data.
#[test]
fn exhausted_budget_names_the_failing_task() {
    let plan = FaultPlan {
        worker_crash_p: 1.0, // every worker crashed ...
        blacklist_after: 0,  // ... and none ever blacklisted
        ..FaultPlan::default()
    };
    let input: Vec<(u64, Vec<u64>)> = (0..16).map(|i| (i, vec![i % 5])).collect();
    let (engine, _) = word_count(config(4, 4, Some(plan.clone())), &input, false);
    let (oracle, _) = word_count(config(4, 1, Some(plan.clone())), &input, true);
    for result in [engine, oracle] {
        match result {
            Err(MrError::TaskFailed {
                job,
                phase,
                task,
                attempts,
            }) => {
                assert_eq!(job, "wc");
                assert_eq!(phase, "map");
                assert_eq!(task, 0);
                assert_eq!(attempts, plan.retry.max_attempts);
            }
            other => panic!("expected TaskFailed, got {other:?}"),
        }
    }
}

/// A small dense-ish tensor with deterministic values.
fn small_tensor() -> CooTensor3 {
    let mut entries = Vec::new();
    for i in 0..6u64 {
        for j in 0..5u64 {
            for k in 0..4u64 {
                if (i + 2 * j + 3 * k) % 3 == 0 {
                    let v = 1.0 + (i as f64) * 0.5 + (j as f64) * 0.25 + (k as f64) * 0.125;
                    entries.push(Entry3::new(i, j, k, v));
                }
            }
        }
    }
    CooTensor3::from_entries([6, 5, 4], entries).expect("valid tensor")
}

fn faulty_cluster(seed: u64) -> Cluster {
    Cluster::new(ClusterConfig {
        fault_plan: Some(FaultPlan::seeded(seed)),
        ..ClusterConfig::with_machines(4)
    })
}

/// PARAFAC-DRI under seeded fault schedules is bit-identical to the
/// fault-free decomposition.
#[test]
fn parafac_dri_is_fault_transparent() {
    let x = small_tensor();
    let opts = AlsOptions {
        max_iters: 3,
        tol: 0.0,
        ..AlsOptions::with_variant(Variant::Dri)
    };
    let clean = parafac_als(&Cluster::new(ClusterConfig::with_machines(4)), &x, 2, &opts)
        .expect("fault-free run");
    let mut injected_any = false;
    for seed in 0..4u64 {
        let cluster = faulty_cluster(seed);
        let faulty = parafac_als(&cluster, &x, 2, &opts)
            .unwrap_or_else(|e| panic!("seed {seed} exhausted a retry budget: {e}"));
        assert_eq!(faulty.lambda, clean.lambda, "seed {seed}: lambda differs");
        assert_eq!(faulty.factors, clean.factors, "seed {seed}: factors differ");
        assert_eq!(faulty.fits, clean.fits, "seed {seed}: fits differ");
        let m = cluster.metrics();
        injected_any |= m.total_task_retries() > 0 || m.total_speculative_launched() > 0;
    }
    assert!(
        injected_any,
        "no seed injected anything — the property is vacuous"
    );
}

fn sched_cluster(mode: SchedulerMode, threads: usize, plan: Option<FaultPlan>) -> Cluster {
    Cluster::new(ClusterConfig {
        scheduler: mode,
        threads,
        fault_plan: plan,
        ..ClusterConfig::with_machines(4)
    })
}

/// Every committed job metric with the host-time fields zeroed — the only
/// fields allowed to differ between scheduler modes (host scheduling
/// decides them; every simulated counter must stay bit-identical).
fn normalized_jobs(cluster: &Cluster) -> Vec<JobMetrics> {
    cluster
        .metrics()
        .jobs
        .into_iter()
        .map(|mut m| {
            m.wall_time_s = 0.0;
            m.started_s = 0.0;
            m.finished_s = 0.0;
            m
        })
        .collect()
}

/// Batch structure (job count, measured critical-path length) per batch.
/// The timing fields of a `BatchReport` are host-derived and excluded.
fn batch_shapes(cluster: &Cluster) -> Vec<(usize, usize)> {
    cluster
        .batch_reports()
        .into_iter()
        .map(|r| (r.jobs, r.critical_path_len))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Concurrent (DAG) execution of all eight Tucker/PARAFAC pipelines
    /// is bit-identical to sequential scheduling — outputs, per-job
    /// metrics, and batch structure — including under randomized fault
    /// schedules (which may exhaust budgets; then both modes must fail
    /// with the same typed error after committing the same job prefix).
    #[test]
    fn dag_scheduling_is_bit_identical_to_sequential(
        plan in proptest::option::of(fault_plan()),
        threads in 2usize..8,
    ) {
        let x = small_tensor();
        for variant in Variant::ALL {
            let opts = AlsOptions {
                max_iters: 2,
                tol: 0.0,
                ..AlsOptions::with_variant(variant)
            };

            let seq = sched_cluster(SchedulerMode::Sequential, threads, plan.clone());
            let dag = sched_cluster(SchedulerMode::Dag, threads, plan.clone());
            match (
                parafac_als(&seq, &x, 2, &opts),
                parafac_als(&dag, &x, 2, &opts),
            ) {
                (Ok(s), Ok(d)) => {
                    prop_assert_eq!(s.lambda, d.lambda, "{}: lambda", variant.name());
                    prop_assert_eq!(s.factors, d.factors, "{}: factors", variant.name());
                    prop_assert_eq!(s.fits, d.fits, "{}: fits", variant.name());
                }
                (Err(s), Err(d)) => {
                    prop_assert_eq!(s.to_string(), d.to_string(), "{}: errors", variant.name());
                }
                (s, d) => prop_assert!(
                    false,
                    "{}: one scheduler mode failed: seq {s:?} vs dag {d:?}",
                    variant.name()
                ),
            }
            prop_assert_eq!(
                normalized_jobs(&seq),
                normalized_jobs(&dag),
                "parafac {}: committed metrics diverged",
                variant.name()
            );
            prop_assert_eq!(
                batch_shapes(&seq),
                batch_shapes(&dag),
                "parafac {}: batch structure diverged",
                variant.name()
            );

            let seq = sched_cluster(SchedulerMode::Sequential, threads, plan.clone());
            let dag = sched_cluster(SchedulerMode::Dag, threads, plan.clone());
            match (
                tucker_als(&seq, &x, [2, 2, 2], &opts),
                tucker_als(&dag, &x, [2, 2, 2], &opts),
            ) {
                (Ok(s), Ok(d)) => {
                    prop_assert_eq!(s.factors, d.factors, "{}: factors", variant.name());
                    prop_assert_eq!(s.core, d.core, "{}: core", variant.name());
                    prop_assert_eq!(s.core_norms, d.core_norms, "{}: core norms", variant.name());
                }
                (Err(s), Err(d)) => {
                    prop_assert_eq!(s.to_string(), d.to_string(), "{}: errors", variant.name());
                }
                (s, d) => prop_assert!(
                    false,
                    "{}: one scheduler mode failed: seq {s:?} vs dag {d:?}",
                    variant.name()
                ),
            }
            prop_assert_eq!(
                normalized_jobs(&seq),
                normalized_jobs(&dag),
                "tucker {}: committed metrics diverged",
                variant.name()
            );
            prop_assert_eq!(
                batch_shapes(&seq),
                batch_shapes(&dag),
                "tucker {}: batch structure diverged",
                variant.name()
            );
        }
    }
}

/// Tucker-DRI under seeded fault schedules is bit-identical to the
/// fault-free decomposition.
#[test]
fn tucker_dri_is_fault_transparent() {
    let x = small_tensor();
    let opts = AlsOptions {
        max_iters: 2,
        tol: 0.0,
        ..AlsOptions::with_variant(Variant::Dri)
    };
    let clean = tucker_als(
        &Cluster::new(ClusterConfig::with_machines(4)),
        &x,
        [2, 2, 2],
        &opts,
    )
    .expect("fault-free run");
    let mut injected_any = false;
    for seed in 0..4u64 {
        let cluster = faulty_cluster(seed);
        let faulty = tucker_als(&cluster, &x, [2, 2, 2], &opts)
            .unwrap_or_else(|e| panic!("seed {seed} exhausted a retry budget: {e}"));
        assert_eq!(faulty.factors, clean.factors, "seed {seed}: factors differ");
        assert_eq!(faulty.core, clean.core, "seed {seed}: core differs");
        let m = cluster.metrics();
        injected_any |= m.total_task_retries() > 0 || m.total_speculative_launched() > 0;
    }
    assert!(
        injected_any,
        "no seed injected anything — the property is vacuous"
    );
}
