//! Durable-backend restart semantics at the engine level: datasets written
//! through a [`DfsBackend::Durable`] cluster reopen from disk in a fresh
//! cluster over the same directory, and lineage re-derivation works
//! against the *reloaded* inputs — losing an intermediate after a restart
//! re-runs its producer from the segment files, bit-identically.

#![allow(clippy::unwrap_used)]

use haten2_mapreduce::{
    run_job_dfs, run_job_dfs_recovering, Cluster, ClusterConfig, DfsBackend, DurableConfig,
    JobSpec, Lineage,
};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "haten2-durable-restart-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_cluster(dir: &PathBuf) -> Cluster {
    Cluster::new(ClusterConfig {
        dfs: DfsBackend::Durable(DurableConfig::new(dir)),
        ..ClusterConfig::with_machines(3)
    })
}

fn count_job(cluster: &Cluster) -> haten2_mapreduce::Result<usize> {
    run_job_dfs(
        cluster,
        cluster.dfs(),
        JobSpec::named("count"),
        "logs",
        "counts",
        |_: &u64, v: &u64, emit| emit(*v, 1u64),
        |k, vals, emit| emit(*k, vals.len() as u64),
    )
}

#[test]
fn lineage_rederives_from_durably_reloaded_source_after_restart() {
    let dir = tmp_dir("lineage");

    // Phase 1: a durable cluster ingests the source and derives the
    // intermediate, then the "process" dies (cluster dropped).
    let phase1_counts;
    {
        let cluster = durable_cluster(&dir);
        cluster
            .dfs()
            .put("logs", vec![(0u64, 3u64), (1, 3), (2, 5), (3, 5), (4, 5)])
            .unwrap();
        count_job(&cluster).unwrap();
        phase1_counts = cluster.dfs().get::<(u64, u64)>("counts").unwrap();
    }

    // Phase 2: a fresh cluster over the same directory sees both datasets
    // without any puts — the manifest replay recovered them.
    let cluster = Arc::new(durable_cluster(&dir));
    assert!(
        cluster.dfs().contains("logs"),
        "source must survive restart"
    );
    assert!(
        cluster.dfs().contains("counts"),
        "intermediate must survive restart"
    );

    // Lose the intermediate *after* the restart. The recipe must re-run
    // the producer against the source reloaded from segment files.
    assert!(cluster.dfs().delete("counts").unwrap());
    let lineage = Lineage::new();
    let recipe_cluster = Arc::clone(&cluster);
    lineage
        .register("counts", "count", move || {
            count_job(&recipe_cluster).map(|_| ())
        })
        .unwrap();

    run_job_dfs_recovering(
        &cluster,
        cluster.dfs(),
        &lineage,
        JobSpec::named("max"),
        "counts",
        "max",
        |_: &u64, c: &u64, emit| emit(0u8, *c),
        |_, vals, emit| emit(0u8, vals.into_iter().max().unwrap_or(0)),
    )
    .unwrap();

    assert_eq!(lineage.recoveries(), 1, "the lost input must be re-derived");
    // The re-derived intermediate matches the pre-restart bits exactly,
    // because the source round-tripped through the block store losslessly.
    let rederived = cluster.dfs().get::<(u64, u64)>("counts").unwrap();
    assert_eq!(*rederived, *phase1_counts);
    let max = cluster.dfs().get::<(u8, u64)>("max").unwrap();
    assert_eq!(max[0], (0, 3));
    // The reload path (not a warm cache) actually served the source.
    assert!(
        cluster.dfs().spill_stats().reload_events >= 1,
        "source should have been reloaded from segments"
    );

    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deleted_datasets_stay_deleted_across_restart() {
    let dir = tmp_dir("delete");
    {
        let cluster = durable_cluster(&dir);
        cluster.dfs().put("keep", vec![1u64, 2, 3]).unwrap();
        cluster.dfs().put("drop", vec![9u64]).unwrap();
        assert!(cluster.dfs().delete("drop").unwrap());
    }
    let cluster = durable_cluster(&dir);
    assert!(cluster.dfs().contains("keep"));
    assert!(
        !cluster.dfs().contains("drop"),
        "a durable delete must survive restart (manifest tombstone)"
    );
    assert_eq!(*cluster.dfs().get::<u64>("keep").unwrap(), vec![1, 2, 3]);
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}
