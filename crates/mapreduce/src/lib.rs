//! A hand-rolled, cluster-simulated MapReduce engine.
//!
//! HaTen2 runs on Hadoop; no Hadoop cluster is available here, so this crate
//! reproduces the *behaviourally relevant* parts of that substrate:
//!
//! * **Real dataflow semantics** — map → (combine) → partition → shuffle →
//!   sort/group → reduce, executed with genuine thread parallelism on a
//!   persistent worker pool ([`pool::WorkerPool`]) whose threads stand in
//!   for cluster nodes. Map tasks emit sorted runs and the shuffle moves
//!   them zero-copy; reducers k-way merge instead of re-sorting, and
//!   results are deterministic across runs and thread counts.
//! * **Exact intermediate-data accounting** — every record a mapper emits is
//!   counted and sized. "Max intermediate data" is the quantity the paper's
//!   Tables III and IV bound per HaTen2 variant, so it must be measured, not
//!   modelled.
//! * **Job counting** — the second column of those tables.
//! * **A calibrated cluster cost model** — converts measured per-job work
//!   into simulated wall-clock for an `M`-machine cluster with per-job fixed
//!   overhead (JVM start, synchronization). This produces the paper's
//!   machine-scalability flattening (Fig. 8) and the job-count-dominated
//!   running-time differences between variants (Figs. 1 and 7).
//! * **Memory budgets** — a per-reducer budget makes broadcast-style jobs
//!   (HaTen2-Naive copies a whole factor column to every reducer) fail with
//!   an explicit [`MrError::ReducerOom`], reproducing the paper's "o.o.m."
//!   data points at scaled-down thresholds.
//! * **An in-memory DFS** ([`dfs::Dfs`]) with read/write metering, so the
//!   disk-access saving of HaTen2-DRI (the input tensor is read once, not
//!   twice) is observable.
//! * **Fault injection and recovery** — a seeded [`fault::FaultPlan`]
//!   schedules task failures, worker crashes, stragglers, and DFS faults;
//!   the engine recovers with bounded retries + simulated-time backoff,
//!   speculative re-execution, worker blacklisting, and lineage
//!   re-derivation of lost datasets ([`lineage::Lineage`]) — all expanded
//!   deterministically so results stay bit-identical to fault-free runs.
//! * **A sequential oracle** — [`reference::run_job_reference`] is a
//!   straight-line, single-threaded executor with the same observable
//!   semantics; property tests hold the pooled engine to it bit-for-bit.
//! * **A declarative plan IR** — [`plan::JobGraph`] lets pipelines publish
//!   their dataset wiring and symbolic cost expressions up front, so the
//!   `haten2-analyze` crate can verify the paper's static cost table
//!   *before* a job runs.
//! * **A DAG-aware job scheduler** — pipelines submit [`sched::Batch`]es
//!   of jobs with declared dataset read/write sets (validated against the
//!   plan IR); a ready-queue dispatches any job whose inputs are available
//!   onto the shared worker pool, interleaving tasks from concurrent
//!   jobs. Results still *commit* in submission order and fault schedules
//!   are keyed by submission index, so outputs, DFS contents, and metrics
//!   stay bit-identical to sequential execution
//!   ([`cluster::SchedulerMode::Sequential`] is the in-tree oracle).

// The one unsafe block in this workspace lives in `pool.rs` behind a
// narrowly scoped `#[allow]` with a SAFETY argument and a dedicated stress
// test; everything else in this crate is forbidden from adding more.
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod arena;
pub mod cluster;
pub mod dfs;
pub mod fault;
pub mod job;
pub mod lineage;
pub mod metrics;
pub mod persist;
pub mod pipeline;
pub mod plan;
pub mod pool;
#[cfg(feature = "race-detect")]
pub mod race;
pub mod reference;
pub mod rewrite;
pub mod sched;
pub mod size;

pub use arena::GroupValues;
pub use cluster::{Cluster, ClusterConfig, CostModel, SchedulerMode};
pub use dfs::{Block, Dfs, DfsBackend, DurableConfig, SpillStats};
pub use fault::{FaultPlan, JobFaultSchedule, RetryPolicy, TaskFaults};
pub use haten2_blockstore::Codec;
pub use job::{
    key_slice, run_job, run_job_streaming, Combiner, JobSite, JobSpec, RECORD_FRAMING_BYTES,
};
pub use lineage::{Lineage, MAX_RECOVERY_DEPTH};
pub use metrics::{BatchReport, JobMetrics, RunMetrics};
pub use persist::{decode_records, encode_records, Persist};
pub use pipeline::{run_job_dfs, run_job_dfs_recovering};
pub use plan::{CheckpointPolicy, Env, JobGraph, JobInstance, PlanJob, RecoverySpec, SymExpr, Var};
pub use pool::WorkerPool;
#[cfg(feature = "race-detect")]
pub use race::RaceReport;
pub use reference::{run_job_reference, run_job_reference_streaming};
pub use rewrite::{KeyFreqSketch, RewritePolicy};
pub use sched::{datasets_overlap, Batch, BatchResults, JobCtx, JobHandle};
pub use size::EstimateSize;

/// Whether the dynamic race detector is compiled into this build of the
/// engine. Debug tooling (the chaos sweep) turns it on; measured builds
/// must not — the engine benchmark asserts this at startup so the
/// detector's cost can never leak into `BENCH_engine.json`.
#[must_use]
pub const fn race_detector_compiled() -> bool {
    cfg!(feature = "race-detect")
}

/// Errors surfaced by the MapReduce engine.
#[derive(Debug, Clone, PartialEq)]
pub enum MrError {
    /// A reduce-side key group exceeded the configured per-reducer memory
    /// budget — the distributed analogue of an out-of-memory crash.
    ReducerOom {
        /// Job that failed.
        job: String,
        /// Bytes the offending key group required.
        group_bytes: usize,
        /// Configured budget.
        budget_bytes: usize,
    },
    /// Total intermediate (shuffle) data exceeded the cluster's aggregate
    /// capacity (sum of per-machine spill space).
    ClusterCapacityExceeded {
        /// Job that failed.
        job: String,
        /// Bytes of intermediate data produced.
        intermediate_bytes: usize,
        /// Configured aggregate capacity.
        capacity_bytes: usize,
    },
    /// A task failed more times than the retry budget allows.
    TaskFailed {
        /// Job that failed.
        job: String,
        /// Phase of the failing task (`"map"` or `"reduce"`).
        phase: &'static str,
        /// Task index within the job (map task or reduce partition).
        task: usize,
        /// Failed attempts when the budget ran out.
        attempts: usize,
    },
    /// A pipeline stage referenced a DFS dataset that does not exist (or
    /// holds records of a different type).
    DatasetMissing {
        /// Job that failed.
        job: String,
        /// The dataset name.
        dataset: String,
    },
    /// Transient DFS read errors persisted past the retry budget.
    DfsReadFailed {
        /// Job whose input read kept failing.
        job: String,
        /// The dataset being read.
        dataset: String,
        /// Attempts made before giving up.
        attempts: usize,
    },
    /// A lost dataset has no registered lineage recipe to re-derive it.
    LineageMissing {
        /// The unrecoverable dataset.
        dataset: String,
    },
    /// A lineage recipe was registered under a different producing job
    /// than the pipeline's [`plan::JobGraph`] declares.
    LineageMismatch {
        /// The dataset in question.
        dataset: String,
        /// Producer named at registration.
        registered: String,
        /// Producer the plan declares.
        planned: String,
    },
    /// A scheduler batch disagreed with the static plan: a submitted job
    /// does not match any [`plan::JobGraph`] template, declared reads or
    /// writes that the plan does not, ran a job it never declared, or
    /// touched an output it never claimed as a dependency.
    PlanViolation {
        /// The offending job (or batch) name.
        job: String,
        /// What disagreed.
        detail: String,
    },
    /// A DFS `put` would push aggregate live dataset bytes past the
    /// configured storage capacity — the spill space (durable backend) or
    /// simulated DFS capacity (memory backend) is exhausted. Fired
    /// identically by both backends so capacity behaviour is
    /// backend-independent.
    SpillCapacityExceeded {
        /// Dataset whose put was rejected.
        dataset: String,
        /// Estimated bytes the put requested.
        requested_bytes: usize,
        /// Live bytes already stored (after accounting for the
        /// generation this put would have replaced).
        live_bytes: usize,
        /// Configured aggregate capacity.
        capacity_bytes: usize,
    },
    /// The durable storage backend failed an I/O operation (open, put,
    /// get, delete, or decode). Carries the formatted OS error, since
    /// `io::Error` itself is neither `Clone` nor `PartialEq`.
    StorageFailed {
        /// Dataset involved (or `"(store)"` for store-wide operations).
        dataset: String,
        /// The failing operation.
        op: &'static str,
        /// Human-readable failure detail.
        detail: String,
    },
    /// Two jobs of the same batch declared a write to the *same exact*
    /// dataset shard. The scheduler would silently serialize them into a
    /// last-writer-wins WAW edge; rejecting at submission time keeps every
    /// shard single-writer, which is what the static race certification
    /// assumes.
    DuplicateWrite {
        /// Job whose submission was rejected.
        job: String,
        /// The earlier-submitted job already writing the shard.
        prior_job: String,
        /// The contested dataset shard.
        dataset: String,
    },
}

impl std::fmt::Display for MrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MrError::ReducerOom { job, group_bytes, budget_bytes } => write!(
                f,
                "job '{job}': reducer out of memory (key group needs {group_bytes} B, budget {budget_bytes} B)"
            ),
            MrError::ClusterCapacityExceeded { job, intermediate_bytes, capacity_bytes } => write!(
                f,
                "job '{job}': intermediate data {intermediate_bytes} B exceeds cluster capacity {capacity_bytes} B"
            ),
            MrError::TaskFailed { job, phase, task, attempts } => {
                write!(
                    f,
                    "job '{job}': {phase} task {task} exhausted its retry budget after {attempts} failed attempts"
                )
            }
            MrError::DatasetMissing { job, dataset } => {
                write!(f, "job '{job}': DFS dataset '{dataset}' missing or wrong type")
            }
            MrError::DfsReadFailed { job, dataset, attempts } => {
                write!(
                    f,
                    "job '{job}': reading DFS dataset '{dataset}' failed transiently {attempts} times, budget exhausted"
                )
            }
            MrError::SpillCapacityExceeded { dataset, requested_bytes, live_bytes, capacity_bytes } => write!(
                f,
                "dataset '{dataset}': put of {requested_bytes} B would push live DFS bytes ({live_bytes} B) past capacity {capacity_bytes} B"
            ),
            MrError::StorageFailed { dataset, op, detail } => {
                write!(f, "dataset '{dataset}': durable storage {op} failed: {detail}")
            }
            MrError::LineageMissing { dataset } => {
                write!(f, "dataset '{dataset}' lost and no lineage recipe can re-derive it")
            }
            MrError::PlanViolation { job, detail } => {
                write!(f, "job '{job}': plan violation: {detail}")
            }
            MrError::DuplicateWrite { job, prior_job, dataset } => {
                write!(
                    f,
                    "job '{job}': duplicate write: dataset shard '{dataset}' is already written by job '{prior_job}'"
                )
            }
            MrError::LineageMismatch { dataset, registered, planned } => {
                write!(
                    f,
                    "dataset '{dataset}' registered with producer '{registered}' but the plan declares '{planned}'"
                )
            }
        }
    }
}

impl std::error::Error for MrError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, MrError>;
