//! A sequential reference executor — the engine's executable
//! specification.
//!
//! [`run_job_reference`] implements the exact observable semantics of
//! [`crate::job::run_job`] — same splits, same partitioner, same
//! accounting, same failure rules, same output order — as straight-line
//! single-threaded code with none of the engine's machinery (no worker
//! pool, no sorted runs, no merge: just concatenate and stably sort each
//! partition). Property tests generate random jobs and require the pooled
//! engine to match it bit-for-bit on both output and [`JobMetrics`]
//! (`wall_time_s` excepted). When the two disagree, trust this one.

use crate::arena::{GroupValues, RunCursor};
use crate::cluster::{Cluster, CostModel};
use crate::fault::JobFaultSchedule;
use crate::job::{partition_of, Combiner, JobSpec};
use crate::metrics::JobMetrics;
use crate::size::EstimateSize;
use crate::MrError;
use std::hash::Hash;
use std::time::Instant;

/// Per-record framing overhead, identical to the engine's.
const FRAMING_BYTES: usize = 8;

/// Sort a map task's bucket by key and apply the combiner to each key
/// group. Input order within equal keys is preserved into the combiner
/// (stable sort); output stays key-sorted. Row-major twin of
/// [`crate::arena::ColumnBuffer::combine`] — this executor deliberately
/// stays tuple-per-record so a disagreement with the engine cannot stem
/// from shared columnar machinery.
fn combine_bucket<KM, VM>(bucket: &mut Vec<(KM, VM)>, combiner: Combiner<'_, KM, VM>)
where
    KM: Clone + Ord,
{
    let drained = std::mem::take(bucket);
    let mut it = drained.into_iter().peekable();
    while let Some((key, first)) = it.next() {
        let mut vals = vec![first];
        while it.peek().is_some_and(|(k, _)| *k == key) {
            vals.push(it.next().expect("peeked").1);
        }
        for v in combiner(&key, vals) {
            bucket.push((key.clone(), v));
        }
    }
}

/// Execute one job sequentially with the same observable behavior as
/// [`crate::job::run_job`]: identical output (contents *and* order),
/// identical metrics except `wall_time_s`, identical errors.
pub fn run_job_reference<KI, VI, KM, VM, KO, VO, M, R>(
    cluster: &Cluster,
    spec: JobSpec<'_, KM, VM>,
    input: &[(KI, VI)],
    mapper: M,
    reducer: R,
) -> crate::Result<Vec<(KO, VO)>>
where
    KI: Sync + EstimateSize,
    VI: Sync + EstimateSize,
    KM: Clone + Ord + Hash + Send + EstimateSize,
    VM: Send + EstimateSize,
    KO: Send + EstimateSize,
    VO: Send + EstimateSize,
    M: Fn(&KI, &VI, &mut dyn FnMut(KM, VM)) + Sync,
    R: Fn(&KM, Vec<VM>, &mut dyn FnMut(KO, VO)) + Sync,
{
    let started = Instant::now();
    let started_s = cluster.since_epoch();
    let cfg = cluster.config();
    let num_reducers = cfg.num_reducers();
    let num_map_tasks = cfg.machines.max(1);

    let mut metrics = JobMetrics {
        name: spec.name.clone(),
        ..Default::default()
    };

    // ---- Map phase: one task per split, in task order --------------------
    let split_len = input.len().div_ceil(num_map_tasks).max(1);
    let actual_tasks = input.chunks(split_len).count();

    // Same up-front fault-schedule expansion as the engine: identical
    // decisions, identical accounting.
    let sched: Option<JobFaultSchedule> = cfg.fault_plan.as_ref().map(|plan| {
        plan.schedule(
            &spec.name,
            cluster.jobs_run(),
            actual_tasks,
            num_reducers,
            cfg.machines.max(1),
        )
    });
    if let Some(s) = &sched {
        if let Some(t) = s.first_exhausted_map() {
            return Err(MrError::TaskFailed {
                job: spec.name,
                phase: "map",
                task: t,
                attempts: s.map[t].failed_attempts,
            });
        }
    }

    let mut partitions: Vec<Vec<(KM, VM)>> = (0..num_reducers).map(|_| Vec::new()).collect();

    let run_map_task = |split: &[(KI, VI)]| {
        let mut buckets: Vec<Vec<(KM, VM)>> = (0..num_reducers).map(|_| Vec::new()).collect();
        let mut output_records = 0usize;
        let mut output_bytes = 0usize;
        let mut input_bytes = 0usize;
        {
            let mut emit = |k: KM, v: VM| {
                output_records += 1;
                output_bytes += k.est_bytes() + v.est_bytes() + FRAMING_BYTES;
                buckets[partition_of(&k, num_reducers)].push((k, v));
            };
            for (k, v) in split {
                input_bytes += k.est_bytes() + v.est_bytes() + FRAMING_BYTES;
                mapper(k, v, &mut emit);
            }
        }
        if let Some(combiner) = spec.combiner {
            for bucket in &mut buckets {
                bucket.sort_by(|a, b| a.0.cmp(&b.0));
                combine_bucket(bucket, combiner);
            }
        }
        (buckets, output_records, output_bytes, input_bytes)
    };

    for (task, split) in input.chunks(split_len).enumerate() {
        if let Some(s) = &sched {
            // Scheduled failed attempts: run the mapper, discard the
            // output (wasted work), retry.
            for _ in 0..s.map[task].failed_attempts {
                drop(run_map_task(split));
            }
        }
        let (buckets, output_records, output_bytes, input_bytes) = run_map_task(split);
        if let (Some(s), Some(plan)) = (&sched, &cfg.fault_plan) {
            s.map[task].account_map(plan, input_bytes as f64 / cfg.map_bytes_per_s, &mut metrics);
        }
        metrics.map_input_records += split.len();
        metrics.map_input_bytes += input_bytes;
        metrics.map_output_records += output_records;
        metrics.map_output_bytes += output_bytes;
        for (p, bucket) in buckets.into_iter().enumerate() {
            for (k, v) in bucket {
                metrics.shuffle_records += 1;
                metrics.shuffle_bytes += k.est_bytes() + v.est_bytes() + FRAMING_BYTES;
                partitions[p].push((k, v));
            }
        }
    }

    if let Some(cap) = cfg.cluster_capacity_bytes {
        if metrics.map_output_bytes > cap {
            return Err(MrError::ClusterCapacityExceeded {
                job: spec.name,
                intermediate_bytes: metrics.map_output_bytes,
                capacity_bytes: cap,
            });
        }
    }

    // ---- Reduce phase: partitions in order, full stable sort -------------
    let mut output: Vec<(KO, VO)> = Vec::new();
    for (p, mut records) in partitions.into_iter().enumerate() {
        if let Some(f) = sched.as_ref().map(|s| &s.reduce[p]) {
            if f.exhausted {
                return Err(MrError::TaskFailed {
                    job: spec.name,
                    phase: "reduce",
                    task: p,
                    attempts: f.failed_attempts,
                });
            }
        }
        records.sort_by(|a, b| a.0.cmp(&b.0));
        let mut it = records.into_iter().peekable();
        while let Some((key, first)) = it.next() {
            let mut group_bytes = key.est_bytes() + first.est_bytes() + FRAMING_BYTES;
            let mut vals = vec![first];
            while it.peek().is_some_and(|(k, _)| *k == key) {
                let (_, v) = it.next().expect("peeked");
                group_bytes += v.est_bytes() + FRAMING_BYTES;
                vals.push(v);
            }
            if let Some(budget) = cfg.reducer_memory_bytes {
                if group_bytes > budget {
                    return Err(MrError::ReducerOom {
                        job: spec.name,
                        group_bytes,
                        budget_bytes: budget,
                    });
                }
            }
            metrics.max_group_bytes = metrics.max_group_bytes.max(group_bytes);
            metrics.reduce_groups += 1;
            let mut emit = |k: KO, v: VO| {
                metrics.reduce_output_records += 1;
                metrics.reduce_output_bytes += k.est_bytes() + v.est_bytes() + FRAMING_BYTES;
                output.push((k, v));
            };
            reducer(&key, vals, &mut emit);
        }
    }

    if let (Some(s), Some(plan)) = (&sched, &cfg.fault_plan) {
        for f in &s.reduce {
            f.account_reduce(plan, &mut metrics);
        }
        metrics.workers_blacklisted = s.workers_blacklisted;
    }

    metrics.wall_time_s = started.elapsed().as_secs_f64();
    metrics.started_s = started_s;
    metrics.finished_s = started_s + metrics.wall_time_s;
    metrics.sim_time_s = CostModel::job_time_s(cfg, &metrics);
    cluster.record(metrics);
    Ok(output)
}

/// Sequential oracle for [`crate::job::run_job_streaming`]: identical
/// observable semantics, with each key group presented through the same
/// [`GroupValues`] streaming interface the engine uses. The spec stays
/// deliberately naive — it materializes the group first (this executor
/// optimizes for auditability, not allocation) and only *presents* it as
/// a stream, so a disagreement with the engine can never be caused by
/// shared merge machinery taking a different path here.
pub fn run_job_reference_streaming<KI, VI, KM, VM, KO, VO, M, R>(
    cluster: &Cluster,
    spec: JobSpec<'_, KM, VM>,
    input: &[(KI, VI)],
    mapper: M,
    reducer: R,
) -> crate::Result<Vec<(KO, VO)>>
where
    KI: Sync + EstimateSize,
    VI: Sync + EstimateSize,
    KM: Clone + Ord + Hash + Send + EstimateSize,
    VM: Send + EstimateSize,
    KO: Send + EstimateSize,
    VO: Send + EstimateSize,
    M: Fn(&KI, &VI, &mut dyn FnMut(KM, VM)) + Sync,
    R: Fn(&KM, &mut GroupValues<'_, KM, VM>, &mut dyn FnMut(KO, VO)) + Sync,
{
    run_job_reference(
        cluster,
        spec,
        input,
        mapper,
        |key: &KM, vals: Vec<VM>, emit: &mut dyn FnMut(KO, VO)| {
            let n = vals.len();
            let keys: Vec<KM> = std::iter::repeat_with(|| key.clone()).take(n).collect();
            let mut cursors = [RunCursor::from_columns(keys, vals)];
            let counts = [u32::try_from(n).expect("group size fits u32")];
            let mut group = GroupValues::new(&mut cursors, key, &counts, n);
            reducer(key, &mut group, emit);
            // Match the engine: leftovers of an early-stopping reducer are
            // drained, not leaked into the next group.
            group.for_each(drop);
        },
    )
}
