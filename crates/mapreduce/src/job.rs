//! The MapReduce job executor.
//!
//! [`run_job`] executes one job with real thread parallelism and full
//! dataflow semantics: map tasks over input splits, an optional map-side
//! combiner, hash partitioning, a shuffle of pre-sorted runs, a reduce-side
//! k-way merge group-by, and reduce tasks per partition. Every mapper
//! emission is counted and sized — the "intermediate data" of the paper's
//! cost analysis.
//!
//! Execution layout: tasks run on the [`crate::pool::WorkerPool`] owned by
//! the [`Cluster`] (spawned once, reused by every job). Each map task
//! writes its output straight into per-partition buckets, sorts each
//! bucket by key, and hands the buckets to the shuffle as whole
//! [`SortedRun`]s — the shuffle moves `Vec`s, never records, and its byte
//! accounting is aggregated per bucket rather than per record. Reducers
//! merge their partition's sorted runs instead of re-sorting from scratch.
//! Output is returned in partition order with ties resolved by map-task
//! index, so results and metrics are bit-identical across runs and thread
//! counts.

use crate::cluster::{Cluster, CostModel};
use crate::fault::JobFaultSchedule;
use crate::metrics::JobMetrics;
use crate::size::{slice_est_bytes, EstimateSize};
use crate::MrError;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Per-record framing overhead (key length + value length prefixes), bytes.
/// Public because the static plan analyzer reconstructs the engine's byte
/// accounting symbolically and must charge the same framing per record.
pub const RECORD_FRAMING_BYTES: usize = 8;
use RECORD_FRAMING_BYTES as FRAMING_BYTES;

/// A map-side combiner: receives one key's values from a single map task
/// and returns the (smaller) combined value list.
pub type Combiner<'a, KM, VM> = &'a (dyn Fn(&KM, Vec<VM>) -> Vec<VM> + Sync);

/// Where a job runs: directly on a [`Cluster`] (record-immediately,
/// strictly sequential semantics) or inside a scheduler batch through a
/// [`crate::sched::JobCtx`] (per-submission fault keying, deferred
/// submission-order commit).
///
/// Abstracting the site as a trait — rather than giving the scheduler its
/// own entry point — keeps `run_job(site, spec, input, mapper, reducer)` a
/// plain function call with identical argument positions at every driver
/// site, which is the shape the UDF-purity scanner (`haten2-srcscan`)
/// keys on when it certifies mapper/reducer closures deterministic.
pub trait JobSite {
    /// The cluster the job executes on.
    fn cluster(&self) -> &Cluster;

    /// Submission index keying this job's fault schedule
    /// ([`crate::fault::FaultPlan::schedule`]). For a bare [`Cluster`]
    /// this is the number of jobs already recorded; a scheduler batch
    /// pre-assigns indices at submission so fault replay is independent
    /// of completion order.
    fn job_index(&self) -> usize;

    /// The plan-derived `map_emit_hint` for the named job, when the site
    /// knows the job's [`crate::plan::JobGraph`]. Only consulted when the
    /// [`JobSpec`] carries no explicit override.
    fn derived_emit_hint(&self, name: &str) -> Option<usize>;

    /// Validate that this site may run a job named `name` now. Scheduler
    /// contexts enforce that the job was declared at submission and runs
    /// exactly once.
    fn before_run(&self, name: &str) -> crate::Result<()>;

    /// Deliver the finished job's metrics: record immediately (bare
    /// cluster) or stash for submission-order commit (scheduler batch).
    fn commit_metrics(&self, metrics: JobMetrics);
}

impl JobSite for Cluster {
    fn cluster(&self) -> &Cluster {
        self
    }

    fn job_index(&self) -> usize {
        self.jobs_run()
    }

    fn derived_emit_hint(&self, _name: &str) -> Option<usize> {
        None
    }

    fn before_run(&self, _name: &str) -> crate::Result<()> {
        Ok(())
    }

    fn commit_metrics(&self, metrics: JobMetrics) {
        self.record(metrics);
    }
}

/// Declarative description of one job.
pub struct JobSpec<'a, KM, VM> {
    /// Job name for metrics.
    pub name: String,
    /// Optional map-side combiner: receives one key's values from a single
    /// map task and returns the (smaller) combined value list.
    pub combiner: Option<Combiner<'a, KM, VM>>,
    /// Expected mapper emissions per input record, when known. Purely a
    /// performance hint: map tasks pre-size their partition buckets from
    /// it. Has no effect on results or metrics.
    pub map_emit_hint: Option<usize>,
}

impl<'a, KM, VM> JobSpec<'a, KM, VM> {
    /// A job with no combiner.
    pub fn named(name: impl Into<String>) -> Self {
        JobSpec {
            name: name.into(),
            combiner: None,
            map_emit_hint: None,
        }
    }

    /// Attach a combiner.
    pub fn with_combiner(mut self, combiner: Combiner<'a, KM, VM>) -> Self {
        self.combiner = Some(combiner);
        self
    }

    /// Declare the expected number of mapper emissions per input record
    /// (e.g. 2 for a mapper that always emits twice), letting map tasks
    /// allocate their output buckets once.
    pub fn with_map_emit_hint(mut self, per_record: usize) -> Self {
        self.map_emit_hint = Some(per_record);
        self
    }
}

/// One map task's output for one partition: records sorted by key, plus
/// their aggregate wire size. The shuffle moves these wholesale.
struct SortedRun<KM, VM> {
    records: Vec<(KM, VM)>,
    bytes: usize,
}

struct MapTaskResult<KM, VM> {
    runs: Vec<SortedRun<KM, VM>>,
    input_records: usize,
    input_bytes: usize,
    output_records: usize,
    output_bytes: usize,
}

/// FNV-1a. The partitioner only needs a stable, well-mixed hash, not a
/// keyed SipHash — and it runs once per emitted record, which made
/// `DefaultHasher` construction and finalization a measurable per-record
/// cost in the seed engine.
struct Fnv1a(u64);

impl Hasher for Fnv1a {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

pub(crate) fn partition_of<K: Hash>(key: &K, partitions: usize) -> usize {
    let mut h = Fnv1a(0xcbf2_9ce4_8422_2325);
    key.hash(&mut h);
    (h.finish() as usize) % partitions
}

/// Sort a map task's bucket by key and apply the combiner to each key
/// group. Input order within equal keys is preserved into the combiner
/// (stable sort); output stays key-sorted.
pub(crate) fn combine_bucket<KM, VM>(bucket: &mut Vec<(KM, VM)>, combiner: Combiner<'_, KM, VM>)
where
    KM: Clone + Ord,
{
    let drained = std::mem::take(bucket);
    let mut it = drained.into_iter().peekable();
    while let Some((key, first)) = it.next() {
        let mut vals = vec![first];
        while it.peek().is_some_and(|(k, _)| *k == key) {
            vals.push(it.next().expect("peeked").1);
        }
        for v in combiner(&key, vals) {
            bucket.push((key.clone(), v));
        }
    }
}

/// Execute one MapReduce job on `site` (a [`Cluster`] for sequential
/// record-immediately execution, or a [`crate::sched::JobCtx`] inside a
/// scheduler batch).
///
/// * `input` — the input split, as `(key, value)` records.
/// * `mapper` — called per input record with an `emit(key, value)` sink.
/// * `reducer` — called per intermediate key with all its values (combined
///   across map tasks) and an `emit(key, value)` sink.
///
/// Returns the reduce output, in partition order with each key group's
/// values ordered by (map task, emission order) — deterministic across
/// runs and across `threads` settings. Metrics (including simulated
/// cluster time) are recorded on the `cluster` and also derivable from the
/// returned metrics snapshot.
///
/// ```
/// use haten2_mapreduce::{run_job, Cluster, ClusterConfig, JobSpec};
///
/// let cluster = Cluster::new(ClusterConfig::with_machines(4));
/// let docs = vec![(0u64, "a b a".to_string()), (1, "b c".to_string())];
/// let mut counts = run_job(
///     &cluster,
///     JobSpec::named("word-count"),
///     &docs,
///     |_, text: &String, emit| {
///         for w in text.split_whitespace() {
///             emit(w.to_string(), 1u64);
///         }
///     },
///     |word, ones, emit| emit(word.clone(), ones.iter().sum::<u64>()),
/// )
/// .unwrap();
/// counts.sort();
/// assert_eq!(counts, vec![
///     ("a".to_string(), 2),
///     ("b".to_string(), 2),
///     ("c".to_string(), 1),
/// ]);
/// // The paper's "intermediate data" is the mapper output, counted exactly:
/// assert_eq!(cluster.metrics().jobs[0].map_output_records, 5);
/// ```
pub fn run_job<KI, VI, KM, VM, KO, VO, M, R>(
    site: &impl JobSite,
    spec: JobSpec<'_, KM, VM>,
    input: &[(KI, VI)],
    mapper: M,
    reducer: R,
) -> crate::Result<Vec<(KO, VO)>>
where
    KI: Sync + EstimateSize,
    VI: Sync + EstimateSize,
    KM: Clone + Ord + Hash + Send + EstimateSize,
    VM: Send + EstimateSize,
    KO: Send + EstimateSize,
    VO: Send + EstimateSize,
    M: Fn(&KI, &VI, &mut dyn FnMut(KM, VM)) + Sync,
    R: Fn(&KM, Vec<VM>, &mut dyn FnMut(KO, VO)) + Sync,
{
    site.before_run(&spec.name)?;
    let mut spec = spec;
    if spec.map_emit_hint.is_none() {
        spec.map_emit_hint = site.derived_emit_hint(&spec.name);
    }
    let cluster = site.cluster();
    let job_index = site.job_index();
    let started = Instant::now();
    let started_s = cluster.since_epoch();
    let cfg = cluster.config();
    let num_reducers = cfg.num_reducers();
    let num_map_tasks = cfg.machines.max(1);
    let threads = cfg.threads.max(1);

    // ---- Map phase -------------------------------------------------------
    let split_len = input.len().div_ceil(num_map_tasks).max(1);
    let splits: Vec<&[(KI, VI)]> = input.chunks(split_len).collect();
    let actual_tasks = splits.len();

    // Expand the fault schedule up front: a pure function of the plan and
    // the job's geometry, so recovery decisions (and their metrics) are
    // independent of which worker thread runs which task.
    let sched: Option<JobFaultSchedule> = cfg.fault_plan.as_ref().map(|plan| {
        plan.schedule(
            &spec.name,
            job_index,
            actual_tasks,
            num_reducers,
            cfg.machines.max(1),
        )
    });
    if let Some(s) = &sched {
        if let Some(t) = s.first_exhausted_map() {
            return Err(MrError::TaskFailed {
                job: spec.name,
                phase: "map",
                task: t,
                attempts: s.map[t].failed_attempts,
            });
        }
    }

    let run_map_task = |task_id: usize| -> MapTaskResult<KM, VM> {
        let split = splits[task_id];
        let bucket_capacity = spec.map_emit_hint.map_or(0, |per_record| {
            (split.len() * per_record).div_ceil(num_reducers)
        });
        // Pre-sizing only pays off past Vec's first growth steps; for tiny
        // expected buckets an eager allocation per (task × partition) costs
        // more than the reallocations it avoids.
        let bucket_capacity = if bucket_capacity >= 8 {
            bucket_capacity
        } else {
            0
        };
        let mut buckets: Vec<Vec<(KM, VM)>> = (0..num_reducers)
            .map(|_| Vec::with_capacity(bucket_capacity))
            .collect();
        let mut input_bytes = 0usize;
        {
            let mut emit = |k: KM, v: VM| {
                buckets[partition_of(&k, num_reducers)].push((k, v));
            };
            for (k, v) in split {
                input_bytes += k.est_bytes() + v.est_bytes() + FRAMING_BYTES;
                mapper(k, v, &mut emit);
            }
        }
        let mut output_records = 0usize;
        let mut output_bytes = 0usize;
        let mut runs = Vec::with_capacity(num_reducers);
        for mut bucket in buckets {
            // Pre-combine accounting: the paper's "intermediate data".
            // Batch-sized: O(1) for fixed-size record types.
            let pre_bytes = slice_est_bytes(&bucket) + bucket.len() * FRAMING_BYTES;
            output_records += bucket.len();
            output_bytes += pre_bytes;
            // Map-side sort, so reducers merge instead of re-sorting.
            // Stability preserves emission order within equal keys.
            bucket.sort_by(|a, b| a.0.cmp(&b.0));
            let bytes = match spec.combiner {
                Some(combiner) => {
                    combine_bucket(&mut bucket, combiner);
                    slice_est_bytes(&bucket) + bucket.len() * FRAMING_BYTES
                }
                None => pre_bytes,
            };
            runs.push(SortedRun {
                records: bucket,
                bytes,
            });
        }
        MapTaskResult {
            runs,
            input_records: split.len(),
            input_bytes,
            output_records,
            output_bytes,
        }
    };

    // Results land in per-task slots (not a shared push list), so metrics
    // accumulate in task order and the shuffle sees runs in map-task order
    // regardless of which worker finished first.
    let map_slots: Vec<Mutex<Option<MapTaskResult<KM, VM>>>> =
        (0..actual_tasks).map(|_| Mutex::new(None)).collect();
    let task_counter = AtomicUsize::new(0);

    cluster
        .pool()
        .broadcast(threads.min(actual_tasks), &|_executor| loop {
            let t = task_counter.fetch_add(1, Ordering::Relaxed);
            if t >= actual_tasks {
                break;
            }
            // Scheduled task failures: each failed attempt runs the mapper
            // and discards its output (wasted work), then the task retries.
            if let Some(s) = &sched {
                for _ in 0..s.map[t].failed_attempts {
                    drop(run_map_task(t));
                }
            }
            let result = run_map_task(t);
            *map_slots[t].lock().expect("map slot poisoned") = Some(result);
        });

    // ---- Shuffle ---------------------------------------------------------
    // Zero-copy: each map task's per-partition runs move wholesale to
    // their reducer; accounting uses the runs' precomputed aggregates.
    let mut metrics = JobMetrics {
        name: spec.name.clone(),
        ..Default::default()
    };
    let mut partition_runs: Vec<Vec<SortedRun<KM, VM>>> = (0..num_reducers)
        .map(|_| Vec::with_capacity(actual_tasks))
        .collect();
    for (t, slot) in map_slots.into_iter().enumerate() {
        let r = slot
            .into_inner()
            .expect("map slot poisoned")
            .expect("every map task ran to completion");
        metrics.map_input_records += r.input_records;
        metrics.map_input_bytes += r.input_bytes;
        metrics.map_output_records += r.output_records;
        metrics.map_output_bytes += r.output_bytes;
        if let (Some(s), Some(plan)) = (&sched, &cfg.fault_plan) {
            s.map[t].account_map(
                plan,
                r.input_bytes as f64 / cfg.map_bytes_per_s,
                &mut metrics,
            );
        }
        for (p, run) in r.runs.into_iter().enumerate() {
            metrics.shuffle_records += run.records.len();
            metrics.shuffle_bytes += run.bytes;
            if !run.records.is_empty() {
                partition_runs[p].push(run);
            }
        }
    }

    if let Some(cap) = cfg.cluster_capacity_bytes {
        if metrics.map_output_bytes > cap {
            return Err(MrError::ClusterCapacityExceeded {
                job: spec.name,
                intermediate_bytes: metrics.map_output_bytes,
                capacity_bytes: cap,
            });
        }
    }

    // ---- Reduce phase ----------------------------------------------------
    struct ReduceTaskResult<KO, VO> {
        output: Vec<(KO, VO)>,
        groups: usize,
        output_records: usize,
        output_bytes: usize,
        max_group_bytes: usize,
    }

    // Group one partition's sorted runs by k-way merge. Equal keys drain
    // in run (= map task) order, reproducing the record order a stable
    // full sort of task-ordered input would give. `Err(Some(e))` is this
    // partition's own failure; `Err(None)` means it aborted because
    // another partition already failed.
    let reduce_partition = |runs: Vec<SortedRun<KM, VM>>,
                            failed: &AtomicBool|
     -> Result<ReduceTaskResult<KO, VO>, Option<MrError>> {
        let mut iters: Vec<std::vec::IntoIter<(KM, VM)>> =
            runs.into_iter().map(|r| r.records.into_iter()).collect();
        let mut out: Vec<(KO, VO)> = Vec::new();
        let mut groups = 0usize;
        let mut output_records = 0usize;
        let mut output_bytes = 0usize;
        let mut max_group_bytes = 0usize;
        loop {
            if failed.load(Ordering::Relaxed) {
                return Err(None);
            }
            // Smallest key at the head of any run starts the next group.
            let mut min_run: Option<usize> = None;
            for (i, it) in iters.iter().enumerate() {
                if let Some((k, _)) = it.as_slice().first() {
                    let smaller = match min_run {
                        None => true,
                        Some(m) => *k < iters[m].as_slice()[0].0,
                    };
                    if smaller {
                        min_run = Some(i);
                    }
                }
            }
            let Some(min_run) = min_run else { break };
            let key = iters[min_run].as_slice()[0].0.clone();

            // Size the group before materializing it: count each run's
            // matching prefix, O(1)-summing value bytes for fixed-size
            // value types.
            let mut n_vals = 0usize;
            let mut val_bytes = 0usize;
            for it in &iters {
                let head = it.as_slice();
                let cnt = head.iter().take_while(|(k, _)| *k == key).count();
                n_vals += cnt;
                val_bytes += match VM::FIXED_BYTES {
                    Some(b) => b * cnt,
                    None => head[..cnt].iter().map(|(_, v)| v.est_bytes()).sum(),
                };
            }
            let group_bytes = key.est_bytes() + val_bytes + n_vals * FRAMING_BYTES;
            if let Some(budget) = cfg.reducer_memory_bytes {
                if group_bytes > budget {
                    return Err(Some(MrError::ReducerOom {
                        job: spec.name.clone(),
                        group_bytes,
                        budget_bytes: budget,
                    }));
                }
            }
            let mut vals = Vec::with_capacity(n_vals);
            for it in &mut iters {
                while it.as_slice().first().is_some_and(|(k, _)| *k == key) {
                    vals.push(it.next().expect("peeked").1);
                }
            }
            max_group_bytes = max_group_bytes.max(group_bytes);
            groups += 1;
            let mut emit = |k: KO, v: VO| {
                output_records += 1;
                output_bytes += k.est_bytes() + v.est_bytes() + FRAMING_BYTES;
                out.push((k, v));
            };
            reducer(&key, vals, &mut emit);
        }
        Ok(ReduceTaskResult {
            output: out,
            groups,
            output_records,
            output_bytes,
            max_group_bytes,
        })
    };

    // Each partition is consumed by exactly one reduce task; hand ownership
    // through per-partition mutex cells so workers can take them without
    // cloning. Results land in per-partition slots.
    type PartitionCell<K, V> = Mutex<Option<Vec<SortedRun<K, V>>>>;
    let partition_cells: Vec<PartitionCell<KM, VM>> = partition_runs
        .into_iter()
        .map(|p| Mutex::new(Some(p)))
        .collect();
    let reduce_slots: Vec<Mutex<Option<ReduceTaskResult<KO, VO>>>> =
        (0..num_reducers).map(|_| Mutex::new(None)).collect();

    let part_counter = AtomicUsize::new(0);
    // On concurrent failures the one with the smallest partition index
    // wins, matching what a sequential executor would report first.
    let failure: Mutex<Option<(usize, MrError)>> = Mutex::new(None);
    let failed = AtomicBool::new(false);

    cluster
        .pool()
        .broadcast(threads.min(num_reducers), &|_executor| loop {
            if failed.load(Ordering::Relaxed) {
                break;
            }
            let p = part_counter.fetch_add(1, Ordering::Relaxed);
            if p >= num_reducers {
                break;
            }
            // Scheduled reduce-task budget exhaustion surfaces exactly like
            // any other per-partition failure: smallest partition wins.
            if let Some(f) = sched.as_ref().map(|s| &s.reduce[p]) {
                if f.exhausted {
                    let mut slot = failure.lock().expect("failure slot poisoned");
                    if slot.as_ref().is_none_or(|(fp, _)| p < *fp) {
                        *slot = Some((
                            p,
                            MrError::TaskFailed {
                                job: spec.name.clone(),
                                phase: "reduce",
                                task: p,
                                attempts: f.failed_attempts,
                            },
                        ));
                    }
                    failed.store(true, Ordering::Relaxed);
                    break;
                }
            }
            let runs = partition_cells[p]
                .lock()
                .expect("partition cell poisoned")
                .take()
                .expect("partition visited once");
            match reduce_partition(runs, &failed) {
                Ok(result) => {
                    *reduce_slots[p].lock().expect("reduce slot poisoned") = Some(result);
                }
                Err(Some(err)) => {
                    let mut slot = failure.lock().expect("failure slot poisoned");
                    if slot.as_ref().is_none_or(|(fp, _)| p < *fp) {
                        *slot = Some((p, err));
                    }
                    failed.store(true, Ordering::Relaxed);
                    break;
                }
                Err(None) => break,
            }
        });

    if let Some((_, err)) = failure.into_inner().expect("failure slot poisoned") {
        return Err(err);
    }

    // Assemble output and metrics in partition order — deterministic.
    let mut output = Vec::new();
    for slot in reduce_slots {
        let r = slot
            .into_inner()
            .expect("reduce slot poisoned")
            .expect("every partition reduced");
        metrics.reduce_groups += r.groups;
        metrics.reduce_output_records += r.output_records;
        metrics.reduce_output_bytes += r.output_bytes;
        metrics.max_group_bytes = metrics.max_group_bytes.max(r.max_group_bytes);
        output.extend(r.output);
    }

    if let (Some(s), Some(plan)) = (&sched, &cfg.fault_plan) {
        for f in &s.reduce {
            f.account_reduce(plan, &mut metrics);
        }
        metrics.workers_blacklisted = s.workers_blacklisted;
    }

    metrics.wall_time_s = started.elapsed().as_secs_f64();
    metrics.started_s = started_s;
    metrics.finished_s = started_s + metrics.wall_time_s;
    metrics.sim_time_s = CostModel::job_time_s(cfg, &metrics);
    site.commit_metrics(metrics);
    Ok(output)
}
